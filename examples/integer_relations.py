#!/usr/bin/env python
"""Experimental mathematics: recover minimal polynomials from digits.

The signature use of arbitrary precision in mathematics: compute a
constant to hundreds of bits, then ask which integer polynomial it
satisfies (integer relation detection).  One wrong digit and the
lattice gives garbage — the reason these pipelines run on APC stacks.

Everything below runs on the reproduction's own arithmetic: the square
roots come from the MPF layer, the lattice reduction is exact LLL over
MPZ/MPQ.

Run:  python examples/integer_relations.py
"""

from repro.apps.expmath import minimal_polynomial
from repro.mpf import MPF


def recover(label: str, value: MPF, degree: int, precision: int) -> None:
    print("%-18s (degree <= %d, %d bits)" % (label, degree, precision))
    result = minimal_polynomial(value, degree, precision)
    print("  p(x) = %s" % result.pretty())
    print("  |p(value)| ~ 2^%d  (noise floor certifies the relation)"
          % result.residual_exponent)


def main() -> None:
    precision = 128
    sqrt2 = MPF(2, precision).sqrt()
    golden = (MPF(1, precision) + MPF(5, precision).sqrt()) \
        / MPF(2, precision)
    nested = MPF(2, precision).sqrt() + MPF(3, precision).sqrt()

    recover("sqrt(2)", sqrt2, 2, 96)
    recover("golden ratio", golden, 2, 96)
    recover("sqrt(2)+sqrt(3)", nested, 4, precision)
    print("\n(the quartic is the fun one: x^4 - 10x^2 + 1, invisible")
    print(" to float64 but unambiguous at 128 bits)")


if __name__ == "__main__":
    main()
