#!/usr/bin/env python
"""Quickstart: the Cambricon-P reproduction in five minutes.

Covers the three layers a new user touches first:

1. the arbitrary-precision number types (MPZ / MPF),
2. the Cambricon-P accelerator simulator (exact results + cycle
   reports),
3. the MPApca runtime with its modeled time/energy accounting.

Run:  python examples/quickstart.py
"""

from repro import MPF, MPZ, CambriconP, MPApca
from repro.mpn import nat_from_int, nat_to_int


def arbitrary_precision_numbers() -> None:
    print("=== 1. Arbitrary-precision numbers ===")
    a = MPZ(2) ** MPZ(607) - 1          # a Mersenne prime
    b = MPZ(10) ** MPZ(100) + 267
    product = a * b
    print("bits:", a.bit_length(), "+", b.bit_length(),
          "->", product.bit_length())

    sqrt2 = MPF(2, precision=512).sqrt()
    print("sqrt(2) =", sqrt2.to_decimal_string(60), "...")


def accelerator_simulator() -> None:
    print("\n=== 2. The Cambricon-P accelerator ===")
    device = CambriconP()
    x = nat_from_int((1 << 4096) - 12345)
    y = nat_from_int((1 << 4096) + 67890)
    product, report = device.multiply(x, y)
    assert nat_to_int(product) == nat_to_int(x) * nat_to_int(y)
    print("4096-bit x 4096-bit multiply:")
    print("  passes: %d over %d wave(s) of 256 PEs"
          % (report.num_passes, report.num_waves))
    print("  modeled latency: %.0f cycles = %.2e s @ 2 GHz"
          % (report.cycles, report.seconds))
    print("  LLC traffic: %.0f bytes" % report.traffic.total_bytes)
    print("  carry-parallel gather max carry: %d (Equation 2 bound: 1 "
          "for 2L-bit flows)" % report.max_gather_carry)


def mpapca_runtime() -> None:
    print("\n=== 3. The MPApca runtime ===")
    runtime = MPApca()
    a = nat_from_int((1 << 35000) - 99991)   # fits monolithic hardware
    b = nat_from_int((1 << 35000) + 12343)
    product = runtime.mul(a, b)
    total = runtime.add(product, a)
    assert nat_to_int(total) \
        == nat_to_int(a) * nat_to_int(b) + nat_to_int(a)
    print("one 35,000-bit monolithic multiply + one add:")
    print("  modeled accelerator time: %.3e s" % runtime.seconds)
    print("  modeled energy (core + LLC): %.3e J" % runtime.joules)


if __name__ == "__main__":
    arbitrary_precision_numbers()
    accelerator_simulator()
    mpapca_runtime()
    print("\nDone. See examples/pi_digits.py, deep_zoom_mandelbrot.py,")
    print("rsa_crypto.py and bitflow_microscope.py for the deeper dives.")
