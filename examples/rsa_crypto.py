#!/usr/bin/env python
"""RSA on the reproduction's own arithmetic stack.

Key generation (Miller-Rabin over our Montgomery exponentiation),
encryption, CRT decryption and signing — then the modeled cost of the
same run on a Xeon versus Cambricon-P.  RSA is the paper's
best-accelerated application at large key sizes (up to 166x) because
Montgomery reduction is pure multiply/add work.

Run:  python examples/rsa_crypto.py [key_bits]
"""

import sys

from repro.apps import rsa
from repro.apps.synthetic import rsa_trace
from repro.mpz import MPZ
from repro.platforms import cpu
from repro.runtime import mpapca


def main(bits: int) -> None:
    print("generating a %d-bit key on the reproduction stack..." % bits)
    key = rsa.generate_keypair(bits, seed=2022)
    print("  n  = %d... (%d bits)" % (int(key.modulus) >> (bits - 32),
                                      key.bits))
    print("  e  = %d" % int(key.public_exponent))

    message = MPZ(int.from_bytes(b"bitflow architectures!", "big"))
    ciphertext = rsa.encrypt(message, key)
    recovered = rsa.decrypt(ciphertext, key)
    print("round trip ok:", recovered == message)

    signature = rsa.sign(message, key)
    print("signature verifies:", rsa.verify(signature, message, key))

    print("\nmodeled cost of keygen + 4 round trips at growing key sizes:")
    print("  %-10s %-12s %-14s %s" % ("key bits", "CPU (s)",
                                      "Cambricon-P(s)", "speedup"))
    for key_bits in (2048, 8192, 32768, 131072):
        trace = rsa_trace(key_bits)
        cpu_seconds = cpu.price_trace(trace).seconds
        camp_seconds = mpapca.price_trace(trace).seconds
        print("  %-10d %-12.3e %-14.3e %.2fx"
              % (key_bits, cpu_seconds, camp_seconds,
                 cpu_seconds / camp_seconds))
    print("\n(the paper's RSA band: 1.51x at small keys to 166.02x at "
          "the largest)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 512)
