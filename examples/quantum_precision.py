#!/usr/bin/env python
"""Why quantum simulation needs arbitrary precision (the zkcm workload).

Runs the quantum Fourier transform on our multiprecision complex-matrix
stack and shows how unitarity degrades in float64 over long gate
sequences while the arbitrary-precision state stays exact to hundreds
of bits.

Run:  python examples/quantum_precision.py [num_qubits]
"""

import cmath
import math
import sys

from repro.apps import zkcm


def float64_phase_drift(steps: int) -> float:
    """|z| drift after repeated float64 rotations (the failure mode)."""
    angle = 2 * math.pi / 64
    rotation = complex(math.cos(angle), math.sin(angle))
    z = 1 + 0j
    for _ in range(steps):
        z = z * rotation
    return abs(abs(z) - 1.0)


def main(num_qubits: int) -> None:
    print("QFT on |1> with %d qubits at 192-bit precision..." % num_qubits)
    result = zkcm.qft_state(num_qubits, 1, precision=192)
    size = 1 << num_qubits

    print("\namplitudes vs closed form exp(2*pi*i*y/2^n)/sqrt(2^n):")
    worst = 0.0
    for y in range(min(size, 6)):
        expected = cmath.exp(2j * math.pi * y / size) / math.sqrt(size)
        got = complex(result.state[y])
        worst = max(worst, abs(got - expected))
        print("  |%s>  %+.6f%+.6fj   (closed form %+.6f%+.6fj)"
              % (format(y, "0%db" % num_qubits), got.real, got.imag,
                 expected.real, expected.imag))
    print("worst deviation (via float64 printing): %.2e" % worst)
    print("unitarity error of the gate set at 192 bits: %.2e"
          % result.unitarity_error)

    print("\nfloat64 comparison: |z| drift after repeated rotations")
    for steps in (10 ** 3, 10 ** 5, 10 ** 7):
        print("  %8d rotations: drift %.2e"
              % (steps, float64_phase_drift(steps)))
    print("(zkcm-style multiprecision keeps this at ~2^-precision, "
          "which is the paper's reason to run quantum simulation on an "
          "APC stack)")

    print("\nGHZ state on %d qubits:" % num_qubits)
    ghz = zkcm.ghz_state(num_qubits, precision=128)
    for index in (0, (1 << num_qubits) - 1):
        print("  amplitude[|%s>] = %.10f"
              % (format(index, "0%db" % num_qubits),
                 abs(complex(ghz.state[index]))))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4)
