#!/usr/bin/env python
"""Two scientific computations that float64 cannot do — and APC can.

The paper's introduction motivates arbitrary precision with scientific
workloads where "one tiny disturbance/error can lead to a highly
deviated result". Two canonical instances, both running end to end on
the reproduction's own stack:

1. inverting a Hilbert matrix (condition number ~10^13 at n=10);
2. closing a planetary orbit to 2^-190 (Kepler's equation at 192 bits).

Run:  python examples/ill_conditioned_science.py
"""

from repro.apps import orbit
from repro.linalg import Matrix


def hilbert_demo() -> None:
    print("=== Hilbert matrix inversion (n = 10) ===")
    n = 10
    for precision, label in ((64, "64-bit (float64-like)"),
                             (256, "256-bit APC")):
        h = Matrix.hilbert(n, precision=precision)
        residual = (h @ h.inverse()) - Matrix.identity(n, precision)
        worst = residual.max_abs_entry()
        print("  %-22s max |H*inv(H) - I| = %s"
              % (label, worst.to_decimal_string(24)))
    print("  (the 64-bit residual is O(1): every digit of the inverse")
    print("   is noise; at 256 bits the residual sits at the rounding")
    print("   floor — the paper's case for APC in scientific codes)")


def orbit_demo() -> None:
    print("\n=== Planetary orbit closure (e = 0.6) ===")
    result = orbit.run(precision=192, steps=6)
    print("  192-bit propagation closes the period to ~2^%d"
          % result.closure_exponent)
    print("  float64 closes the same orbit to %.2e"
          % orbit.float64_closure_error())
    print("  over ~10^9 revolutions of a long-term ephemeris, the")
    print("  float64 error compounds into a lost orbit; the APC error")
    print("  stays beneath any physical perturbation")

    x, y = result.positions[2]
    print("\n  sample point on the ellipse:")
    print("    x =", x.to_decimal_string(40))
    print("    y =", y.to_decimal_string(40))


if __name__ == "__main__":
    hilbert_demo()
    orbit_demo()
