#!/usr/bin/env python
"""Render a deep Mandelbrot zoom with perturbation theory (ASCII art).

At a window of width 2^-zoom, pixel coordinates stop being
representable in doubles around zoom ~50; perturbation theory keeps one
arbitrary-precision reference orbit (computed on our MPC/MPF stack) and
iterates each pixel as a cheap float delta around it — the paper's Frac
workload [32].

Run:  python examples/deep_zoom_mandelbrot.py [zoom_exponent]
"""

import sys

from repro.apps import frac

PALETTE = " .:-=+*#%@"


def main(zoom_exponent: int) -> None:
    width, height = 64, 28
    max_iterations = zoom_exponent + 96
    precision = max(128, 2 * zoom_exponent + 64)
    print("center: c = i (Misiurewicz point on the dendrite)")
    print("window width: 2^-%d   precision: %d bits   iterations: %d"
          % (zoom_exponent, precision, max_iterations))

    result = frac.render(frac.DEFAULT_CENTER_RE, frac.DEFAULT_CENTER_IM,
                         zoom_exponent, width=width, height=height,
                         max_iterations=max_iterations,
                         precision=precision)

    low = min(min(row) for row in result.iterations)
    high = max(max(row) for row in result.iterations)
    span = max(1, high - low)
    for row in result.iterations:
        line = ""
        for value in row:
            if value >= result.max_iterations:
                line += PALETTE[-1]
            else:
                index = (value - low) * (len(PALETTE) - 2) // span
                line += PALETTE[index]
        print(line)
    print("\nreference orbit: %d arbitrary-precision steps; escape "
          "range %d..%d" % (result.orbit_length, low, high))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 80)
