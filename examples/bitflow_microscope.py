#!/usr/bin/env python
"""A microscope on the bitflow microarchitecture.

Walks one PE pass cycle by cycle: the Converter turning four pattern
bitflows into sixteen subset-sum flows, a bit-indexed IPU selecting and
accumulating them, and the Gather Unit's carry-parallel combination of
all 32 aligned partial-sums — the mechanisms of the paper's Figures
7-10, observable bit by bit.

Run:  python examples/bitflow_microscope.py
"""

import random

from repro.core import (Converter, IPU, Bitflow, BitflowCollector,
                        ProcessingElement, bips_inner_product,
                        generate_patterns, gather, index_stream,
                        lambda_ratio)
from repro.mpn import nat_from_int


def converter_demo(rng: random.Random) -> None:
    print("=== Converter: patterns generation (Figure 9b) ===")
    x_vec = [rng.getrandbits(8) for _ in range(4)]
    print("inputs:", ["0b{:08b}".format(x) for x in x_vec])
    converter = Converter(4)
    converter.load([Bitflow(nat_from_int(x)) for x in x_vec])
    collectors = [BitflowCollector() for _ in range(16)]
    cycle = 0
    while not converter.drained() or cycle < 12:
        bits = converter.step()
        for collector, bit in zip(collectors, bits):
            collector.push(bit)
        cycle += 1
    print("after %d cycles (8 input bits + carry drain):" % cycle)
    for mask in (0b0011, 0b0110, 0b1111):
        members = "+".join("x%d" % i for i in range(4)
                           if (mask >> i) & 1)
        print("  pattern %04s = %-11s -> %4d (expected %d)"
              % (bin(mask)[2:], members, collectors[mask].to_int(),
                 generate_patterns(x_vec)[mask]))
    print("adders used: %d (= 2^q - q - 1, the reuse graph)"
          % converter.adder_count)


def ipu_demo(rng: random.Random) -> None:
    print("\n=== Bit-indexed IPU: BIPS in action (Figure 9c) ===")
    x_vec = [rng.getrandbits(16) for _ in range(4)]
    y_vec = [rng.getrandbits(16) for _ in range(4)]
    converter = Converter(4)
    converter.load([Bitflow(nat_from_int(x)) for x in x_vec])
    ipu = IPU(4, 32)
    indices = index_stream(y_vec, 16)
    ipu.load(indices)
    print("index stream (first 8 y bit-slices):", indices[:8])
    collector = BitflowCollector()
    for _ in range(60):
        collector.push(ipu.step(converter.step()))
    expected = sum(a * b for a, b in zip(x_vec, y_vec))
    print("IPU bit-serial output: %d" % collector.to_int())
    print("word-level oracle:     %d" % expected)
    print("BIPS functional form:  %d" % bips_inner_product(x_vec, y_vec))
    print("lambda(q=4, p_y=32) = %.3f -> BIPS does ~37%% of the "
          "bit-serial bops" % lambda_ratio(4, 32))


def gather_demo(rng: random.Random) -> None:
    print("\n=== Gather Unit: carry parallel computing (Figure 7c) ===")
    partial_sums = [rng.getrandbits(64) for _ in range(8)]
    result = gather(partial_sums, 32)
    expected = sum(ps << (32 * i) for i, ps in enumerate(partial_sums))
    print("8 aligned 64-bit partial-sums, offset 32 bits each:")
    print("  gathered: %x" % result.total)
    print("  expected: %x" % expected)
    print("  segments: %d, max inter-part carry: %d (Equation 2 bound:"
          " 1)" % (result.segment_count, result.max_carry))


def pe_demo(rng: random.Random) -> None:
    print("\n=== One full PE pass, fast path vs true bit-serial ===")
    pe = ProcessingElement()
    chunk = [rng.getrandbits(32) for _ in range(4)]
    window = [rng.getrandbits(32) for _ in range(35)]
    fast = pe.compute_pass(chunk, window)
    slow = pe.compute_pass_bit_serial(chunk, window)
    print("32 IPUs, one pattern chunk, sliding index window:")
    print("  fast-path slab:   ...%x" % (fast.slab % (1 << 64)))
    print("  bit-serial slab:  ...%x" % (slow.slab % (1 << 64)))
    print("  identical:", fast.slab == slow.slab,
          "| cycles per pass:", slow.cycles)


if __name__ == "__main__":
    rng = random.Random(2022)
    converter_demo(rng)
    ipu_demo(rng)
    gather_demo(rng)
    pe_demo(rng)
