#!/usr/bin/env python
"""A tour of the upper software stack: integers, rationals, floats.

Everything here runs on the reproduction's own kernels — the layers of
the paper's Figure 1 above the naturals library: number-theoretic
functions over MPZ, exact rationals (MPQ), and the MPFR-style
transcendental layer, cross-checked against each other.

Run:  python examples/number_theory_tour.py
"""

from repro.mpf import MPF
from repro.mpf.transcendental import exp, ln2, pi_agm
from repro.mpq import MPQ
from repro.mpz import MPZ
from repro.mpz.number_theory import (factorial, fibonacci, lucas_lehmer,
                                     primorial)


def integers() -> None:
    print("=== Integers (MPZ + number theory) ===")
    f100 = factorial(100)
    print("100! has %d digits: %s..." % (len(f100.to_decimal()),
                                         f100.to_decimal()[:40]))
    fib = fibonacci(1000)
    print("F(1000) has %d bits: ...%s" % (fib.bit_length(),
                                          fib.to_decimal()[-30:]))
    print("primorial(100) =", primorial(100).to_decimal())
    mersennes = [p for p in range(2, 130)
                 if all(p % d for d in range(2, p)) and lucas_lehmer(p)]
    print("Mersenne-prime exponents below 130 (Lucas-Lehmer):",
          mersennes)


def rationals() -> None:
    print("\n=== Rationals (MPQ): e by its series, exactly ===")
    total = MPQ(0)
    term_factorial = MPZ(1)
    for k in range(30):
        if k:
            term_factorial = term_factorial * k
        total = total + MPQ(MPZ(1), term_factorial)
    print("sum_{k<30} 1/k! =", "%s/%s digits"
          % (len(total.numerator.to_decimal()),
             len(total.denominator.to_decimal())))
    as_float = total.to_mpf(256)
    reference = exp(MPF(1, 256), 256)
    difference = abs(as_float - reference)
    print("agrees with exp(1) to 2^%d"
          % (difference.exponent_of_top_bit if difference else -256))


def floats() -> None:
    print("\n=== Transcendentals: two pis and a logarithm ===")
    agm = pi_agm(512)
    from repro.apps.pi import compute_pi
    chudnovsky = compute_pi(140).digits
    print("pi (AGM):        ", agm.to_decimal_string(60))
    print("pi (Chudnovsky): ", chudnovsky[:62])
    print("ln 2 =", ln2(256).to_decimal_string(50))


if __name__ == "__main__":
    integers()
    rationals()
    floats()
