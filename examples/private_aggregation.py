#!/usr/bin/env python
"""Privacy-preserving aggregation with Paillier (the HE extension).

Multiple parties encrypt their values; an untrusted aggregator sums the
ciphertexts WITHOUT seeing any plaintext; only the key holder decrypts
the total. Every exponentiation runs on the reproduction's own
arithmetic stack — the workload profile the paper's conclusion targets
for APC acceleration.

Run:  python examples/private_aggregation.py
"""

import random

from repro.apps import he
from repro.mpz import MPZ


def main() -> None:
    print("generating a 384-bit Paillier key...")
    key = he.generate_keypair(384, seed=99)
    rng = random.Random(7)

    salaries = [52_000, 61_500, 48_250, 75_000, 58_300]
    print("parties encrypt their salaries:", salaries)
    ciphertexts = [he.encrypt(MPZ(v), key, rng) for v in salaries]

    print("aggregator multiplies ciphertexts (sees only noise)...")
    total_ciphertext = ciphertexts[0]
    for ciphertext in ciphertexts[1:]:
        total_ciphertext = he.add_encrypted(total_ciphertext,
                                            ciphertext, key)
    sample = str(int(total_ciphertext))
    print("  aggregate ciphertext: %s...%s" % (sample[:24], sample[-8:]))

    total = he.decrypt(total_ciphertext, key)
    print("key holder decrypts the sum:", int(total))
    assert int(total) == sum(salaries)

    mean_times_10 = he.scale_encrypted(total_ciphertext, MPZ(2), key)
    print("homomorphic scaling: decrypt(2 * Enc(sum)) =",
          int(he.decrypt(mean_times_10, key)))


if __name__ == "__main__":
    main()
