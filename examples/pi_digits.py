#!/usr/bin/env python
"""Compute digits of pi with Chudnovsky binary splitting — and see what
the computation would cost on a CPU versus on Cambricon-P.

This is the paper's flagship few-operand workload (Table II, "Pi"): the
whole run is one dependency tree of ever-larger integer multiplies, the
case batch-oriented GPUs cannot accelerate at all.

Run:  python examples/pi_digits.py [digits]
"""

import sys

from repro.apps import pi
from repro.platforms import cpu
from repro.runtime import mpapca


def main(digits: int) -> None:
    result, trace = pi.trace_run(digits)
    print("pi to %d digits (%d Chudnovsky terms, %d-bit arithmetic):"
          % (digits, result.terms, result.precision_bits))
    body = result.digits
    for offset in range(0, min(len(body), 400), 80):
        print("  " + body[offset:offset + 80])
    if len(body) > 400:
        print("  ... (%d more digits)" % (len(body) - 400))

    print("\noperator trace: %d kernel operations" % trace.count())
    for name, count in sorted(trace.names().items(),
                              key=lambda kv: -kv[1]):
        print("  %-10s %6d" % (name, count))

    cpu_cost = cpu.price_trace(trace)
    camp_cost = mpapca.price_trace(trace)
    print("\nmodeled cost of this run:")
    print("  Xeon 6134 + GMP model:        %.3e s, %.3e J"
          % (cpu_cost.seconds, cpu_cost.joules))
    print("  Cambricon-P + MPApca model:   %.3e s, %.3e J"
          % (camp_cost.seconds, camp_cost.joules))
    print("  speedup %.2fx, energy benefit %.2fx"
          % (cpu_cost.seconds / camp_cost.seconds,
             cpu_cost.joules / camp_cost.joules))
    print("\n(small digit counts favor the CPU — binary splitting is all"
          "\n tiny multiplies there; the crossover is a few thousand"
          "\n digits, and the paper's band of 5.8-16.7x appears at 1e5+.)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1000)
