"""Setup shim: enables legacy editable installs where the `wheel`
package is unavailable (pip falls back to `setup.py develop`)."""

from setuptools import setup

setup()
