"""Error paths of the MPApca runtime: malformed widths, zero
divisors, oversized requests.

The serve layer leans on these pricers for admission control, so a
malformed query must raise a typed :class:`MpnError` rather than
returning a garbage estimate or spinning in the recursive cycle model.
"""

import pytest

from repro.mpn import MpnError, nat_from_int
from repro.runtime import HighLevelOps, MPApca, mpapca
from repro.runtime.mpapca import MODEL_MAX_QUERY_BITS


class TestMalformedWidths:
    @pytest.mark.parametrize("fn,args", [
        (mpapca.mul_cycles, (-1, 64)),
        (mpapca.mul_cycles, (64, -1)),
        (mpapca.add_cycles, (-5, 0)),
        (mpapca.div_cycles, (-1, 64)),
        (mpapca.div_cycles, (64, -2)),
        (mpapca.sqrt_cycles, (-64,)),
        (mpapca.powmod_cycles, (-1, 16)),
        (mpapca.powmod_cycles, (2048, -16)),
    ])
    def test_negative_widths_raise(self, fn, args):
        with pytest.raises(MpnError):
            fn(*args)

    @pytest.mark.parametrize("fn,args", [
        (mpapca.mul_cycles, (2.5, 64)),
        (mpapca.mul_cycles, (True, 64)),
        (mpapca.add_cycles, ("4096", 0)),
        (mpapca.div_cycles, (None, 64)),
    ])
    def test_non_integer_widths_raise(self, fn, args):
        with pytest.raises(MpnError):
            fn(*args)

    def test_zero_widths_stay_legal(self):
        # Traces record zero-width operands (e.g. multiplying by zero);
        # the pricers clamp rather than reject.
        assert mpapca.mul_cycles(0, 0) > 0
        assert mpapca.add_cycles(0, 0) > 0
        assert mpapca.div_cycles(0, 0) > 0


class TestOversizedRequests:
    @pytest.mark.parametrize("fn,args", [
        (mpapca.mul_cycles, (MODEL_MAX_QUERY_BITS + 1, 64)),
        (mpapca.add_cycles, (MODEL_MAX_QUERY_BITS * 2, 0)),
        (mpapca.div_cycles, (MODEL_MAX_QUERY_BITS + 1, 64)),
        (mpapca.sqrt_cycles, (MODEL_MAX_QUERY_BITS + 1,)),
        (mpapca.powmod_cycles, (64, MODEL_MAX_QUERY_BITS + 1)),
    ])
    def test_absurd_widths_raise(self, fn, args):
        with pytest.raises(MpnError):
            fn(*args)

    def test_ceiling_itself_is_still_priced(self):
        assert mpapca.add_cycles(MODEL_MAX_QUERY_BITS, 0) > 0


class TestRuntimeErrorPaths:
    def test_zero_divisor_raises(self):
        ops = HighLevelOps(MPApca())
        with pytest.raises(MpnError):
            ops.divide(nat_from_int(100), nat_from_int(0))

    def test_powmod_zero_modulus_raises(self):
        ops = HighLevelOps(MPApca())
        with pytest.raises(MpnError):
            ops.powmod(nat_from_int(2), nat_from_int(10),
                       nat_from_int(0))

    def test_powmod_even_modulus_raises(self):
        ops = HighLevelOps(MPApca())
        with pytest.raises(MpnError):
            ops.powmod(nat_from_int(2), nat_from_int(10),
                       nat_from_int(100))

    def test_redc_oversized_value_raises(self):
        ops = HighLevelOps(MPApca())
        modulus = nat_from_int((1 << 64) + 13)
        oversized = nat_from_int(1 << 300)
        with pytest.raises(MpnError):
            ops.montgomery_reduce(oversized, modulus)

    def test_redc_even_modulus_raises(self):
        ops = HighLevelOps(MPApca())
        with pytest.raises(MpnError):
            ops.montgomery_reduce(nat_from_int(5), nat_from_int(8))


class TestPricersStillWork:
    def test_well_formed_queries_are_positive_and_monotone(self):
        small = mpapca.mul_cycles(1024, 1024)
        large = mpapca.mul_cycles(1 << 20, 1 << 20)
        assert 0 < small < large
        assert mpapca.powmod_cycles(2048, 2048) > \
            mpapca.powmod_cycles(2048, 16)
