"""Tests for the report layer (figures + cross-platform summaries)."""

import pytest

from repro.cli import main
from repro.profiling import KernelOp, OperationTrace
from repro.report import TraceComparison, compare_trace, render_loglog


def make_trace(bits: int = 8192, muls: int = 10) -> OperationTrace:
    trace = OperationTrace()
    trace.ops.extend([KernelOp("mul", bits, bits)] * muls)
    trace.ops.append(KernelOp("add", bits, bits))
    return trace


class TestCompareTrace:
    def test_all_platforms_present(self):
        comparison = compare_trace(make_trace())
        assert set(comparison.costs) == {"cpu", "cambricon_p", "gpu"}
        for cost in comparison.costs.values():
            assert cost.seconds > 0

    def test_speedup_and_energy(self):
        comparison = compare_trace(make_trace(bits=16384, muls=20))
        assert comparison.speedup > 10       # monolithic sweet spot
        # Pure-multiply traces are traffic-heavy, so the LLC term can
        # pull the energy benefit below the speedup (unlike app mixes).
        assert comparison.energy_benefit > 0.5 * comparison.speedup

    def test_breakdown_classes(self):
        comparison = compare_trace(make_trace())
        assert comparison.cpu_breakdown["Multiply"] > 0.9

    def test_table_renders(self):
        table = compare_trace(make_trace()).table()
        assert "cambricon_p" in table
        assert "speedup" in table


class TestRenderEdgeCases:
    def test_single_point(self):
        chart = render_loglog({"a": [(10, 10)]}, width=10, height=4)
        assert "o" in chart

    def test_flat_series(self):
        chart = render_loglog({"a": [(1, 5), (100, 5)]},
                              width=20, height=5)
        # Two data glyphs plus one in the legend.
        assert chart.count("o") == 3


class TestCliPrice:
    def test_price_rsa(self, capsys):
        assert main(["price", "rsa", "--size", "256"]) == 0
        output = capsys.readouterr().out
        assert "cambricon_p" in output and "speedup" in output

    def test_price_pi_default_size_clamped(self, capsys):
        assert main(["price", "pi", "--size", "150"]) == 0
        assert "kernel ops" in capsys.readouterr().out

    def test_price_he(self, capsys):
        assert main(["price", "he", "--size", "128"]) == 0
        assert "gpu" in capsys.readouterr().out


class TestScheduleView:
    def test_occupancy_map_renders(self):
        from repro.report import multiply_occupancy
        chart = multiply_occupancy(4096, 4096)
        assert "wave   0" in chart
        assert "utilization" in chart

    def test_full_wave_has_no_idle_slots(self):
        from repro.core.controller import CoreController
        from repro.report import occupancy_map
        schedule = CoreController(num_pes=16).plan_multiply(64, 64)
        chart = occupancy_map(schedule, max_columns=16)
        first_wave = next(line for line in chart.splitlines()
                          if line.startswith("wave   0"))
        assert "." not in first_wave.split("|")[1]


class TestCompileReport:
    def test_compiles_from_results(self, tmp_path):
        from repro.report import SECTIONS, compile_report
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig11_multiply.txt").write_text("fig11 body\n")
        output = tmp_path / "REPORT.md"
        text = compile_report(results, output)
        assert output.exists()
        assert "fig11 body" in text
        assert "Missing results" in text  # the other sections

    def test_cli_report(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "bips_lambda.txt").write_text("lambda body\n")
        out = tmp_path / "R.md"
        assert main(["report", "--results", str(results),
                     "--output", str(out)]) == 0
        assert out.exists()
