"""Tests for divide-and-conquer radix conversion."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpn import nat
from repro.mpn.mul import PYTHON_POLICY, mul
from repro.mpn.nat import MpnError
from repro.mpn.radix import from_decimal, to_decimal

from tests.conftest import naturals, to_nat


def mul_fn(a, b):
    return mul(a, b, PYTHON_POLICY)


class TestToDecimal:
    @given(naturals)
    def test_matches_str(self, value):
        import sys
        sys.set_int_max_str_digits(10 ** 6)
        assert to_decimal(to_nat(value), mul_fn) == str(value)

    def test_zero(self):
        assert to_decimal([], mul_fn) == "0"

    @pytest.mark.parametrize("value", [
        10 ** 9 - 1, 10 ** 9, 10 ** 9 + 1,        # chunk boundaries
        10 ** 18 - 1, 10 ** 18, 10 ** 36,          # power-table splits
        (1 << 4000) - 1, 10 ** 1000,
    ])
    def test_boundaries(self, value):
        import sys
        sys.set_int_max_str_digits(10 ** 6)
        assert to_decimal(to_nat(value), mul_fn) == str(value)

    def test_no_leading_zeros(self):
        text = to_decimal(to_nat(10 ** 100 + 7), mul_fn)
        assert not text.startswith("0")
        assert len(text) == 101


class TestFromDecimal:
    @given(naturals)
    def test_roundtrip(self, value):
        text = to_decimal(to_nat(value), mul_fn)
        assert nat.nat_to_int(from_decimal(text, mul_fn)) == value

    def test_whitespace_tolerated(self):
        assert nat.nat_to_int(from_decimal("  123  ", mul_fn)) == 123

    def test_garbage_rejected(self):
        with pytest.raises(MpnError):
            from_decimal("12a3", mul_fn)
        with pytest.raises(MpnError):
            from_decimal("", mul_fn)

    @given(st.integers(min_value=0, max_value=10 ** 60 - 1))
    @settings(max_examples=50)
    def test_matches_int_parse(self, value):
        assert nat.nat_to_int(from_decimal(str(value), mul_fn)) == value


class TestMpzWiring:
    def test_mpz_to_decimal(self):
        from repro.mpz import MPZ
        assert MPZ(0).to_decimal() == "0"
        assert MPZ(-123456789012345678901).to_decimal() \
            == "-123456789012345678901"

    def test_mpz_from_decimal(self):
        from repro.mpz import MPZ
        assert int(MPZ.from_decimal("+42")) == 42
        assert int(MPZ.from_decimal("-42")) == -42

    def test_mpf_large_rendering_avoids_interpreter_cap(self):
        # 6000 digits is beyond CPython's default 4300-digit str cap;
        # our own radix conversion must not care.
        from repro.mpf import MPF
        from repro.mpz import MPZ
        # Enough precision to hold 10^6000 exactly (~19,932 bits).
        value = MPF(MPZ(10) ** 6000, 20000)
        text = value.to_decimal_string(2)
        assert text == "1" + "0" * 6000 + ".00"
