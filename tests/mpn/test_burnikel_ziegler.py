"""Tests for Burnikel-Ziegler recursive division."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpn.burnikel_ziegler import BZ_THRESHOLD_LIMBS, divmod_bz
from repro.mpn.div import divmod_newton, divmod_schoolbook
from repro.mpn.mul import PYTHON_POLICY, mul
from repro.mpn.nat import MpnError

from tests.conftest import from_nat, naturals, to_nat


def mul_fn(a, b):
    return mul(a, b, PYTHON_POLICY)


class TestDivmodBZ:
    @given(naturals,
           st.integers(min_value=1, max_value=(1 << 2400) - 1))
    @settings(max_examples=50, deadline=None)
    def test_matches_int(self, a, b):
        quotient, remainder = divmod_bz(to_nat(a), to_nat(b), mul_fn)
        assert (from_nat(quotient), from_nat(remainder)) == divmod(a, b)

    @given(st.integers(min_value=1 << 3000, max_value=(1 << 3200) - 1),
           st.integers(min_value=1 << 1500, max_value=(1 << 1600) - 1))
    @settings(max_examples=10, deadline=None)
    def test_large_recursive_path(self, a, b):
        # Divisor well above the threshold: the recursion actually runs.
        assert (1 << 1500).bit_length() // 32 > BZ_THRESHOLD_LIMBS
        quotient, remainder = divmod_bz(to_nat(a), to_nat(b), mul_fn)
        assert (from_nat(quotient), from_nat(remainder)) == divmod(a, b)

    @pytest.mark.parametrize("b", [
        (1 << 4096) - 1, (1 << 4096) + 1, (1 << 3000) + 12345,
    ])
    def test_adversarial(self, b):
        for a in (b * b - 1, b * b + b - 1, b * 977 + 1):
            quotient, remainder = divmod_bz(to_nat(a), to_nat(b), mul_fn)
            assert (from_nat(quotient), from_nat(remainder)) \
                == divmod(a, b)

    def test_zero_divisor_rejected(self):
        with pytest.raises(MpnError):
            divmod_bz(to_nat(1), [], mul_fn)

    def test_dividend_smaller(self):
        quotient, remainder = divmod_bz(to_nat(5), to_nat(100), mul_fn)
        assert from_nat(quotient) == 0 and from_nat(remainder) == 5


class TestThreeAlgorithmsAgree:
    """Schoolbook, Newton and Burnikel-Ziegler cross-checked."""

    @given(st.integers(min_value=0, max_value=(1 << 7000) - 1),
           st.integers(min_value=1 << 2500, max_value=(1 << 2600) - 1))
    @settings(max_examples=8, deadline=None)
    def test_triple_agreement(self, a, b):
        a_nat, b_nat = to_nat(a), to_nat(b)
        school = divmod_schoolbook(a_nat, b_nat)
        newton = divmod_newton(a_nat, b_nat, mul_fn)
        bz = divmod_bz(a_nat, b_nat, mul_fn)
        assert school == newton == bz
