"""Deeper tests for the Schoenhage-Strassen internals."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpn import nat
from repro.mpn.nat import MpnError
from repro.mpn.ssa import (default_split_exponent, fermat_add,
                           fermat_mul_2exp, fermat_reduce, fermat_sub,
                           mul_ssa, ntt, ssa_parameters, _to_pieces)
from repro.mpn.toom import mul_toom

from tests.conftest import from_nat, to_nat


def oracle_mul(a, b):
    return to_nat(from_nat(a) * from_nat(b))


class TestFermatRing:
    @given(st.integers(min_value=0, max_value=(1 << 500) - 1),
           st.sampled_from([8, 16, 32, 64, 96]))
    @settings(max_examples=80)
    def test_reduce_matches_mod(self, value, w):
        modulus = (1 << w) + 1
        got = from_nat(fermat_reduce(to_nat(value), w))
        assert got == value % modulus

    def test_canonical_minus_one_is_kept(self):
        # 2^w represents -1 and must stay as-is (the old infinite-loop
        # regression).
        w = 64
        assert from_nat(fermat_reduce(to_nat(1 << w), w)) == 1 << w

    @given(st.integers(min_value=0, max_value=(1 << 65)),
           st.integers(min_value=0, max_value=(1 << 65)))
    @settings(max_examples=60)
    def test_add_sub_group_laws(self, a, b):
        w = 64
        modulus = (1 << w) + 1
        a %= modulus
        b %= modulus
        total = fermat_add(to_nat(a), to_nat(b), w)
        assert from_nat(total) == (a + b) % modulus
        back = fermat_sub(total, to_nat(b), w)
        assert from_nat(back) == a

    def test_mul_2exp_is_cyclic_with_period_2w(self):
        w = 32
        value = to_nat(0xDEADBEE % ((1 << w) + 1))
        rotated = fermat_mul_2exp(value, 2 * w, w)
        assert rotated == value
        negated = fermat_mul_2exp(value, w, w)
        assert from_nat(fermat_add(negated, value, w)) == 0


class TestNTT:
    @pytest.mark.parametrize("size,w", [(4, 16), (8, 32), (16, 32)])
    def test_forward_inverse_roundtrip(self, size, w):
        import random
        rng = random.Random(size)
        modulus = (1 << w) + 1
        values = [to_nat(rng.randrange(modulus)) for _ in range(size)]
        originals = [from_nat(v) for v in values]
        root = 2 * w // size
        work = [list(v) for v in values]
        ntt(work, w, root)
        ntt(work, w, 2 * w - root)
        # Inverse transform scales by `size`; divide out.
        log_size = size.bit_length() - 1
        scale = 2 * w - log_size
        restored = [from_nat(fermat_mul_2exp(v, scale, w))
                    for v in work]
        assert restored == originals

    def test_linearity(self):
        size, w = 8, 32
        root = 2 * w // size
        a = [to_nat(i + 1) for i in range(size)]
        b = [to_nat(3 * i + 2) for i in range(size)]
        summed = [fermat_add(x, y, w) for x, y in zip(a, b)]
        ntt(a, w, root)
        ntt(b, w, root)
        ntt(summed, w, root)
        for x, y, s in zip(a, b, summed):
            assert fermat_add(x, y, w) == s


class TestParameters:
    @given(st.integers(min_value=2, max_value=10 ** 7),
           st.integers(min_value=1, max_value=10))
    @settings(max_examples=60)
    def test_constraints(self, total_bits, k):
        piece, transform, w = ssa_parameters(total_bits, k)
        assert transform == 2 * (1 << k)
        assert piece * (1 << k) >= total_bits
        assert w >= 2 * piece + k + 1
        assert (2 * w) % transform == 0  # primitive root exists

    def test_default_split_reasonable(self):
        for bits in (1000, 10 ** 5, 10 ** 7):
            k = default_split_exponent(bits)
            assert 1 <= k <= 10

    def test_oversized_operand_rejected(self):
        with pytest.raises(MpnError):
            _to_pieces(to_nat((1 << 64) - 1), piece_bits=1,
                       transform_size=4)


class TestToomHigherK:
    """The generic Toom machinery beyond the dispatcher's 3/4/6."""

    @pytest.mark.parametrize("k", [5, 7])
    @given(a=st.integers(min_value=0, max_value=(1 << 4000) - 1),
           b=st.integers(min_value=0, max_value=(1 << 4000) - 1))
    @settings(max_examples=15, deadline=None)
    def test_matches_int(self, k, a, b):
        got = mul_toom(to_nat(a), to_nat(b), k, oracle_mul)
        assert from_nat(got) == a * b
