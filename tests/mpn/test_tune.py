"""Tests for the threshold autotuner and its persistence layer."""

import json
import os
import subprocess
import sys

import pytest

from repro.mpn import nat
from repro.mpn import tune as tune_mod
from repro.mpn.mul import mul
from repro.mpn.schoolbook import mul_schoolbook
from repro.mpn.tune import (THRESHOLDS_VERSION, Thresholds,
                            _random_operand, _time_once,
                            active_thresholds, default_thresholds,
                            find_crossover, load_thresholds,
                            save_thresholds, thresholds_path, tune,
                            tuned_policy)

from tests.conftest import from_nat


class TestRandomOperand:
    def test_exact_limb_count_and_determinism(self):
        operand = _random_operand(10, seed=5)
        assert len(operand) == 10
        assert operand[-1] >> 31 == 1  # top bit forced
        assert operand == _random_operand(10, seed=5)
        assert operand != _random_operand(10, seed=6)


class TestFindCrossover:
    def test_always_faster_returns_low(self):
        def slow(a, b):
            for _ in range(50):
                mul_schoolbook(a, b)
            return mul_schoolbook(a, b)
        crossover = find_crossover(slow, mul_schoolbook, 4, 32)
        assert crossover == 4

    def test_never_faster_returns_high(self):
        def never_fast(a, b):
            for _ in range(50):
                mul_schoolbook(a, b)
            return mul_schoolbook(a, b)
        crossover = find_crossover(mul_schoolbook, never_fast, 4, 32)
        assert crossover == 32


class TestTune:
    @pytest.fixture(scope="class")
    def result(self):
        return tune(max_limbs=256)

    def test_ordering(self, result):
        policy = result.policy
        assert 4 <= policy.karatsuba_limbs <= 128
        assert policy.karatsuba_limbs < policy.toom3_limbs \
            < policy.toom4_limbs < policy.toom6_limbs < policy.ssa_limbs

    def test_tuned_policy_is_exact(self, result, rng):
        x, y = rng.getrandbits(20000), rng.getrandbits(20000)
        product = mul(nat.nat_from_int(x), nat.nat_from_int(y),
                      result.policy)
        assert from_nat(product) == x * y

    def test_report_renders(self, result):
        text = result.report()
        assert "schoolbook->karatsuba" in text

    def test_division_crossovers_measured(self, result):
        names = [name for name, _ in result.measurements]
        assert "schoolbook->burnikel-ziegler" in names
        assert "division->barrett" in names

    def test_result_carries_thresholds(self, result):
        assert result.thresholds is not None
        result.thresholds.validate()
        assert result.thresholds.karatsuba_limbs \
            == result.policy.karatsuba_limbs


class TestTimer:
    def test_best_of_n_returns_int_nanoseconds(self):
        a = _random_operand(4, 1)
        b = _random_operand(4, 2)
        best = _time_once(mul_schoolbook, a, b, repeats=3)
        assert isinstance(best, int)
        assert best > 0

    def test_more_repeats_never_slower(self):
        """Best-of-N is monotone: the minimum over a superset of runs
        can only shrink (statistically; allow generous slack)."""
        a = _random_operand(16, 3)
        b = _random_operand(16, 4)
        few = min(_time_once(mul_schoolbook, a, b, repeats=1)
                  for _ in range(3))
        many = _time_once(mul_schoolbook, a, b, repeats=9)
        assert many <= few * 3  # sanity band, not a benchmark


class TestThresholdsPersistence:
    @pytest.fixture(autouse=True)
    def isolated(self, tmp_path, monkeypatch):
        monkeypatch.setenv(tune_mod.THRESHOLDS_ENV,
                           str(tmp_path / "thresholds.json"))
        yield tmp_path

    def test_path_env_override(self, isolated):
        assert thresholds_path() == isolated / "thresholds.json"

    def test_roundtrip(self):
        original = Thresholds(karatsuba_limbs=20, toom3_limbs=90,
                              toom4_limbs=300, toom6_limbs=1200,
                              ssa_limbs=5000, bz_limbs=48,
                              barrett_limbs=6, max_limbs=512)
        target = save_thresholds(original)
        assert target == thresholds_path()
        assert load_thresholds() == original

    def test_invalid_thresholds_refuse_to_save(self):
        broken = Thresholds(karatsuba_limbs=100, toom3_limbs=50,
                            toom4_limbs=300, toom6_limbs=1200,
                            ssa_limbs=5000)
        with pytest.raises(ValueError):
            save_thresholds(broken)

    def test_missing_file_loads_none(self):
        assert load_thresholds() is None

    def test_corrupt_file_loads_none(self, isolated):
        (isolated / "thresholds.json").write_text("nonsense",
                                                  encoding="utf-8")
        assert load_thresholds() is None

    def test_version_mismatch_loads_none(self, isolated):
        good = Thresholds(karatsuba_limbs=20, toom3_limbs=90,
                          toom4_limbs=300, toom6_limbs=1200,
                          ssa_limbs=5000)
        save_thresholds(good)
        payload = json.loads(
            (isolated / "thresholds.json").read_text(encoding="utf-8"))
        payload["version"] = THRESHOLDS_VERSION + 1
        (isolated / "thresholds.json").write_text(json.dumps(payload),
                                                  encoding="utf-8")
        assert load_thresholds() is None
        # active_thresholds falls back to the checked-in defaults.
        assert active_thresholds() == default_thresholds()

    def test_active_prefers_persisted(self):
        persisted = Thresholds(karatsuba_limbs=17, toom3_limbs=70,
                               toom4_limbs=280, toom6_limbs=1100,
                               ssa_limbs=4400)
        save_thresholds(persisted)
        assert active_thresholds() == persisted
        assert tuned_policy().karatsuba_limbs == 17

    def test_defaults_validate(self):
        default_thresholds().validate()


class TestTuneCli:
    """``repro tune`` in a *fresh process* persists thresholds that
    another fresh process loads — the ISSUE-2 acceptance check."""

    @pytest.mark.slow
    def test_subprocess_tune_then_load(self, tmp_path):
        target = tmp_path / "host-thresholds.json"
        env = dict(os.environ,
                   PYTHONPATH="src",
                   REPRO_THRESHOLDS=str(target))
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "tune",
             "--max-limbs", "64", "--repeats", "1"],
            capture_output=True, text=True, env=env, cwd="/root/repo",
            timeout=600)
        assert completed.returncode == 0, completed.stderr
        assert target.exists()
        loader = subprocess.run(
            [sys.executable, "-c",
             "from repro.mpn.tune import active_thresholds;"
             "t = active_thresholds(); t.validate();"
             "print(t.karatsuba_limbs)"],
            capture_output=True, text=True, env=env, cwd="/root/repo",
            timeout=120)
        assert loader.returncode == 0, loader.stderr
        assert int(loader.stdout.strip()) >= 2

    def test_dry_run_does_not_persist(self, tmp_path, monkeypatch,
                                      capsys):
        from repro import cli
        target = tmp_path / "thresholds.json"
        monkeypatch.setenv(tune_mod.THRESHOLDS_ENV, str(target))
        assert cli.main(["tune", "--max-limbs", "32", "--repeats", "1",
                         "--dry-run"]) == 0
        assert not target.exists()
        out = capsys.readouterr().out
        assert "threshold tuning" in out
