"""Tests for the threshold autotuner."""

import pytest

from repro.mpn import nat
from repro.mpn.mul import mul
from repro.mpn.schoolbook import mul_schoolbook
from repro.mpn.tune import _random_operand, find_crossover, tune

from tests.conftest import from_nat


class TestRandomOperand:
    def test_exact_limb_count_and_determinism(self):
        operand = _random_operand(10, seed=5)
        assert len(operand) == 10
        assert operand[-1] >> 31 == 1  # top bit forced
        assert operand == _random_operand(10, seed=5)
        assert operand != _random_operand(10, seed=6)


class TestFindCrossover:
    def test_always_faster_returns_low(self):
        def slow(a, b):
            for _ in range(50):
                mul_schoolbook(a, b)
            return mul_schoolbook(a, b)
        crossover = find_crossover(slow, mul_schoolbook, 4, 32)
        assert crossover == 4

    def test_never_faster_returns_high(self):
        def never_fast(a, b):
            for _ in range(50):
                mul_schoolbook(a, b)
            return mul_schoolbook(a, b)
        crossover = find_crossover(mul_schoolbook, never_fast, 4, 32)
        assert crossover == 32


class TestTune:
    @pytest.fixture(scope="class")
    def result(self):
        return tune(max_limbs=256)

    def test_ordering(self, result):
        policy = result.policy
        assert 4 <= policy.karatsuba_limbs <= 128
        assert policy.karatsuba_limbs < policy.toom3_limbs \
            < policy.toom4_limbs < policy.toom6_limbs < policy.ssa_limbs

    def test_tuned_policy_is_exact(self, result, rng):
        x, y = rng.getrandbits(20000), rng.getrandbits(20000)
        product = mul(nat.nat_from_int(x), nat.nat_from_int(y),
                      result.policy)
        assert from_nat(product) == x * y

    def test_report_renders(self, result):
        text = result.report()
        assert "schoolbook->karatsuba" in text
