"""Tests for square root, Montgomery arithmetic, GCD and signed helpers."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpn import signed
from repro.mpn.gcd import extended_gcd, gcd, invmod
from repro.mpn.montgomery import MontgomeryContext, powmod
from repro.mpn.mul import PYTHON_POLICY, mul
from repro.mpn.nat import MpnError
from repro.mpn.sqrt import is_perfect_square, isqrt, sqrtrem

from tests.conftest import from_nat, naturals, positive_naturals, to_nat


def mul_fn(a, b):
    return mul(a, b, PYTHON_POLICY)


class TestSqrt:
    @given(naturals)
    def test_matches_isqrt(self, value):
        assert from_nat(isqrt(to_nat(value), mul_fn)) == math.isqrt(value)

    @given(naturals)
    def test_sqrtrem_invariant(self, value):
        root, remainder = sqrtrem(to_nat(value), mul_fn)
        r, rem = from_nat(root), from_nat(remainder)
        assert r * r + rem == value
        assert rem <= 2 * r

    @pytest.mark.parametrize("value", [
        0, 1, 2, 3, 4, (1 << 52) - 1, (1 << 52), (1 << 52) + 1,
        (1 << 2000) - 1, 1 << 2000, (1 << 2000) + 1,
        ((1 << 999) - 1) ** 2, ((1 << 999) - 1) ** 2 - 1,
    ])
    def test_edges(self, value):
        assert from_nat(isqrt(to_nat(value), mul_fn)) == math.isqrt(value)

    @given(st.integers(min_value=0, max_value=(1 << 600) - 1))
    def test_perfect_square_detection(self, root):
        assert is_perfect_square(to_nat(root * root), mul_fn)
        if root > 1:
            assert not is_perfect_square(to_nat(root * root - 1), mul_fn)


class TestMontgomery:
    @given(st.integers(min_value=3, max_value=(1 << 700) - 1)
           .map(lambda v: v | 1),
           naturals, naturals)
    @settings(max_examples=60)
    def test_mont_mul(self, modulus, a, b):
        context = MontgomeryContext(to_nat(modulus), mul_fn)
        a_red, b_red = a % modulus, b % modulus
        product = context.mont_mul(context.to_mont(to_nat(a_red)),
                                   context.to_mont(to_nat(b_red)))
        assert from_nat(context.from_mont(product)) \
            == (a_red * b_red) % modulus

    def test_even_modulus_rejected(self):
        with pytest.raises(MpnError):
            MontgomeryContext([4], mul_fn)

    @given(st.integers(min_value=3, max_value=(1 << 500) - 1)
           .map(lambda v: v | 1),
           naturals,
           st.integers(min_value=0, max_value=(1 << 120) - 1))
    @settings(max_examples=40)
    def test_pow_matches_int(self, modulus, base, exponent):
        got = powmod(to_nat(base % modulus), to_nat(exponent),
                     to_nat(modulus), mul_fn)
        assert from_nat(got) == pow(base % modulus, exponent, modulus)

    @given(st.integers(min_value=2, max_value=(1 << 300) - 1)
           .map(lambda v: v * 2),
           naturals,
           st.integers(min_value=0, max_value=(1 << 40) - 1))
    @settings(max_examples=25)
    def test_even_modulus_fallback(self, modulus, base, exponent):
        got = powmod(to_nat(base % modulus), to_nat(exponent),
                     to_nat(modulus), mul_fn)
        assert from_nat(got) == pow(base % modulus, exponent, modulus)

    def test_zero_exponent(self):
        assert from_nat(powmod([7], [], [11], mul_fn)) == 1

    def test_modulus_one(self):
        assert powmod([7], [3], [1], mul_fn) == []


class TestGcd:
    @given(naturals, naturals)
    def test_matches_math_gcd(self, a, b):
        assert from_nat(gcd(to_nat(a), to_nat(b))) == math.gcd(a, b)

    @given(positive_naturals, positive_naturals)
    def test_bezout_identity(self, a, b):
        g, x, y = extended_gcd(to_nat(a), to_nat(b), mul_fn)
        assert (a * signed.s_to_int(x) + b * signed.s_to_int(y)
                == from_nat(g) == math.gcd(a, b))

    @given(st.integers(min_value=3, max_value=(1 << 400) - 1)
           .map(lambda v: v | 1),
           positive_naturals)
    @settings(max_examples=50)
    def test_invmod(self, modulus, a):
        a_red = a % modulus
        if a_red == 0 or math.gcd(a_red, modulus) != 1:
            return
        inverse = from_nat(invmod(to_nat(a_red), to_nat(modulus)))
        assert (inverse * a_red) % modulus == 1

    def test_invmod_rejects_non_coprime(self):
        with pytest.raises(MpnError):
            invmod(to_nat(6), to_nat(9), mul_fn)


class TestSigned:
    @given(st.integers(min_value=-(1 << 200), max_value=(1 << 200) - 1),
           st.integers(min_value=-(1 << 200), max_value=(1 << 200) - 1))
    def test_add_sub(self, a, b):
        sa, sb = signed.s_from_int(a), signed.s_from_int(b)
        assert signed.s_to_int(signed.s_add(sa, sb)) == a + b
        assert signed.s_to_int(signed.s_sub(sa, sb)) == a - b

    @given(st.integers(min_value=-(1 << 200), max_value=(1 << 200) - 1),
           st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1))
    def test_mul_small(self, a, small):
        got = signed.s_mul_small(signed.s_from_int(a), small)
        assert signed.s_to_int(got) == a * small

    @given(st.integers(min_value=-(1 << 200), max_value=(1 << 200) - 1),
           st.integers(min_value=1, max_value=(1 << 31) - 1))
    def test_divexact_small(self, a, small):
        product = signed.s_mul_small(signed.s_from_int(a), small)
        assert signed.s_to_int(signed.s_divexact_small(product, small)) == a

    def test_canonical_zero(self):
        assert signed.s_from_int(0) == signed.S_ZERO
        assert signed.s_neg(signed.S_ZERO) == signed.S_ZERO

    def test_expect_nat_rejects_negative(self):
        with pytest.raises(MpnError):
            signed.s_expect_nat(signed.s_from_int(-5))


class TestKthRoot:
    @given(st.integers(min_value=0, max_value=(1 << 900) - 1),
           st.integers(min_value=1, max_value=9))
    @settings(max_examples=60)
    def test_floor_root_invariant(self, value, k):
        from repro.mpn.sqrt import iroot
        root = from_nat(iroot(to_nat(value), k, mul_fn))
        if value == 0:
            assert root == 0
        else:
            assert root ** k <= value < (root + 1) ** k

    @pytest.mark.parametrize("k,base", [(3, 2), (3, 10 ** 20),
                                        (5, 17), (7, (1 << 64) + 3)])
    def test_exact_powers(self, k, base):
        from repro.mpn.sqrt import iroot
        assert from_nat(iroot(to_nat(base ** k), k, mul_fn)) == base
        assert from_nat(iroot(to_nat(base ** k - 1), k, mul_fn)) \
            == base - 1

    def test_degenerate(self):
        from repro.mpn.sqrt import iroot
        from repro.mpn.nat import MpnError
        assert from_nat(iroot(to_nat(12345), 1, mul_fn)) == 12345
        with pytest.raises(MpnError):
            iroot(to_nat(8), 0, mul_fn)
