"""Tests for Barrett reduction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpn.barrett import BarrettContext
from repro.mpn.mul import PYTHON_POLICY, mul
from repro.mpn.nat import MpnError

from tests.conftest import from_nat, to_nat

moduli = st.integers(min_value=2, max_value=(1 << 600) - 1)


def mul_fn(a, b):
    return mul(a, b, PYTHON_POLICY)


class TestReduce:
    @given(moduli, st.integers(min_value=0, max_value=(1 << 1300) - 1))
    @settings(max_examples=80)
    def test_matches_mod(self, modulus, raw):
        value = raw % (modulus * modulus)
        context = BarrettContext(to_nat(modulus), mul_fn)
        assert from_nat(context.reduce(to_nat(value))) == value % modulus

    def test_even_modulus_works(self):
        # Barrett's selling point over Montgomery.
        context = BarrettContext(to_nat(1 << 128), mul_fn)
        value = (1 << 200) + 12345
        assert from_nat(context.reduce(to_nat(value % (1 << 256)))) \
            == value % (1 << 128)

    def test_window_boundaries(self):
        modulus = (1 << 100) - 3
        context = BarrettContext(to_nat(modulus), mul_fn)
        for value in (0, 1, modulus - 1, modulus, modulus + 1,
                      modulus * modulus - 1):
            assert from_nat(context.reduce(to_nat(value))) \
                == value % modulus

    def test_out_of_window_rejected(self):
        context = BarrettContext(to_nat(5), mul_fn)
        with pytest.raises(MpnError):
            context.reduce(to_nat(1 << 64))

    def test_tiny_modulus_rejected(self):
        with pytest.raises(MpnError):
            BarrettContext(to_nat(1), mul_fn)

    def test_correction_loop_is_bounded(self):
        # Classic Barrett bound: at most two subtractions.  Verify by
        # instrumenting a worst-ish case sweep.
        modulus = (1 << 64) - 59
        context = BarrettContext(to_nat(modulus), mul_fn)
        for value in range(modulus * modulus - 50,
                           modulus * modulus, 7):
            got = from_nat(context.reduce(to_nat(value)))
            assert got == value % modulus


class TestModularOps:
    @given(moduli,
           st.integers(min_value=0, max_value=(1 << 650) - 1),
           st.integers(min_value=0, max_value=(1 << 650) - 1))
    @settings(max_examples=50)
    def test_mul_mod(self, modulus, a, b):
        a, b = a % modulus, b % modulus
        context = BarrettContext(to_nat(modulus), mul_fn)
        assert from_nat(context.mul_mod(to_nat(a), to_nat(b))) \
            == (a * b) % modulus

    @given(st.integers(min_value=2, max_value=(1 << 300) - 1),
           st.integers(min_value=0, max_value=(1 << 320) - 1),
           st.integers(min_value=0, max_value=(1 << 64) - 1))
    @settings(max_examples=40)
    def test_pow(self, modulus, base, exponent):
        context = BarrettContext(to_nat(modulus), mul_fn)
        got = from_nat(context.pow(to_nat(base % modulus),
                                   to_nat(exponent)))
        assert got == pow(base % modulus, exponent, modulus)

    def test_pow_agrees_with_montgomery(self):
        # Cross-validate the two reduction families on an odd modulus.
        from repro.mpn.montgomery import MontgomeryContext
        modulus = (1 << 256) - 189
        base, exponent = 0xDEADBEEF, 0xC0FFEE
        barrett = BarrettContext(to_nat(modulus), mul_fn)
        montgomery = MontgomeryContext(to_nat(modulus), mul_fn)
        assert barrett.pow(to_nat(base), to_nat(exponent)) \
            == montgomery.pow(to_nat(base), to_nat(exponent))
