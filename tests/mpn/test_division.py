"""Tests for schoolbook (Knuth D) and Newton division."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpn.div import (NEWTON_DIV_THRESHOLD_BITS, divexact,
                           divmod_newton, divmod_nat, divmod_schoolbook)
from repro.mpn.mul import PYTHON_POLICY, mul
from repro.mpn.nat import MpnError

from tests.conftest import from_nat, naturals, positive_naturals, to_nat


def mul_fn(a, b):
    return mul(a, b, PYTHON_POLICY)


class TestSchoolbookDivision:
    @given(naturals, positive_naturals)
    def test_matches_int(self, a, b):
        quotient, remainder = divmod_schoolbook(to_nat(a), to_nat(b))
        assert (from_nat(quotient), from_nat(remainder)) == divmod(a, b)

    def test_zero_divisor_rejected(self):
        with pytest.raises(MpnError):
            divmod_schoolbook([1], [])

    def test_dividend_smaller(self):
        quotient, remainder = divmod_schoolbook([5], [0, 1])
        assert quotient == [] and remainder == [5]

    def test_knuth_add_back_case(self):
        # Operands engineered to trigger the rare D6 add-back branch:
        # dividend just below divisor * (B^k), top limbs force an
        # overestimated q_hat.
        b = (1 << 96) - (1 << 32) - 1
        a = (b << 64) - 1
        quotient, remainder = divmod_schoolbook(to_nat(a), to_nat(b))
        assert (from_nat(quotient), from_nat(remainder)) == divmod(a, b)

    @pytest.mark.parametrize("a,b", [
        ((1 << 4096) - 1, (1 << 2048) - 1),
        ((1 << 4096) - 1, (1 << 2048) + 1),
        (((1 << 2000) + 7) ** 2 - 1, (1 << 2000) + 7),
    ])
    def test_adversarial(self, a, b):
        quotient, remainder = divmod_schoolbook(to_nat(a), to_nat(b))
        assert (from_nat(quotient), from_nat(remainder)) == divmod(a, b)


class TestNewtonDivision:
    @given(st.integers(min_value=0, max_value=(1 << 9000) - 1),
           st.integers(min_value=1 << NEWTON_DIV_THRESHOLD_BITS,
                       max_value=1 << (NEWTON_DIV_THRESHOLD_BITS + 800)))
    @settings(max_examples=15, deadline=None)
    def test_matches_int(self, a, b):
        quotient, remainder = divmod_newton(to_nat(a), to_nat(b), mul_fn)
        assert (from_nat(quotient), from_nat(remainder)) == divmod(a, b)

    @pytest.mark.parametrize("b", [
        (1 << 4096) - 1, (1 << 4096) + 1, (1 << 5000) + 12345,
        (1 << 3000) - (1 << 1500),
    ])
    def test_adversarial_divisors(self, b):
        for a in (b * b - 1, b * b, b * b + 1, b * 12345 + b - 1):
            quotient, remainder = divmod_newton(to_nat(a), to_nat(b),
                                                mul_fn)
            assert (from_nat(quotient), from_nat(remainder)) == divmod(a, b)

    def test_small_divisor_falls_back(self):
        a, b = (1 << 600) - 3, (1 << 100) - 1
        quotient, remainder = divmod_newton(to_nat(a), to_nat(b), mul_fn)
        assert (from_nat(quotient), from_nat(remainder)) == divmod(a, b)


class TestDivmodFrontend:
    @given(naturals, positive_naturals)
    def test_matches_int(self, a, b):
        quotient, remainder = divmod_nat(to_nat(a), to_nat(b), mul_fn)
        assert (from_nat(quotient), from_nat(remainder)) == divmod(a, b)

    @given(naturals, positive_naturals)
    def test_divexact(self, a, b):
        product = mul_fn(to_nat(a), to_nat(b))
        assert from_nat(divexact(product, to_nat(b), mul_fn)) == a

    def test_divexact_raises_on_inexact(self):
        with pytest.raises(MpnError):
            divexact([7], [2], mul_fn)
