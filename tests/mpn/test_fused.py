"""Tests for the fused optional operators (AddMul, SubMul, MulLo)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpn import nat
from repro.mpn.fused import addmul, addmul_1, mullo, submul
from repro.mpn.mul import PYTHON_POLICY, mul
from repro.mpn.nat import MpnError

from tests.conftest import from_nat, naturals, to_nat


def mul_fn(a, b):
    return mul(a, b, PYTHON_POLICY)


class TestAddmulSubmul:
    @given(naturals, naturals, naturals)
    @settings(max_examples=60)
    def test_addmul(self, a, b, c):
        got = addmul(to_nat(a), to_nat(b), to_nat(c), mul_fn)
        assert from_nat(got) == a + b * c

    @given(naturals, naturals, naturals)
    @settings(max_examples=60)
    def test_submul_of_addmul(self, a, b, c):
        fused = addmul(to_nat(a), to_nat(b), to_nat(c), mul_fn)
        assert from_nat(submul(fused, to_nat(b), to_nat(c), mul_fn)) == a

    def test_submul_underflow_rejected(self):
        with pytest.raises(MpnError):
            submul(to_nat(1), to_nat(2), to_nat(3), mul_fn)

    @given(naturals, naturals,
           st.integers(min_value=0, max_value=(1 << 32) - 1))
    @settings(max_examples=60)
    def test_addmul_1(self, a, b, small):
        got = addmul_1(to_nat(a), to_nat(b), small)
        assert from_nat(got) == a + b * small

    def test_addmul_1_out_of_range(self):
        with pytest.raises(MpnError):
            addmul_1([1], [2], 1 << 32)


class TestMullo:
    @given(naturals, naturals, st.integers(min_value=0, max_value=2500))
    @settings(max_examples=60)
    def test_matches_mod(self, a, b, bits):
        got = mullo(to_nat(a), to_nat(b), bits, mul_fn)
        assert from_nat(got) == (a * b) % (1 << bits) if bits \
            else from_nat(got) == 0

    def test_recursion_path(self):
        # Force the recursive branch (above the basecase threshold).
        a = (1 << 2000) - 12345
        b = (1 << 2000) + 99991
        got = mullo(to_nat(a), to_nat(b), 2000, mul_fn)
        assert from_nat(got) == (a * b) % (1 << 2000)

    def test_zero_operands(self):
        assert mullo([], to_nat(5), 64, mul_fn) == []

    def test_negative_bits_rejected(self):
        with pytest.raises(MpnError):
            mullo([1], [1], -1, mul_fn)
