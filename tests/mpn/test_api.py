"""Tests for the profiled mpn public API and policy switching."""

from repro import mpn, profiling
from repro.mpn import GMP_POLICY, MPAPCA_POLICY, PYTHON_POLICY

from tests.conftest import from_nat, to_nat


class TestProfiledWrappers:
    def test_each_wrapper_records_one_op(self):
        a, b = to_nat(123456789123456789), to_nat(987654321)
        cases = [
            (lambda: mpn.mul(a, b), "mul"),
            (lambda: mpn.sqr(a), "mul"),
            (lambda: mpn.add(a, b), "add"),
            (lambda: mpn.sub(a, b), "sub"),
            (lambda: mpn.shl(a, 10), "shift"),
            (lambda: mpn.shr(a, 10), "shift"),
            (lambda: mpn.compare(a, b), "cmp"),
            (lambda: mpn.divmod_nat(a, b), "div"),
            (lambda: mpn.mod(a, b), "mod"),
            (lambda: mpn.isqrt(a), "sqrt"),
            (lambda: mpn.powmod(b, [3], a), "powmod"),
            (lambda: mpn.gcd(a, b), "div"),
        ]
        for action, expected_name in cases:
            with profiling.session() as trace:
                action()
            assert trace.count() == 1, expected_name
            assert trace.ops[0].name == expected_name

    def test_nested_kernels_are_suppressed(self):
        # divmod internally multiplies; only the outer div is recorded.
        a = to_nat((1 << 3000) - 1)
        b = to_nat((1 << 1200) + 7)
        with profiling.session() as trace:
            mpn.divmod_nat(a, b)
        assert trace.names() == {"div": 1}

    def test_bitwidths_recorded(self):
        a, b = to_nat(1 << 100), to_nat(1 << 50)
        with profiling.session() as trace:
            mpn.mul(a, b)
        op = trace.ops[0]
        assert op.bits_a == 101 and op.bits_b == 51

    def test_results_are_correct_through_wrappers(self):
        x, y = (1 << 777) - 1, (1 << 333) + 5
        assert from_nat(mpn.mul(to_nat(x), to_nat(y))) == x * y
        assert from_nat(mpn.add(to_nat(x), to_nat(y))) == x + y
        quotient, remainder = mpn.divmod_nat(to_nat(x), to_nat(y))
        assert (from_nat(quotient), from_nat(remainder)) == divmod(x, y)


class TestPolicySwitch:
    def test_set_and_restore(self):
        previous = mpn.set_policy(MPAPCA_POLICY)
        try:
            assert mpn.get_policy() is MPAPCA_POLICY
            x = (1 << 2000) - 3
            assert from_nat(mpn.mul(to_nat(x), to_nat(x))) == x * x
        finally:
            mpn.set_policy(previous)

    def test_explicit_policy_argument(self):
        x = (1 << 1500) - 1
        for policy in (GMP_POLICY, MPAPCA_POLICY, PYTHON_POLICY):
            assert from_nat(mpn.mul(to_nat(x), to_nat(x), policy)) == x * x


class TestRecorder:
    def test_sessions_nest_and_restore(self):
        with profiling.session() as outer:
            mpn.add(to_nat(1), to_nat(2))
            with profiling.session() as inner:
                mpn.mul(to_nat(3), to_nat(4))
            mpn.sub(to_nat(9), to_nat(2))
        assert inner.names() == {"mul": 1}
        assert outer.names() == {"add": 1, "sub": 1}

    def test_no_recording_outside_session(self):
        assert not profiling.is_recording()
        mpn.add(to_nat(1), to_nat(2))  # must not raise

    def test_trace_helpers(self):
        with profiling.session() as trace:
            mpn.add(to_nat(1), to_nat(2))
            mpn.add(to_nat(3), to_nat(4))
            mpn.mul(to_nat(5), to_nat(6))
        assert trace.count() == 3
        assert trace.count("add") == 2
        assert len(trace.by_name("mul")) == 1
        merged = profiling.OperationTrace()
        merged.merge(trace)
        merged.merge(trace)
        assert merged.count() == 6
