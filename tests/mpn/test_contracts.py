"""Regression tests for contract holes surfaced by the linter/sanitizer."""

import pytest

from repro import mpn
from repro.analysis.sanitize import sanitizer
from repro.mpn import burnikel_ziegler, ssa
from repro.mpn.burnikel_ziegler import divmod_bz

from tests.conftest import from_nat, to_nat


class TestBurnikelZieglerNormalization:
    """divmod_bz fed a zero-padded block buffer into _div_2n1n; the
    basecase there hands its ``low`` operand straight to nat.add and
    divmod_schoolbook, which both require canonical Nats."""

    def test_multi_block_division_under_sanitizer(self):
        # Divisor > BZ_THRESHOLD_LIMBS forces the recursion; a dividend
        # several blocks long exercises the per-block loop including
        # blocks whose top limbs are zero after normalization.
        b = (1 << 800) + 12345
        a = (1 << 2600) + (1 << 801)
        with sanitizer():
            quotient, remainder = divmod_bz(to_nat(a), to_nat(b), mpn.mul)
        assert (from_nat(quotient), from_nat(remainder)) == divmod(a, b)

    def test_block_with_many_trailing_zero_limbs(self):
        # A dividend chunk that is mostly zeros once produced the
        # maximally-padded buffer.
        b = (1 << 800) - 1
        a = (1 << 2048)
        with sanitizer():
            quotient, remainder = divmod_bz(to_nat(a), to_nat(b), mpn.mul)
        assert (from_nat(quotient), from_nat(remainder)) == divmod(a, b)

    def test_pad_is_a_buffer_helper_not_a_nat(self):
        padded = burnikel_ziegler._pad([5], 4)
        assert padded == [5, 0, 0, 0]   # raw positional buffer by design


class TestSsaInternals:
    def test_reverse_bits_matches_string_reference(self):
        for bits in range(1, 9):
            for index in range(1 << bits):
                expected = int(format(index, "0%db" % bits)[::-1], 2)
                assert ssa._reverse_bits(index, bits) == expected

    def test_to_pieces_padding_is_not_aliased(self):
        pieces = ssa._to_pieces(to_nat(1), piece_bits=32, transform_size=8)
        assert pieces[0] == [1]
        tail = pieces[1:]
        assert all(piece == [] for piece in tail)
        # Each zero piece must be a distinct list object: SSA writes
        # results back per slot, and a shared [] would alias them all.
        assert len({id(piece) for piece in tail}) == len(tail)


class TestAssertConversions:
    def test_rsa_rejects_zero_messages(self):
        from repro.apps import rsa
        with pytest.raises(ValueError, match="messages"):
            rsa.run(bits=128, seed=7, messages=0)

    def test_energy_benefit_raises_on_missing_joules(self):
        from repro.report.summary import PlatformCost, TraceComparison
        comparison = TraceComparison(
            costs={"cpu": PlatformCost(seconds=1.0, joules=None),
                   "cambricon_p": PlatformCost(seconds=0.5, joules=2.0)},
            cpu_breakdown={})
        with pytest.raises(ValueError, match="joules"):
            comparison.energy_benefit
