"""Property suite for the residue-number-system kernel (ISSUE 7).

The rns module's invariants, independent of any dispatcher: channel
sets are coprime 61-bit primes with honest capacity accounting;
encode/decode is an exact round trip up to (and an error past) that
capacity; the per-channel Montgomery reducer equals plain modular
multiplication; the mul/sqr/powmod kernels match Python's bigints on
arbitrary widths, including the degenerate moduli and the
shared-channel-prime fallback.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpn import nat
from repro.mpn.nat import MpnError
from repro.mpn.rns import (MODULUS_BITS, ChannelMontgomery, RnsContext,
                           RnsError, RnsOverflowError, channel_moduli,
                           context_for_bits, mul_rns, powmod_rns,
                           sqr_rns)

from tests.conftest import from_nat, to_nat

#: Wide-but-affordable value widths for round-trip properties.
values = st.one_of(
    st.integers(min_value=0, max_value=10),
    st.integers(min_value=0, max_value=(1 << 64) - 1),
    st.integers(min_value=0, max_value=(1 << 1200) - 1),
    st.integers(min_value=1 << 4000, max_value=(1 << 4096) - 1),
)


class TestChannelModuli:
    @pytest.mark.parametrize("count", (1, 2, 7, 40))
    def test_primes_are_61_bit_and_coprime(self, count):
        moduli = channel_moduli(count)
        assert len(moduli) == count
        assert len(set(moduli)) == count
        for modulus in moduli:
            assert modulus.bit_length() == MODULUS_BITS
            assert modulus % 2 == 1
        for index, first in enumerate(moduli):
            for second in moduli[index + 1:]:
                assert math.gcd(first, second) == 1

    def test_offset_windows_are_disjoint_and_consistent(self):
        """Workers re-derive exactly the parent's channel set, and the
        dual-base offset never overlaps base 1."""
        first = channel_moduli(6)
        assert channel_moduli(6) == first
        assert channel_moduli(3) == first[:3]
        second = channel_moduli(6, offset=6)
        assert not set(first) & set(second)

    def test_descending_from_mersenne_61(self):
        moduli = channel_moduli(3)
        assert moduli[0] == (1 << 61) - 1  # 2**61 - 1 is prime
        assert moduli[0] > moduli[1] > moduli[2]


class TestContextRoundTrip:
    @given(value=values)
    @settings(max_examples=50, deadline=None)
    def test_encode_decode_round_trip(self, value):
        context = context_for_bits(max(1, value.bit_length()))
        assert context.decode(context.encode(value)) == value

    @pytest.mark.parametrize("bits", (1, 60, 61, 122, 4096))
    def test_capacity_is_honest(self, bits):
        context = context_for_bits(bits)
        assert context.capacity_bits >= bits
        assert context.capacity_bits \
            == context.modulus_product.bit_length() - 1
        top = (1 << context.capacity_bits) - 1
        assert context.decode(context.encode(top)) == top
        with pytest.raises(RnsOverflowError):
            context.encode(1 << context.capacity_bits)

    def test_error_paths(self):
        context = RnsContext(channel_moduli(2))
        with pytest.raises(RnsError):
            context.encode(-1)
        with pytest.raises(RnsError):
            context.decode((1,))  # wrong channel count
        with pytest.raises(RnsError):
            RnsContext(())


class TestChannelMontgomery:
    @given(a=st.integers(min_value=0), b=st.integers(min_value=0),
           index=st.integers(min_value=0, max_value=7))
    @settings(max_examples=60, deadline=None)
    def test_equals_plain_modmul(self, a, b, index):
        modulus = channel_moduli(8)[index]
        mont = ChannelMontgomery(modulus)
        a, b = a % modulus, b % modulus
        assert mont.from_mont(mont.mont_mul(mont.to_mont(a),
                                            mont.to_mont(b))) \
            == (a * b) % modulus

    def test_constant_form_yields_plain_products(self):
        modulus = channel_moduli(1)[0]
        mont = ChannelMontgomery(modulus)
        constant = 0xDEADBEEF % modulus
        stored = mont.to_mont(constant)  # cR
        for value in (0, 1, modulus - 1, 123456789):
            assert mont.mont_mul(value, stored) \
                == (value * constant) % modulus

    def test_rejects_even_or_unit_moduli(self):
        for bad in (0, 1, 2, 10):
            with pytest.raises(RnsError):
                ChannelMontgomery(bad)


class TestMulKernel:
    @given(a=values, b=values)
    @settings(max_examples=40, deadline=None)
    def test_matches_bigints(self, a, b):
        assert from_nat(mul_rns(to_nat(a), to_nat(b))) == a * b

    @given(a=values)
    @settings(max_examples=25, deadline=None)
    def test_sqr_matches_bigints(self, a):
        assert from_nat(sqr_rns(to_nat(a))) == a * a

    def test_explicit_context_overflow_raises(self):
        context = RnsContext(channel_moduli(2))
        wide = 1 << context.capacity_bits
        with pytest.raises(RnsOverflowError):
            mul_rns(to_nat(wide), to_nat(wide), context=context)


class TestPowmodKernel:
    @given(base=st.integers(min_value=0, max_value=(1 << 512) - 1),
           exponent=st.integers(min_value=0, max_value=(1 << 64) - 1),
           modulus=st.integers(min_value=1, max_value=(1 << 512) - 1))
    @settings(max_examples=40, deadline=None)
    def test_matches_bigints(self, base, exponent, modulus):
        got = powmod_rns(to_nat(base), to_nat(exponent), to_nat(modulus))
        assert from_nat(got) == pow(base, exponent, modulus)

    @pytest.mark.parametrize("modulus", (1, 2, 6, 1 << 32, (1 << 61) - 2))
    def test_degenerate_and_even_moduli(self, modulus):
        base, exponent = 0xABCDEF0123456789, 0x1F
        got = powmod_rns(to_nat(base), to_nat(exponent), to_nat(modulus))
        assert from_nat(got) == pow(base, exponent, modulus)

    def test_zero_exponent_and_zero_base(self):
        modulus = to_nat(97)
        assert from_nat(powmod_rns(to_nat(5), to_nat(0), modulus)) == 1
        assert from_nat(powmod_rns(to_nat(0), to_nat(9), modulus)) == 0

    def test_zero_modulus_raises(self):
        with pytest.raises(MpnError):
            powmod_rns(to_nat(3), to_nat(4), to_nat(0))

    def test_shared_channel_prime_falls_back(self):
        """A modulus divisible by a channel prime has no RNS Montgomery
        domain; the kernel must fall back to the limb path, invisibly."""
        modulus = channel_moduli(1)[0] * 3
        base, exponent = 0x123456789ABCDEF, 0x11
        got = powmod_rns(to_nat(base), to_nat(exponent), to_nat(modulus))
        assert from_nat(got) == pow(base, exponent, modulus)
