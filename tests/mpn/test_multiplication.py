"""Tests for every multiplication algorithm and the dispatcher.

Each fast algorithm is exercised directly (with an oracle recursion) so
a dispatcher threshold can never hide a broken path, then the
dispatcher itself is property-tested across policies.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpn import nat
from repro.mpn.karatsuba import mul_karatsuba, sqr_karatsuba
from repro.mpn.mul import (GMP_POLICY, MPAPCA_POLICY, PYTHON_POLICY,
                           MulPolicy, mul, sqr)
from repro.mpn.schoolbook import mul_schoolbook, sqr_schoolbook
from repro.mpn.ssa import (fermat_add, fermat_mul_2exp, fermat_reduce,
                           fermat_sub, mul_ssa, ssa_parameters)
from repro.mpn.toom import evaluation_points, interpolation_rows, mul_toom

from tests.conftest import from_nat, naturals, to_nat


def oracle_mul(a, b):
    """Exact reference multiplier for recursion injection."""
    return to_nat(from_nat(a) * from_nat(b))


class TestSchoolbook:
    @given(naturals, naturals)
    def test_matches_int(self, a, b):
        assert from_nat(mul_schoolbook(to_nat(a), to_nat(b))) == a * b

    @given(naturals)
    def test_sqr(self, a):
        assert from_nat(sqr_schoolbook(to_nat(a))) == a * a

    def test_zero(self):
        assert mul_schoolbook([], [5]) == []
        assert sqr_schoolbook([]) == []

    def test_all_ones_limbs(self):
        # Maximum carry pressure: every partial product is maximal.
        value = (1 << 320) - 1
        assert from_nat(mul_schoolbook(to_nat(value), to_nat(value))) \
            == value * value


class TestKaratsuba:
    @given(naturals, naturals)
    def test_matches_int(self, a, b):
        got = mul_karatsuba(to_nat(a), to_nat(b), oracle_mul)
        assert from_nat(got) == a * b

    @given(naturals)
    def test_sqr(self, a):
        got = sqr_karatsuba(to_nat(a), lambda x: oracle_mul(x, x))
        assert from_nat(got) == a * a

    def test_unbalanced(self):
        a, b = (1 << 1000) - 1, 3
        got = mul_karatsuba(to_nat(a), to_nat(b), oracle_mul)
        assert from_nat(got) == a * b


class TestToom:
    @pytest.mark.parametrize("k", [2, 3, 4, 6])
    def test_small_cases(self, k):
        for a, b in [(1, 1), (12345, 67890), ((1 << 200) - 1, (1 << 200) - 5)]:
            got = mul_toom(to_nat(a), to_nat(b), k, oracle_mul)
            assert from_nat(got) == a * b

    @pytest.mark.parametrize("k", [3, 4, 6])
    @given(a=naturals, b=naturals)
    @settings(max_examples=30)
    def test_matches_int(self, k, a, b):
        got = mul_toom(to_nat(a), to_nat(b), k, oracle_mul)
        assert from_nat(got) == a * b

    @pytest.mark.parametrize("k", [2, 3, 4, 6])
    def test_point_count(self, k):
        points = evaluation_points(k)
        assert len(points) == 2 * k - 1
        assert points[0] == 0 and points[-1] == "inf"
        assert len(set(points)) == len(points)

    @pytest.mark.parametrize("k", [2, 3, 4, 6])
    def test_interpolation_is_exact_inverse(self, k):
        # Interpolating the evaluations of a known polynomial recovers
        # its coefficients exactly.
        size = 2 * k - 1
        coefficients = [3 * i + 1 for i in range(size)]
        points = evaluation_points(k)
        values = []
        for point in points:
            if point == "inf":
                values.append(coefficients[-1])
            else:
                values.append(sum(c * point ** p
                                  for p, c in enumerate(coefficients)))
        for j, (denominator, numerators) in enumerate(interpolation_rows(k)):
            total = sum(n * v for n, v in zip(numerators, values))
            assert total % denominator == 0
            assert total // denominator == coefficients[j]


class TestSSA:
    def test_fermat_reduce(self):
        w = 64
        modulus = (1 << w) + 1
        for value in [0, 1, modulus - 1, modulus, modulus + 5,
                      (1 << 200) + 12345]:
            got = from_nat(fermat_reduce(to_nat(value), w))
            assert got == value % modulus

    def test_fermat_add_sub(self):
        w = 32
        modulus = (1 << w) + 1
        for a in [0, 5, modulus - 1]:
            for b in [0, 7, modulus - 2]:
                assert from_nat(fermat_add(to_nat(a), to_nat(b), w)) \
                    == (a + b) % modulus
                assert from_nat(fermat_sub(to_nat(a), to_nat(b), w)) \
                    == (a - b) % modulus

    def test_fermat_mul_2exp_full_orbit(self):
        w = 16
        modulus = (1 << w) + 1
        value = 12345 % modulus
        for exponent in range(0, 2 * w + 5):
            got = from_nat(fermat_mul_2exp(to_nat(value), exponent, w))
            assert got == (value << exponent) % modulus

    def test_parameters_satisfy_constraints(self):
        for total_bits in [100, 1000, 50000]:
            for k in [2, 3, 5]:
                piece, transform, w = ssa_parameters(total_bits, k)
                assert transform == 2 * (1 << k)
                assert w >= 2 * piece + k + 1
                assert w % (transform // 2) == 0

    @given(a=naturals, b=naturals, k=st.integers(min_value=1, max_value=5))
    @settings(max_examples=40)
    def test_matches_int(self, a, b, k):
        got = mul_ssa(to_nat(a), to_nat(b), oracle_mul, k)
        assert from_nat(got) == a * b

    def test_large(self):
        a = (1 << 40000) - 12345
        b = (1 << 40000) + 54321
        assert from_nat(mul_ssa(to_nat(a), to_nat(b), oracle_mul)) == a * b


class TestDispatcher:
    @pytest.mark.parametrize("policy",
                             [GMP_POLICY, MPAPCA_POLICY, PYTHON_POLICY])
    @given(a=naturals, b=naturals)
    @settings(max_examples=40)
    def test_matches_int(self, policy, a, b):
        assert from_nat(mul(to_nat(a), to_nat(b), policy)) == a * b

    @given(naturals)
    def test_sqr(self, a):
        assert from_nat(sqr(to_nat(a), PYTHON_POLICY)) == a * a

    def test_regime_order(self):
        policy = GMP_POLICY
        last = -1
        order = ["basecase", "karatsuba", "toom3", "toom4", "toom6", "ssa"]
        for limbs in [1, 50, 150, 400, 1000, 5000]:
            algorithm = policy.algorithm_for(limbs)
            assert order.index(algorithm) >= last
            last = order.index(algorithm)

    def test_mpapca_has_no_small_fast_algorithms(self):
        # The hardware basecase covers everything GMP would Toom.
        assert MPAPCA_POLICY.algorithm_for(1000) == "basecase"
        assert GMP_POLICY.algorithm_for(1000) != "basecase"

    def test_crosses_every_threshold(self):
        # One multiplication large enough to recurse through SSA, Toom
        # and Karatsuba down to the basecase, end to end.
        a = (1 << 100000) - 99991
        b = (1 << 100000) + 12343
        assert from_nat(mul(to_nat(a), to_nat(b), PYTHON_POLICY)) == a * b
