"""Unit and property tests for the limb-level naturals representation."""

import pytest
from hypothesis import given

from repro.mpn import nat
from repro.mpn.nat import MpnError

from tests.conftest import from_nat, naturals, shift_counts, to_nat


class TestConversion:
    def test_zero_is_empty(self):
        assert nat.nat_from_int(0) == []
        assert nat.nat_to_int([]) == 0

    def test_single_limb(self):
        assert nat.nat_from_int(42) == [42]

    def test_limb_boundary(self):
        assert nat.nat_from_int(1 << 32) == [0, 1]
        assert nat.nat_from_int((1 << 32) - 1) == [0xFFFFFFFF]

    def test_negative_rejected(self):
        with pytest.raises(MpnError):
            nat.nat_from_int(-1)

    @given(naturals)
    def test_roundtrip(self, value):
        assert from_nat(to_nat(value)) == value

    @given(naturals)
    def test_normalized(self, value):
        assert nat.is_normalized(to_nat(value))


class TestBits:
    @given(naturals)
    def test_bit_length_matches_int(self, value):
        assert nat.bit_length(to_nat(value)) == value.bit_length()

    @given(naturals, shift_counts)
    def test_get_bit(self, value, index):
        assert nat.get_bit(to_nat(value), index) == (value >> index) & 1

    @given(naturals, shift_counts)
    def test_set_bit(self, value, index):
        assert from_nat(nat.set_bit(to_nat(value), index)) \
            == value | (1 << index)

    def test_get_bit_negative_index_rejected(self):
        with pytest.raises(MpnError):
            nat.get_bit([1], -1)

    @given(naturals)
    def test_iter_bits_lsb(self, value):
        bits = list(nat.iter_bits_lsb(to_nat(value)))
        assert len(bits) == value.bit_length()
        rebuilt = sum(bit << index for index, bit in enumerate(bits))
        assert rebuilt == value


class TestCompare:
    @given(naturals, naturals)
    def test_cmp_matches_int(self, a, b):
        expected = (a > b) - (a < b)
        assert nat.cmp(to_nat(a), to_nat(b)) == expected

    def test_equal(self):
        assert nat.cmp([1, 2], [1, 2]) == 0


class TestAddSub:
    @given(naturals, naturals)
    def test_add(self, a, b):
        assert from_nat(nat.add(to_nat(a), to_nat(b))) == a + b

    @given(naturals, naturals)
    def test_add_commutes(self, a, b):
        assert nat.add(to_nat(a), to_nat(b)) == nat.add(to_nat(b), to_nat(a))

    @given(naturals, naturals)
    def test_sub_of_sum(self, a, b):
        total = nat.add(to_nat(a), to_nat(b))
        assert from_nat(nat.sub(total, to_nat(b))) == a

    def test_sub_underflow_rejected(self):
        with pytest.raises(MpnError):
            nat.sub([1], [2])

    def test_carry_chain(self):
        # All-ones + 1 ripples through every limb.
        ones = [0xFFFFFFFF] * 5
        assert nat.add(ones, [1]) == [0, 0, 0, 0, 0, 1]

    @given(naturals, naturals.filter(lambda v: v < (1 << 32)))
    def test_add_1_sub_1(self, a, small):
        bumped = nat.add_1(to_nat(a), small)
        assert from_nat(bumped) == a + small
        assert from_nat(nat.sub_1(bumped, small)) == a


class TestShifts:
    @given(naturals, shift_counts)
    def test_shl(self, value, count):
        assert from_nat(nat.shl(to_nat(value), count)) == value << count

    @given(naturals, shift_counts)
    def test_shr(self, value, count):
        assert from_nat(nat.shr(to_nat(value), count)) == value >> count

    @given(naturals, shift_counts)
    def test_shift_roundtrip(self, value, count):
        assert from_nat(nat.shr(nat.shl(to_nat(value), count), count)) \
            == value

    def test_negative_count_rejected(self):
        with pytest.raises(MpnError):
            nat.shl([1], -1)
        with pytest.raises(MpnError):
            nat.shr([1], -3)


class TestLogic:
    @given(naturals, naturals)
    def test_and(self, a, b):
        assert from_nat(nat.and_(to_nat(a), to_nat(b))) == a & b

    @given(naturals, naturals)
    def test_or(self, a, b):
        assert from_nat(nat.or_(to_nat(a), to_nat(b))) == a | b

    @given(naturals, naturals)
    def test_xor(self, a, b):
        assert from_nat(nat.xor_(to_nat(a), to_nat(b))) == a ^ b


class TestLowBitsSplit:
    @given(naturals, shift_counts)
    def test_low_bits(self, value, count):
        assert from_nat(nat.low_bits(to_nat(value), count)) \
            == value & ((1 << count) - 1)

    @given(naturals, shift_counts.map(lambda c: c % 8))
    def test_split(self, value, k):
        low, high = nat.split(to_nat(value), k)
        assert from_nat(low) + (from_nat(high) << (32 * k)) == value


class TestSmallOps:
    @given(naturals, naturals.filter(lambda v: 0 < v < (1 << 32)))
    def test_mul_1(self, a, small):
        assert from_nat(nat.mul_1(to_nat(a), small)) == a * small

    @given(naturals, naturals.filter(lambda v: 0 < v < (1 << 32)))
    def test_div_1(self, a, small):
        quotient, rem = nat.div_1(to_nat(a), small)
        assert (from_nat(quotient), rem) == divmod(a, small)

    @given(naturals, naturals.filter(lambda v: 0 < v < (1 << 32)))
    def test_divexact_1(self, a, small):
        product = nat.mul_1(to_nat(a), small)
        assert from_nat(nat.divexact_1(product, small)) == a

    def test_divexact_1_raises_on_inexact(self):
        with pytest.raises(MpnError):
            nat.divexact_1([7], 2)


class TestPopcount:
    @given(naturals)
    def test_popcount(self, value):
        assert nat.popcount(to_nat(value)) == value.bit_count()

    @given(naturals, naturals)
    def test_hamming_distance(self, a, b):
        assert nat.hamming_distance(to_nat(a), to_nat(b)) \
            == (a ^ b).bit_count()

    def test_zero(self):
        assert nat.popcount([]) == 0
        assert nat.hamming_distance([], []) == 0
