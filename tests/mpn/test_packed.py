"""repro.mpn.packed: block representation and kernel unit tests.

The packed kernels are *re-representations* of the limb kernels, so the
tests here are about the representation itself: pack/unpack round
trips at awkward lengths, carry chains that cross block boundaries,
normalization, and the error vocabulary.  Cross-backend equivalence at
dispatcher level lives in ``tests/differential/test_packed_paths.py``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpn import nat
from repro.mpn.nat import LIMB_BITS, MpnError
from repro.mpn.packed import (KARATSUBA_BLOCKS, PACK_LIMBS, add_packed,
                              divmod_packed, mul_packed, pack_blocks,
                              shl_packed, shr_packed, sqr_packed,
                              sub_packed, unpack_blocks)

from tests.conftest import from_nat, to_nat
from tests.differential.conftest import diff_examples

#: Block widths exercised everywhere: degenerate (k=1 is the limb
#: representation itself), odd, the default, and wider-than-default.
PACK_WIDTHS = (1, 2, 3, PACK_LIMBS, 13)

#: Raw limb lists with interesting shapes: empty, odd tails
#: (``len % k != 0`` for every k above), saturated limbs, zero limbs
#: in the middle.
limb_lists = st.lists(
    st.integers(min_value=0, max_value=(1 << LIMB_BITS) - 1),
    max_size=4 * PACK_LIMBS + 3)


class TestPackUnpack:
    @given(limbs=limb_lists, k=st.sampled_from(PACK_WIDTHS))
    @settings(max_examples=diff_examples(), deadline=None)
    def test_round_trip_preserves_value(self, limbs, k):
        normalized = nat.normalize(list(limbs))
        assert unpack_blocks(pack_blocks(normalized, k), k) == normalized

    @given(limbs=limb_lists, k=st.sampled_from(PACK_WIDTHS))
    @settings(max_examples=diff_examples(), deadline=None)
    def test_blocks_are_canonical_digits(self, limbs, k):
        """No trailing zero blocks; every block below base 2^(32k)."""
        blocks = pack_blocks(nat.normalize(list(limbs)), k)
        assert not blocks or blocks[-1] != 0
        assert all(0 <= block < (1 << (LIMB_BITS * k))
                   for block in blocks)

    @given(limbs=limb_lists, k=st.sampled_from(PACK_WIDTHS))
    @settings(max_examples=diff_examples(), deadline=None)
    def test_blocks_spell_the_same_integer(self, limbs, k):
        normalized = nat.normalize(list(limbs))
        value = sum(block << (LIMB_BITS * k * i)
                    for i, block in enumerate(pack_blocks(normalized, k)))
        assert value == from_nat(normalized)

    @pytest.mark.parametrize("k", PACK_WIDTHS)
    def test_odd_tail_lengths(self, k):
        """Lengths straddling every multiple-of-k boundary round trip."""
        for length in (k - 1, k, k + 1, 2 * k - 1, 2 * k, 2 * k + 1):
            if length < 1:
                continue
            limbs = [(7 * i + 1) & 0xFFFF_FFFF for i in range(length)]
            limbs[-1] |= 1  # keep it normalized
            assert unpack_blocks(pack_blocks(limbs, k), k) == limbs

    def test_unpack_trims_leading_zero_limbs(self):
        """A top block narrower than k limbs must not grow the list."""
        assert unpack_blocks([1], PACK_LIMBS) == [1]
        assert unpack_blocks([0, 1], 2) == [0, 0, 1]

    def test_pack_trims_trailing_zero_blocks(self):
        # Unnormalized input is a caller bug elsewhere, but zero-valued
        # *blocks* arise legitimately from all-zero tails.
        assert pack_blocks([], 4) == []
        assert pack_blocks([0, 0, 0], 2) == []

    def test_zero_is_the_empty_list_both_ways(self):
        assert pack_blocks([], PACK_LIMBS) == []
        assert unpack_blocks([], PACK_LIMBS) == []

    @pytest.mark.parametrize("k", PACK_WIDTHS)
    def test_all_ones_carry_chain_round_trip(self, k):
        for bits in (31, 32, 255, 256, 257, 511, 512, 513):
            value = (1 << bits) - 1
            assert from_nat(unpack_blocks(pack_blocks(to_nat(value), k),
                                          k)) == value

    def test_rejects_nonpositive_k(self):
        with pytest.raises(MpnError):
            pack_blocks([1], 0)
        with pytest.raises(MpnError):
            unpack_blocks([1], -3)

    def test_rejects_out_of_range_limbs(self):
        with pytest.raises(MpnError):
            pack_blocks([1 << LIMB_BITS], 2)
        with pytest.raises(MpnError):
            pack_blocks([-1], 2)

    def test_rejects_out_of_range_blocks(self):
        with pytest.raises(MpnError):
            unpack_blocks([1 << (LIMB_BITS * 2)], 2)
        with pytest.raises(MpnError):
            unpack_blocks([-1], 2)


class TestArithmeticKernels:
    """Each public kernel against bigints across block widths."""

    @given(a=st.integers(min_value=0, max_value=(1 << 1200) - 1),
           b=st.integers(min_value=0, max_value=(1 << 1200) - 1),
           k=st.sampled_from(PACK_WIDTHS))
    @settings(max_examples=diff_examples(), deadline=None)
    def test_mul_matches_bigint(self, a, b, k):
        assert from_nat(mul_packed(to_nat(a), to_nat(b), k)) == a * b

    @given(a=st.integers(min_value=0, max_value=(1 << 1200) - 1),
           k=st.sampled_from(PACK_WIDTHS))
    @settings(max_examples=diff_examples(), deadline=None)
    def test_sqr_matches_bigint(self, a, k):
        assert from_nat(sqr_packed(to_nat(a), k)) == a * a

    @given(a=st.integers(min_value=0, max_value=(1 << 1200) - 1),
           b=st.integers(min_value=0, max_value=(1 << 1200) - 1),
           k=st.sampled_from(PACK_WIDTHS))
    @settings(max_examples=diff_examples(), deadline=None)
    def test_add_sub_match_bigints(self, a, b, k):
        assert from_nat(add_packed(to_nat(a), to_nat(b), k)) == a + b
        low, high = sorted((a, b))
        assert from_nat(sub_packed(to_nat(high), to_nat(low), k)) \
            == high - low

    @given(a=st.integers(min_value=0, max_value=(1 << 1200) - 1),
           count=st.integers(min_value=0, max_value=600),
           k=st.sampled_from(PACK_WIDTHS))
    @settings(max_examples=diff_examples(), deadline=None)
    def test_shifts_match_bigints(self, a, count, k):
        assert from_nat(shl_packed(to_nat(a), count, k)) == a << count
        assert from_nat(shr_packed(to_nat(a), count, k)) == a >> count

    @given(a=st.integers(min_value=0, max_value=(1 << 1200) - 1),
           b=st.integers(min_value=1, max_value=(1 << 700) - 1),
           k=st.sampled_from(PACK_WIDTHS))
    @settings(max_examples=diff_examples(), deadline=None)
    def test_divmod_matches_bigint(self, a, b, k):
        quotient, remainder = divmod_packed(to_nat(a), to_nat(b), k)
        assert (from_nat(quotient), from_nat(remainder)) == divmod(a, b)

    def test_block_karatsuba_regime(self):
        """Operands wide enough to recurse through block Karatsuba."""
        limbs = 2 * KARATSUBA_BLOCKS * PACK_LIMBS + 5
        a = (1 << (limbs * LIMB_BITS)) - 3
        b = (1 << ((limbs - 7) * LIMB_BITS)) - 11
        assert from_nat(mul_packed(to_nat(a), to_nat(b))) == a * b
        assert from_nat(sqr_packed(to_nat(a))) == a * a

    @pytest.mark.parametrize("k", PACK_WIDTHS)
    def test_all_ones_carry_chains(self, k):
        """Worst-case carry propagation across every block boundary."""
        bits = LIMB_BITS * k
        for width in (bits - 1, bits, bits + 1, 3 * bits, 3 * bits + 17):
            a = (1 << width) - 1
            assert from_nat(add_packed(to_nat(a), to_nat(1), k)) == a + 1
            assert from_nat(mul_packed(to_nat(a), to_nat(a), k)) == a * a

    def test_divmod_add_back_case(self):
        """The Knuth D6 add-back step (rare; forced, not sampled).

        The classic trigger scaled to block base B: the initial
        quotient estimate for ``(B//2)*B^2 + (B-2)*B`` over
        ``(B//2)*B + (B-1)`` is one too large and must be corrected by
        adding the divisor back.
        """
        base = 1 << (LIMB_BITS * PACK_LIMBS)
        a = (base // 2) * base * base + (base - 2) * base
        b = (base // 2) * base + (base - 1)
        quotient, remainder = divmod_packed(to_nat(a), to_nat(b))
        assert (from_nat(quotient), from_nat(remainder)) == divmod(a, b)

    def test_single_block_divisor_path(self):
        a = (1 << 4096) - 123
        b = (1 << 200) - 1  # one 256-bit block at the default k
        quotient, remainder = divmod_packed(to_nat(a), to_nat(b))
        assert (from_nat(quotient), from_nat(remainder)) == divmod(a, b)

    def test_small_dividend_short_circuit(self):
        quotient, remainder = divmod_packed(to_nat(5), to_nat(7))
        assert quotient == [] and from_nat(remainder) == 5

    def test_results_are_normalized(self):
        for result in (mul_packed(to_nat((1 << 64) - 1), to_nat(1)),
                       add_packed(to_nat(1 << 511), to_nat(1)),
                       sub_packed(to_nat(1 << 512), to_nat(1)),
                       shr_packed(to_nat(1 << 512), 500)):
            assert result == nat.normalize(list(result))

    def test_error_vocabulary(self):
        with pytest.raises(MpnError):
            sub_packed(to_nat(3), to_nat(5))
        with pytest.raises(MpnError):
            divmod_packed(to_nat(3), [])
        with pytest.raises(MpnError):
            shl_packed(to_nat(3), -1)
        with pytest.raises(MpnError):
            shr_packed(to_nat(3), -1)

    def test_zero_operands(self):
        assert mul_packed([], to_nat(9)) == []
        assert mul_packed(to_nat(9), []) == []
        assert sqr_packed([]) == []
        assert add_packed([], to_nat(9)) == to_nat(9)
        assert sub_packed(to_nat(9), []) == to_nat(9)
        assert shl_packed([], 40) == []
        assert shr_packed([], 40) == []
