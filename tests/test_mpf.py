"""Tests for the arbitrary-precision float layer (MPF)."""

import math
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpf import MPF
from repro.mpn.nat import MpnError
from repro.mpz import MPZ

fractions = st.fractions(
    min_value=Fraction(-10 ** 12), max_value=Fraction(10 ** 12),
    max_denominator=10 ** 6)


def as_mpf(value: Fraction, precision: int = 160) -> MPF:
    return MPF.from_ratio(value.numerator, value.denominator, precision)


def close(got: MPF, expected: Fraction, bits: int = 100) -> bool:
    """|got - expected| <= |expected| * 2^-bits (+ tiny absolute floor).

    Compares through a high-precision decimal rendering rather than
    float64 so the check is meaningful beyond 53 bits.
    """
    scaled = got.to_decimal_string(45)
    got_fraction = Fraction(scaled)
    tolerance = abs(expected) * Fraction(1, 1 << bits) + \
        Fraction(1, 10 ** 40)
    return abs(got_fraction - expected) <= tolerance


class TestConstruction:
    def test_zero(self):
        zero = MPF(0, 64)
        assert not zero and zero.sign == 0
        assert float(zero) == 0.0

    def test_from_int(self):
        assert float(MPF(12345, 64)) == 12345.0
        assert float(MPF(-7, 64)) == -7.0

    def test_from_mpz(self):
        assert float(MPF(MPZ(1 << 40), 64)) == float(1 << 40)

    def test_precision_floor_rejected(self):
        with pytest.raises(MpnError):
            MPF(1, 2)

    @given(fractions)
    def test_from_ratio(self, value):
        assert close(as_mpf(value), value)

    def test_from_ratio_zero_denominator(self):
        with pytest.raises(ZeroDivisionError):
            MPF.from_ratio(1, 0, 64)

    def test_tiny_over_huge_keeps_precision(self):
        # Regression: quotient of a short mantissa by a long one must
        # still carry full precision (the 1/sqrt(2) bug).
        ratio = MPF.from_ratio(1, (1 << 300) + 12345, 128)
        expected = Fraction(1, (1 << 300) + 12345)
        assert close(ratio, expected, bits=120)


class TestArithmetic:
    @given(fractions, fractions)
    def test_add(self, a, b):
        assert close(as_mpf(a) + as_mpf(b), a + b)

    @given(fractions, fractions)
    def test_sub(self, a, b):
        assert close(as_mpf(a) - as_mpf(b), a - b)

    @given(fractions, fractions)
    def test_mul(self, a, b):
        assert close(as_mpf(a) * as_mpf(b), a * b)

    @given(fractions, fractions.filter(lambda v: v != 0))
    def test_div(self, a, b):
        assert close(as_mpf(a) / as_mpf(b), a / b, bits=100)

    def test_div_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            MPF(1, 64) / MPF(0, 64)

    @given(fractions)
    def test_neg_abs(self, a):
        assert close(-as_mpf(a), -a)
        assert close(abs(as_mpf(a)), abs(a))

    @given(fractions, fractions)
    @settings(max_examples=50)
    def test_catastrophic_cancellation_is_exact_zero(self, a, b):
        x = as_mpf(a)
        assert not (x - x)

    def test_int_interop(self):
        assert float(MPF(3, 64) + 2) == 5.0
        assert float(2 * MPF(3, 64)) == 6.0
        assert float(10 / MPF(4, 64)) == 2.5


class TestSqrt:
    def test_sqrt2_to_50_digits(self):
        reference = ("1.4142135623730950488016887242096980785696"
                     "7187537694")
        got = MPF(2, 256).sqrt().to_decimal_string(50)
        assert got[:45] == reference[:45]

    @given(fractions.filter(lambda v: v > 0))
    @settings(max_examples=60)
    def test_sqrt_squares_back(self, a):
        root = as_mpf(a).sqrt()
        assert close(root * root, a, bits=90)

    def test_sqrt_negative_rejected(self):
        with pytest.raises(MpnError):
            MPF(-1, 64).sqrt()

    def test_sqrt_zero(self):
        assert not MPF(0, 64).sqrt()


class TestComparison:
    @given(fractions, fractions)
    def test_order(self, a, b):
        x, y = as_mpf(a), as_mpf(b)
        assert (x < y) == (a < b)
        assert (x >= y) == (a >= b)

    def test_eq_across_precisions(self):
        assert MPF(5, 64) == MPF(5, 256)


class TestConversions:
    @pytest.mark.parametrize("num,den,expected", [
        (7, 2, 3), (-7, 2, -4), (8, 2, 4), (-8, 2, -4), (1, 3, 0),
        (-1, 3, -1),
    ])
    def test_floor_mpz(self, num, den, expected):
        assert int(MPF.from_ratio(num, den, 96).floor_mpz()) == expected

    def test_to_decimal_string(self):
        assert MPF.from_ratio(1, 8, 64).to_decimal_string(3) == "0.125"
        assert MPF.from_ratio(-1, 8, 64).to_decimal_string(3) == "-0.125"
        assert MPF(42, 64).to_decimal_string(2) == "42.00"

    @given(fractions)
    def test_float_conversion(self, a):
        got = float(as_mpf(a))
        expected = a.numerator / a.denominator
        assert math.isclose(got, expected, rel_tol=1e-12, abs_tol=1e-15)

    def test_exponent_of_top_bit(self):
        assert MPF(8, 64).exponent_of_top_bit == 3
        assert MPF.from_ratio(1, 4, 64).exponent_of_top_bit == -2
        with pytest.raises(MpnError):
            MPF(0, 64).exponent_of_top_bit


class TestPrecisionSemantics:
    def test_result_takes_max_precision(self):
        a, b = MPF(1, 64), MPF(1, 192)
        assert (a + b).precision == 192
        assert (a * b).precision == 192

    def test_truncation_at_budget(self):
        wide = MPF((1 << 100) + 1, 64)
        assert float(wide) == float(1 << 100)  # low bit truncated away

    def test_alignment_cap_keeps_add_linear(self):
        # Adding a tiny number to a huge one must not materialize the
        # full 2^100000-bit alignment.
        huge = MPF(1 << 100000, 128)
        tiny = MPF.from_ratio(1, 1 << 100000, 128)
        total = huge + tiny
        assert total.exponent_of_top_bit == 100000


class TestRoundingHelpers:
    @pytest.mark.parametrize("num,den", [
        (7, 2), (-7, 2), (8, 2), (-8, 2), (1, 3), (-1, 3), (0, 1),
        (9, 4), (-9, 4),
    ])
    def test_trunc_ceil_round(self, num, den):
        import math
        value = MPF.from_ratio(num, den, 96)
        exact = Fraction(num, den)
        assert int(value.trunc_mpz()) == math.trunc(exact)
        assert int(value.ceil_mpz()) == math.ceil(exact)
        expected_round = math.floor(exact + Fraction(1, 2)) \
            if exact >= 0 else math.ceil(exact - Fraction(1, 2))
        assert int(value.round_mpz()) == expected_round

    @given(fractions)
    def test_dyadic_decomposition_is_exact(self, value):
        x = as_mpf(value)
        mantissa, exponent = x.to_fraction_parts()
        reconstructed = Fraction(int(mantissa)) * Fraction(2) ** exponent
        # The decomposition reproduces the STORED value exactly.
        assert close(x, reconstructed, bits=120)

    @given(fractions, st.integers(min_value=-100, max_value=100))
    def test_ldexp(self, value, exponent):
        x = as_mpf(value)
        shifted = x.ldexp(exponent)
        assert close(shifted, value * Fraction(2) ** exponent, bits=90)
