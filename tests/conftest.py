"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.mpn import nat


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG per test."""
    return random.Random(0xCA_B1)


# -- hypothesis strategies ----------------------------------------------------

#: Non-negative integers across interesting size bands (empty, one limb,
#: limb boundaries, multi-limb, large).
naturals = st.one_of(
    st.integers(min_value=0, max_value=10),
    st.integers(min_value=0, max_value=(1 << 32) + 3),
    st.integers(min_value=0, max_value=(1 << 96) - 1),
    st.integers(min_value=0, max_value=(1 << 1200) - 1),
)

#: Positive naturals (for divisors, moduli).
positive_naturals = naturals.map(lambda v: v + 1)

#: Small bit-shift distances crossing limb boundaries.
shift_counts = st.integers(min_value=0, max_value=200)


def to_nat(value: int):
    """Shorthand conversion for tests."""
    return nat.nat_from_int(value)


def from_nat(limbs) -> int:
    """Shorthand conversion for tests."""
    return nat.nat_to_int(limbs)
