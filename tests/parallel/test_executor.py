"""Contract tests for :class:`repro.parallel.ParallelExecutor`."""

from __future__ import annotations

import os

import pytest

from repro.parallel import (CHUNK_ENV, WORKERS_ENV, ExecutorTimeout,
                            ParallelExecutor,
                            available_cpus, parallel_map, resolve_workers)


def square(value: int) -> int:
    """Top-level (picklable) task."""
    return value * value


def fail_on_three(value: int) -> int:
    """Top-level task that raises for one input."""
    if value == 3:
        raise ValueError("three is right out")
    return value


class TestResolveWorkers:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "7")
        assert resolve_workers(2) == 2
        assert resolve_workers(0) == 0

    def test_env_unset_means_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers() == 0

    def test_env_values(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "0")
        assert resolve_workers() == 0
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert resolve_workers() == 3
        monkeypatch.setenv(WORKERS_ENV, "auto")
        assert resolve_workers() == available_cpus()

    def test_negative_clamps_to_serial(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "-4")
        assert resolve_workers() == 0
        assert resolve_workers(-1) == 0

    def test_garbage_raises(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "many")
        with pytest.raises(ValueError):
            resolve_workers()


class TestSerialPath:
    def test_zero_workers_never_builds_a_pool(self):
        executor = ParallelExecutor(0)
        assert executor.map(square, range(10)) == [v * v
                                                   for v in range(10)]
        assert executor._pool is None
        assert executor.last_mode == "serial"
        assert executor.stats["parallel"] == 0

    def test_single_item_stays_serial(self):
        with ParallelExecutor(4) as executor:
            assert executor.map(square, [5]) == [25]
            assert executor.last_mode == "serial"

    def test_task_exception_propagates(self):
        executor = ParallelExecutor(0)
        with pytest.raises(ValueError):
            executor.map(fail_on_three, [1, 2, 3, 4])


class TestParallelPath:
    def test_ordered_results(self):
        with ParallelExecutor(2) as executor:
            values = list(range(23))
            assert executor.map(square, values) == [v * v for v in values]
            assert executor.last_mode == "parallel"

    def test_task_exception_propagates(self):
        with ParallelExecutor(2) as executor:
            with pytest.raises(ValueError):
                executor.map(fail_on_three, [1, 2, 3, 4])

    def test_starmap(self):
        with ParallelExecutor(2) as executor:
            assert executor.starmap(pow, [(2, 3), (3, 2), (5, 2)]) \
                == [8, 9, 25]

    def test_parallel_map_convenience(self):
        assert parallel_map(square, [1, 2, 3], workers=2) == [1, 4, 9]


class TestPicklingFallback:
    def test_lambda_falls_back_to_serial(self):
        with ParallelExecutor(2) as executor:
            assert executor.map(lambda v: v + 1, [1, 2, 3]) == [2, 3, 4]
            assert executor.last_mode == "fallback"
            assert executor.stats["fallback"] == 1

    def test_pool_survives_a_fallback(self):
        with ParallelExecutor(2) as executor:
            executor.map(lambda v: v + 1, [1, 2, 3])
            assert executor.map(square, [4, 5]) == [16, 25]
            assert executor.last_mode == "parallel"

    def test_closure_falls_back(self):
        offset = 10

        def shifted(value: int) -> int:
            return value + offset

        with ParallelExecutor(2) as executor:
            assert executor.map(shifted, [1, 2]) == [11, 12]
            assert executor.last_mode == "fallback"


class TestChunking:
    def test_explicit_chunk_size(self):
        executor = ParallelExecutor(2, chunk_size=5)
        assert executor.chunk_size_for(100) == 5

    def test_env_chunk_size(self, monkeypatch):
        monkeypatch.setenv(CHUNK_ENV, "9")
        executor = ParallelExecutor(2)
        assert executor.chunk_size_for(100) == 9

    def test_default_targets_four_chunks_per_worker(self, monkeypatch):
        monkeypatch.delenv(CHUNK_ENV, raising=False)
        executor = ParallelExecutor(2)
        assert executor.chunk_size_for(80) == 10
        assert executor.chunk_size_for(1) == 1

    def test_garbage_env_raises(self, monkeypatch):
        monkeypatch.setenv(CHUNK_ENV, "lots")
        with pytest.raises(ValueError):
            ParallelExecutor(2).chunk_size_for(10)


def sleepy(seconds: float) -> float:
    import time
    time.sleep(seconds)
    return seconds


class TestTimeout:
    def test_serial_map_without_timeout_unchanged(self):
        with ParallelExecutor(0) as executor:
            assert executor.map(square, [1, 2, 3]) == [1, 4, 9]

    def test_serial_deadline_between_items(self):
        with ParallelExecutor(0) as executor:
            with pytest.raises(ExecutorTimeout) as excinfo:
                executor.map(sleepy, [0.05] * 20, timeout=0.08)
            # At least one item completed before the deadline check.
            assert 1 <= excinfo.value.completed < 20
            assert executor.stats["timeout"] == 1

    def test_generous_deadline_completes_serial(self):
        with ParallelExecutor(0) as executor:
            assert executor.map(sleepy, [0.0, 0.0], timeout=30.0) \
                == [0.0, 0.0]
            assert executor.stats["timeout"] == 0

    def test_parallel_deadline_cancels_and_raises(self):
        with ParallelExecutor(2) as executor:
            with pytest.raises(ExecutorTimeout):
                executor.map(sleepy, [0.3] * 8, chunk_size=1,
                             timeout=0.1)
            assert executor.last_mode == "timeout"
            assert executor.stats["timeout"] == 1
            # The pool was discarded; the executor still works after.
            assert executor.map(square, [3, 4]) == [9, 16]

    def test_generous_deadline_completes_parallel(self):
        with ParallelExecutor(2) as executor:
            assert executor.map(square, [1, 2, 3, 4], timeout=60.0) \
                == [1, 4, 9, 16]
            assert executor.last_mode == "parallel"

    def test_unpicklable_task_falls_back_under_deadline(self):
        with ParallelExecutor(2) as executor:
            assert executor.map(lambda v: v + 1, [1, 2], timeout=30.0) \
                == [2, 3]
            assert executor.last_mode == "fallback"

    def test_starmap_accepts_timeout(self):
        with ParallelExecutor(0) as executor:
            assert executor.starmap(pow, [(2, 3), (3, 2)],
                                    timeout=30.0) == [8, 9]

    def test_executor_timeout_is_a_timeout_error(self):
        assert issubclass(ExecutorTimeout, TimeoutError)
        error = ExecutorTimeout("late", completed=3)
        assert error.completed == 3


def test_close_is_idempotent():
    executor = ParallelExecutor(2)
    executor.map(square, [1, 2, 3, 4])
    executor.close()
    executor.close()
    # A closed executor can lazily rebuild its pool.
    assert executor.map(square, [6, 7]) == [36, 49]
    executor.close()


def test_workers_env_controls_default(monkeypatch):
    monkeypatch.setenv(WORKERS_ENV, "2")
    executor = ParallelExecutor()
    assert executor.workers == 2
    executor.close()
    monkeypatch.delenv(WORKERS_ENV)
    assert ParallelExecutor().workers == 0


def test_available_cpus_positive():
    assert available_cpus() >= 1
    assert available_cpus() <= (os.cpu_count() or 1)
