"""Determinism + fallback guarantees of the parallel layer.

The ISSUE-2 contract: same seed + same task list => identical results
in identical order at any worker count, and a worker crash degrades to
the serial path without losing results.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.core.accelerator import CambriconP
from repro.core.isa import Driver, Instruction, Opcode
from repro.mpn import nat_from_int, nat_to_int
from repro.mpn.mul import GMP_POLICY, mul
from repro.mpn.tune import _random_operand
from repro.parallel import ParallelExecutor
from repro.report import figure11_data, figure13_data
from repro.runtime.scheduler import BatchingDriver


def seeded_product(seed: int) -> int:
    """A deterministic mpn multiply digest (top-level, picklable)."""
    a = _random_operand(40, seed)
    b = _random_operand(40, seed + 13)
    return nat_to_int(mul(a, b, GMP_POLICY))


def crash_in_worker(task: tuple) -> int:
    """Dies hard in a worker process; computes fine in the parent."""
    parent_pid, value = task
    if os.getpid() != parent_pid:
        os._exit(13)
    return value * value


class TestSameResultsAtEveryWorkerCount:
    def test_identical_results_and_order(self):
        seeds = list(range(12))
        serial = [seeded_product(seed) for seed in seeds]
        for workers in (1, 2, 8):
            with ParallelExecutor(workers) as executor:
                assert executor.map(seeded_product, seeds) == serial, \
                    "results diverged at %d workers" % workers

    def test_zero_workers_is_a_strict_noop(self):
        seeds = list(range(6))
        executor = ParallelExecutor(0)
        assert executor.map(seeded_product, seeds) \
            == [seeded_product(seed) for seed in seeds]
        assert executor._pool is None


class TestWorkerCrashFallback:
    def test_crash_degrades_to_serial_with_full_results(self):
        tasks = [(os.getpid(), value) for value in range(8)]
        with ParallelExecutor(2) as executor:
            results = executor.map(crash_in_worker, tasks)
            assert results == [value * value for value in range(8)]
            assert executor.last_mode == "fallback"
            assert executor.stats["fallback"] >= 1

    def test_executor_recovers_after_a_crash(self):
        tasks = [(os.getpid(), value) for value in range(4)]
        with ParallelExecutor(2) as executor:
            executor.map(crash_in_worker, tasks)
            # The broken pool was discarded; a fresh one spins up.
            assert executor.map(seeded_product, [1, 2, 3, 4]) \
                == [seeded_product(seed) for seed in (1, 2, 3, 4)]
            assert executor.last_mode == "parallel"


def _mul_program(driver: Driver, pairs: int) -> list:
    rng = random.Random(0xD15EA5E)
    program = []
    for index in range(pairs):
        a = driver.alloc(nat_from_int(rng.getrandbits(700) | 1))
        b = driver.alloc(nat_from_int(rng.getrandbits(600) | 1))
        program.append(Instruction(Opcode.MUL, (a, b),
                                   destination=1000 + index))
    return program


class TestSchedulerParity:
    def test_batching_driver_parallel_equals_serial(self):
        serial_driver = BatchingDriver()
        serial_log, serial_stats = serial_driver.execute_scheduled(
            _mul_program(serial_driver, 5))
        with ParallelExecutor(2) as executor:
            parallel_driver = BatchingDriver(executor=executor)
            parallel_log, parallel_stats = \
                parallel_driver.execute_scheduled(
                    _mul_program(parallel_driver, 5))
        assert serial_stats == parallel_stats
        assert len(serial_log) == len(parallel_log)
        for mine, theirs in zip(serial_log, parallel_log):
            assert mine.instruction == theirs.instruction
            assert mine.report == theirs.report

    def test_multiply_batch_parity(self):
        device = CambriconP()
        pairs = [(_random_operand(30, seed), _random_operand(25, seed + 5))
                 for seed in range(4)]
        serial_products, serial_report = device.multiply_batch(pairs)
        with ParallelExecutor(2) as executor:
            parallel_products, parallel_report = device.multiply_batch(
                pairs, executor=executor)
        assert serial_products == parallel_products
        assert serial_report == parallel_report


class TestFigureDataParity:
    def test_figure11_data_parallel_equals_serial(self):
        serial = figure11_data(max_bits=1 << 12,
                               executor=ParallelExecutor(0))
        with ParallelExecutor(2) as executor:
            parallel = figure11_data(max_bits=1 << 12, executor=executor)
        assert serial == parallel

    @pytest.mark.slow
    def test_figure13_data_parallel_equals_serial(self):
        serial = figure13_data(executor=ParallelExecutor(0))
        with ParallelExecutor(2) as executor:
            parallel = figure13_data(executor=executor)
        assert serial == parallel
