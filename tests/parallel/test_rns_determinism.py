"""Determinism of the rns batch routes across worker counts (ISSUE 7).

The residue channels make each batch item (and each channel slice)
independent integer arithmetic, so the contract is exact: the same
batch must produce bit-identical limbs at REPRO_WORKERS=0/2/4, and a
worker crash must degrade to the serial path with full, identical
results — the same guarantees the simulate path already proves in
``test_determinism.py``.
"""

from __future__ import annotations

import os

from repro.mpn import nat
from repro.mpn import rns
from repro.mpn.tune import _random_operand
from repro.parallel import ParallelExecutor

#: Wide enough that mul_rns fans channel slices across workers too.
MUL_LIMBS = 40
BATCH = 6

_REAL_MUL_PAIR = rns._mul_pair


def _mul_batch():
    return [(_random_operand(MUL_LIMBS, seed),
             _random_operand(MUL_LIMBS, seed + 100))
            for seed in range(BATCH)]


def _powmod_batch():
    triples = []
    for seed in range(BATCH):
        modulus = _random_operand(10, seed + 300)
        modulus[0] |= 1
        triples.append((_random_operand(10, seed),
                        _random_operand(2, seed + 200), modulus))
    return triples


class _TaggedCrash:
    """Picklable crash-in-worker wrapper around the real pair worker:
    dies hard in a worker process, computes fine in the parent."""

    def __init__(self, parent_pid):
        self.parent_pid = parent_pid

    def __call__(self, task):
        if os.getpid() != self.parent_pid:
            os._exit(13)
        return _REAL_MUL_PAIR(task)


class TestIdenticalAtEveryWorkerCount:
    def test_mul_batch(self):
        pairs = _mul_batch()
        serial = rns.mul_batch_rns(pairs)
        assert [nat.nat_to_int(p) for p in serial] \
            == [nat.nat_to_int(a) * nat.nat_to_int(b) for a, b in pairs]
        for workers in (0, 2, 4):
            with ParallelExecutor(workers) as executor:
                assert rns.mul_batch_rns(pairs, executor=executor) \
                    == serial, "diverged at %d workers" % workers

    def test_single_mul_channel_slices(self):
        a = _random_operand(64, 1)
        b = _random_operand(64, 2)
        serial = rns.mul_rns(a, b)
        for workers in (0, 2, 4):
            with ParallelExecutor(workers) as executor:
                assert rns.mul_rns(a, b, executor=executor) == serial, \
                    "diverged at %d workers" % workers

    def test_powmod_batch(self):
        triples = _powmod_batch()
        serial = rns.powmod_batch_rns(triples)
        expected = [pow(nat.nat_to_int(base), nat.nat_to_int(exponent),
                        nat.nat_to_int(modulus))
                    for base, exponent, modulus in triples]
        assert [nat.nat_to_int(value) for value in serial] == expected
        for workers in (0, 2, 4):
            with ParallelExecutor(workers) as executor:
                assert rns.powmod_batch_rns(triples, executor=executor) \
                    == serial, "diverged at %d workers" % workers


class TestBrokenPoolFallback:
    def test_mul_batch_survives_worker_crash(self, monkeypatch):
        """A crashing pool degrades to in-parent serial execution with
        the exact serial results (executor contract, rns route)."""
        pairs = _mul_batch()
        serial = rns.mul_batch_rns(pairs)
        monkeypatch.setattr(rns, "_mul_pair", _TaggedCrash(os.getpid()))
        with ParallelExecutor(2) as executor:
            assert rns.mul_batch_rns(pairs, executor=executor) == serial
            assert executor.last_mode == "fallback"
            assert executor.stats["fallback"] >= 1
