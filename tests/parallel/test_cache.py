"""Tests for the LRU + on-disk memo cache layer."""

from __future__ import annotations

import json
import math
import struct

import pytest

from repro.parallel import cache as cache_mod
from repro.parallel.cache import (MemoCache, cache_root,
                                  clear_disk_caches, make_key,
                                  named_cache, persistence_enabled)


@pytest.fixture(autouse=True)
def isolated_cache_dir(tmp_path, monkeypatch):
    """Every test gets a private cache root; never touch ~/.cache."""
    monkeypatch.setenv(cache_mod.CACHE_DIR_ENV, str(tmp_path / "cache"))
    monkeypatch.delenv(cache_mod.CACHE_ENV, raising=False)
    yield tmp_path / "cache"


class TestLru:
    def test_put_get_roundtrip(self):
        cache = MemoCache("t", maxsize=4)
        cache.put("a", 1.5)
        assert cache.get("a") == 1.5
        assert cache.get("missing") is None
        assert cache.get("missing", -1) == -1

    def test_eviction_order(self):
        cache = MemoCache("t", maxsize=3)
        for name in "abc":
            cache.put(name, name.upper())
        cache.get("a")           # refresh 'a'; 'b' is now oldest
        cache.put("d", "D")
        assert cache.get("b") is None
        assert cache.get("a") == "A"
        assert len(cache) == 3

    def test_lookup_computes_once(self):
        cache = MemoCache("t")
        calls = []

        def compute():
            calls.append(1)
            return 42

        assert cache.lookup("k", compute) == 42
        assert cache.lookup("k", compute) == 42
        assert len(calls) == 1

    def test_cached_none_is_not_recomputed(self):
        cache = MemoCache("t")
        cache.put("k", None)
        assert cache.lookup("k", lambda: pytest.fail("recomputed")) \
            is None

    def test_make_key_stability(self):
        assert make_key(("mul", (256, 32), 4096)) \
            == make_key(("mul", (256, 32), 4096))
        assert make_key(("mul", 1)) != make_key(("mul", 2))
        assert MemoCache("t").key("a", 1) == make_key(("a", 1))


class TestPersistence:
    def test_save_load_roundtrip(self, isolated_cache_dir):
        cache = MemoCache("round", version=3)
        cache.put("x", 1.25)
        cache.put("y", [1, 2, 3])
        path = cache.save()
        assert path == isolated_cache_dir / "round.json"

        fresh = MemoCache("round", version=3)
        assert fresh.load() == 2
        assert fresh.get("x") == 1.25
        assert fresh.get("y") == [1, 2, 3]

    def test_lazy_load_on_first_get(self):
        cache = MemoCache("lazy")
        cache.put("k", 7)
        cache.save()
        fresh = MemoCache("lazy")
        assert fresh.get("k") == 7  # loaded implicitly

    def test_version_mismatch_ignored(self):
        cache = MemoCache("versioned", version=1)
        cache.put("k", 1)
        cache.save()
        fresh = MemoCache("versioned", version=2)
        assert fresh.load() == 0
        assert fresh.get("k") is None

    def test_corrupted_file_ignored(self, isolated_cache_dir):
        isolated_cache_dir.mkdir(parents=True, exist_ok=True)
        target = isolated_cache_dir / "broken.json"
        target.write_text("{not json", encoding="utf-8")
        assert MemoCache("broken").load() == 0
        target.write_text(json.dumps({"entries": []}), encoding="utf-8")
        assert MemoCache("broken").load() == 0

    def test_floats_bit_identical_through_disk(self):
        cache = MemoCache("floats")
        values = [math.pi, 1e-300, 1.6e-8, 2.0 ** 100, 0.1 + 0.2]
        for index, value in enumerate(values):
            cache.put("f%d" % index, value)
        cache.save()
        fresh = MemoCache("floats")
        fresh.load()
        for index, value in enumerate(values):
            reloaded = fresh.get("f%d" % index)
            assert struct.pack("<d", reloaded) \
                == struct.pack("<d", value)

    def test_memory_entries_win_over_disk(self):
        cache = MemoCache("merge")
        cache.put("k", "old")
        cache.save()
        fresh = MemoCache("merge")
        fresh.put("k", "new")
        fresh.load()
        assert fresh.get("k") == "new"

    def test_save_if_dirty(self):
        cache = MemoCache("dirty")
        assert cache.save_if_dirty() is None
        cache.put("k", 1)
        assert cache.save_if_dirty() is not None
        assert cache.save_if_dirty() is None  # clean again

    def test_repro_cache_0_disables_disk(self, monkeypatch,
                                         isolated_cache_dir):
        monkeypatch.setenv(cache_mod.CACHE_ENV, "0")
        assert not persistence_enabled()
        cache = MemoCache("off")
        cache.put("k", 1)
        assert cache.save() is None
        assert not (isolated_cache_dir / "off.json").exists()
        # The in-memory layer still works.
        assert cache.get("k") == 1


class TestRegistry:
    def test_named_cache_is_a_singleton(self):
        first = named_cache("reg-test", version=5)
        assert named_cache("reg-test", version=5) is first
        # A version bump replaces the instance (stale entries dropped).
        assert named_cache("reg-test", version=6) is not first

    def test_clear_disk_caches(self, isolated_cache_dir):
        cache = MemoCache("wipe")
        cache.put("k", 1)
        cache.save()
        assert (isolated_cache_dir / "wipe.json").exists()
        removed = clear_disk_caches()
        assert isolated_cache_dir / "wipe.json" in removed
        assert not (isolated_cache_dir / "wipe.json").exists()

    def test_cache_root_env_override(self, isolated_cache_dir):
        assert cache_root() == isolated_cache_dir
