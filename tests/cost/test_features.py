"""Featurization contract: one canonical (op, backend, limbs) key."""

from hypothesis import given
from hypothesis import strategies as st

from repro.cost.features import (MODELED_BACKENDS, MODELED_OPS,
                                 canonical_backend, canonical_op,
                                 op_limbs, plan_backend_name,
                                 plan_features)
from repro.mpn.nat import LIMB_BITS
from repro.plan import OpSpec
from repro.plan.lowering import lower

ops = st.sampled_from(MODELED_OPS + ("mod",))
bit_counts = st.integers(min_value=1, max_value=1 << 20)


class TestCanonicalNames:
    def test_mod_pools_with_div(self):
        assert canonical_op("mod") == "div"

    def test_modeled_ops_pass_through(self):
        for op in MODELED_OPS:
            assert canonical_op(op) == op

    def test_unmodeled_ops_are_none(self):
        for op in ("pi_digits", "model_cycles", "add", ""):
            assert canonical_op(op) is None

    def test_library_maps_to_limb(self):
        assert canonical_backend("library") == "limb"

    def test_unknown_backends_are_none(self):
        for backend in ("-", "auto", "", "gpu"):
            assert canonical_backend(backend) is None

    def test_plan_backend_name_inverts_canonical(self):
        for backend in MODELED_BACKENDS:
            assert canonical_backend(plan_backend_name(backend)) \
                == backend


class TestOpLimbs:
    @given(ops, bit_counts, bit_counts)
    def test_deterministic(self, op, bits_a, bits_b):
        assert op_limbs(op, bits_a, bits_b) \
            == op_limbs(op, bits_a, bits_b)

    @given(ops, bit_counts, bit_counts)
    def test_positive_when_modeled(self, op, bits_a, bits_b):
        limbs = op_limbs(op, bits_a, bits_b)
        assert isinstance(limbs, int) and limbs >= 1

    @given(bit_counts, bit_counts)
    def test_mul_uses_smaller_operand(self, bits_a, bits_b):
        expected = -(-min(bits_a, bits_b) // LIMB_BITS)
        assert op_limbs("mul", bits_a, bits_b) == expected

    @given(bit_counts, bit_counts)
    def test_div_and_mod_key_on_divisor(self, bits_a, bits_b):
        expected = -(-bits_b // LIMB_BITS)
        assert op_limbs("div", bits_a, bits_b) == expected
        assert op_limbs("mod", bits_a, bits_b) == expected

    @given(bit_counts, bit_counts)
    def test_powmod_keys_on_modulus_width(self, bits_a, bits_b):
        assert op_limbs("powmod", bits_a, bits_b) \
            == -(-bits_a // LIMB_BITS)

    def test_unmodeled_op_is_none(self):
        assert op_limbs("pi_digits", 64, 64) is None

    @given(ops, bit_counts, bit_counts, st.integers(1, 1 << 10))
    def test_monotone_in_bits(self, op, bits_a, bits_b, extra):
        small = op_limbs(op, bits_a, bits_b)
        large = op_limbs(op, bits_a + extra, bits_b + extra)
        assert large >= small


class TestPlanFeatures:
    def test_mul_plan_features_match_resolution(self):
        plan = lower(OpSpec.for_mul(4096, 4096), use_cache=False)
        features = plan_features(plan)
        assert features is not None
        op, backend, limbs = features
        assert op == "mul"
        assert backend == canonical_backend(plan.backend)
        assert limbs == op_limbs("mul", 4096, 4096)

    def test_features_deterministic_per_plan(self):
        plan = lower(OpSpec.for_mul(1 << 15, 1 << 15),
                     use_cache=False)
        assert plan_features(plan) == plan_features(plan)
