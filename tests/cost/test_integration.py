"""Killswitch bit-identity, fingerprint stranding, and the consumers.

The contract under test: with ``REPRO_COST=0`` — or simply no fitted
model for the active thresholds — every cost-model entry point returns
its absent value and plan selection / admission behave exactly as the
analytic build, even when a (deliberately biased) fit sits on disk.
"""

import dataclasses
import math

import pytest

from repro import cost
from repro.cost import model as model_mod
from repro.cost.model import CostModel
from repro.plan import OpSpec, select
from repro.plan.lowering import lower
from repro.serve.jobs import make_job

COST_ENV = "REPRO_COST"


@pytest.fixture(autouse=True)
def isolated_cost(tmp_path, monkeypatch):
    """Route the model store to a temp dir; start and end modelless."""
    from repro.parallel import cache as cache_mod
    monkeypatch.setenv(cache_mod.CACHE_DIR_ENV, str(tmp_path / "cache"))
    cache_mod._REGISTRY.pop("cost_models", None)
    cost.invalidate()
    yield
    cache_mod._REGISTRY.pop("cost_models", None)
    cost.invalidate()


def flat_group(ns_value):
    """A degenerate fit predicting ``ns_value`` at every size."""
    return {"a": math.log(ns_value), "b": 0.0, "n": 9.0,
            "limbs_min": 1.0, "limbs_max": 1e9}


def save_model(groups, rate=1.0):
    """Persist a crafted model under the *active* thresholds."""
    model = CostModel(fingerprint=tuple(select.fingerprint()),
                      rate_cycles_per_ns=rate, groups=dict(groups))
    model_mod.save(model)
    return model


class TestActivationAndSalt:
    def test_no_model_means_no_salt(self):
        assert model_mod.active_model() is None
        assert cost.selection_salt() == ()
        assert cost.predict_ns("mul", "limb", 64) is None

    def test_saved_model_salts_selection(self):
        model = save_model({"mul|limb": flat_group(100.0)})
        active = model_mod.active_model()
        assert active is not None
        assert cost.selection_salt() == ("cost", model.digest())
        assert cost.predict_ns("mul", "library", 64) \
            == pytest.approx(100.0)

    def test_killswitch_blanks_everything(self, monkeypatch):
        save_model({"mul|limb": flat_group(100.0)})
        monkeypatch.setenv(COST_ENV, "0")
        cost.invalidate()
        assert not cost.enabled()
        assert model_mod.active_model() is None
        assert cost.selection_salt() == ()
        assert cost.predict_ns("mul", "limb", 64) is None
        assert cost.seed_rate_cycles_per_ms() is None

    def test_retune_strands_the_fit(self, tmp_path, monkeypatch):
        from repro.mpn import tune as tune_mod
        save_model({"mul|limb": flat_group(100.0)})
        assert model_mod.active_model() is not None
        # A retune = different thresholds file = new fingerprint.
        monkeypatch.setenv(tune_mod.THRESHOLDS_ENV,
                           str(tmp_path / "thresholds.json"))
        retuned = dataclasses.replace(
            select.active(),
            karatsuba_limbs=select.active().karatsuba_limbs + 1)
        tune_mod.save_thresholds(retuned)
        cost.invalidate()
        assert model_mod.active_model() is None
        assert cost.selection_salt() == ()


class TestRefineBackend:
    def test_faster_candidate_wins_in_band(self):
        save_model({"mul|limb": flat_group(1000.0),
                    "mul|packed": flat_group(10.0)})
        assert cost.refine_backend("mul", 100, "library",
                                   ["library", "packed"],
                                   [100]) == "packed"

    def test_out_of_band_keeps_analytic(self):
        save_model({"mul|limb": flat_group(1000.0),
                    "mul|packed": flat_group(10.0)})
        far = int(100 * cost.GUARD_BAND * 4)
        assert cost.refine_backend("mul", far, "library",
                                   ["library", "packed"],
                                   [100]) == "library"

    def test_uncovered_analytic_never_demoted(self):
        save_model({"mul|packed": flat_group(10.0)})
        assert cost.refine_backend("mul", 100, "library",
                                   ["library", "packed"],
                                   [100]) == "library"

    def test_slower_candidates_never_adopted(self):
        save_model({"mul|limb": flat_group(10.0),
                    "mul|packed": flat_group(1000.0)})
        assert cost.refine_backend("mul", 100, "library",
                                   ["library", "packed"],
                                   [100]) == "library"

    def test_without_model_is_identity(self):
        assert cost.refine_backend("mul", 100, "library",
                                   ["library", "packed"],
                                   [100]) == "library"


class TestCostRefinedDifferential:
    """select.cost_refined: the auto-resolution hook itself."""

    def _crossover(self):
        candidates, crossovers = select._refinement_space(
            "mul", select.active())
        if len(candidates) < 2 or not crossovers:
            pytest.skip("no reachable mul alternatives on this host")
        return candidates, crossovers

    def test_model_steers_at_the_crossover(self):
        candidates, crossovers = self._crossover()
        winner = candidates[1]
        from repro.cost.features import canonical_backend
        save_model({"mul|limb": flat_group(1e9),
                    "mul|%s" % canonical_backend(winner):
                        flat_group(1.0)})
        assert select.cost_refined("mul", crossovers[0], "library") \
            == winner

    def test_killswitch_restores_analytic(self, monkeypatch):
        candidates, crossovers = self._crossover()
        from repro.cost.features import canonical_backend
        save_model({"mul|limb": flat_group(1e9),
                    "mul|%s" % canonical_backend(candidates[1]):
                        flat_group(1.0)})
        monkeypatch.setenv(COST_ENV, "0")
        cost.invalidate()
        assert select.cost_refined("mul", crossovers[0], "library") \
            == "library"

    def test_adhoc_thresholds_never_refined(self):
        candidates, crossovers = self._crossover()
        from repro.cost.features import canonical_backend
        save_model({"mul|limb": flat_group(1e9),
                    "mul|%s" % canonical_backend(candidates[1]):
                        flat_group(1.0)})
        adhoc = dataclasses.replace(
            select.active(),
            karatsuba_limbs=select.active().karatsuba_limbs + 1)
        assert select.cost_refined("mul", crossovers[0], "library",
                                   thresholds=adhoc) == "library"


class TestLoweringBitIdentity:
    SWEEP = [64, 4096, 1 << 15, 1 << 16, 1 << 17]

    def _decisions(self):
        return [(plan.backend, plan.algorithm) for plan in
                (lower(OpSpec.for_mul(bits, bits), use_cache=False)
                 for bits in self.SWEEP)]

    def test_killswitch_off_matches_modelless_baseline(self,
                                                       monkeypatch):
        baseline = self._decisions()
        # A fit biased hard toward the library path at every size...
        save_model({"mul|limb": flat_group(1.0),
                    "mul|packed": flat_group(1e9),
                    "mul|specialized": flat_group(1e9),
                    "mul|device": flat_group(1e9)})
        monkeypatch.setenv(COST_ENV, "0")
        cost.invalidate()
        # ...changes nothing once the killswitch is thrown.
        assert self._decisions() == baseline
        assert cost.selection_salt() == ()


class TestAdmissionConsumers:
    def test_jobs_unpriced_without_model(self):
        job = make_job({"op": "mul",
                        "params": {"a": 12345, "b": 67890}})
        assert job.cost_ns is None

    def test_jobs_priced_with_model(self):
        save_model({"mul|device": flat_group(5000.0),
                    "mul|limb": flat_group(5000.0),
                    "mul|packed": flat_group(5000.0),
                    "mul|specialized": flat_group(5000.0)})
        job = make_job({"op": "mul",
                        "params": {"a": 12345, "b": 67890}})
        assert job.cost_ns == pytest.approx(5000.0)

    def test_jobs_unpriced_when_killswitch_off(self, monkeypatch):
        save_model({"mul|device": flat_group(5000.0)})
        monkeypatch.setenv(COST_ENV, "0")
        cost.invalidate()
        job = make_job({"op": "mul",
                        "params": {"a": 12345, "b": 67890}})
        assert job.cost_ns is None

    def test_seed_rate_prefers_model(self):
        save_model({"mul|limb": flat_group(10.0)}, rate=2.0)
        assert cost.seed_rate_cycles_per_ms() \
            == pytest.approx(2.0 * 1e6)

    def test_seed_rate_none_without_model(self):
        # A modelless boot must stay cold (depth-bound admission),
        # exactly like the analytic build.
        assert cost.seed_rate_cycles_per_ms() is None


class TestTraceJoin:
    def test_annotated_trace_harvests_to_a_row(self, tmp_path):
        import json

        from repro.cost import dataset
        from repro.mpn.nat import LIMB_BITS
        from repro.serve.trace import RequestTrace, annotate_plan
        plan = lower(OpSpec.for_mul(4096, 4096), use_cache=False)
        trace = RequestTrace("job-1", "mul")
        trace.mark("received")
        trace.mark("execute_start")
        trace.mark("execute_end")
        annotate_plan(trace, plan, cost_ns=123.0)
        payload = trace.to_dict()
        assert payload["meta"]["backend"] == plan.backend
        assert payload["meta"]["cost_ns"] == 123.0
        assert payload["meta"]["limbs"] == 4096 // LIMB_BITS
        # Force a visible span so the harvest join has a duration.
        payload["spans_ms"]["execute_start->execute_end"] = 2.5
        dump = tmp_path / "trace.jsonl"
        dump.write_text(json.dumps(payload) + "\n", encoding="utf-8")
        rows = dataset.harvest_trace(dump)
        assert len(rows) == 1
        assert rows[0]["op"] == "mul"
        assert rows[0]["limbs"] == payload["meta"]["limbs"]
        assert rows[0]["ns"] == pytest.approx(2.5e6)
