"""Fitter properties: finite/positive/monotone predictions, gating."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost import model as model_mod
from repro.cost.model import (MIN_GROUP_SIZES, CostModel,
                              analytic_cycles, evaluate, fit,
                              split_rows)

FP = (1, 2, 3)  # stand-in thresholds fingerprint for direct fits


def rows_for(op, backend, points, source="test"):
    return [{"schema": 1, "op": op, "backend": backend,
             "limbs": limbs, "ns": ns, "source": source,
             "end_to_end": False} for limbs, ns in points]


#: (limbs, ns) point sets with >= MIN_GROUP_SIZES distinct sizes and
#: strictly positive times — what a real harvest produces.
point_sets = st.lists(
    st.tuples(st.integers(min_value=1, max_value=1 << 16),
              st.floats(min_value=1e-3, max_value=1e12,
                        allow_nan=False, allow_infinity=False)),
    min_size=MIN_GROUP_SIZES, max_size=24,
).filter(lambda pts: len({limbs for limbs, _ in pts})
         >= MIN_GROUP_SIZES)


class TestFitProperties:
    @settings(max_examples=50, deadline=None)
    @given(point_sets)
    def test_predictions_finite_positive_monotone(self, points):
        model = fit(rows_for("mul", "limb", points), FP)
        assert model is not None
        previous = 0.0
        for limbs in (1, 2, 5, 17, 128, 4096, 1 << 18):
            predicted = model.predict_ns("mul", "limb", limbs)
            assert predicted is not None
            assert math.isfinite(predicted) and predicted > 0.0
            assert predicted >= previous  # slope clamped >= 0
            previous = predicted

    @settings(max_examples=20, deadline=None)
    @given(point_sets)
    def test_fit_is_deterministic(self, points):
        rows = rows_for("div", "packed", points)
        first, second = fit(rows, FP), fit(rows, FP)
        assert first is not None and second is not None
        assert first.to_payload() == second.to_payload()
        assert first.digest() == second.digest()

    def test_too_few_distinct_sizes_not_fitted(self):
        rows = rows_for("mul", "limb",
                        [(8, 100.0), (8, 110.0), (16, 200.0)])
        assert fit(rows, FP) is None

    def test_recovers_a_power_law(self):
        points = [(limbs, 3.0 * limbs ** 1.5)
                  for limbs in (4, 16, 64, 256, 1024)]
        model = fit(rows_for("mul", "limb", points), FP)
        group = model.groups["mul|limb"]
        assert group["b"] == pytest.approx(1.5, rel=1e-6)
        assert math.exp(group["a"]) == pytest.approx(3.0, rel=1e-6)

    def test_unfitted_group_predicts_none(self):
        points = [(4, 10.0), (8, 20.0), (16, 40.0)]
        model = fit(rows_for("mul", "limb", points), FP)
        assert model.predict_ns("mul", "packed", 8) is None
        assert model.covers("mul", "library")
        assert not model.covers("mul", "packed")


class TestPayload:
    def _model(self):
        points = [(4, 10.0), (8, 20.0), (16, 40.0), (32, 80.0)]
        return fit(rows_for("powmod", "rns", points), FP)

    def test_round_trip(self):
        model = self._model()
        clone = CostModel.from_payload(model.to_payload())
        assert clone is not None
        assert clone.to_payload() == model.to_payload()
        assert clone.digest() == model.digest()

    def test_version_mismatch_rejected(self):
        payload = self._model().to_payload()
        payload["version"] = model_mod.COST_MODEL_VERSION + 1
        assert CostModel.from_payload(payload) is None

    def test_garbage_rejected(self):
        assert CostModel.from_payload(None) is None
        assert CostModel.from_payload({"version": 1}) is None

    def test_digest_tracks_coefficients(self):
        model = self._model()
        other = self._model()
        other.groups["powmod|rns"]["a"] += 0.5
        assert model.digest() != other.digest()


class TestSplitAndEvaluate:
    def _dataset(self):
        rows = []
        for backend, scale in (("limb", 50.0), ("packed", 5.0)):
            for limbs in (4, 8, 16, 32, 64, 128, 256, 512, 1024):
                for jitter in (1.0, 1.02, 0.98):
                    rows.extend(rows_for(
                        "mul", backend,
                        [(limbs, scale * jitter * limbs ** 1.6)]))
        return rows

    def test_split_is_deterministic_partition(self):
        rows = self._dataset()
        train1, holdout1 = split_rows(rows)
        train2, holdout2 = split_rows(list(reversed(rows)))
        assert train1 == train2 and holdout1 == holdout2
        assert len(train1) + len(holdout1) == len(rows)
        assert holdout1  # every third row held out

    def test_evaluate_reports_and_gates(self):
        report = evaluate(self._dataset(), FP)
        assert report is not None
        assert report["rows_scored"] > 0
        assert report["model_median_rel_err"] >= 0.0
        assert report["analytic_median_rel_err"] >= 0.0
        assert report["gate_ok"] == (
            report["error_ratio"] >= report["gate_ratio"])
        # Two backends 10x apart at one shape: the single analytic
        # price cannot match both, the per-backend fits can.
        assert report["model_median_rel_err"] \
            < report["analytic_median_rel_err"]

    def test_evaluate_empty_is_none(self):
        assert evaluate([], FP) is None


class TestAnalyticCycles:
    def test_modeled_ops_priced(self):
        for op in ("mul", "sqr", "div", "mod", "powmod"):
            cycles = analytic_cycles(op, 64)
            assert cycles is not None and cycles > 0

    def test_unmodeled_is_none(self):
        assert analytic_cycles("pi_digits", 64) is None
        assert analytic_cycles("mul", 0) is None
