"""Dataset store, harvesters, and the tune-time recorder."""

import json

import pytest

from repro.cost import dataset


@pytest.fixture
def target(tmp_path, monkeypatch):
    path = tmp_path / "COST_dataset.jsonl"
    monkeypatch.setenv(dataset.DATASET_ENV, str(path))
    return path


def _row(**overrides):
    base = {"schema": dataset.DATASET_SCHEMA_VERSION, "op": "mul",
            "backend": "limb", "limbs": 64, "ns": 1234.5,
            "source": "test"}
    base.update(overrides)
    return base


class TestMakeRow:
    def test_valid_row_is_canonical(self):
        row = dataset.make_row("mod", "library", 8, 99.0, "test")
        assert row == {"schema": dataset.DATASET_SCHEMA_VERSION,
                       "op": "div", "backend": "limb", "limbs": 8,
                       "ns": 99.0, "source": "test",
                       "end_to_end": False}

    @pytest.mark.parametrize("bad", [
        dict(op="pi_digits"), dict(backend="-"), dict(limbs=0),
        dict(limbs=1.5), dict(ns=0.0), dict(ns=-3.0),
        dict(ns=float("inf")), dict(ns=float("nan")),
        dict(ns="fast"),
    ])
    def test_out_of_domain_is_none(self, bad):
        row = _row(**bad)
        assert dataset.make_row(row["op"], row["backend"],
                                row["limbs"], row["ns"],
                                row["source"]) is None


class TestRoundTrip:
    def test_append_then_load(self, target):
        written = dataset.append_rows(
            [_row(), _row(op="div", limbs=16, ns=8.0)])
        assert written == 2
        rows = dataset.load_rows()
        assert len(rows) == 2
        assert {row["op"] for row in rows} == {"mul", "div"}

    def test_env_override_routes_the_file(self, target):
        dataset.append_rows([_row()])
        assert target.exists()
        assert dataset.dataset_path() == target

    def test_invalid_rows_never_written(self, target):
        assert dataset.append_rows([_row(limbs=0)]) == 0
        assert not target.exists()

    def test_malformed_lines_skipped_on_load(self, target):
        dataset.append_rows([_row()])
        with open(target, "a", encoding="utf-8") as handle:
            handle.write("not json\n")
            handle.write(json.dumps({"schema": 999, "op": "mul"}) + "\n")
            handle.write(json.dumps({"schema": 1, "op": "mul",
                                     "backend": "limb", "limbs": 0,
                                     "ns": 5.0, "source": "x"}) + "\n")
        assert len(dataset.load_rows()) == 1

    def test_end_to_end_rows_excluded_by_default(self, target):
        dataset.append_rows(
            [_row(), _row(end_to_end=True, ns=9e6)])
        assert len(dataset.load_rows()) == 1
        assert len(dataset.load_rows(kernel_only=False)) == 2

    def test_missing_file_loads_empty(self, target):
        assert dataset.load_rows() == []


class TestHarvesters:
    def test_bench_kernels_entries(self, tmp_path):
        report = {"entries": [
            {"op": "mul", "bits": 4096,
             "ns": {"limb": 100.0, "packed": 40.0, "python": 900.0}},
            {"op": "pi_digits", "bits": 64, "ns": {"limb": 5.0}},
            {"op": "div", "bits": 2048, "ns": {"limb": 77.0}},
        ]}
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(report), encoding="utf-8")
        rows = dataset.harvest_bench_kernels(path)
        keys = sorted((row["op"], row["backend"]) for row in rows)
        # python is not a modeled backend; pi_digits not a modeled op.
        assert keys == [("div", "limb"), ("mul", "limb"),
                        ("mul", "packed")]
        assert all(row["source"] == "bench-kernels" for row in rows)

    def test_serve_latency_aggregates(self, tmp_path):
        report = {"op_backend_latency": [
            {"op": "mul", "backend": "library", "limbs": 32, "n": 10,
             "p50_ms": 2.0, "p90_ms": 3.0},
            {"op": "mul", "backend": "library", "limbs": 8, "n": 2,
             "p50_ms": 1.0, "p90_ms": 1.5},
        ]}
        path = tmp_path / "serve.json"
        path.write_text(json.dumps(report), encoding="utf-8")
        rows = dataset.harvest_serve(path)
        assert len(rows) == 1  # n < 3 aggregate dropped
        assert rows[0]["ns"] == pytest.approx(2.0e6)
        assert rows[0]["end_to_end"] is True
        assert rows[0]["backend"] == "limb"

    def test_trace_span_dump(self, tmp_path):
        lines = [
            {"op": "mul", "meta": {"backend": "packed", "limbs": 128,
                                   "batch_size": 4},
             "spans_ms": {"execute_start->execute_end": 8.0}},
            {"op": "mul", "meta": {"note": "unstamped"},
             "spans_ms": {"execute_start->execute_end": 8.0}},
            {"op": "mul", "meta": {"backend": "packed", "limbs": 16}},
        ]
        path = tmp_path / "trace.jsonl"
        path.write_text("\n".join(json.dumps(line) for line in lines),
                        encoding="utf-8")
        rows = dataset.harvest_trace(path)
        assert len(rows) == 1
        # 8 ms over a batch of 4 -> 2 ms = 2e6 ns per item.
        assert rows[0]["ns"] == pytest.approx(2.0e6)
        assert rows[0]["limbs"] == 128

    def test_missing_files_harvest_empty(self, tmp_path):
        missing = tmp_path / "nope.json"
        assert dataset.harvest_bench_kernels(missing) == []
        assert dataset.harvest_serve(missing) == []
        assert dataset.harvest_trace(missing) == []


class TestRecorder:
    def test_record_without_recorder_is_noop(self):
        dataset.record_point("mul", "limb", 4, 10.0)  # must not raise

    def test_recording_collects_rows(self):
        with dataset.recording() as rows:
            dataset.record_point("mul", "limb", 4, 10.0)
            dataset.record_point("mul", None, 4, 10.0)  # unlabeled arm
            dataset.record_point("powmod", "rns", 8, 5.0)
        assert len(rows) == 2
        assert rows[0]["source"] == "tune"

    def test_nested_recordings_stack(self):
        with dataset.recording() as outer:
            dataset.record_point("mul", "limb", 2, 1.0)
            with dataset.recording() as inner:
                dataset.record_point("div", "limb", 3, 2.0)
            assert len(inner) == 1
        assert len(outer) == 2

    def test_tune_bisection_records_points(self):
        from repro.mpn import tune as tune_mod
        with dataset.recording() as rows:
            tune_mod.find_crossover(
                tune_mod.mul_schoolbook, tune_mod.mul_schoolbook,
                2, 8, repeats=1, labels=("mul", "limb", "limb"))
        assert rows
        assert all(row["op"] == "mul" and row["backend"] == "limb"
                   for row in rows)
