"""OpSpec: validation, canonical keys, job-parameter derivation."""

import pytest

from repro.plan import OpSpec, PlanError


class TestValidation:
    def test_unknown_op_rejected(self):
        with pytest.raises(PlanError):
            OpSpec("fft", 64, 64)

    def test_unknown_backend_rejected(self):
        with pytest.raises(PlanError):
            OpSpec("mul", 64, 64, backend="gpu")

    def test_negative_bits_rejected(self):
        with pytest.raises(PlanError):
            OpSpec("mul", -1, 64)

    def test_bool_bits_rejected(self):
        with pytest.raises(PlanError):
            OpSpec("mul", True, 64)

    def test_detail_must_be_tuple_pairs(self):
        spec = OpSpec("pi_digits", detail=(("digits", 50),))
        assert spec.detail_value("digits", 0) == 50
        assert spec.detail_value("missing", 7) == 7


class TestConstruction:
    def test_for_mul(self):
        spec = OpSpec.for_mul(4096, 2048)
        assert (spec.op, spec.bits_a, spec.bits_b) == ("mul", 4096, 2048)
        assert spec.backend == "auto"

    def test_for_job_mul_uses_bit_lengths(self):
        spec = OpSpec.for_job("mul", {"a": 1 << 100, "b": 3})
        assert spec.bits_a == 101
        assert spec.bits_b == 2

    def test_for_job_powmod_uses_mod_and_exp(self):
        spec = OpSpec.for_job(
            "powmod", {"base": 2, "exp": 65537, "mod": (1 << 127) - 1})
        assert spec.bits_a == 127
        assert spec.bits_b == 17

    def test_for_job_pi_digits_rides_detail(self):
        spec = OpSpec.for_job("pi_digits", {"digits": 42})
        assert spec.detail_value("digits", 0) == 42

    def test_key_is_hashable_and_distinct(self):
        seen = {OpSpec.for_mul(64, 64).key(),
                OpSpec.for_mul(64, 65).key(),
                OpSpec.for_mul(64, 64, backend="library").key()}
        assert len(seen) == 3

    def test_describe_mentions_op_and_bits(self):
        text = OpSpec.for_mul(4096, 4096).describe()
        assert "mul" in text and "4096" in text
