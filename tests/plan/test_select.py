"""plan.select: the one crossover-lookup module, checked against the
kernel-side constants and policies it replaced."""

import pytest

from repro.mpn import burnikel_ziegler as bz_mod
from repro.mpn import div as div_mod
from repro.mpn.mul import GMP_POLICY, MPAPCA_POLICY, PYTHON_POLICY
from repro.plan import select


class TestMulLadder:
    @pytest.mark.parametrize("policy",
                             [GMP_POLICY, MPAPCA_POLICY, PYTHON_POLICY])
    def test_matches_policy_dispatch(self, policy):
        for limbs in (1, 2, 7, 8, 30, 31, 32, 99, 100, 1121, 1122,
                      3000, 5000, 50000):
            assert select.mul_algorithm(limbs, policy) \
                == policy.algorithm_for(limbs)

    def test_below_every_threshold_is_basecase(self):
        assert select.mul_algorithm(1, GMP_POLICY) == "basecase"

    def test_chain_descends_to_basecase(self):
        chain = select.mul_chain(50000, GMP_POLICY)
        assert chain[-1][0] == "basecase"
        sizes = [limbs for _, limbs in chain]
        assert sizes == sorted(sizes, reverse=True)

    def test_chain_ssa_steps_to_regime_boundary(self):
        chain = select.mul_chain(10 * GMP_POLICY.ssa_limbs, GMP_POLICY)
        assert chain[0][0] == "ssa"
        assert chain[1][1] == GMP_POLICY.ssa_limbs - 1


class TestDivisionCrossovers:
    def test_div_default_reads_kernel_threshold_at_call_time(self):
        threshold = div_mod.NEWTON_DIV_THRESHOLD_BITS
        assert select.div_algorithm(threshold) == "schoolbook"
        assert select.div_algorithm(threshold + 1) == "newton"

    def test_div_override_wins(self):
        assert select.div_algorithm(100, newton_threshold_bits=64) \
            == "newton"
        assert select.div_algorithm(100, newton_threshold_bits=128) \
            == "schoolbook"

    def test_div_without_mul_fn_is_schoolbook(self):
        assert select.div_algorithm(1 << 20, has_mul_fn=False) \
            == "schoolbook"

    def test_bz_default_reads_kernel_threshold(self):
        threshold = bz_mod.BZ_THRESHOLD_LIMBS
        assert select.bz_algorithm(threshold - 1) == "schoolbook"
        assert select.bz_algorithm(threshold) == "burnikel-ziegler"

    def test_barrett_override(self):
        assert select.barrett_profitable(10, barrett_limbs=8)
        assert not select.barrett_profitable(7, barrett_limbs=8)


class TestFingerprint:
    def test_covers_every_crossover(self):
        thresholds = select.active()
        fp = select.fingerprint(thresholds)
        assert fp == (thresholds.version, thresholds.karatsuba_limbs,
                      thresholds.toom3_limbs, thresholds.toom4_limbs,
                      thresholds.toom6_limbs, thresholds.ssa_limbs,
                      thresholds.bz_limbs, thresholds.barrett_limbs,
                      thresholds.packed_mul_limbs,
                      thresholds.packed_div_limbs,
                      thresholds.rns_mul_limbs,
                      thresholds.rns_powmod_limbs,
                      thresholds.specialize_limbs)

    def test_thresholds_method_delegates(self):
        thresholds = select.active()
        assert thresholds.fingerprint() == select.fingerprint(thresholds)

    def test_bare_policy_pads_with_zeroes(self):
        fp = select.fingerprint(MPAPCA_POLICY)
        assert fp[0] == 0 and fp[-2:] == (0, 0)
        assert fp[1] == MPAPCA_POLICY.karatsuba_limbs
