"""verify_plan: plan-level hazards (PV-*) and stream materialization."""

import dataclasses

from repro.analysis.stream import verify_plan
from repro.mpn import nat_from_int
from repro.plan import OpSpec
from repro.plan.lowering import lower
from repro.runtime.mpapca import MONOLITHIC_MAX_BITS


def checks(plan, operands=None):
    return {v.check for v in verify_plan(plan, operands)}


class TestCleanPlans:
    def test_device_mul_plan_is_clean(self):
        assert checks(lower(OpSpec.for_mul(4096, 4096))) == set()

    def test_library_mul_plan_is_clean(self):
        assert checks(lower(OpSpec.for_mul(1 << 20, 1 << 20))) == set()

    def test_every_op_lowers_clean(self):
        specs = [
            OpSpec("div", 8192, 100),
            OpSpec("powmod", 2048, 17, detail=(("mod_odd", 1),)),
            OpSpec("sqrt", 4096),
            OpSpec("add", 4096, 4096),
            OpSpec("shift", 4096),
            OpSpec("cmp", 4096, 4096),
            OpSpec("pi_digits", detail=(("digits", 50),)),
            OpSpec("model_cycles", 4096,
                   detail=(("model_op", "mul"),)),
        ]
        for spec in specs:
            assert checks(lower(spec)) == set(), spec

    def test_device_plan_with_operands_verifies_stream(self):
        plan = lower(OpSpec.for_mul(200, 150))
        operands = [nat_from_int(3 ** 120), nat_from_int(7 ** 50)]
        assert checks(plan, operands) == set()


class TestSeededHazards:
    def test_nonsense_cost_fires_pv_cost(self):
        plan = dataclasses.replace(lower(OpSpec.for_mul(64, 64)),
                                   cost_cycles=float("nan"))
        assert "PV-COST" in checks(plan)

    def test_wrong_algorithm_fires_pv_algo(self):
        plan = dataclasses.replace(lower(OpSpec.for_mul(4096, 4096)),
                                   algorithm="karatsuba")
        assert "PV-ALGO" in checks(plan)

    def test_oversized_device_plan_fires_pv_backend(self):
        base = lower(OpSpec.for_mul(64, 64))
        spec = OpSpec.for_mul(MONOLITHIC_MAX_BITS + 32,
                              MONOLITHIC_MAX_BITS + 32)
        plan = dataclasses.replace(base, spec=spec)
        assert "PV-BACKEND" in checks(plan)

    def test_non_mul_device_plan_fires_pv_backend(self):
        base = lower(OpSpec("div", 4096, 100))
        plan = dataclasses.replace(base, backend="device")
        assert "PV-BACKEND" in checks(plan)

    def test_empty_steps_fire_pv_steps(self):
        plan = dataclasses.replace(lower(OpSpec.for_mul(64, 64)),
                                   steps=())
        assert "PV-STEPS" in checks(plan)

    def test_mismatched_operand_bits_surface_stream_hazards(self):
        plan = lower(OpSpec.for_mul(200, 150))
        # One operand only: the stream builder must refuse.
        violations = verify_plan(plan, [nat_from_int(3 ** 120)])
        assert {v.check for v in violations} == {"PV-STREAM"}
