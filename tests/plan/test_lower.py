"""Lowering: backend resolution, costs, keys, cache round-trips."""

import dataclasses

import pytest

from repro.core.model import DEFAULT_CONFIG
from repro.plan import OpSpec, PlanError
from repro.plan.lowering import (PLAN_SCHEMA_VERSION, Plan, lower,
                                 plan_cache)
from repro.plan import select
from repro.runtime import mpapca
from repro.runtime.mpapca import MONOLITHIC_MAX_BITS


class TestBackendResolution:
    def test_small_mul_lowers_to_device(self):
        plan = lower(OpSpec.for_mul(4096, 4096))
        assert plan.backend == "device"
        assert plan.algorithm == "monolithic"

    def test_big_mul_resolves_to_specialized(self):
        plan = lower(OpSpec.for_mul(MONOLITHIC_MAX_BITS + 1,
                                    MONOLITHIC_MAX_BITS + 1))
        assert plan.backend == "specialized"
        assert plan.algorithm.startswith("specialized-")

    def test_big_mul_falls_back_to_packed(self):
        thresholds = dataclasses.replace(select.active(),
                                         specialize_limbs=0)
        plan = lower(OpSpec.for_mul(MONOLITHIC_MAX_BITS + 1,
                                    MONOLITHIC_MAX_BITS + 1),
                     thresholds)
        assert plan.backend == "packed"
        assert plan.algorithm.startswith("packed-")

    def test_big_mul_small_operand_falls_back_to_library(self):
        # min_limbs = 2: pin both host-side crossovers above it so the
        # fallback is visible regardless of host tuning.
        thresholds = dataclasses.replace(select.active(),
                                         packed_mul_limbs=4,
                                         specialize_limbs=4)
        plan = lower(OpSpec.for_mul(MONOLITHIC_MAX_BITS + 1, 64),
                     thresholds, use_cache=False)
        assert plan.backend == "library"

    def test_big_mul_falls_back_to_library_when_packed_disabled(self):
        thresholds = dataclasses.replace(select.active(),
                                         packed_mul_limbs=0,
                                         specialize_limbs=0)
        plan = lower(OpSpec.for_mul(MONOLITHIC_MAX_BITS + 1,
                                    MONOLITHIC_MAX_BITS + 1),
                     thresholds)
        assert plan.backend == "library"

    def test_explicit_packed_respected(self):
        plan = lower(OpSpec.for_mul(4096, 4096, backend="packed"))
        assert plan.backend == "packed"
        assert plan.algorithm.startswith("packed-")

    def test_packed_rejected_for_unsupported_op(self):
        with pytest.raises(PlanError):
            lower(OpSpec("powmod", 2048, 17, backend="packed",
                         detail=(("mod_odd", 1),)))

    def test_explicit_library_respected(self):
        plan = lower(OpSpec.for_mul(4096, 4096, backend="library"))
        assert plan.backend == "library"
        assert plan.algorithm != "monolithic"

    def test_oversized_device_request_rejected(self):
        with pytest.raises(PlanError):
            lower(OpSpec.for_mul(MONOLITHIC_MAX_BITS + 1, 64,
                                 backend="device"))

    def test_non_mul_device_request_rejected(self):
        with pytest.raises(PlanError):
            lower(OpSpec("div", 4096, 64, backend="device"))


class TestCost:
    def test_mul_cost_is_the_one_model(self):
        plan = lower(OpSpec.for_mul(4096, 4096))
        assert plan.cost() == mpapca.mul_cycles(4096, 4096)

    def test_div_cost_matches_composition_rule(self):
        plan = lower(OpSpec("div", 8192, 4096))
        assert plan.cost() == mpapca.div_cycles(8192, 4096)

    def test_powmod_cost_matches_composition_rule(self):
        plan = lower(OpSpec("powmod", 2048, 17,
                            detail=(("mod_odd", 1),)))
        assert plan.cost() == mpapca.powmod_cycles(2048, 17)

    def test_seconds_uses_device_frequency(self):
        plan = lower(OpSpec.for_mul(4096, 4096))
        assert plan.seconds() == pytest.approx(
            plan.cost() / DEFAULT_CONFIG.frequency_hz)


class TestKeys:
    def test_compat_key_separates_backends(self):
        device = lower(OpSpec.for_mul(4096, 4096))
        library = lower(OpSpec.for_mul(MONOLITHIC_MAX_BITS + 1,
                                       MONOLITHIC_MAX_BITS + 1,
                                       backend="library"))
        specialized = lower(OpSpec.for_mul(MONOLITHIC_MAX_BITS + 1,
                                           MONOLITHIC_MAX_BITS + 1))
        packed = lower(OpSpec.for_mul(MONOLITHIC_MAX_BITS + 1,
                                      MONOLITHIC_MAX_BITS + 1,
                                      backend="packed"))
        assert device.compat_key == ("mul", "device")
        assert library.compat_key == ("mul", "library")
        assert specialized.compat_key == ("mul", "specialized")
        assert packed.compat_key == ("mul", "packed")

    def test_memo_key_carries_schema_and_fingerprint(self):
        plan = lower(OpSpec.for_mul(4096, 4096))
        assert plan.memo_key[0] == PLAN_SCHEMA_VERSION
        assert tuple(plan.tuning) == \
            plan.memo_key[1:1 + len(plan.tuning)]

    def test_retuning_changes_memo_key(self):
        thresholds = select.active()
        retuned = dataclasses.replace(thresholds, karatsuba_limbs=7)
        before = lower(OpSpec.for_mul(1 << 20, 1 << 20), thresholds)
        after = lower(OpSpec.for_mul(1 << 20, 1 << 20), retuned)
        assert before.memo_key != after.memo_key


class TestPolicyRoundTrip:
    def test_plan_policy_reproduces_thresholds(self):
        thresholds = select.active()
        plan = lower(OpSpec.for_mul(1 << 20, 1 << 20), thresholds)
        policy = plan.policy()
        assert policy.karatsuba_limbs == thresholds.karatsuba_limbs
        assert policy.ssa_limbs == thresholds.ssa_limbs

    def test_library_algorithm_matches_policy_dispatch(self):
        thresholds = select.active()
        for bits in (64, 4096, 1 << 17, 1 << 20):
            plan = lower(OpSpec.for_mul(bits, bits, backend="library"),
                         thresholds)
            limbs = -(-bits // 32)
            assert plan.algorithm == \
                thresholds.policy().algorithm_for(limbs)


class TestPlanCache:
    def test_payload_round_trip(self):
        plan = lower(OpSpec("powmod", 2048, 17,
                            detail=(("mod_odd", 1),)))
        clone = Plan.from_payload(plan.to_payload())
        assert clone == plan

    def test_cached_lowering_is_identical(self):
        spec = OpSpec.for_mul(4096, 4096)
        assert lower(spec) == lower(spec)
        assert lower(spec) == lower(spec, use_cache=False)

    def test_cache_is_version_salted(self):
        assert plan_cache().version == PLAN_SCHEMA_VERSION
