"""Tests for the repro.plan lowering IR."""
