"""Schedule derivation: structure, validation, and PV-SCHED checks."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpn.mul import MulPolicy
from repro.plan import select
from repro.plan.schedule import (Schedule, ScheduleError, derive_schedule,
                                 validate_schedule)

#: Hypothesis strategy over plausible (monotone) threshold ladders, so
#: derivation round-trips are checked under tunings far from the host's.
policies = st.builds(
    lambda k, d3, d4, d6, ds: MulPolicy(
        name="hyp", karatsuba_limbs=k, toom3_limbs=k + d3,
        toom4_limbs=k + d3 + d4, toom6_limbs=k + d3 + d4 + d6,
        ssa_limbs=k + d3 + d4 + d6 + ds),
    k=st.integers(min_value=2, max_value=64),
    d3=st.integers(min_value=1, max_value=64),
    d4=st.integers(min_value=1, max_value=64),
    d6=st.integers(min_value=1, max_value=256),
    ds=st.integers(min_value=1, max_value=2048),
)


class TestDerivation:
    def test_small_mul_is_a_basecase_leaf(self):
        schedule = derive_schedule("mul", 2, backend="limb")
        assert schedule.algorithm == "basecase"
        assert schedule.child is None
        assert schedule.leaf() is schedule

    def test_limb_ladder_matches_policy_dispatch(self):
        thresholds = select.active()
        for limbs in (1, 8, 64, 512, 4096):
            schedule = derive_schedule("mul", limbs, thresholds,
                                       backend="limb")
            assert schedule.algorithm == \
                thresholds.policy().algorithm_for(limbs)

    def test_auto_commits_the_packed_backend(self):
        thresholds = select.active()
        limbs = max(16, thresholds.packed_mul_limbs)
        assert select.mul_backend(limbs, thresholds) == "packed"
        schedule = derive_schedule("mul", limbs, thresholds)
        assert schedule.algorithm == "packed"
        assert schedule.split == 0

    def test_div_newton_carries_a_mul_sub_schedule(self):
        thresholds = dataclasses.replace(select.active(),
                                         packed_div_limbs=0)
        schedule = derive_schedule("div", 2048, thresholds)
        assert schedule.algorithm == "newton"
        assert schedule.sub is not None
        assert schedule.sub.op == "mul"

    def test_unknown_op_rejected(self):
        with pytest.raises(ScheduleError):
            derive_schedule("powmod", 64)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ScheduleError):
            derive_schedule("mul", 64, backend="rns")

    def test_key_is_structural_identity(self):
        a = derive_schedule("mul", 512, backend="limb")
        b = derive_schedule("mul", 512, backend="limb")
        assert a.key() == b.key()
        retuned = dataclasses.replace(select.active(),
                                      karatsuba_limbs=7)
        c = derive_schedule("mul", 512, retuned, backend="limb")
        assert a.key() != c.key() or a == c

    def test_describe_and_render_cover_every_level(self):
        schedule = derive_schedule("mul", 2048, backend="limb")
        described = schedule.describe()
        rendered = schedule.render()
        for node in schedule.levels():
            assert "%s@%d" % (node.algorithm, node.limbs) in described
            assert "%s@%d limbs" % (node.algorithm, node.limbs) \
                in rendered


class TestRoundTrips:
    """Hypothesis round-trips: every derived schedule validates clean."""

    @given(limbs=st.integers(min_value=1, max_value=5000),
           policy=policies)
    @settings(max_examples=60, deadline=None)
    def test_derived_mul_schedules_validate(self, limbs, policy):
        schedule = derive_schedule("mul", limbs, policy, backend="limb")
        assert validate_schedule(schedule, policy) == []

    @given(limbs=st.integers(min_value=1, max_value=5000),
           policy=policies)
    @settings(max_examples=60, deadline=None)
    def test_floors_never_increase(self, limbs, policy):
        schedule = derive_schedule("mul", limbs, policy, backend="limb")
        floors = [node.floor for node in schedule.levels()]
        assert floors == sorted(floors, reverse=True)

    @given(limbs=st.integers(min_value=1, max_value=5000),
           policy=policies)
    @settings(max_examples=60, deadline=None)
    def test_root_carries_the_request_and_leaf_terminates(self, limbs,
                                                          policy):
        schedule = derive_schedule("mul", limbs, policy, backend="limb")
        assert schedule.limbs == limbs
        assert schedule.op == "mul"
        leaf = schedule.leaf()
        assert leaf.split == 0 and leaf.child is None
        assert leaf.algorithm == "basecase"
        assert leaf.limbs < policy.karatsuba_limbs

    @given(limbs=st.integers(min_value=1, max_value=5000))
    @settings(max_examples=40, deadline=None)
    def test_div_schedules_validate_under_host_tuning(self, limbs):
        schedule = derive_schedule("div", limbs)
        assert validate_schedule(schedule) == []


class TestValidation:
    def test_split_must_cover_the_operand(self):
        bad = Schedule(op="mul", limbs=100, algorithm="karatsuba",
                       floor=4, split=2,
                       child=Schedule(op="mul", limbs=10,
                                      algorithm="basecase"))
        problems = validate_schedule(bad)
        assert any("cover only" in p for p in problems)

    def test_splitting_leaf_rejected(self):
        bad = Schedule(op="mul", limbs=100, algorithm="karatsuba",
                       floor=4, split=2, child=None)
        problems = validate_schedule(bad)
        assert any("no child" in p for p in problems)

    def test_oversized_basecase_leaf_rejected(self):
        thresholds = select.active()
        bad = Schedule(op="mul",
                       limbs=thresholds.karatsuba_limbs + 10,
                       algorithm="basecase")
        problems = validate_schedule(bad, thresholds)
        assert any("karatsuba floor" in p for p in problems)

    def test_increasing_floors_rejected(self):
        bad = Schedule(op="mul", limbs=100, algorithm="karatsuba",
                       floor=4, split=2,
                       child=Schedule(op="mul", limbs=51,
                                      algorithm="karatsuba", floor=40,
                                      split=2,
                                      child=Schedule(op="mul", limbs=26,
                                                     algorithm="basecase",
                                                     floor=0)))
        problems = validate_schedule(bad)
        assert any("floors increase" in p for p in problems)

    def test_newton_sub_schedule_is_validated_too(self):
        bad_sub = Schedule(op="mul", limbs=100, algorithm="karatsuba",
                           floor=4, split=2, child=None)
        bad = Schedule(op="div", limbs=100, algorithm="newton",
                       floor=64, sub=bad_sub)
        assert validate_schedule(bad)


class TestPvSched:
    """verify_plan re-derives and validates specialized plans."""

    def test_specialized_plan_passes_pv_sched(self):
        from repro.analysis.stream import verify_plan
        from repro.plan import OpSpec
        from repro.plan.lowering import lower
        from repro.runtime.mpapca import MONOLITHIC_MAX_BITS
        plan = lower(OpSpec.for_mul(MONOLITHIC_MAX_BITS + 1,
                                    MONOLITHIC_MAX_BITS + 1))
        assert plan.backend == "specialized"
        assert verify_plan(plan) == []

    def test_specialized_div_plan_passes_pv_sched(self):
        from repro.analysis.stream import verify_plan
        from repro.plan import OpSpec
        from repro.plan.lowering import lower
        plan = lower(OpSpec("div", 1 << 20, 1 << 19,
                            backend="specialized"))
        assert plan.backend == "specialized"
        assert verify_plan(plan) == []

    def test_tampered_algorithm_is_reported(self):
        import dataclasses as dc

        from repro.analysis.stream import verify_plan
        from repro.plan import OpSpec
        from repro.plan.lowering import lower
        from repro.runtime.mpapca import MONOLITHIC_MAX_BITS
        plan = lower(OpSpec.for_mul(MONOLITHIC_MAX_BITS + 1,
                                    MONOLITHIC_MAX_BITS + 1))
        forged = dc.replace(plan, algorithm="specialized-ssa")
        violations = verify_plan(forged)
        assert any(v.check == "PV-ALGO" for v in violations)
