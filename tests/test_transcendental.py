"""Tests for the MPFR-style transcendental layer."""

import math
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpf import MPF
from repro.mpf.transcendental import (atan, cos, cos_sin, exp, ln, ln2,
                                      pi_agm, sin)
from repro.mpn.nat import MpnError

PI_60 = ("3.1415926535897932384626433832795028841971693993751058209749"
         "4459230781640628620899862803482534211706798214808651328230664")
E_60 = ("2.7182818284590452353602874713526624977572470936999595749669"
        "676277240766303535475945713821785251664274")
LN2_60 = ("0.693147180559945309417232121458176568075500134360255254120"
          "68000949339362196969471560586332699641868754200148102057068573")


def digits_agree(value: MPF, reference: str, digits: int) -> bool:
    return value.to_decimal_string(digits + 5)[:digits] \
        == reference[:digits]


small_args = st.fractions(min_value=Fraction(-8), max_value=Fraction(8),
                          max_denominator=1000)


class TestConstants:
    def test_pi_agm_100_digits(self):
        assert digits_agree(pi_agm(384), PI_60, 100)

    def test_pi_agm_matches_chudnovsky(self):
        # Two unrelated algorithms on the same stack agreeing to 200
        # bits is strong end-to-end validation.
        from repro.apps.pi import compute_pi
        chud = compute_pi(80).digits
        agm = pi_agm(320).to_decimal_string(80)
        assert agm[:75] == chud[:75]

    def test_ln2(self):
        assert digits_agree(ln2(320), LN2_60, 80)

    def test_caching(self):
        assert pi_agm(192) is pi_agm(192)


class TestExp:
    def test_e(self):
        assert digits_agree(exp(MPF(1, 320), 320), E_60, 80)

    def test_exp_zero_is_one(self):
        assert exp(MPF(0, 128), 128) == MPF(1, 128)

    @given(small_args)
    @settings(max_examples=30, deadline=None)
    def test_matches_math(self, x):
        value = MPF.from_ratio(x.numerator, x.denominator, 160)
        got = float(exp(value, 160))
        assert math.isclose(got, math.exp(float(x)), rel_tol=1e-12)

    def test_functional_equation(self):
        # exp(a+b) = exp(a)*exp(b) to working precision.
        a = MPF.from_ratio(3, 7, 224)
        b = MPF.from_ratio(-5, 11, 224)
        lhs = exp(a + b, 224)
        rhs = exp(a, 224) * exp(b, 224)
        difference = abs(lhs - rhs)
        assert not difference or difference.exponent_of_top_bit < -180


class TestLn:
    @given(small_args.filter(lambda v: v > 0))
    @settings(max_examples=25, deadline=None)
    def test_matches_math(self, x):
        value = MPF.from_ratio(x.numerator, x.denominator, 160)
        got = float(ln(value, 160))
        assert math.isclose(got, math.log(float(x)), rel_tol=1e-11,
                            abs_tol=1e-12)

    def test_ln_exp_roundtrip(self):
        x = MPF.from_ratio(17, 5, 256)
        back = exp(ln(x, 256), 256)
        difference = abs(back - x)
        assert not difference or difference.exponent_of_top_bit < -200

    def test_large_argument(self):
        # Seeding from the binary exponent must handle big inputs.
        value = MPF(1 << 100, 192)
        expected = 100 * math.log(2)
        assert math.isclose(float(ln(value, 192)), expected,
                            rel_tol=1e-12)

    def test_nonpositive_rejected(self):
        with pytest.raises(MpnError):
            ln(MPF(0, 128), 128)
        with pytest.raises(MpnError):
            ln(MPF(-3, 128), 128)


class TestTrig:
    @given(small_args)
    @settings(max_examples=25, deadline=None)
    def test_matches_math(self, x):
        value = MPF.from_ratio(x.numerator, x.denominator, 160)
        c, s = cos_sin(value, 160)
        assert math.isclose(float(c), math.cos(float(x)), abs_tol=1e-13)
        assert math.isclose(float(s), math.sin(float(x)), abs_tol=1e-13)

    def test_pythagorean_identity_beyond_double(self):
        x = MPF.from_ratio(355, 113, 256)
        c, s = cos_sin(x, 256)
        unit = c * c + s * s
        difference = abs(unit - MPF(1, 256))
        assert not difference or difference.exponent_of_top_bit < -200

    def test_range_reduction(self):
        big = MPF(1000, 192)
        assert math.isclose(float(cos(big, 192)), math.cos(1000),
                            abs_tol=1e-11)
        assert math.isclose(float(sin(big, 192)), math.sin(1000),
                            abs_tol=1e-11)


class TestAtan:
    @given(small_args)
    @settings(max_examples=25, deadline=None)
    def test_matches_math(self, x):
        value = MPF.from_ratio(x.numerator, x.denominator, 160)
        got = float(atan(value, 160))
        assert math.isclose(got, math.atan(float(x)), abs_tol=1e-13)

    def test_atan_one_is_quarter_pi(self):
        quarter_pi = atan(MPF(1, 256), 256)
        four = quarter_pi * MPF(4, 256)
        difference = abs(four - pi_agm(256))
        assert not difference or difference.exponent_of_top_bit < -200


class TestPowerAndLog10:
    def test_power_against_math(self):
        from repro.mpf.transcendental import power
        got = power(MPF(2, 192), MPF.from_ratio(1, 2, 192), 192)
        reference = MPF(2, 192).sqrt()
        error = abs(got - reference)
        assert not error or error.exponent_of_top_bit < -180

    def test_integer_exponent_matches_repeated_multiply(self):
        from repro.mpf.transcendental import power
        got = power(MPF(3, 224), MPF(7, 224), 224)
        exact = MPF(3 ** 7, 224)
        error = abs(got - exact)
        assert not error or error.exponent_of_top_bit \
            < exact.exponent_of_top_bit - 200

    def test_negative_base_rejected(self):
        from repro.mpf.transcendental import power
        with pytest.raises(MpnError):
            power(MPF(-2, 128), MPF(2, 128), 128)

    def test_log10(self):
        from repro.mpf.transcendental import log10
        got = log10(MPF(1000, 192), 192)
        error = abs(got - MPF(3, 192))
        assert not error or error.exponent_of_top_bit < -180
