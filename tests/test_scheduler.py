"""Tests for the dependency-leveling instruction scheduler."""

import pytest

from repro.core.isa import Instruction, Opcode, OperandRef
from repro.runtime.scheduler import BatchingDriver, level_program

from tests.conftest import from_nat, to_nat


def mul_instruction(src_a, src_b, dest):
    return Instruction(Opcode.MUL, (src_a, src_b), destination=dest)


class TestLeveling:
    def test_independent_instructions_share_a_level(self):
        refs = [OperandRef(i, 64) for i in range(4)]
        program = [mul_instruction(refs[0], refs[1], 10),
                   mul_instruction(refs[2], refs[3], 11)]
        scheduled = level_program(program)
        assert scheduled.depth == 1
        assert scheduled.width == 2

    def test_raw_dependency_splits_levels(self):
        a, b = OperandRef(0, 64), OperandRef(1, 64)
        product = OperandRef(10, 128)
        program = [mul_instruction(a, b, 10),
                   mul_instruction(product, b, 11)]
        scheduled = level_program(program)
        assert scheduled.depth == 2
        assert [len(level) for level in scheduled.levels] == [1, 1]

    def test_waw_dependency_preserved(self):
        a, b = OperandRef(0, 64), OperandRef(1, 64)
        program = [mul_instruction(a, b, 10),
                   mul_instruction(a, b, 10)]  # rewrite of @10
        assert level_program(program).depth == 2

    def test_diamond(self):
        a, b = OperandRef(0, 64), OperandRef(1, 64)
        left, right = OperandRef(10, 128), OperandRef(11, 128)
        program = [
            mul_instruction(a, b, 10),
            mul_instruction(b, a, 11),
            Instruction(Opcode.ADD, (left, right), destination=12),
        ]
        scheduled = level_program(program)
        assert scheduled.depth == 2
        assert len(scheduled.levels[0]) == 2


class TestBatchingDriver:
    def test_results_exact_and_batched(self, rng):
        driver = BatchingDriver()
        values = [rng.getrandbits(1024) for _ in range(6)]
        refs = [driver.alloc(to_nat(v)) for v in values]
        program = [mul_instruction(refs[0], refs[1], 100),
                   mul_instruction(refs[2], refs[3], 101),
                   mul_instruction(refs[4], refs[5], 102)]
        retirements, stats = driver.execute_scheduled(program)
        assert stats["batched_multiplies"] == 3
        assert stats["levels"] == 1
        for index, (x, y) in enumerate([(0, 1), (2, 3), (4, 5)]):
            assert from_nat(driver.result(100 + index)) \
                == values[x] * values[y]

    def test_batching_saves_cycles(self, rng):
        driver = BatchingDriver()
        refs = [driver.alloc(to_nat(rng.getrandbits(2048)))
                for _ in range(8)]
        program = [mul_instruction(refs[2 * i], refs[2 * i + 1],
                                   200 + i) for i in range(4)]
        _, stats = driver.execute_scheduled(program)
        assert stats["batched_cycles"] < stats["serial_mul_cycles"]

    def test_mixed_program_with_dependencies(self, rng):
        # (a*b) and (c*d) batch; their sum depends on both.
        driver = BatchingDriver()
        a, b, c, d = (driver.alloc(to_nat(rng.getrandbits(500)))
                      for _ in range(4))
        program = [
            mul_instruction(a, b, 50),
            mul_instruction(c, d, 51),
            Instruction(Opcode.ADD,
                        (OperandRef(50, 1000), OperandRef(51, 1000)),
                        destination=52),
        ]
        _, stats = driver.execute_scheduled(program)
        assert stats["levels"] == 2
        expected = (from_nat(driver.llc.read(a)) * from_nat(
            driver.llc.read(b))
            + from_nat(driver.llc.read(c)) * from_nat(
                driver.llc.read(d)))
        assert from_nat(driver.result(52)) == expected

    def test_single_mul_level_runs_serially(self, rng):
        driver = BatchingDriver()
        a, b = (driver.alloc(to_nat(rng.getrandbits(300)))
                for _ in range(2))
        _, stats = driver.execute_scheduled(
            [mul_instruction(a, b, 60)])
        assert stats["batched_multiplies"] == 0
        assert from_nat(driver.result(60)) \
            == from_nat(driver.llc.read(a)) * from_nat(driver.llc.read(b))


class TestSubmitFlush:
    def test_flush_runs_pending_work(self, rng):
        driver = BatchingDriver()
        values = [rng.getrandbits(800) for _ in range(4)]
        refs = [driver.alloc(to_nat(v)) for v in values]
        assert driver.submit(mul_instruction(refs[0], refs[1], 300)) \
            is None
        assert driver.submit(mul_instruction(refs[2], refs[3], 301)) \
            is None
        assert driver.pending == 2
        _, stats = driver.flush()
        assert driver.pending == 0
        assert stats["batched_multiplies"] == 2
        assert from_nat(driver.result(300)) == values[0] * values[1]
        assert from_nat(driver.result(301)) == values[2] * values[3]

    def test_flush_empty_is_a_cheap_no_op(self):
        driver = BatchingDriver()
        retirements, stats = driver.flush()
        assert retirements == []
        assert stats["batched_multiplies"] == 0

    def test_max_pending_forces_automatic_flush(self, rng):
        driver = BatchingDriver(max_pending=2)
        values = [rng.getrandbits(600) for _ in range(6)]
        refs = [driver.alloc(to_nat(v)) for v in values]
        assert driver.submit(mul_instruction(refs[0], refs[1], 400)) \
            is None
        flushed = driver.submit(mul_instruction(refs[2], refs[3], 401))
        assert flushed is not None          # guard fired at 2 pending
        assert driver.pending == 0
        assert from_nat(driver.result(400)) == values[0] * values[1]
        assert from_nat(driver.result(401)) == values[2] * values[3]
        # The next submit starts a fresh batch.
        assert driver.submit(mul_instruction(refs[4], refs[5], 402)) \
            is None
        driver.flush()
        assert from_nat(driver.result(402)) == values[4] * values[5]

    def test_max_pending_must_be_positive(self):
        from repro.mpn import MpnError
        with pytest.raises(MpnError):
            BatchingDriver(max_pending=0)


class TestRandomPrograms:
    def test_batching_driver_matches_serial_driver(self, rng):
        """Random DAG programs: the batching driver and the plain
        driver must produce identical LLC contents."""
        from repro.core.isa import Driver
        for trial in range(5):
            # Build identical drivers with identical initial values.
            values = [rng.getrandbits(rng.randrange(1, 800)) | 1
                      for _ in range(5)]
            serial, batching = Driver(), BatchingDriver()
            serial_refs = [serial.alloc(to_nat(v)) for v in values]
            batch_refs = [batching.alloc(to_nat(v)) for v in values]
            program_serial, program_batch = [], []
            live_bits = {ref.address: ref.bits for ref in serial_refs}
            for step in range(8):
                destination = 100 + step
                kind = rng.choice(["mul", "mul", "add", "shl"])
                addresses = rng.sample(sorted(live_bits), 2)
                refs_serial = tuple(
                    OperandRef(a, live_bits[a]) for a in addresses)
                if kind == "mul":
                    op = Opcode.MUL
                    out_bits = sum(live_bits[a] for a in addresses)
                elif kind == "add":
                    op = Opcode.ADD
                    out_bits = max(live_bits[a] for a in addresses) + 1
                else:
                    op = Opcode.SHL
                    refs_serial = refs_serial[:1]
                    out_bits = live_bits[addresses[0]] + 5
                instruction = Instruction(op, refs_serial, destination,
                                          immediate=5)
                program_serial.append(instruction)
                program_batch.append(instruction)
                live_bits[destination] = out_bits
            serial.execute(program_serial)
            batching.execute_scheduled(program_batch)
            for address in live_bits:
                if address >= 100:
                    assert serial.result(address) \
                        == batching.result(address), (trial, address)
