"""Golden-file regression tests for the report layer (ISSUE 2).

Figure data and trace-comparison summaries are serialized to
``tests/report/golden/*.json``.  Any change to the analytic models or
figure pipelines that moves a number shows up as a diff here.

Regenerate intentionally with::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/report

Values are compared with a tiny relative tolerance (1e-9) so the
goldens survive benign float-formatting churn but catch real drift.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.apps import synthetic
from repro.parallel import ParallelExecutor
from repro.report.figures import figure11_data, figure13_data
from repro.report.summary import compare_trace

GOLDEN_DIR = Path(__file__).parent / "golden"
REL_TOL = 1e-9

#: Small figure-11 sweep: full pipeline, test-sized.
FIG11_MAX_BITS = 1 << 14


def build_figure11():
    return figure11_data(max_bits=FIG11_MAX_BITS,
                         executor=ParallelExecutor(0))


def build_figure13():
    return figure13_data(executor=ParallelExecutor(0))


def build_pi_summary():
    return compare_trace(synthetic.pi_trace(10 ** 4)).as_dict()


def build_rsa_summary():
    return compare_trace(synthetic.rsa_trace(2048), gpu_batch=4).as_dict()


CASES = [
    ("figure11", build_figure11),
    ("figure13", build_figure13),
    ("summary_pi", build_pi_summary),
    ("summary_rsa", build_rsa_summary),
]


def assert_matches(actual, golden, path="$"):
    """Structural equality with relative float tolerance."""
    if isinstance(golden, dict):
        assert isinstance(actual, dict), path
        assert sorted(actual) == sorted(golden), \
            "%s: keys %s != %s" % (path, sorted(actual), sorted(golden))
        for key in golden:
            assert_matches(actual[key], golden[key],
                           "%s.%s" % (path, key))
    elif isinstance(golden, list):
        assert isinstance(actual, list), path
        assert len(actual) == len(golden), \
            "%s: length %d != %d" % (path, len(actual), len(golden))
        for index, (mine, theirs) in enumerate(zip(actual, golden)):
            assert_matches(mine, theirs, "%s[%d]" % (path, index))
    elif isinstance(golden, float) and not isinstance(golden, bool):
        assert isinstance(actual, (int, float)), path
        assert actual == pytest.approx(golden, rel=REL_TOL), \
            "%s: %r drifted from golden %r" % (path, actual, golden)
    else:
        assert actual == golden, \
            "%s: %r != golden %r" % (path, actual, golden)


@pytest.mark.parametrize("name,build", CASES, ids=[c[0] for c in CASES])
def test_against_golden(name, build):
    target = GOLDEN_DIR / ("%s.json" % name)
    # Canonicalize through JSON so tuples become lists, exactly as the
    # golden file stores them (floats round-trip bit-exactly).
    actual = json.loads(json.dumps(build()))
    if os.environ.get("REPRO_UPDATE_GOLDEN") == "1":
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(actual, indent=2, sort_keys=True)
                          + "\n", encoding="utf-8")
        pytest.skip("golden %s regenerated" % name)
    assert target.exists(), \
        "missing golden %s — run with REPRO_UPDATE_GOLDEN=1" % target
    golden = json.loads(target.read_text(encoding="utf-8"))
    assert_matches(actual, golden)


def test_goldens_are_committed():
    """All four golden files exist in the repo (guards against a
    swallowing REPRO_UPDATE_GOLDEN run never being committed)."""
    missing = [name for name, _ in CASES
               if not (GOLDEN_DIR / ("%s.json" % name)).exists()]
    assert not missing, "golden files missing: %s" % missing


def test_figure11_shape():
    """Cheap structural invariants, independent of the goldens."""
    data = build_figure11()
    assert set(data) == {"CPU+GMP", "Cambricon-P", "V100+CGBN",
                         "AVX512IFMA"}
    for name, points in data.items():
        xs = [x for x, _ in points]
        assert xs == sorted(xs), "%s x-values not ascending" % name
        assert all(seconds > 0 for _, seconds in points), name
    # Every platform sweeps the same bitwidths it supports; the CPU
    # baseline covers the full 64..max range.
    assert [x for x, _ in data["CPU+GMP"]][0] == 64
    assert [x for x, _ in data["CPU+GMP"]][-1] == FIG11_MAX_BITS
