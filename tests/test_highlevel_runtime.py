"""Tests for MPApca's high-level operators and the batch mode."""

import math
import random

import pytest

from repro.core.accelerator import CambriconP
from repro.mpn import nat
from repro.mpn.nat import MpnError
from repro.runtime.highlevel import HighLevelOps

from tests.conftest import from_nat, to_nat


@pytest.fixture
def ops():
    return HighLevelOps()


class TestPolynomialConvolution:
    def test_matches_reference(self, ops, rng):
        xs = [rng.getrandbits(150) for _ in range(4)]
        ys = [rng.getrandbits(150) for _ in range(3)]
        got = ops.polynomial_convolution([to_nat(v) for v in xs],
                                         [to_nat(v) for v in ys])
        expected = [0] * 6
        for i, x in enumerate(xs):
            for j, y in enumerate(ys):
                expected[i + j] += x * y
        assert [from_nat(c) for c in got] == expected

    def test_empty(self, ops):
        assert ops.polynomial_convolution([], [to_nat(1)]) == []

    def test_cost_accumulates(self, ops):
        before = ops.runtime.cycles
        ops.polynomial_convolution([to_nat(3), to_nat(5)],
                                   [to_nat(7), to_nat(9)])
        assert ops.runtime.cycles > before


class TestDivide:
    def test_large_division(self, ops, rng):
        a = rng.getrandbits(12000)
        b = rng.getrandbits(5000) | (1 << 4999)
        quotient, remainder = ops.divide(to_nat(a), to_nat(b))
        assert (from_nat(quotient), from_nat(remainder)) == divmod(a, b)

    def test_small_divisor_host_path(self, ops, rng):
        a, b = rng.getrandbits(3000), rng.getrandbits(1000) | 1
        quotient, remainder = ops.divide(to_nat(a), to_nat(b))
        assert (from_nat(quotient), from_nat(remainder)) == divmod(a, b)

    def test_zero_divisor_rejected(self, ops):
        with pytest.raises(MpnError):
            ops.divide(to_nat(1), [])


class TestSqrt:
    def test_matches_isqrt(self, ops, rng):
        for bits in (100, 3000, 8000):
            value = rng.getrandbits(bits)
            assert from_nat(ops.sqrt(to_nat(value))) == math.isqrt(value)


class TestMontgomeryReduce:
    def test_redc_matches_formula(self, ops, rng):
        for _ in range(20):
            modulus = rng.getrandbits(rng.randrange(64, 600)) | 1
            limbs = to_nat(modulus)
            r = 1 << (32 * len(limbs))
            value = rng.randrange(0, r * modulus)
            got = from_nat(ops.montgomery_reduce(to_nat(value), limbs))
            assert got == (value * pow(r, -1, modulus)) % modulus

    def test_even_modulus_rejected(self, ops):
        with pytest.raises(MpnError):
            ops.montgomery_reduce(to_nat(5), to_nat(8))

    def test_oversized_input_rejected(self, ops):
        modulus = to_nat((1 << 64) + 1)
        with pytest.raises(MpnError):
            ops.montgomery_reduce(to_nat(1 << 400), modulus)

    def test_powmod(self, ops, rng):
        modulus = rng.getrandbits(400) | 1
        base = rng.randrange(0, modulus)
        exponent = rng.getrandbits(80)
        got = from_nat(ops.powmod(to_nat(base), to_nat(exponent),
                                  to_nat(modulus)))
        assert got == pow(base, exponent, modulus)


class TestMatrixMultiply:
    def test_matches_reference(self, ops, rng):
        a = [[to_nat(rng.getrandbits(200)) for _ in range(3)]
             for _ in range(2)]
        b = [[to_nat(rng.getrandbits(200)) for _ in range(2)]
             for _ in range(3)]
        c = ops.matrix_multiply(a, b)
        for i in range(2):
            for j in range(2):
                expected = sum(from_nat(a[i][k]) * from_nat(b[k][j])
                               for k in range(3))
                assert from_nat(c[i][j]) == expected

    def test_shape_mismatch_rejected(self, ops):
        with pytest.raises(MpnError):
            ops.matrix_multiply([[to_nat(1)]], [[to_nat(1)], [to_nat(2)]])


class TestBatchMode:
    def test_batch_results_exact(self, rng):
        device = CambriconP()
        pairs = [(to_nat(rng.getrandbits(1500)),
                  to_nat(rng.getrandbits(1500))) for _ in range(8)]
        products, report = device.multiply_batch(pairs)
        for (a, b), product in zip(pairs, products):
            assert from_nat(product) == from_nat(a) * from_nat(b)
        assert report.num_passes > 0

    def test_batch_amortizes_fill(self, rng):
        device = CambriconP()
        pairs = [(to_nat(rng.getrandbits(2048)),
                  to_nat(rng.getrandbits(2048))) for _ in range(16)]
        _, batch_report = device.multiply_batch(pairs)
        _, single_report = device.multiply(*pairs[0])
        assert batch_report.seconds / len(pairs) < single_report.seconds

    def test_empty_batch(self):
        device = CambriconP()
        products, report = device.multiply_batch([])
        assert products == [] and report.cycles == 0
