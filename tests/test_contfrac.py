"""Tests for continued fractions and the triple-pi cross-check."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpf import MPF
from repro.mpq import MPQ
from repro.mpq.contfrac import (best_approximation, convergents,
                                expansion, from_mpf)

rationals = st.fractions(min_value=Fraction(0),
                         max_value=Fraction(10 ** 6),
                         max_denominator=10 ** 5)


class TestExpansion:
    @given(rationals)
    @settings(max_examples=60)
    def test_last_convergent_is_exact(self, value):
        q = MPQ(value.numerator, value.denominator)
        terms = expansion(q)
        assert list(convergents(terms))[-1] == q

    def test_known_expansions(self):
        assert [int(t) for t in expansion(MPQ(355, 113))] == [3, 7, 16]
        assert [int(t) for t in expansion(MPQ(649, 200))] \
            == [3, 4, 12, 4]
        assert [int(t) for t in expansion(MPQ(7, 1))] == [7]

    @given(rationals)
    @settings(max_examples=40)
    def test_convergents_alternate_around_value(self, value):
        if value.denominator == 1:
            return
        q = MPQ(value.numerator, value.denominator)
        approximations = list(convergents(expansion(q)))
        for even, odd in zip(approximations[0::2],
                             approximations[1::2]):
            assert even <= q <= odd


class TestBestApproximation:
    def test_pi_gives_355_113(self):
        from repro.mpf.transcendental import pi_agm
        best = best_approximation(pi_agm(160), 10000)
        assert (int(best.numerator), int(best.denominator)) == (355, 113)

    def test_pi_gives_22_7(self):
        from repro.mpf.transcendental import pi_agm
        best = best_approximation(pi_agm(160), 100)
        assert (int(best.numerator), int(best.denominator)) == (22, 7)

    def test_sqrt2_silver_ratio(self):
        # cf(sqrt 2) = [1; 2, 2, 2, ...]; convergents 1, 3/2, 7/5, 17/12
        terms = from_mpf(MPF(2, 160).sqrt(), 6)
        assert [int(t) for t in terms[:5]] == [1, 2, 2, 2, 2]

    def test_exact_value_recovered(self):
        value = MPF.from_ratio(17, 12, 96)
        best = best_approximation(value, 50)
        assert best == MPQ(17, 12)


class TestTriplePi:
    def test_three_algorithms_agree(self):
        # Chudnovsky binary splitting, Salamin-Brent AGM, and Machin's
        # arctangent formula: three disjoint pipelines, one constant.
        from repro.apps.pi import compute_pi, pi_machin
        from repro.mpf.transcendental import pi_agm
        digits = 60
        chudnovsky = compute_pi(digits).digits
        machin = pi_machin(digits)
        agm = pi_agm(260).to_decimal_string(digits)
        assert chudnovsky[:digits] == machin[:digits] == agm[:digits]
