"""Tests for the cache hierarchy, roofline and intermediates analyses."""

import pytest

from repro.platforms.cache import (CacheHierarchy, CacheLevel,
                                   run_apc_multiply, run_matrix_multiply,
                                   run_random_access)
from repro.platforms.intermediates import (
    KARATSUBA_NODE_INTERMEDIATE_FACTOR, intermediates_reduction_ratio,
    karatsuba_intermediate_bits, karatsuba_intermediate_megabytes,
    monolithic_total_bits, schoolbook_decomposition_rows,
    schoolbook_total_bits)
from repro.platforms.roofline import (CAMBRICON_P_PEAK_GOPS, CPU_PEAK_GOPS,
                                      RooflinePoint, binding_level,
                                      cambricon_p_roofline, roofline_points)


class TestCacheLevel:
    def test_lru_eviction(self):
        level = CacheLevel("L", 2 * 64, 1.0)  # two lines
        level.insert(0)
        level.insert(1)
        assert level.lookup(0)   # touch 0 -> 1 becomes LRU
        level.insert(2)          # evicts 1
        assert level.lookup(0)
        assert not level.lookup(1)
        assert level.lookup(2)

    def test_hit_promotes_to_upper_levels(self):
        hierarchy = CacheHierarchy()
        hierarchy.access(0)                     # miss everywhere
        first_l1 = hierarchy.levels[0].bytes_in
        hierarchy.access(8)                     # same line: L1 hit
        assert hierarchy.levels[0].bytes_in > first_l1
        assert hierarchy.levels[1].bytes_in == 64  # only the first miss


class TestWorkloadProfiles:
    def test_apc_multiply_bottlenecks_at_rf(self):
        # Figure 3(b): APC multiply is stuck at the register file while
        # remote hierarchies are almost idle.
        hierarchy = CacheHierarchy()
        run_apc_multiply(hierarchy, 64 * 1024)
        report = hierarchy.report()
        assert report.bottleneck() == "RF"
        assert report.utilization["L3"] < 0.3
        assert report.utilization["DRAM"] < 0.5

    def test_matrix_multiply_concentrates_near_l1(self):
        hierarchy = CacheHierarchy()
        run_matrix_multiply(hierarchy, 64)
        report = hierarchy.report()
        assert report.bottleneck() in ("L1", "RF")
        assert report.utilization["L1"] > 0.5
        assert report.utilization["RF"] > 0.3
        assert report.utilization["DRAM"] < 0.5

    def test_random_access_bottlenecks_remote(self):
        hierarchy = CacheHierarchy()
        run_random_access(hierarchy, 1 << 16)
        report = hierarchy.report()
        assert report.bottleneck() in ("L2", "L3", "DRAM")
        assert report.utilization["RF"] < 0.3


class TestRoofline:
    def test_attained_is_min_of_roofs(self):
        point = RooflinePoint("L", operational_intensity=2.0,
                              bandwidth_gbs=100.0, peak_gops=1000.0)
        assert point.attained_gops == 200.0
        assert point.memory_bound
        compute = RooflinePoint("L", 100.0, 100.0, 1000.0)
        assert compute.attained_gops == 1000.0
        assert not compute.memory_bound

    def test_binding_level(self):
        points = roofline_points(
            total_ops=1e9,
            traffic_bytes={"RF": 1e9, "DRAM": 1e6},
            bandwidths_gbs={"RF": 100.0, "DRAM": 10.0},
            peak_gops=100.0)
        bound = binding_level(points)
        assert bound.level == "RF"  # 1 op/B at 100 GB/s < peak

    def test_cambricon_p_compute_bound_at_large_granularity(self):
        # Figure 12: monolithic granularity raises OI until the compute
        # roof binds.
        small = cambricon_p_roofline(512)[0]
        large = cambricon_p_roofline(35904)[0]
        assert small.memory_bound
        assert not large.memory_bound
        assert large.attained_gops == CAMBRICON_P_PEAK_GOPS

    def test_peak_ratio_matches_speedup_scale(self):
        # The peak ratio explains the ~50-100x multiply speedups.
        assert 20 < CAMBRICON_P_PEAK_GOPS / CPU_PEAK_GOPS < 100


class TestIntermediates:
    def test_figure_4_totals(self):
        assert schoolbook_total_bits(1.0) == pytest.approx(20.0)
        assert monolithic_total_bits(1.0) == pytest.approx(4.0)
        rows = schoolbook_decomposition_rows(1.0)
        assert len(rows) == 7  # four products, three additions

    def test_paper_absolute_megabytes(self):
        # Section II-C: 1.72 GB at 32-bit limbs vs 223.71 MB at 1024.
        fine = karatsuba_intermediate_megabytes(1_000_000, 32)
        coarse = karatsuba_intermediate_megabytes(1_000_000, 1024)
        assert fine == pytest.approx(1720.0, rel=0.05)
        assert coarse == pytest.approx(223.71, rel=0.05)

    def test_paper_ratio(self):
        ratio = intermediates_reduction_ratio(1_000_000, 1024, 32)
        assert ratio == pytest.approx(7.68, rel=0.01)

    def test_no_intermediates_below_limb(self):
        assert karatsuba_intermediate_bits(1024, 2048) == 0.0

    def test_factor_is_per_bit(self):
        one_level = karatsuba_intermediate_bits(4096, 2048)
        assert one_level == pytest.approx(
            KARATSUBA_NODE_INTERMEDIATE_FACTOR * 4096)
