"""Tests for the CPU/GPU/AVX512/accelerator baseline models."""

import pytest

from repro import profiling
from repro.platforms import accelerators, avx512, cpu, gpu
from repro.profiling import KernelOp, OperationTrace


def trace_of(*ops) -> OperationTrace:
    trace = OperationTrace()
    trace.ops.extend(ops)
    return trace


class TestCpuModel:
    def test_mul_monotonic(self):
        previous = 0.0
        for bits in (64, 1024, 16384, 262144, 4 << 20):
            seconds = cpu.multiply_seconds(bits)
            assert seconds > previous
            previous = seconds

    def test_mul_superlinear_in_basecase(self):
        assert cpu.mul_cycles(1024, 1024) > 2 * cpu.mul_cycles(512, 512)

    def test_mul_subquadratic_at_scale(self):
        # Karatsuba and above: doubling costs < 4x.
        small = cpu.mul_cycles(1 << 18, 1 << 18)
        large = cpu.mul_cycles(1 << 19, 1 << 19)
        assert large < 3.6 * small

    def test_unbalanced_mul(self):
        balanced = cpu.mul_cycles(4096, 4096)
        unbalanced = cpu.mul_cycles(65536, 4096)
        assert balanced < unbalanced < 32 * balanced

    def test_4096_bit_ballpark(self):
        # Real GMP does a 4096-bit multiply in a few hundred ns to ~2us.
        seconds = cpu.multiply_seconds(4096)
        assert 1e-7 < seconds < 5e-6

    def test_price_trace_and_breakdown(self):
        trace = trace_of(KernelOp("mul", 10000, 10000),
                         KernelOp("add", 10000, 10000),
                         KernelOp("highlevel", 1))
        report = cpu.price_trace(trace)
        assert report.seconds > 0
        assert report.joules == pytest.approx(
            report.seconds * cpu.CPU_POWER_W)
        breakdown = report.breakdown()
        assert abs(sum(breakdown.values()) - 1.0) < 1e-9
        assert breakdown["mul"] > breakdown["add"] > breakdown["highlevel"]

    def test_div_and_sqrt_track_mul(self):
        bits = 1 << 16
        assert cpu.div_cycles(2 * bits, bits) > cpu.mul_cycles(bits, bits)
        assert cpu.sqrt_cycles(bits) == pytest.approx(
            2 * cpu.mul_cycles(bits, bits) + cpu.CALL_OVERHEAD_CYCLES)

    def test_powmod_scales_with_exponent(self):
        assert cpu.powmod_cycles(2048, 2048) > 100 * cpu.powmod_cycles(
            2048, 16)


class TestGpuModel:
    def test_batch_anchor(self):
        # Table III: amortized 1.56e-8 s at 4096 bits over a big batch.
        assert gpu.multiply_seconds(4096, batch=100000) \
            == pytest.approx(1.56e-8, rel=0.05)

    def test_launch_dominates_single_ops(self):
        single = gpu.multiply_seconds(4096, batch=1)
        batched = gpu.multiply_seconds(4096, batch=10000)
        assert single > 100 * batched

    def test_applicability_window(self):
        assert gpu.applicable(4096)
        assert not gpu.applicable(64)
        assert not gpu.applicable(1 << 20)
        with pytest.raises(ValueError):
            gpu.multiply_seconds(1 << 20)

    def test_general_purpose_slower_than_cpu(self):
        # Figure 2 (left): unbatched APC runs far slower on the GPU
        # (the full-app benchmark measures ~50x; this synthetic trace
        # of mid-size ops is comparatively GPU-friendly).
        trace = trace_of(*[KernelOp("mul", 2048, 2048)] * 50,
                         *[KernelOp("add", 2048, 2048)] * 100)
        gpu_seconds = gpu.price_trace(trace, batch=1)
        cpu_seconds = cpu.price_trace(trace).seconds
        assert gpu_seconds > 3 * cpu_seconds

    def test_pipeline_depth_amortizes_launches(self):
        trace = trace_of(*[KernelOp("mul", 2048, 2048)] * 50)
        deep = gpu.price_trace(trace, batch=1, pipeline_depth=8)
        shallow = gpu.price_trace(trace, batch=1, pipeline_depth=1)
        assert shallow > deep

    def test_energy(self):
        assert gpu.energy_joules(1.0) == pytest.approx(220.58)


class TestAvx512Model:
    def test_anchor(self):
        assert avx512.multiply_seconds(4096) == pytest.approx(5.7e-7)

    def test_karatsuba_above_crossover(self):
        below = avx512.multiply_seconds(16384)
        above = avx512.multiply_seconds(32768)
        assert 2.0 < above / below < 4.0

    def test_applicability(self):
        assert avx512.applicable(4096)
        assert not avx512.applicable(64)
        with pytest.raises(ValueError):
            avx512.multiply_seconds(1 << 21)


class TestComparators:
    def test_table_3_ratios(self):
        assert accelerators.DSP.area_ratio == pytest.approx(3.06, rel=0.01)
        assert accelerators.DSP.power_ratio == pytest.approx(2.53, rel=0.01)
        assert accelerators.BIT_TACTICAL.area_ratio \
            == pytest.approx(3.76, rel=0.01)
        assert accelerators.BIT_TACTICAL.power_ratio \
            == pytest.approx(5.02, rel=0.01)

    def test_absolute_values_near_paper(self):
        assert accelerators.DSP.area_mm2 == pytest.approx(5.80, rel=0.01)
        assert accelerators.BIT_TACTICAL.power_w \
            == pytest.approx(18.29, rel=0.01)
