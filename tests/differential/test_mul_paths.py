"""Differential cross-check of every multiplication path vs bigints.

Each kernel (schoolbook, Karatsuba, Toom-3/4/6, SSA) is exercised both
directly — with Python's ``*`` as the recursion oracle — and through
the ``mul`` dispatcher under the tiny :data:`FORCED_POLICY`, so every
regime of the threshold ladder runs on sizes a test can afford.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpn import nat
from repro.mpn.karatsuba import mul_karatsuba
from repro.mpn.mul import GMP_POLICY, MPAPCA_POLICY, PYTHON_POLICY, mul
from repro.mpn.schoolbook import mul_schoolbook
from repro.mpn.ssa import mul_ssa
from repro.mpn.toom import mul_toom
from repro.mpn.tune import _random_operand

from tests.conftest import from_nat, naturals, to_nat
from tests.differential.conftest import FORCED_POLICY, diff_examples

pytestmark = pytest.mark.differential


def oracle_mul(a, b):
    """Python-bigint multiply in Nat clothing — the recursion oracle."""
    return to_nat(from_nat(a) * from_nat(b))


class TestDirectKernels:
    """Each kernel against bigints, unconstrained operand sizes."""

    @given(a=naturals, b=naturals)
    @settings(max_examples=diff_examples(), deadline=None)
    def test_schoolbook(self, a, b):
        assert from_nat(mul_schoolbook(to_nat(a), to_nat(b))) == a * b

    @given(a=naturals, b=naturals)
    @settings(max_examples=diff_examples(), deadline=None)
    def test_karatsuba(self, a, b):
        assert from_nat(mul_karatsuba(to_nat(a), to_nat(b),
                                      oracle_mul)) == a * b

    @pytest.mark.parametrize("k", [3, 4, 6])
    def test_toom(self, k):
        @given(a=naturals, b=naturals)
        @settings(max_examples=diff_examples(), deadline=None)
        def check(a, b):
            assert from_nat(mul_toom(to_nat(a), to_nat(b), k,
                                     oracle_mul)) == a * b

        check()

    @pytest.mark.parametrize("k", [None, 1, 2, 3, 5])
    def test_ssa(self, k):
        @given(a=naturals, b=naturals)
        @settings(max_examples=diff_examples(), deadline=None)
        def check(a, b):
            assert from_nat(mul_ssa(to_nat(a), to_nat(b),
                                    oracle_mul, k)) == a * b

        check()

    @given(a=naturals, b=naturals)
    @settings(max_examples=diff_examples(), deadline=None)
    def test_kernels_agree_with_each_other(self, a, b):
        """Three-way agreement, not just each-vs-oracle."""
        an, bn = to_nat(a), to_nat(b)
        school = mul_schoolbook(an, bn)
        assert mul_karatsuba(an, bn, mul_schoolbook) == school
        assert mul_toom(an, bn, 3, mul_schoolbook) == school


class TestDispatcherRegimes:
    """The policy dispatcher under forced-tiny thresholds: operands
    sized to land in each regime of the ladder."""

    #: (regime, limb count) pairs chosen so the balanced split of the
    #: forced policy selects exactly that algorithm.
    REGIMES = [
        ("schoolbook", 2),
        ("karatsuba", 5),
        ("toom3", 9),
        ("toom4", 13),
        ("toom6", 20),
        ("ssa", 30),
    ]

    @pytest.mark.parametrize("regime,limbs", REGIMES)
    def test_forced_regime_matches_bigint(self, regime, limbs):
        for seed in range(5):
            a = _random_operand(limbs, seed)
            b = _random_operand(limbs, seed + 101)
            assert from_nat(mul(a, b, FORCED_POLICY)) \
                == from_nat(a) * from_nat(b), \
                "forced %s regime diverged (seed %d)" % (regime, seed)

    @pytest.mark.parametrize("regime,limbs", REGIMES)
    def test_unbalanced_operands(self, regime, limbs):
        """One wide, one narrow operand still routes correctly."""
        a = _random_operand(limbs, 7)
        b = _random_operand(max(1, limbs // 3), 11)
        assert from_nat(mul(a, b, FORCED_POLICY)) \
            == from_nat(a) * from_nat(b)

    @given(a=naturals, b=naturals,
           policy=st.sampled_from([GMP_POLICY, MPAPCA_POLICY,
                                   PYTHON_POLICY, FORCED_POLICY]))
    @settings(max_examples=diff_examples(), deadline=None)
    def test_all_policies_agree(self, a, b, policy):
        assert from_nat(mul(to_nat(a), to_nat(b), policy)) == a * b


class TestEdgeCases:
    @pytest.mark.parametrize("a,b", [
        (0, 0), (0, 1), (1, 0), (1, 1),
        ((1 << 32) - 1, (1 << 32) - 1),          # limb saturation
        (1 << 32, 1 << 32),                      # limb boundary
        ((1 << 2048) - 1, (1 << 2048) - 1),      # all-ones carries
        (1 << 2047, 1),                          # sparse
    ])
    def test_boundary_values_every_kernel(self, a, b):
        expected = a * b
        an, bn = to_nat(a), to_nat(b)
        assert from_nat(mul_schoolbook(an, bn)) == expected
        assert from_nat(mul_karatsuba(an, bn, oracle_mul)) == expected
        for k in (3, 4, 6):
            assert from_nat(mul_toom(an, bn, k, oracle_mul)) == expected
        assert from_nat(mul_ssa(an, bn, oracle_mul)) == expected
        assert from_nat(mul(an, bn, FORCED_POLICY)) == expected

    def test_canonical_output(self):
        """Kernels never leak high zero limbs."""
        product = mul(to_nat((1 << 64) - 1), to_nat(1), FORCED_POLICY)
        assert product == nat.normalize(product)
