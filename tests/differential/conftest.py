"""Shared machinery for the differential harness (ISSUE 2).

Every test in this package cross-checks a kernel implementation path
against Python's bigints (and against the sibling implementations of
the same operation).  Two knobs keep the suite schedulable:

* ``REPRO_DIFF_MAX_LIMBS`` caps the operand sizes generated around
  persisted crossovers (default 128 limbs; CI's nightly-style job may
  raise it);
* ``REPRO_DIFF_EXAMPLES`` scales the per-test hypothesis example count
  (default 25).
"""

from __future__ import annotations

import os

from hypothesis import strategies as st

from repro.mpn.mul import MulPolicy

#: Tiny thresholds so *every* dispatcher regime activates at sizes a
#: test can afford — the "forced-crossover" policy of the issue.
FORCED_POLICY = MulPolicy(
    name="forced",
    karatsuba_limbs=4,
    toom3_limbs=8,
    toom4_limbs=12,
    toom6_limbs=18,
    ssa_limbs=26,
)


def diff_max_limbs() -> int:
    """Operand-size cap (limbs) for crossover-boundary tests."""
    raw = os.environ.get("REPRO_DIFF_MAX_LIMBS", "").strip()
    return max(8, int(raw)) if raw else 128


def diff_examples() -> int:
    """Hypothesis example budget per differential test."""
    raw = os.environ.get("REPRO_DIFF_EXAMPLES", "").strip()
    return max(5, int(raw)) if raw else 25


def naturals_of_bits(max_bits: int, min_value: int = 0):
    """Naturals up to ``max_bits`` wide, biased toward the top band."""
    return st.one_of(
        st.integers(min_value=min_value, max_value=(1 << 64) - 1),
        st.integers(min_value=min_value, max_value=(1 << max_bits) - 1),
        st.integers(min_value=max(min_value, 1 << (max_bits - 8)),
                    max_value=(1 << max_bits) - 1),
    )
