"""The block-packed backend is bit-identical to the limb backend.

The packed kernels exist purely for speed, so the contract is strict:
at every size — and especially straddling the ``packed_mul_limbs`` /
``packed_div_limbs`` crossovers where dispatch flips backends — the
mpn dispatchers must return the same limbs whichever backend runs, and
both must match Python's bigints.  The plan layer rides the same
crossovers, so lowered ``packed`` plans are checked against ``library``
plans and the memo-key salting is checked against threshold changes.
"""

from __future__ import annotations

import dataclasses
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import mpn
from repro.mpn.div import divmod_nat
from repro.mpn.mul import GMP_POLICY, mul, sqr
from repro.mpn.packed import LINEAR_PACK_MIN_LIMBS
from repro.plan import OpSpec, select
from repro.plan.execute import run
from repro.plan.lowering import lower

from tests.conftest import from_nat, to_nat
from tests.differential.conftest import diff_examples, naturals_of_bits

pytestmark = pytest.mark.differential


def _operand(limbs: int, seed: int) -> int:
    rng = random.Random(0xB10C ^ seed)
    return rng.getrandbits(32 * limbs) | (1 << (32 * limbs - 1))


def _crossover_band(threshold: int):
    """Limb counts straddling one backend crossover, plus deep sizes."""
    band = {1, max(1, threshold - 1), threshold, threshold + 1,
            4 * threshold + 1, 64, 200}
    return sorted(band)


class TestMulCrossover:
    @pytest.mark.parametrize(
        "limbs", _crossover_band(select.active().packed_mul_limbs))
    def test_backends_agree_at_boundary(self, limbs):
        a, b = _operand(limbs, 1), _operand(limbs, 2)
        an, bn = to_nat(a), to_nat(b)
        limb = mul(an, bn, GMP_POLICY, backend="limb")
        packed = mul(an, bn, GMP_POLICY, backend="packed")
        auto = mul(an, bn, GMP_POLICY)
        assert limb == packed == auto
        assert from_nat(limb) == a * b

    @pytest.mark.parametrize(
        "limbs", _crossover_band(select.active().packed_mul_limbs))
    def test_sqr_backends_agree_at_boundary(self, limbs):
        a = _operand(limbs, 3)
        an = to_nat(a)
        assert sqr(an, GMP_POLICY, backend="limb") \
            == sqr(an, GMP_POLICY, backend="packed") \
            == sqr(an, GMP_POLICY)
        assert from_nat(sqr(an, GMP_POLICY)) == a * a

    def test_auto_resolution_flips_exactly_at_threshold(self):
        threshold = select.active().packed_mul_limbs
        assert threshold > 0, "container tuning should enable packed"
        assert select.mul_backend(threshold - 1) == "limb"
        assert select.mul_backend(threshold) == "packed"

    def test_kill_switch_forces_limb(self, monkeypatch):
        monkeypatch.setenv(select.PACKED_ENV, "0")
        threshold = select.active().packed_mul_limbs
        assert select.mul_backend(threshold + 100) == "limb"
        assert select.div_backend(threshold + 100) == "limb"

    def test_zero_threshold_disables_backend(self):
        disabled = dataclasses.replace(select.active(),
                                       packed_mul_limbs=0)
        assert select.mul_backend(10 ** 6, disabled) == "limb"

    @given(a=naturals_of_bits(4096), b=naturals_of_bits(4096))
    @settings(max_examples=diff_examples(), deadline=None)
    def test_hypothesis_mul_three_way(self, a, b):
        an, bn = to_nat(a), to_nat(b)
        packed = mul(an, bn, GMP_POLICY, backend="packed")
        assert packed == mul(an, bn, GMP_POLICY, backend="limb")
        assert from_nat(packed) == a * b


class TestDivCrossover:
    @pytest.mark.parametrize(
        "divisor_limbs", _crossover_band(select.active().packed_div_limbs))
    def test_backends_agree_at_boundary(self, divisor_limbs):
        a = _operand(2 * divisor_limbs + 3, 4)
        b = _operand(divisor_limbs, 5)
        an, bn = to_nat(a), to_nat(b)

        def limb_mul(x, y):
            return mul(x, y, GMP_POLICY, backend="limb")

        limb = divmod_nat(an, bn, limb_mul, backend="limb")
        packed = divmod_nat(an, bn, backend="packed")
        auto = divmod_nat(an, bn)
        assert limb == packed == auto
        quotient, remainder = packed
        assert (from_nat(quotient), from_nat(remainder)) == divmod(a, b)

    def test_auto_resolution_flips_exactly_at_threshold(self):
        threshold = select.active().packed_div_limbs
        assert threshold > 0, "container tuning should enable packed"
        assert select.div_backend(threshold - 1) == "limb"
        assert select.div_backend(threshold) == "packed"

    @given(a=naturals_of_bits(4096), b=naturals_of_bits(2048, 1))
    @settings(max_examples=diff_examples(), deadline=None)
    def test_hypothesis_divmod_three_way(self, a, b):
        an, bn = to_nat(a), to_nat(b)
        packed = divmod_nat(an, bn, backend="packed")
        assert packed == divmod_nat(an, bn, backend="limb")
        assert (from_nat(packed[0]), from_nat(packed[1])) \
            == divmod(a, b)

    def test_mod_backends_agree(self):
        a, b = _operand(40, 6), _operand(9, 7)
        an, bn = to_nat(a), to_nat(b)
        assert mpn.mod(an, bn, backend="packed") \
            == mpn.mod(an, bn, backend="limb")
        assert from_nat(mpn.mod(an, bn)) == a % b


class TestLinearKernelRouting:
    """add/shl/shr auto-route to packed above LINEAR_PACK_MIN_LIMBS;
    either way the dispatcher result must match bigints."""

    @pytest.mark.parametrize("limbs", (LINEAR_PACK_MIN_LIMBS - 1,
                                       LINEAR_PACK_MIN_LIMBS,
                                       LINEAR_PACK_MIN_LIMBS + 1))
    def test_add_straddles_the_gate(self, limbs):
        a, b = _operand(limbs, 8), _operand(limbs, 9)
        assert from_nat(mpn.add(to_nat(a), to_nat(b))) == a + b
        # All-ones: the carry ripples across every block boundary.
        ones = (1 << (32 * limbs)) - 1
        assert from_nat(mpn.add(to_nat(ones), to_nat(1))) == ones + 1

    @pytest.mark.parametrize("count", (0, 1, 31, 32, 255, 256, 257,
                                       5000))
    def test_shifts_straddle_the_gate(self, count):
        for limbs in (LINEAR_PACK_MIN_LIMBS - 1,
                      LINEAR_PACK_MIN_LIMBS + 1):
            a = _operand(limbs, 10)
            assert from_nat(mpn.shl(to_nat(a), count)) == a << count
            assert from_nat(mpn.shr(to_nat(a), count)) == a >> count


class TestPlanLayer:
    def test_packed_plan_matches_library_plan(self):
        a, b = _operand(64, 11), _operand(64, 12)
        spec_args = (a.bit_length(), b.bit_length())
        packed = lower(OpSpec.for_mul(*spec_args, backend="packed"),
                       use_cache=False)
        library = lower(OpSpec.for_mul(*spec_args, backend="library"),
                        use_cache=False)
        assert packed.backend == "packed"
        payload = run(packed, {"a": a, "b": b})
        assert payload["product"] == run(library,
                                         {"a": a, "b": b})["product"]
        assert payload["product"] == a * b

    def test_packed_div_plan_matches_bigint(self):
        a, b = _operand(96, 13), _operand(40, 14)
        plan = lower(OpSpec("div", a.bit_length(), b.bit_length(),
                            backend="packed"), use_cache=False)
        payload = run(plan, {"a": a, "b": b})
        assert (payload["quotient"], payload["remainder"]) \
            == divmod(a, b)

    def test_memo_key_changes_with_packed_thresholds(self):
        """Retuning the packed crossovers must invalidate cached plans:
        the fingerprint inside the memo key covers them."""
        spec = OpSpec.for_mul(64 * 32, 64 * 32)
        active = select.active()
        baseline = lower(spec, active, use_cache=False)
        for field in ("packed_mul_limbs", "packed_div_limbs"):
            moved = dataclasses.replace(
                active, **{field: getattr(active, field) + 3})
            assert lower(spec, moved, use_cache=False).memo_key \
                != baseline.memo_key, field

    def test_memo_key_separates_backends(self):
        spec_args = (64 * 32, 64 * 32)
        packed = lower(OpSpec.for_mul(*spec_args, backend="packed"),
                       use_cache=False)
        library = lower(OpSpec.for_mul(*spec_args, backend="library"),
                        use_cache=False)
        assert packed.memo_key != library.memo_key
