"""Differential: specialized kernels vs generic recursion vs bigints.

The compiled straight-line kernels (:mod:`repro.plan.codegen`) must be
bit-identical to the generic schedule-walking dispatchers AND to a
Python-bigint oracle — at every figure-11 ladder point, around every
threshold crossover (where the unrolled recursion actually goes
multi-level), under the killswitch, and across retunes (which must
strand every persisted kernel via the memo key).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.mpn import nat
from repro.mpn.div import divmod_nat
from repro.mpn.mul import mul, sqr
from repro.mpn.tune import _random_operand, tuned_policy
from repro.plan import codegen, select
from repro.plan.schedule import derive_schedule

from tests.conftest import from_nat

pytestmark = pytest.mark.differential

#: The paper's figure-11 sweep sizes (bits) — the same ladder the
#: kernel benchmark and serve warm start use.
FIG11_LADDER = (1024, 4096, 16384, 65536)

#: Forced-tiny thresholds: every mul regime activates at sizes a test
#: can afford, and the packed/specialize crossovers are disabled so
#: emitted kernels unroll the *limb* ladder multi-level.
FORCED = dataclasses.replace(
    select.active(), karatsuba_limbs=4, toom3_limbs=8, toom4_limbs=12,
    toom6_limbs=18, ssa_limbs=26, packed_mul_limbs=0,
    packed_div_limbs=0, specialize_limbs=2)


@pytest.fixture(autouse=True)
def isolated_codegen(tmp_path, monkeypatch):
    """Route the codegen store to a temp dir; start with no residents."""
    from repro.parallel import cache as cache_mod
    monkeypatch.setenv(cache_mod.CACHE_DIR_ENV, str(tmp_path / "cache"))
    cache_mod._REGISTRY.pop("codegen", None)
    saved = dict(codegen._KERNELS)
    codegen._KERNELS.clear()
    yield
    cache_mod._REGISTRY.pop("codegen", None)
    codegen._KERNELS.clear()
    codegen._KERNELS.update(saved)


def compiled(op, limbs, thresholds):
    """Emit + compile directly from the schedule (no cache layer)."""
    schedule = derive_schedule(op, limbs, thresholds)
    return codegen.compile_source(codegen.emit_source(schedule), "test")


class TestFig11Ladder:
    """Three-way bit-identity at every figure-11 sweep point."""

    @pytest.mark.parametrize("bits", FIG11_LADDER)
    def test_mul_three_way(self, bits):
        limbs = bits // nat.LIMB_BITS
        a = _random_operand(limbs, bits)
        b = _random_operand(limbs, bits + 7)
        policy = tuned_policy()
        specialized = mul(a, b, policy, backend="specialized")
        generic = mul(a, b, policy)
        assert specialized == generic
        assert from_nat(specialized) == from_nat(a) * from_nat(b)

    @pytest.mark.parametrize("bits", FIG11_LADDER)
    def test_sqr_three_way(self, bits):
        limbs = bits // nat.LIMB_BITS
        a = _random_operand(limbs, bits + 13)
        policy = tuned_policy()
        specialized = sqr(a, policy, backend="specialized")
        generic = sqr(a, policy)
        assert specialized == generic
        assert from_nat(specialized) == from_nat(a) ** 2

    @pytest.mark.parametrize("bits", FIG11_LADDER)
    def test_div_three_way(self, bits):
        limbs = bits // nat.LIMB_BITS
        a = _random_operand(2 * limbs, bits)
        b = _random_operand(limbs, bits + 7)
        specialized = divmod_nat(a, b, backend="specialized")
        generic = divmod_nat(a, b)
        assert specialized == generic
        quotient, remainder = divmod(from_nat(a), from_nat(b))
        assert from_nat(specialized[0]) == quotient
        assert from_nat(specialized[1]) == remainder


class TestCrossoverNeighborhoods:
    """Multi-level unrolled kernels around every forced crossover."""

    CROSSOVERS = ("karatsuba_limbs", "toom3_limbs", "toom4_limbs",
                  "toom6_limbs", "ssa_limbs")

    @pytest.mark.parametrize("field", CROSSOVERS)
    def test_mul_around_crossover(self, field):
        pivot = getattr(FORCED, field)
        kernels = {}
        for limbs in (max(1, pivot - 1), pivot, pivot + 1):
            kernel = kernels.get(limbs)
            if kernel is None:
                kernel = kernels[limbs] = compiled("mul", limbs, FORCED)
            for seed in range(3):
                a = _random_operand(limbs, seed)
                b = _random_operand(limbs, seed + 101)
                generic = mul(a, b, FORCED.policy(), backend="limb")
                assert kernel(a, b) == generic
                assert from_nat(generic) == from_nat(a) * from_nat(b)

    @pytest.mark.parametrize("field", CROSSOVERS)
    def test_sqr_around_crossover(self, field):
        pivot = getattr(FORCED, field)
        for limbs in (max(1, pivot - 1), pivot + 1):
            kernel = compiled("sqr", limbs, FORCED)
            a = _random_operand(limbs, limbs)
            generic = sqr(a, FORCED.policy(), backend="limb")
            assert kernel(a) == generic
            assert from_nat(generic) == from_nat(a) ** 2

    def test_unbalanced_and_empty_operands(self):
        """Unrolled kernels stay exact far from their nominal width."""
        kernel = compiled("mul", FORCED.ssa_limbs + 8, FORCED)
        cases = [(0, 10), (10, 0), (1, 40), (40, 3), (3, 1)]
        for la, lb in cases:
            a = _random_operand(la, la + 1) if la else []
            b = _random_operand(lb, lb + 2) if lb else []
            assert from_nat(kernel(a, b)) == from_nat(a) * from_nat(b)

    def test_div_newton_with_inlined_mul_chain(self):
        limbs = 80
        kernel = compiled("div", limbs, FORCED)
        a = _random_operand(2 * limbs, 5)
        b = _random_operand(limbs, 9)
        quotient, remainder = kernel(a, b)
        expect_q, expect_r = divmod(from_nat(a), from_nat(b))
        assert from_nat(quotient) == expect_q
        assert from_nat(remainder) == expect_r


class TestKillswitch:
    """REPRO_CODEGEN=0 removes specialization without changing answers."""

    def test_kernel_for_returns_none(self, monkeypatch):
        monkeypatch.setenv(codegen.CODEGEN_ENV, "0")
        assert not codegen.enabled()
        assert codegen.kernel_for("mul", 512) is None
        assert codegen.warm_start() == 0

    def test_dispatchers_fall_back_bit_identically(self, monkeypatch):
        a = _random_operand(64, 1)
        b = _random_operand(64, 2)
        live = mul(a, b, tuned_policy(), backend="specialized")
        monkeypatch.setenv(codegen.CODEGEN_ENV, "0")
        killed = mul(a, b, tuned_policy(), backend="specialized")
        assert killed == live
        assert from_nat(killed) == from_nat(a) * from_nat(b)
        dq, dr = divmod_nat(a, b, backend="specialized")
        eq, er = divmod(from_nat(a), from_nat(b))
        assert (from_nat(dq), from_nat(dr)) == (eq, er)

    def test_auto_selection_stops_resolving_specialized(self, monkeypatch):
        from repro.plan import OpSpec
        from repro.plan.lowering import lower
        from repro.runtime.mpapca import MONOLITHIC_MAX_BITS
        spec = OpSpec.for_mul(MONOLITHIC_MAX_BITS + 1,
                              MONOLITHIC_MAX_BITS + 1)
        assert lower(spec, use_cache=False).backend == "specialized"
        monkeypatch.setenv(codegen.CODEGEN_ENV, "0")
        assert not select.specialize("mul", 1 << 20)
        assert lower(spec, use_cache=False).backend != "specialized"


class TestRetuneInvalidation:
    """A retune strands every kernel persisted under the old tuning."""

    def test_cache_key_embeds_the_fingerprint(self):
        thresholds = select.active()
        retuned = dataclasses.replace(thresholds, karatsuba_limbs=7)
        key = codegen.cache_key("mul", 512, thresholds)
        assert codegen.cache_key("mul", 512, retuned) != key
        assert str(codegen.CODEGEN_SCHEMA_VERSION) in key

    def test_retune_is_a_cache_miss_not_a_stale_hit(self):
        thresholds = select.active()
        assert codegen.kernel_for("mul", 256, thresholds) is not None
        status = codegen.specialization_status("mul", 256, thresholds)
        assert status["persisted"] and status["compiled"]
        retuned = dataclasses.replace(thresholds, toom3_limbs=99)
        stale = codegen.specialization_status("mul", 256, retuned)
        assert not stale["persisted"] and not stale["compiled"]
        # The retuned kernel compiles fresh, under its own key.
        assert codegen.kernel_for("mul", 256, retuned) is not None
        assert codegen.specialization_status(
            "mul", 256, retuned)["persisted"]

    def test_corrupted_persisted_source_is_rejected(self):
        thresholds = select.active()
        key = codegen.cache_key("mul", 128, thresholds)
        cache = codegen.codegen_cache()
        cache.put(key, {"source": "def kernel(a, b):\n    return []\n",
                        "sha256": "not-the-hash"})
        before = codegen.rejected_count()
        kernel = codegen.kernel_for("mul", 128, thresholds)
        assert codegen.rejected_count() == before + 1
        a = _random_operand(128, 3)
        b = _random_operand(128, 4)
        assert from_nat(kernel(a, b)) == from_nat(a) * from_nat(b)

    def test_clear_drops_residents_and_disk(self):
        assert codegen.kernel_for("mul", 64) is not None
        assert codegen.clear() > 0
        assert codegen.stats()["resident_kernels"] == 0
        assert codegen.stats()["persisted_entries"] == 0
