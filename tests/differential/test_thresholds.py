"""Correctness around every *persisted* crossover (ISSUE 2).

Whatever thresholds ``repro tune`` has written (or the checked-in
defaults, if none), the dispatcher must be exact at limbs t-1, t, t+1
for every crossover in the ladder — the sizes where the algorithm
switch actually happens.  Division crossovers get the same treatment.
"""

from __future__ import annotations

import pytest

from repro.mpn import burnikel_ziegler as bz_mod
from repro.mpn.burnikel_ziegler import divmod_bz
from repro.mpn.div import divmod_schoolbook
from repro.mpn.mul import mul
from repro.mpn.tune import (Thresholds, _random_operand,
                            active_thresholds, default_thresholds)

from tests.conftest import from_nat
from tests.differential.conftest import FORCED_POLICY, diff_max_limbs

pytestmark = pytest.mark.differential

ACTIVE = active_thresholds()


def boundary_sizes(threshold: int) -> list:
    """Limb counts straddling a crossover, capped for test runtime."""
    cap = diff_max_limbs()
    return sorted({max(1, min(cap, threshold + delta))
                   for delta in (-1, 0, 1)})


def crossover_params():
    """(name, limbs) for every persisted crossover within the cap."""
    params = []
    for name, threshold in ACTIVE.mul_crossovers():
        if threshold > diff_max_limbs():
            continue
        for limbs in boundary_sizes(threshold):
            params.append(pytest.param(name, limbs,
                                       id="%s-%dL" % (name, limbs)))
    return params


class TestPersistedMulCrossovers:
    def test_active_thresholds_are_well_formed(self):
        ACTIVE.validate()

    @pytest.mark.parametrize("name,limbs", crossover_params())
    def test_exact_at_boundary(self, name, limbs):
        policy = ACTIVE.policy()
        for seed in range(3):
            a = _random_operand(limbs, seed)
            b = _random_operand(limbs, seed + 31)
            assert from_nat(mul(a, b, policy)) \
                == from_nat(a) * from_nat(b), \
                "%s crossover wrong at %d limbs (seed %d)" \
                % (name, limbs, seed)

    def test_forced_policy_covers_the_whole_ladder(self):
        """Even if the persisted crossovers sit above the cap, the
        forced-tiny policy guarantees every regime was exercised."""
        for name, threshold in (
                Thresholds(karatsuba_limbs=FORCED_POLICY.karatsuba_limbs,
                           toom3_limbs=FORCED_POLICY.toom3_limbs,
                           toom4_limbs=FORCED_POLICY.toom4_limbs,
                           toom6_limbs=FORCED_POLICY.toom6_limbs,
                           ssa_limbs=FORCED_POLICY.ssa_limbs)
                .mul_crossovers()):
            for limbs in boundary_sizes(threshold):
                a = _random_operand(limbs, limbs)
                b = _random_operand(limbs, limbs + 1)
                assert from_nat(mul(a, b, FORCED_POLICY)) \
                    == from_nat(a) * from_nat(b), \
                    "forced %s boundary wrong at %d limbs" % (name, limbs)


class TestPersistedDivisionCrossovers:
    def test_bz_exact_at_persisted_boundary(self):
        threshold = min(ACTIVE.bz_limbs, diff_max_limbs())
        saved = bz_mod.BZ_THRESHOLD_LIMBS
        bz_mod.BZ_THRESHOLD_LIMBS = threshold
        try:
            mul_fn = lambda x, y: mul(x, y, ACTIVE.policy())  # noqa: E731
            for limbs in boundary_sizes(threshold):
                a = _random_operand(2 * limbs, limbs)
                b = _random_operand(limbs, limbs + 17)
                quotient, remainder = divmod_bz(a, b, mul_fn)
                assert (from_nat(quotient), from_nat(remainder)) \
                    == divmod(from_nat(a), from_nat(b))
        finally:
            bz_mod.BZ_THRESHOLD_LIMBS = saved

    def test_schoolbook_agrees_at_the_same_sizes(self):
        threshold = min(ACTIVE.bz_limbs, diff_max_limbs())
        for limbs in boundary_sizes(threshold):
            a = _random_operand(2 * limbs, limbs)
            b = _random_operand(limbs, limbs + 17)
            quotient, remainder = divmod_schoolbook(a, b)
            assert (from_nat(quotient), from_nat(remainder)) \
                == divmod(from_nat(a), from_nat(b))


class TestDefaultsShipWithThePackage:
    def test_checked_in_defaults_load(self):
        defaults = default_thresholds()
        defaults.validate()
        assert defaults.karatsuba_limbs >= 2

    def test_default_policy_is_exact_at_small_sizes(self):
        policy = default_thresholds().policy("default")
        for limbs in (1, 2, 3, 8):
            a = _random_operand(limbs, limbs)
            b = _random_operand(limbs, limbs + 3)
            assert from_nat(mul(a, b, policy)) \
                == from_nat(a) * from_nat(b)
