"""The rns backend is bit-identical to the limb/packed backends.

The residue-number-system kernels exist purely for batch fan-out and
Montgomery-free exponentiation speed, so the contract is strict: at
every size — and especially straddling the ``rns_mul_limbs`` /
``rns_powmod_limbs`` crossovers where dispatch flips backends — the
mpn dispatchers must return the same limbs whichever backend runs, and
all of them must match Python's bigints.  The plan layer rides the
same crossovers, so lowered ``rns`` plans are checked against
``library`` plans, the batch routes against their serial oracles, and
the memo-key salting against threshold changes.
"""

from __future__ import annotations

import dataclasses
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import mpn
from repro.core.accelerator import CambriconP
from repro.mpn.mul import GMP_POLICY, mul, sqr
from repro.plan import OpSpec, select
from repro.plan.execute import plan_for_job, run, run_rns_batch
from repro.plan.lowering import lower

from tests.conftest import from_nat, to_nat
from tests.differential.conftest import diff_examples, naturals_of_bits

pytestmark = pytest.mark.differential


def _operand(limbs: int, seed: int) -> int:
    rng = random.Random(0xB10C ^ seed)
    return rng.getrandbits(32 * limbs) | (1 << (32 * limbs - 1))


def _crossover_band(threshold: int, cap: int = 200):
    """Limb counts straddling one backend crossover, plus deep sizes."""
    band = {1, max(1, threshold - 1), threshold, threshold + 1,
            4 * threshold + 1, 64, cap}
    return sorted(band)


class TestMulCrossover:
    @pytest.mark.parametrize(
        "limbs", _crossover_band(select.active().rns_mul_limbs))
    def test_backends_agree_at_boundary(self, limbs):
        a, b = _operand(limbs, 1), _operand(limbs, 2)
        an, bn = to_nat(a), to_nat(b)
        rns = mul(an, bn, GMP_POLICY, backend="rns")
        assert rns == mul(an, bn, GMP_POLICY, backend="limb") \
            == mul(an, bn, GMP_POLICY, backend="packed") \
            == mul(an, bn, GMP_POLICY)
        assert from_nat(rns) == a * b

    @pytest.mark.parametrize(
        "limbs", _crossover_band(select.active().rns_mul_limbs))
    def test_sqr_backends_agree_at_boundary(self, limbs):
        a = _operand(limbs, 3)
        an = to_nat(a)
        assert sqr(an, GMP_POLICY, backend="rns") \
            == sqr(an, GMP_POLICY, backend="limb") \
            == sqr(an, GMP_POLICY)
        assert from_nat(sqr(an, GMP_POLICY, backend="rns")) == a * a

    def test_single_mul_auto_never_selects_rns(self):
        """Serial products stay on limb/packed: the rns mul pays a
        scatter/gather round trip that only batches amortize."""
        threshold = select.active().rns_mul_limbs
        for limbs in (1, threshold, 100 * threshold + 1):
            assert select.mul_backend(limbs) in ("limb", "packed")

    def test_batch_auto_flips_exactly_at_threshold(self, monkeypatch):
        # Pin the killswitch on: CI runs this suite under REPRO_RNS=0
        # too, where auto legitimately never resolves to rns.
        monkeypatch.setenv(select.RNS_ENV, "1")
        threshold = select.active().rns_mul_limbs
        assert threshold > 0, "container tuning should enable rns"
        assert select.batch_mul_backend(threshold - 1, 8) \
            == select.mul_backend(threshold - 1)
        assert select.batch_mul_backend(threshold, 8) == "rns"
        # A batch of one is a serial product: never rns.
        assert select.batch_mul_backend(threshold + 100, 1) \
            == select.mul_backend(threshold + 100)

    def test_kill_switch_removes_rns_from_auto(self, monkeypatch):
        monkeypatch.setenv(select.RNS_ENV, "0")
        threshold = select.active().rns_mul_limbs
        assert select.batch_mul_backend(threshold + 100, 8) != "rns"
        assert select.powmod_backend(threshold + 100) == "limb"

    def test_kill_switch_keeps_explicit_rns_runnable(self, monkeypatch):
        monkeypatch.setenv(select.RNS_ENV, "0")
        a, b = _operand(8, 15), _operand(8, 16)
        assert from_nat(mul(to_nat(a), to_nat(b), GMP_POLICY,
                            backend="rns")) == a * b

    def test_zero_threshold_disables_backend(self):
        disabled = dataclasses.replace(select.active(), rns_mul_limbs=0)
        assert select.batch_mul_backend(10 ** 6, 8, disabled) != "rns"
        no_powmod = dataclasses.replace(select.active(),
                                        rns_powmod_limbs=0)
        assert select.powmod_backend(10 ** 6, no_powmod) == "limb"

    @given(a=naturals_of_bits(4096), b=naturals_of_bits(4096))
    @settings(max_examples=diff_examples(), deadline=None)
    def test_hypothesis_mul_three_way(self, a, b):
        an, bn = to_nat(a), to_nat(b)
        rns = mul(an, bn, GMP_POLICY, backend="rns")
        assert rns == mul(an, bn, GMP_POLICY, backend="limb")
        assert from_nat(rns) == a * b


class TestPowmodCrossover:
    # Capped below the mul band: one 200-limb limb-Montgomery ladder
    # alone would dominate the suite's runtime.
    @pytest.mark.parametrize(
        "limbs", _crossover_band(select.active().rns_powmod_limbs,
                                 cap=64))
    def test_backends_agree_at_boundary(self, limbs):
        base = _operand(limbs, 4)
        exponent = _operand(min(limbs, 2), 5)
        modulus = _operand(limbs, 6)
        bn, en, mn = to_nat(base), to_nat(exponent), to_nat(modulus)
        rns = mpn.powmod(bn, en, mn, backend="rns")
        assert rns == mpn.powmod(bn, en, mn, backend="limb") \
            == mpn.powmod(bn, en, mn)
        assert from_nat(rns) == pow(base, exponent, modulus)

    def test_even_modulus_agrees(self):
        base, exponent = _operand(8, 7), _operand(2, 8)
        modulus = _operand(8, 9) & ~1
        bn, en, mn = to_nat(base), to_nat(exponent), to_nat(modulus)
        assert mpn.powmod(bn, en, mn, backend="rns") \
            == mpn.powmod(bn, en, mn, backend="limb")
        assert from_nat(mpn.powmod(bn, en, mn, backend="rns")) \
            == pow(base, exponent, modulus)

    def test_auto_resolution_flips_exactly_at_threshold(self, monkeypatch):
        monkeypatch.setenv(select.RNS_ENV, "1")
        threshold = select.active().rns_powmod_limbs
        assert threshold > 0, "container tuning should enable rns"
        assert select.powmod_backend(threshold - 1) == "limb"
        assert select.powmod_backend(threshold) == "rns"

    @given(base=naturals_of_bits(512), exponent=naturals_of_bits(64),
           modulus=naturals_of_bits(512, 1))
    @settings(max_examples=diff_examples(), deadline=None)
    def test_hypothesis_powmod_three_way(self, base, exponent, modulus):
        bn, en, mn = to_nat(base), to_nat(exponent), to_nat(modulus)
        rns = mpn.powmod(bn, en, mn, backend="rns")
        assert rns == mpn.powmod(bn, en, mn, backend="limb")
        assert from_nat(rns) == pow(base, exponent, modulus)


class TestBatchPaths:
    def test_multiply_batch_rns_matches_simulate(self):
        device = CambriconP()
        pairs = [(to_nat(_operand(8, seed)),
                  to_nat(_operand(8, seed + 50)))
                 for seed in range(4)]
        simulate_products, _ = device.multiply_batch(pairs)
        rns_products, _ = device.multiply_batch(pairs, backend="rns")
        assert rns_products == simulate_products

    def test_multiply_batch_auto_rides_the_crossover(self):
        device = CambriconP()
        threshold = select.active().rns_mul_limbs
        pairs = [(to_nat(_operand(threshold + 2, seed)),
                  to_nat(_operand(threshold + 2, seed + 50)))
                 for seed in range(3)]
        simulate_products, _ = device.multiply_batch(pairs)
        auto_products, _ = device.multiply_batch(pairs, backend="auto")
        assert auto_products == simulate_products

    def test_run_rns_batch_matches_per_item_plans(self):
        mul_params = [{"a": _operand(8, seed), "b": _operand(8, seed + 9)}
                      for seed in range(3)]
        batch = run_rns_batch("mul", mul_params)
        for params, payload in zip(mul_params, batch):
            plan = lower(OpSpec.for_mul(params["a"].bit_length(),
                                        params["b"].bit_length(),
                                        backend="rns"), use_cache=False)
            assert payload == run(plan, params)
            assert payload["product"] == params["a"] * params["b"]

    def test_run_rns_batch_powmod_matches_bigints(self):
        triples = [{"base": _operand(8, seed), "exp": _operand(2, seed + 3),
                    "mod": _operand(8, seed + 6)} for seed in range(3)]
        batch = run_rns_batch("powmod", triples)
        for params, payload in zip(triples, batch):
            assert payload["value"] == pow(params["base"], params["exp"],
                                           params["mod"])


class TestPlanLayer:
    def test_rns_plan_matches_library_plan(self):
        a, b = _operand(64, 11), _operand(64, 12)
        spec_args = (a.bit_length(), b.bit_length())
        rns = lower(OpSpec.for_mul(*spec_args, backend="rns"),
                    use_cache=False)
        library = lower(OpSpec.for_mul(*spec_args, backend="library"),
                        use_cache=False)
        assert rns.backend == "rns"
        payload = run(rns, {"a": a, "b": b})
        assert payload["product"] == run(library,
                                         {"a": a, "b": b})["product"]
        assert payload["product"] == a * b

    def test_rns_powmod_plan_matches_bigint(self):
        params = {"base": _operand(12, 13), "exp": _operand(2, 14),
                  "mod": _operand(12, 15)}
        plan = plan_for_job("powmod", params, backend="rns")
        assert plan.backend == "rns"
        assert run(plan, params)["value"] \
            == pow(params["base"], params["exp"], params["mod"])

    def test_powmod_auto_lowers_to_rns_above_crossover(self, monkeypatch):
        monkeypatch.setenv(select.RNS_ENV, "1")
        threshold = select.active().rns_powmod_limbs
        params = {"base": _operand(threshold + 4, 16),
                  "exp": _operand(2, 17),
                  "mod": _operand(threshold + 4, 18)}
        plan = plan_for_job("powmod", params)
        assert plan.backend == "rns"
        assert run(plan, params)["value"] \
            == pow(params["base"], params["exp"], params["mod"])

    def test_memo_key_changes_with_rns_thresholds(self):
        """Retuning the rns crossovers must invalidate cached plans:
        the fingerprint inside the memo key covers them."""
        spec = OpSpec.for_mul(64 * 32, 64 * 32)
        active = select.active()
        baseline = lower(spec, active, use_cache=False)
        for field in ("rns_mul_limbs", "rns_powmod_limbs"):
            moved = dataclasses.replace(
                active, **{field: getattr(active, field) + 3})
            assert lower(spec, moved, use_cache=False).memo_key \
                != baseline.memo_key, field

    def test_memo_key_separates_backends(self):
        spec_args = (64 * 32, 64 * 32)
        rns = lower(OpSpec.for_mul(*spec_args, backend="rns"),
                    use_cache=False)
        library = lower(OpSpec.for_mul(*spec_args, backend="library"),
                        use_cache=False)
        packed = lower(OpSpec.for_mul(*spec_args, backend="packed"),
                       use_cache=False)
        assert len({rns.memo_key, library.memo_key,
                    packed.memo_key}) == 3
