"""Plan-lowered execution is bit-identical to direct dispatch.

The multi-layer refactor routes every request through ``OpSpec →
select → Plan → run``; this suite proves the detour is invisible: for
every operator, at sizes straddling every algorithm-crossover boundary,
executing the lowered plan yields exactly the bytes the pre-refactor
direct dispatch (and Python's bigints) produce — including when the
plan came out of the version-salted plan cache rather than a fresh
lowering, and when it runs on the device stream rather than the
library kernels.
"""

from __future__ import annotations

import random

import pytest

from repro.mpn import div as div_mod
from repro.mpn.mul import mul
from repro.plan import OpSpec
from repro.plan.execute import plan_for_job, run
from repro.plan.lowering import lower
from repro.runtime.mpapca import MONOLITHIC_MAX_BITS

from tests.conftest import from_nat, to_nat
from tests.differential.conftest import FORCED_POLICY

pytestmark = pytest.mark.differential

#: Limb sizes straddling every FORCED_POLICY crossover (k=4, t3=8,
#: t4=12, t6=18, ssa=26) plus the deep-recursion band above.
CROSSOVER_LIMBS = (1, 3, 4, 5, 7, 8, 9, 11, 12, 13, 17, 18, 19,
                   25, 26, 27, 40, 64)


def _operand(limbs: int, seed: int) -> int:
    rng = random.Random(0xC0FFEE ^ seed)
    return rng.getrandbits(32 * limbs) | (1 << (32 * limbs - 1))


class TestMulAcrossCrossovers:
    @pytest.mark.parametrize("limbs", CROSSOVER_LIMBS)
    def test_library_plan_matches_direct_dispatch(self, limbs):
        a, b = _operand(limbs, 1), _operand(limbs, 2)
        plan = lower(OpSpec.for_mul(a.bit_length(), b.bit_length(),
                                    backend="library"), FORCED_POLICY)
        payload = run(plan, {"a": a, "b": b})
        direct = from_nat(mul(to_nat(a), to_nat(b), FORCED_POLICY))
        assert payload["product"] == direct == a * b

    def test_device_plan_matches_library(self):
        from repro.core.accelerator import CambriconP
        a, b = _operand(12, 3), _operand(9, 4)
        plan = lower(OpSpec.for_mul(a.bit_length(), b.bit_length()))
        assert plan.backend == "device"
        payload = run(plan, {"a": a, "b": b}, device=CambriconP())
        assert payload["product"] == a * b

    def test_auto_boundary_straddles_monolithic_limit(self):
        import dataclasses

        from repro.plan import select

        # Pin the host-side crossovers off so the past-the-limit side
        # resolves to the library backend regardless of host tuning.
        host_free = dataclasses.replace(
            select.active(), packed_mul_limbs=0, specialize_limbs=0)
        for bits in (MONOLITHIC_MAX_BITS, MONOLITHIC_MAX_BITS + 1):
            plan = lower(OpSpec.for_mul(bits, 64), host_free,
                         use_cache=False)
            expected = "device" if bits <= MONOLITHIC_MAX_BITS \
                else "library"
            assert plan.backend == expected

    def test_auto_past_limit_prefers_specialized(self):
        import dataclasses

        from repro.plan import select

        tuned = dataclasses.replace(select.active(), specialize_limbs=2)
        plan = lower(OpSpec.for_mul(MONOLITHIC_MAX_BITS + 1, 64),
                     tuned, use_cache=False)
        assert plan.backend == "specialized"


class TestDivAcrossCrossovers:
    @pytest.fixture()
    def small_newton(self):
        saved = div_mod.NEWTON_DIV_THRESHOLD_BITS
        div_mod.NEWTON_DIV_THRESHOLD_BITS = 64
        yield
        div_mod.NEWTON_DIV_THRESHOLD_BITS = saved

    @pytest.mark.parametrize("divisor_limbs", (1, 2, 3, 8, 20))
    def test_both_regimes_match_bigint_divmod(self, divisor_limbs,
                                              small_newton):
        a = _operand(2 * divisor_limbs + 3, 5)
        b = _operand(divisor_limbs, 6)
        plan = lower(OpSpec("div", a.bit_length(), b.bit_length()),
                     FORCED_POLICY, use_cache=False)
        payload = run(plan, {"a": a, "b": b})
        assert (payload["quotient"], payload["remainder"]) \
            == divmod(a, b)
        # The plan's recorded regime is the one the kernel dispatch
        # takes at this size under the patched threshold.
        expected = "newton" if b.bit_length() > 64 else "schoolbook"
        assert plan.algorithm == expected

    def test_mod_plan_matches(self, small_newton):
        a, b = _operand(9, 7), _operand(3, 8)
        plan = lower(OpSpec("mod", a.bit_length(), b.bit_length()),
                     FORCED_POLICY, use_cache=False)
        assert run(plan, {"a": a, "b": b})["remainder"] == a % b


class TestPowmodAndApps:
    def test_powmod_matches_bigint_pow(self):
        base, exp, mod = _operand(4, 9), 65537, (1 << 127) - 1
        plan = plan_for_job("powmod", {"base": base, "exp": exp,
                                       "mod": mod})
        assert plan.algorithm == "montgomery"
        assert run(plan, {"base": base, "exp": exp, "mod": mod})[
            "value"] == pow(base, exp, mod)

    def test_pi_digits_matches_app(self):
        from repro.apps import pi
        plan = plan_for_job("pi_digits", {"digits": 30})
        payload = run(plan, {"digits": 30})
        assert payload["digits"] == pi.run(30).digits

    def test_model_cycles_matches_runtime_model(self):
        from repro.runtime import mpapca
        plan = plan_for_job("model_cycles",
                            {"op": "mul", "bits_a": 4096, "bits_b": 0})
        payload = run(plan, {"op": "mul", "bits_a": 4096, "bits_b": 0})
        assert payload["cycles"] == mpapca.mul_cycles(4096, 4096)


class TestServeOraclesAgree:
    """The refactored serve path (plan-lowered) vs the library oracle."""

    @pytest.mark.parametrize("op,params", [
        ("mul", {"a": 3 ** 300, "b": 7 ** 211}),
        ("div", {"a": 10 ** 90 + 12345, "b": 997}),
        ("powmod", {"base": 0xABCDEF, "exp": 65537,
                    "mod": (1 << 127) - 1}),
    ])
    def test_job_evaluation_is_bit_identical(self, op, params):
        from repro.serve.jobs import evaluate
        oracle = evaluate((op, params))
        payload = run(plan_for_job(op, params,
                                   backend="library"), params)
        for field, value in payload.items():
            assert int(oracle[field], 16) == value


class TestPlanCacheBitIdentity:
    def test_cached_plan_executes_identically(self):
        a, b = _operand(30, 10), _operand(30, 11)
        spec = OpSpec.for_mul(a.bit_length(), b.bit_length(),
                              backend="library")
        fresh = lower(spec, FORCED_POLICY, use_cache=False)
        cached = lower(spec, FORCED_POLICY)      # memoized round trip
        recached = lower(spec, FORCED_POLICY)    # cache hit
        assert fresh == cached == recached
        params = {"a": a, "b": b}
        assert run(fresh, params) == run(cached, params) \
            == run(recached, params) == {"product": a * b}
