"""Differential cross-check of every division path vs bigints.

Knuth-style schoolbook, Newton reciprocal, Burnikel–Ziegler recursion,
and Barrett reduction are each checked against ``divmod``/`%` and
against one another.  The Newton and BZ size thresholds are
monkeypatched *small* so the recursive paths genuinely run on
test-sized operands instead of short-circuiting to schoolbook.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.mpn import barrett as barrett_mod
from repro.mpn import burnikel_ziegler as bz_mod
from repro.mpn import div as div_mod
from repro.mpn.barrett import BarrettContext
from repro.mpn.mul import GMP_POLICY, mul

from tests.conftest import from_nat, naturals, positive_naturals, to_nat
from tests.differential.conftest import diff_examples

pytestmark = pytest.mark.differential


def oracle_mul(a, b):
    return to_nat(from_nat(a) * from_nat(b))


@pytest.fixture(scope="module")
def small_thresholds():
    """Force the recursive division paths on test-sized operands.

    Module-scoped (hypothesis forbids function-scoped fixtures under
    ``@given``); restores the production thresholds on the way out.
    """
    saved = (div_mod.NEWTON_DIV_THRESHOLD_BITS, bz_mod.BZ_THRESHOLD_LIMBS)
    div_mod.NEWTON_DIV_THRESHOLD_BITS = 64
    bz_mod.BZ_THRESHOLD_LIMBS = 2
    yield
    div_mod.NEWTON_DIV_THRESHOLD_BITS, bz_mod.BZ_THRESHOLD_LIMBS = saved


class TestSchoolbook:
    @given(a=naturals, b=positive_naturals)
    @settings(max_examples=diff_examples(), deadline=None)
    def test_matches_bigint_divmod(self, a, b):
        quotient, remainder = div_mod.divmod_schoolbook(to_nat(a),
                                                        to_nat(b))
        assert (from_nat(quotient), from_nat(remainder)) == divmod(a, b)

    @pytest.mark.parametrize("a,b", [
        (0, 1), (1, 1), (5, 7),
        ((1 << 96) - 1, (1 << 32) - 1),      # saturated limbs
        ((1 << 2000) - 1, (1 << 1000) + 1),  # wide, Knuth-D qhat stress
        (1 << 1999, 3),                      # long quotient
        ((1 << 128), (1 << 64)),             # exact power split
    ])
    def test_boundary_values(self, a, b):
        quotient, remainder = div_mod.divmod_schoolbook(to_nat(a),
                                                        to_nat(b))
        assert (from_nat(quotient), from_nat(remainder)) == divmod(a, b)


class TestNewton:
    @given(a=naturals, b=positive_naturals)
    @settings(max_examples=diff_examples(), deadline=None)
    def test_matches_bigint_divmod(self, a, b, small_thresholds):
        quotient, remainder = div_mod.divmod_newton(to_nat(a), to_nat(b),
                                                    oracle_mul)
        assert (from_nat(quotient), from_nat(remainder)) == divmod(a, b)

    def test_recursive_path_actually_runs(self, small_thresholds,
                                          monkeypatch):
        """Guard against the threshold silently short-circuiting
        everything to schoolbook."""
        calls = []
        real = div_mod._reciprocal
        monkeypatch.setattr(div_mod, "_reciprocal",
                            lambda *args: calls.append(1) or real(*args))
        a, b = (1 << 900) - 3, (1 << 300) + 7
        quotient, remainder = div_mod.divmod_newton(to_nat(a), to_nat(b),
                                                    oracle_mul)
        assert (from_nat(quotient), from_nat(remainder)) == divmod(a, b)
        assert calls, "Newton path never computed a reciprocal"


class TestBurnikelZiegler:
    @given(a=naturals, b=positive_naturals)
    @settings(max_examples=diff_examples(), deadline=None)
    def test_matches_bigint_divmod(self, a, b, small_thresholds):
        quotient, remainder = bz_mod.divmod_bz(to_nat(a), to_nat(b),
                                               oracle_mul)
        assert (from_nat(quotient), from_nat(remainder)) == divmod(a, b)

    @given(a=naturals, b=positive_naturals)
    @settings(max_examples=diff_examples(), deadline=None)
    def test_with_dispatcher_mul(self, a, b, small_thresholds):
        """BZ recursing through the real mpn multiplier, not the
        bigint oracle — the production pairing."""
        policy_mul = lambda x, y: mul(x, y, GMP_POLICY)  # noqa: E731
        quotient, remainder = bz_mod.divmod_bz(to_nat(a), to_nat(b),
                                               policy_mul)
        assert (from_nat(quotient), from_nat(remainder)) == divmod(a, b)


class TestBarrett:
    @given(value=naturals, modulus=positive_naturals)
    @settings(max_examples=diff_examples(), deadline=None)
    def test_reduce_matches_mod(self, value, modulus):
        modulus += 2                        # Barrett needs m > 1
        value %= modulus * modulus          # classic Barrett window
        context = BarrettContext(to_nat(modulus), oracle_mul)
        assert from_nat(context.reduce(to_nat(value))) == value % modulus

    @given(a=naturals, b=naturals, modulus=positive_naturals)
    @settings(max_examples=diff_examples(), deadline=None)
    def test_mul_mod(self, a, b, modulus):
        modulus += 2
        a %= modulus
        b %= modulus
        context = BarrettContext(to_nat(modulus))
        assert from_nat(context.mul_mod(to_nat(a), to_nat(b))) \
            == (a * b) % modulus

    def test_default_mul_is_the_dispatcher(self):
        context = BarrettContext(to_nat((1 << 200) + 9))
        assert context._mul is barrett_mod._default_mul


class TestThreeWayAgreement:
    @given(a=naturals, b=positive_naturals)
    @settings(max_examples=diff_examples(), deadline=None)
    def test_all_division_paths_agree(self, a, b, small_thresholds):
        an, bn = to_nat(a), to_nat(b)
        school = div_mod.divmod_schoolbook(an, bn)
        assert div_mod.divmod_newton(an, bn, oracle_mul) == school
        assert bz_mod.divmod_bz(an, bn, oracle_mul) == school
        # And Barrett on the remainder, when the window allows.
        if b > 1 and a < b * b:
            context = BarrettContext(bn, oracle_mul)
            assert context.reduce(an) == school[1]

    @given(a=naturals, b=positive_naturals)
    @settings(max_examples=diff_examples(), deadline=None)
    def test_divmod_nat_front_door(self, a, b):
        quotient, remainder = div_mod.divmod_nat(to_nat(a), to_nat(b),
                                                 oracle_mul)
        assert (from_nat(quotient), from_nat(remainder)) == divmod(a, b)
