"""Tests for the interval-arithmetic layer."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpf import MPF
from repro.mpfi import Interval
from repro.mpn.nat import MpnError

fractions = st.fractions(min_value=Fraction(-10 ** 6),
                         max_value=Fraction(10 ** 6),
                         max_denominator=10 ** 4)


def enclosing(value: Fraction, precision: int = 96) -> Interval:
    return Interval.from_ratio(value.numerator, value.denominator,
                               precision)


def surely_contains(interval: Interval, value: Fraction) -> bool:
    # Compare through exact dyadic decompositions of the bounds.
    lo_m, lo_e = interval.lo.to_fraction_parts()
    hi_m, hi_e = interval.hi.to_fraction_parts()
    lo = Fraction(int(lo_m)) * Fraction(2) ** lo_e
    hi = Fraction(int(hi_m)) * Fraction(2) ** hi_e
    return lo <= value <= hi


class TestEnclosure:
    @given(fractions, fractions)
    @settings(max_examples=60)
    def test_add_sub_mul_enclose(self, a, b):
        ia, ib = enclosing(a), enclosing(b)
        assert surely_contains(ia + ib, a + b)
        assert surely_contains(ia - ib, a - b)
        assert surely_contains(ia * ib, a * b)

    @given(fractions, fractions.filter(lambda v: abs(v) > Fraction(1, 100)))
    @settings(max_examples=40)
    def test_div_encloses(self, a, b):
        assert surely_contains(enclosing(a) / enclosing(b), a / b)

    @given(fractions.filter(lambda v: v > 0))
    @settings(max_examples=40)
    def test_sqrt_encloses(self, a):
        interval = enclosing(a).sqrt()
        # Check via squaring the bounds: lo^2 <= a <= hi^2.
        assert surely_contains(interval * interval, a)

    def test_width_grows_but_stays_tiny(self):
        # A chain of operations at 128 bits keeps the rigorous error
        # below 2^-100.
        x = Interval.from_ratio(1, 3, 128)
        y = Interval.from_ratio(7, 11, 128)
        result = (x + y) * (x - y) / y
        assert result.width() < MPF.from_ratio(1, 1 << 100, 128)


class TestStructure:
    def test_exact_point(self):
        point = Interval.exact(5, 96)
        assert point.width() == MPF(0, 96)
        assert point.contains(MPF(5, 96))

    def test_bounds_order_enforced(self):
        with pytest.raises(MpnError):
            Interval(MPF(2, 96), MPF(1, 96))

    def test_zero_division_rejected(self):
        spanning = Interval(MPF(-1, 96), MPF(1, 96))
        with pytest.raises(MpnError):
            Interval.exact(1, 96) / spanning

    def test_negative_sqrt_rejected(self):
        with pytest.raises(MpnError):
            Interval(MPF(-1, 96), MPF(1, 96)).sqrt()

    def test_midpoint_and_neg(self):
        interval = Interval(MPF(1, 96), MPF(3, 96))
        assert float(interval.midpoint()) == 2.0
        negated = -interval
        assert float(negated.lo) == -3.0 and float(negated.hi) == -1.0
