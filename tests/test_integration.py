"""Cross-module integration tests: the full reproduction pipeline."""

import pytest

from repro import mpn
from repro.apps import pi, rsa
from repro.core.accelerator import CambriconP
from repro.mpz import MPZ
from repro.platforms import cpu, gpu
from repro.runtime import mpapca
from repro.runtime.mpapca import MPApca

from tests.conftest import from_nat, to_nat


class TestTraceToPricePipeline:
    """App -> trace -> platform pricing, the Figure 13 pipeline."""

    def test_pi_priced_on_both_platforms(self):
        # At tiny digit counts the binary-splitting tree is all small
        # dispatch-bound multiplies and the CPU wins — the reason the
        # paper calls Pi the hardest app to accelerate.  The crossover
        # into Cambricon-P's favor happens by a few thousand digits.
        _, small_trace = pi.trace_run(200)
        assert cpu.price_trace(small_trace).seconds \
            < mpapca.price_trace(small_trace).seconds
        _, trace = pi.trace_run(3000)
        cpu_cost = cpu.price_trace(trace)
        camp_cost = mpapca.price_trace(trace)
        assert cpu_cost.seconds > camp_cost.seconds
        # And the energy benefit should exceed the speedup's scale.
        assert cpu_cost.joules / camp_cost.joules \
            > cpu_cost.seconds / camp_cost.seconds

    def test_rsa_speedup_grows_with_bits(self):
        speedups = []
        for bits in (128, 512):
            _, trace = rsa.trace_run(bits=bits, messages=1)
            speedups.append(cpu.price_trace(trace).seconds
                            / mpapca.price_trace(trace).seconds)
        assert speedups[1] > speedups[0]

    def test_gpu_unbatched_is_slowest(self):
        _, trace = pi.trace_run(150)
        gpu_seconds = gpu.price_trace(trace, batch=1)
        cpu_seconds = cpu.price_trace(trace).seconds
        assert gpu_seconds > cpu_seconds


class TestDeviceAgainstLibrary:
    """The accelerator simulator against the mpn kernels it replaces."""

    def test_multiply_agreement_across_sizes(self, rng):
        device = CambriconP()
        for bits in (31, 64, 129, 1000, 4096):
            a = rng.getrandbits(bits) | (1 << (bits - 1))
            b = rng.getrandbits(bits) | (1 << (bits - 1))
            via_device, _ = device.multiply(to_nat(a), to_nat(b))
            via_library = mpn.mul(to_nat(a), to_nat(b))
            assert via_device == via_library

    def test_runtime_backed_by_device_runs_an_app_kernel(self):
        # A Montgomery-style square-and-reduce step entirely on the
        # device-backed runtime.
        runtime = MPApca(use_device=True)
        modulus = (1 << 2048) - 565
        value = (1 << 2000) + 12345
        square = from_nat(runtime.mul(to_nat(value), to_nat(value)))
        assert square == value * value
        reduced = square % modulus
        assert reduced == (value * value) % modulus


class TestEndToEndNumerics:
    def test_pi_digits_through_the_full_stack(self):
        # Chudnovsky -> binary splitting -> MPZ -> mpn -> (profiled)
        # kernels; 250 digits checked against the 100-digit reference
        # prefix plus internal consistency at a second precision.
        first = pi.run(250).digits
        second = pi.run(240).digits
        assert first.startswith(pi.PI_REFERENCE_100)
        assert first.startswith(second)

    def test_rsa_on_top_of_everything(self):
        key = rsa.generate_keypair(192, seed=13)
        message = MPZ(987654321987654321)
        assert rsa.decrypt(rsa.encrypt(message, key), key) == message


class TestPolicyConsistency:
    def test_same_product_under_all_policies(self, rng):
        a = rng.getrandbits(200000)
        b = rng.getrandbits(150000)
        results = set()
        for policy in (mpn.GMP_POLICY, mpn.MPAPCA_POLICY,
                       mpn.PYTHON_POLICY):
            results.add(from_nat(mpn.mul(to_nat(a), to_nat(b), policy)))
        assert results == {a * b}
