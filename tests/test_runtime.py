"""Tests for the MPApca runtime (functional execution + cost model)."""

import pytest

from repro.core.model import DEFAULT_CONFIG
from repro.profiling import KernelOp, OperationTrace
from repro.runtime import mpapca
from repro.runtime.mpapca import (MONOLITHIC_MAX_BITS, MPApca, mul_cycles,
                                  price_trace)
from repro.platforms import cpu

from tests.conftest import from_nat, to_nat


class TestTimingModel:
    def test_monolithic_range_uses_hardware(self):
        # Below 35,904 bits one monolithic op: latency far below any
        # software recursion at the same size.
        assert mul_cycles(35904) < 2000

    def test_monotonic(self):
        previous = 0.0
        for bits in (64, 4096, 35904, 100000, 1 << 20, 1 << 23):
            cycles = mul_cycles(bits, bits)
            assert cycles >= previous
            previous = cycles

    def test_karatsuba_recursion_above_monolithic(self):
        just_below = mul_cycles(MONOLITHIC_MAX_BITS)
        just_above = mul_cycles(2 * MONOLITHIC_MAX_BITS)
        assert 2.0 < just_above / just_below < 10.0

    def test_ssa_padding_zigzag(self):
        # MPApca pads to the next power of two: crossing a 2^k boundary
        # bumps the cost visibly (Figure 11's zigzag).
        at_pow2 = mul_cycles(1 << 23)
        just_above = mul_cycles((1 << 23) + (1 << 18))
        assert just_above > at_pow2 * 1.2

    def test_speedup_bands_match_paper(self):
        # Figure 11's three regimes against the CPU model.
        def speedup(bits):
            return (cpu.multiply_seconds(bits)
                    / mpapca.multiply_seconds(bits))
        # Monolithic/fast range peaks around 100x (paper: up to 100.98).
        peak = max(speedup(b) for b in (8192, 16384, 24000, 35904))
        assert 70 < peak < 140
        # Toom range keeps tens-of-x (paper: 18.06-67.78).
        toom = [speedup(b) for b in (100000, 400000, 1600000)]
        assert all(15 < s < 90 for s in toom)
        # SSA range drops to a few-to-teens (paper: 3.87-14.89).
        ssa = [speedup(b) for b in (4 << 20, 16 << 20, 48 << 20)]
        assert all(2 < s < 20 for s in ssa)

    def test_crossover_near_1000_bits(self):
        # Below ~1 kbit the dispatch overhead lets the CPU win.
        assert cpu.multiply_seconds(64) < mpapca.multiply_seconds(64)
        assert cpu.multiply_seconds(8192) > mpapca.multiply_seconds(8192)

    def test_operator_cost_helpers(self):
        assert mpapca.add_cycles(1 << 20) > mpapca.add_cycles(1 << 10)
        assert mpapca.shift_cycles() == 40.0
        assert mpapca.div_cycles(8192, 4096) > mul_cycles(8192, 4096)
        assert mpapca.sqrt_cycles(8192) > mul_cycles(8192, 8192)
        assert mpapca.powmod_cycles(2048, 2048) \
            > 1000 * mul_cycles(2048, 2048)


class TestPriceTrace:
    def test_classes_and_totals(self):
        trace = OperationTrace()
        trace.ops.extend([KernelOp("mul", 8192, 8192),
                          KernelOp("add", 8192, 8192),
                          KernelOp("shift", 8192, 3),
                          KernelOp("highlevel", 1)])
        cost = price_trace(trace)
        assert cost.seconds > 0 and cost.joules > 0
        assert set(cost.cycles_by_class) \
            == {"mul", "add", "shift", "highlevel"}
        assert abs(sum(cost.breakdown().values()) - 1.0) < 1e-9

    def test_energy_includes_llc_traffic(self):
        light = OperationTrace()
        light.ops.append(KernelOp("shift", 1 << 24, 3))
        heavy = OperationTrace()
        heavy.ops.append(KernelOp("add", 1 << 24, 1 << 24))
        # Same ballpark seconds but the add moves far more LLC bits.
        assert price_trace(heavy).joules > price_trace(light).joules


class TestRuntimeFunctional:
    def test_operators_exact_and_accounted(self):
        runtime = MPApca()
        a, b = (1 << 5000) - 123, (1 << 4000) + 77
        assert from_nat(runtime.mul(to_nat(a), to_nat(b))) == a * b
        assert from_nat(runtime.add(to_nat(a), to_nat(b))) == a + b
        assert from_nat(runtime.sub(to_nat(a), to_nat(b))) == a - b
        assert from_nat(runtime.shift(to_nat(a), 11)) == a << 11
        assert from_nat(runtime.shift(to_nat(a), 11, left=False)) \
            == a >> 11
        assert runtime.operations == 5
        assert runtime.seconds > 0
        assert runtime.joules > 0

    def test_device_backed_multiply(self):
        runtime = MPApca(use_device=True)
        a, b = (1 << 900) - 5, (1 << 800) + 9
        assert from_nat(runtime.mul(to_nat(a), to_nat(b))) == a * b

    def test_large_multiply_falls_back_to_fast_algorithms(self):
        runtime = MPApca(use_device=True)
        a = (1 << (MONOLITHIC_MAX_BITS + 5000)) - 3
        assert from_nat(runtime.mul(to_nat(a), to_nat(a))) == a * a

    def test_cost_accumulates(self):
        runtime = MPApca()
        runtime.mul(to_nat(1 << 100), to_nat(1 << 100))
        first = runtime.cycles
        runtime.mul(to_nat(1 << 100), to_nat(1 << 100))
        assert runtime.cycles == pytest.approx(2 * first)
