"""Tests for non-default hardware configurations.

The components are parametric in q, the IPU count, the PE count and the
limb width; these tests pin the generality (the paper's architecture is
one point in this space, chosen by the lambda analysis).
"""

import random

import pytest

from repro.core.accelerator import CambriconP
from repro.core.bips import index_stream
from repro.core.bitflow import Bitflow, BitflowCollector
from repro.core.converter import Converter
from repro.core.ipu import IPU
from repro.core.model import CambriconPConfig, CambriconPModel
from repro.core.pe import ProcessingElement
from repro.mpn import nat

from tests.conftest import from_nat, to_nat


class TestConverterGenerality:
    @pytest.mark.parametrize("q", [1, 2, 3, 5])
    def test_subset_sums_for_any_q(self, q, rng):
        x_vec = [rng.getrandbits(16) for _ in range(q)]
        converter = Converter(q)
        converter.load([Bitflow(nat.nat_from_int(x)) for x in x_vec])
        collectors = [BitflowCollector() for _ in range(1 << q)]
        for _ in range(16 + q + 4):
            for collector, bit in zip(collectors, converter.step()):
                collector.push(bit)
        assert converter.drained()
        for mask in range(1 << q):
            expected = sum(x for i, x in enumerate(x_vec)
                           if (mask >> i) & 1)
            assert collectors[mask].to_int() == expected


class TestIpuGenerality:
    @pytest.mark.parametrize("q,index_bits", [(2, 16), (3, 24), (5, 32)])
    def test_inner_product_other_shapes(self, q, index_bits, rng):
        x_vec = [rng.getrandbits(index_bits) for _ in range(q)]
        y_vec = [rng.getrandbits(index_bits) for _ in range(q)]
        converter = Converter(q)
        converter.load([Bitflow(nat.nat_from_int(x)) for x in x_vec])
        ipu = IPU(q, index_bits)
        ipu.load(index_stream(y_vec, index_bits))
        collector = BitflowCollector()
        for _ in range(2 * index_bits + q + 8):
            collector.push(ipu.step(converter.step()))
        assert collector.to_int() == sum(a * b
                                         for a, b in zip(x_vec, y_vec))


class TestPeGenerality:
    @pytest.mark.parametrize("num_ipus,q", [(8, 4), (16, 2), (4, 3)])
    def test_pass_other_shapes(self, num_ipus, q, rng):
        pe = ProcessingElement(num_ipus=num_ipus, q=q)
        chunk = [rng.getrandbits(32) for _ in range(q)]
        window = [rng.getrandbits(32) for _ in range(pe.window_limbs)]
        result = pe.compute_pass(chunk, window)
        expected = 0
        for i in range(num_ipus):
            operands = [window[i + q - 1 - m] for m in range(q)]
            expected += sum(x * y for x, y
                            in zip(chunk, operands)) << (32 * i)
        assert result.slab == expected

    def test_bit_serial_matches_on_alternate_shape(self, rng):
        pe = ProcessingElement(num_ipus=8, q=2)
        chunk = [rng.getrandbits(32) for _ in range(2)]
        window = [rng.getrandbits(32) for _ in range(pe.window_limbs)]
        fast = pe.compute_pass(chunk, window)
        slow = pe.compute_pass_bit_serial(chunk, window)
        assert fast.slab == slow.slab


class TestAcceleratorConfigurations:
    @pytest.mark.parametrize("config", [
        CambriconPConfig(num_pes=8, num_ipus=8, q=4),
        CambriconPConfig(num_pes=16, num_ipus=16, q=2),
        CambriconPConfig(num_pes=4, num_ipus=32, q=4,
                         frequency_hz=1.0e9),
    ])
    def test_exactness_everywhere(self, config, rng):
        device = CambriconP(config)
        a, b = rng.getrandbits(777), rng.getrandbits(1234)
        product, report = device.multiply(to_nat(a), to_nat(b))
        assert from_nat(product) == a * b
        assert report.seconds == report.cycles / config.frequency_hz

    def test_functional_report_matches_analytic_model(self, rng):
        # The consistency promise: simulator cycles == model cycles.
        device = CambriconP()
        model = CambriconPModel()
        for bits in (100, 2048, 10000):
            a = rng.getrandbits(bits) | (1 << (bits - 1))
            _, report = device.multiply(to_nat(a), to_nat(a))
            assert report.cycles == model.multiply_cycles(bits, bits)

    def test_more_pes_never_slower(self):
        small = CambriconPModel(CambriconPConfig(num_pes=64))
        large = CambriconPModel(CambriconPConfig(num_pes=256))
        for bits in (4096, 35904, 100000):
            assert large.multiply_cycles(bits, bits) \
                <= small.multiply_cycles(bits, bits)


class TestConfigValidation:
    def test_defaults_valid(self):
        CambriconPConfig()

    @pytest.mark.parametrize("kwargs", [
        {"num_pes": 0}, {"num_ipus": 0}, {"num_ipus": 24},
        {"q": 0}, {"q": 9}, {"limb_bits": 2}, {"frequency_hz": 0.0},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CambriconPConfig(**kwargs)
