"""Tests for the instruction interface and host driver."""

import pytest

from repro.core.isa import (Driver, Instruction, Opcode, OperandRef,
                            SharedLLC)
from repro.mpn import nat
from repro.mpn.nat import MpnError

from tests.conftest import from_nat, to_nat


class TestSharedLLC:
    def test_write_read_roundtrip(self):
        llc = SharedLLC()
        ref = llc.write(3, to_nat(12345))
        assert ref.bits == 14
        assert from_nat(llc.read(ref)) == 12345
        assert from_nat(llc.read(3)) == 12345

    def test_unwritten_address_rejected(self):
        with pytest.raises(MpnError):
            SharedLLC().read(7)

    def test_traffic_accounting(self):
        llc = SharedLLC()
        llc.write(0, to_nat(1 << 99))
        llc.read(0)
        assert llc.bits_written == 100
        assert llc.bits_read == 100


class TestInstruction:
    def test_render(self):
        instruction = Instruction(Opcode.SHL, (OperandRef(0, 64),), 1,
                                  immediate=5)
        assert str(instruction) == "SHL @0[64b] -> @1 #5"

    def test_bad_descriptor_rejected(self):
        with pytest.raises(MpnError):
            OperandRef(-1, 3)


class TestDriver:
    def test_single_multiply(self, rng):
        driver = Driver()
        a, b = rng.getrandbits(1000), rng.getrandbits(900)
        ref_a = driver.alloc(to_nat(a))
        ref_b = driver.alloc(to_nat(b))
        retirements = driver.execute([
            Instruction(Opcode.MUL, (ref_a, ref_b), destination=100),
        ])
        assert from_nat(driver.result(100)) == a * b
        assert retirements[0].report.cycles > 0

    def test_composite_program(self, rng):
        # (a*b + c) >> 12, as three orders through the shared LLC.
        driver = Driver()
        a, b, c = (rng.getrandbits(500) for _ in range(3))
        ref_a, ref_b, ref_c = (driver.alloc(to_nat(v))
                               for v in (a, b, c))
        driver.execute([
            Instruction(Opcode.MUL, (ref_a, ref_b), destination=10),
        ])
        product_ref = OperandRef(10, (a * b).bit_length())
        driver.execute([
            Instruction(Opcode.ADD, (product_ref, ref_c),
                        destination=11),
            Instruction(Opcode.SHR,
                        (OperandRef(11, (a * b + c).bit_length()),),
                        destination=12, immediate=12),
        ])
        assert from_nat(driver.result(12)) == (a * b + c) >> 12
        assert driver.total_cycles > 0
        assert driver.total_seconds > 0

    def test_sub_and_shl(self, rng):
        driver = Driver()
        a = rng.getrandbits(300) | (1 << 299)
        b = rng.getrandbits(200)
        ref_a, ref_b = driver.alloc(to_nat(a)), driver.alloc(to_nat(b))
        driver.execute([
            Instruction(Opcode.SUB, (ref_a, ref_b), destination=5),
            Instruction(Opcode.SHL, (OperandRef(5, 300),),
                        destination=6, immediate=7),
        ])
        assert from_nat(driver.result(6)) == (a - b) << 7

    def test_inner_production_order(self, rng):
        driver = Driver()
        x = rng.getrandbits(32 * 6)
        y = rng.getrandbits(32 * 6)
        ref_x, ref_y = driver.alloc(to_nat(x)), driver.alloc(to_nat(y))
        driver.execute([
            Instruction(Opcode.IP, (ref_x, ref_y), destination=20),
        ])
        x_limbs = [(x >> (32 * i)) & 0xFFFFFFFF for i in range(6)]
        y_limbs = [(y >> (32 * i)) & 0xFFFFFFFF for i in range(6)]
        expected = sum(p * q for p, q in zip(x_limbs, y_limbs))
        assert from_nat(driver.result(20)) == expected

    def test_wrong_arity_rejected(self):
        driver = Driver()
        ref = driver.alloc(to_nat(1))
        with pytest.raises(MpnError):
            driver.execute([Instruction(Opcode.MUL, (ref,),
                                        destination=0)])
