"""Tests for the cycle-stepped hardware components.

Converter, IPU and GU are validated bit-for-bit against word-level
oracles, including the carry bounds the carry-parallel mechanism relies
on (Equation 2).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bips import index_stream
from repro.core.bitflow import Bitflow, BitflowCollector
from repro.core.converter import Converter
from repro.core.gu import (GatherUnit, carry_parallel_latency, gather,
                           ripple_gather_latency)
from repro.core.ipu import IPU
from repro.mpn import nat
from repro.mpn.nat import MpnError

limb_values = st.integers(min_value=0, max_value=(1 << 32) - 1)


class TestBitflow:
    @given(st.integers(min_value=0, max_value=(1 << 300) - 1))
    def test_stream_roundtrip(self, value):
        flow = Bitflow(nat.nat_from_int(value))
        collector = BitflowCollector()
        for _ in range(value.bit_length()):
            collector.push(flow.next_bit())
        assert collector.to_int() == value
        assert flow.exhausted()

    def test_bits_beyond_length_are_zero(self):
        flow = Bitflow(nat.nat_from_int(0b101))
        bits = [flow.next_bit() for _ in range(8)]
        assert bits == [1, 0, 1, 0, 0, 0, 0, 0]

    def test_rewind(self):
        flow = Bitflow(nat.nat_from_int(0b11))
        assert flow.next_bit() == 1
        flow.rewind()
        assert flow.next_bit() == 1

    def test_peek_does_not_advance(self):
        flow = Bitflow(nat.nat_from_int(0b10))
        assert flow.peek(1) == 1
        assert flow.cursor == 0


class TestConverter:
    @given(st.lists(limb_values, min_size=4, max_size=4))
    @settings(max_examples=25, deadline=None)
    def test_streams_all_subset_sums(self, x_vec):
        converter = Converter(4)
        converter.load([Bitflow(nat.nat_from_int(x)) for x in x_vec])
        collectors = [BitflowCollector() for _ in range(16)]
        for _ in range(40):  # 32 input bits + carry drain
            bits = converter.step()
            for collector, bit in zip(collectors, bits):
                collector.push(bit)
        assert converter.drained()
        for mask in range(16):
            expected = sum(x for i, x in enumerate(x_vec)
                           if (mask >> i) & 1)
            assert collectors[mask].to_int() == expected

    def test_adder_count_matches_paper(self):
        # 2^q - q - 1 bit-serial adders (11 for q = 4, Figure 9b reuse).
        assert Converter(4).adder_count == 11
        assert Converter(2).adder_count == 1
        assert Converter(5).adder_count == 26

    def test_wrong_flow_count_rejected(self):
        with pytest.raises(MpnError):
            Converter(4).load([Bitflow([])] * 3)


class TestIPU:
    @given(st.lists(limb_values, min_size=4, max_size=4),
           st.lists(limb_values, min_size=4, max_size=4))
    @settings(max_examples=20, deadline=None)
    def test_inner_product_bit_serial(self, x_vec, y_vec):
        converter = Converter(4)
        converter.load([Bitflow(nat.nat_from_int(x)) for x in x_vec])
        ipu = IPU(4, 32)
        ipu.load(index_stream(y_vec, 32))
        collector = BitflowCollector()
        for _ in range(70):
            collector.push(ipu.step(converter.step()))
        assert collector.to_int() == sum(a * b
                                         for a, b in zip(x_vec, y_vec))

    def test_index_out_of_range_rejected(self):
        with pytest.raises(MpnError):
            IPU(4, 32).load([16])

    def test_index_stream_too_long_rejected(self):
        with pytest.raises(MpnError):
            IPU(4, 8).load([0] * 9)

    def test_zero_indices_produce_zero(self):
        converter = Converter(4)
        converter.load([Bitflow(nat.nat_from_int(0xFFFFFFFF))] * 4)
        ipu = IPU(4, 32)
        ipu.load([0] * 32)
        collector = BitflowCollector()
        for _ in range(70):
            collector.push(ipu.step(converter.step()))
        assert collector.to_int() == 0


class TestGather:
    @given(st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1),
                    min_size=1, max_size=32))
    def test_matches_shifted_sum(self, partial_sums):
        result = gather(partial_sums, 32)
        expected = sum(ps << (32 * i) for i, ps in enumerate(partial_sums))
        assert result.total == expected

    @given(st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1),
                    min_size=2, max_size=32))
    def test_equation_2_carry_bound(self, partial_sums):
        # 2L-bit partial sums never generate more than a 1-bit carry.
        assert gather(partial_sums, 32).max_carry <= 1

    def test_wider_partial_sums_still_exact(self):
        # 2L+2-bit values (q=4 inner products) stay correct; the carry
        # can reach 2 in this generalized regime.
        partial_sums = [(1 << 66) - 1] * 8
        result = gather(partial_sums, 32)
        assert result.total == sum(ps << (32 * i)
                                   for i, ps in enumerate(partial_sums))
        assert result.max_carry <= 2

    def test_empty(self):
        assert gather([], 32).total == 0

    def test_latency_model_favors_carry_parallel(self):
        # The ablation the GU design rests on: selection sweep beats the
        # ripple chain as soon as more than a couple of IPUs gather.
        for num_ipus in (4, 8, 16, 32):
            assert carry_parallel_latency(num_ipus) \
                < ripple_gather_latency(num_ipus)


class TestGatherUnit:
    def test_combine_modes(self):
        rng = random.Random(7)
        gu = GatherUnit(32, 32)
        partial_sums = [rng.getrandbits(64) for _ in range(32)]
        for group in gu.valid_combines():
            results = gu.combine(partial_sums, group)
            assert len(results) == 32 // group
            for index, result in enumerate(results):
                chunk = partial_sums[index * group:(index + 1) * group]
                assert result.total == sum(ps << (32 * i)
                                           for i, ps in enumerate(chunk))

    def test_invalid_combine_rejected(self):
        with pytest.raises(MpnError):
            GatherUnit(32).combine([0] * 32, 3)

    def test_non_power_of_two_size_rejected(self):
        with pytest.raises(MpnError):
            GatherUnit(24)
