"""Exhaustive verification of the bit-serial units on small spaces.

Random testing samples the space; these tests sweep ALL inputs for
small word widths, so the Converter/IPU/GU logic is verified with the
force of a model check at those sizes.
"""

import itertools

from repro.core.bips import (bips_inner_product, generate_patterns,
                             index_stream)
from repro.core.bitflow import Bitflow, BitflowCollector
from repro.core.converter import Converter
from repro.core.gu import gather
from repro.core.ipu import IPU
from repro.mpn import nat


class TestConverterExhaustive:
    def test_q2_all_4bit_inputs(self):
        # Every (x0, x1) pair of 4-bit values: 256 combinations, all
        # four pattern flows checked bit-for-bit.
        for x0, x1 in itertools.product(range(16), range(16)):
            converter = Converter(2)
            converter.load([Bitflow(nat.nat_from_int(x0)),
                            Bitflow(nat.nat_from_int(x1))])
            collectors = [BitflowCollector() for _ in range(4)]
            for _ in range(7):  # 4 input bits + carry drain
                for collector, bit in zip(collectors, converter.step()):
                    collector.push(bit)
            assert converter.drained()
            assert collectors[0].to_int() == 0
            assert collectors[1].to_int() == x0
            assert collectors[2].to_int() == x1
            assert collectors[3].to_int() == x0 + x1


class TestIpuExhaustive:
    def test_q2_all_3bit_operands(self):
        # Every inner product of two 2-element vectors of 3-bit values:
        # 4096 combinations through the true bit-serial path.
        for x0, x1, y0, y1 in itertools.product(range(8), repeat=4):
            converter = Converter(2)
            converter.load([Bitflow(nat.nat_from_int(x0)),
                            Bitflow(nat.nat_from_int(x1))])
            ipu = IPU(2, 8)
            ipu.load(index_stream([y0, y1], 3))
            collector = BitflowCollector()
            for _ in range(12):
                collector.push(ipu.step(converter.step()))
            assert collector.to_int() == x0 * y0 + x1 * y1, \
                (x0, x1, y0, y1)


class TestGatherExhaustive:
    def test_all_2x_4bit_partial_sums(self):
        # Every pair of 4-bit partial sums at 2-bit limb offsets: the
        # carry-parallel gather against the direct shifted sum, with
        # Equation 2's bound checked everywhere.
        for ps0, ps1 in itertools.product(range(16), range(16)):
            result = gather([ps0, ps1], limb_bits=2)
            assert result.total == ps0 + (ps1 << 2)
            assert result.max_carry <= 1

    def test_all_3x_partial_sums_small(self):
        for sums in itertools.product(range(8), repeat=3):
            result = gather(list(sums), limb_bits=2)
            expected = sum(ps << (2 * i) for i, ps in enumerate(sums))
            assert result.total == expected


class TestBipsExhaustive:
    def test_q1_and_q2_complete(self):
        for q in (1, 2):
            for x_vec in itertools.product(range(8), repeat=q):
                patterns = generate_patterns(list(x_vec))
                for mask in range(1 << q):
                    expected = sum(x for i, x in enumerate(x_vec)
                                   if (mask >> i) & 1)
                    assert patterns[mask] == expected
            for x_vec in itertools.product(range(4), repeat=q):
                for y_vec in itertools.product(range(4), repeat=q):
                    got = bips_inner_product(list(x_vec), list(y_vec))
                    assert got == sum(a * b
                                      for a, b in zip(x_vec, y_vec))
