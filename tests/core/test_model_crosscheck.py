"""Analytic model vs functional simulator cross-checks (ISSUE 2).

Two invariants are pinned here:

* the analytic :class:`CambriconPModel` and the functional simulator
  agree — the device's execution reports quote exactly the model's
  cycle counts, and the PE's *stepped* bit-serial pass consumes exactly
  the model's pass latency;
* the cycle-evaluation memo cache is invisible — cached, uncached, and
  disk-roundtripped evaluations are bit-identical.
"""

from __future__ import annotations

import random
import struct

import pytest

from repro.core.accelerator import CambriconP
from repro.core.model import (CambriconPConfig, CambriconPModel,
                              cycle_cache)
from repro.core.pe import ProcessingElement
from repro.mpn import nat_from_int

CONFIGS = [
    CambriconPConfig(),
    CambriconPConfig(num_pes=16, num_ipus=8, q=2),
    CambriconPConfig(num_pes=64, num_ipus=16, q=4, limb_bits=16),
]


def bits_id(config: CambriconPConfig) -> str:
    return "%dpe-%dipu-q%d-L%d" % (config.num_pes, config.num_ipus,
                                   config.q, config.limb_bits)


class TestModelMatchesSimulator:
    @pytest.mark.parametrize("config", CONFIGS, ids=bits_id)
    @pytest.mark.parametrize("bits", [33, 128, 1000])
    def test_report_cycles_equal_model_cycles(self, config, bits):
        device = CambriconP(config)
        model = CambriconPModel(config)
        rng = random.Random(bits)
        a = nat_from_int(rng.getrandbits(bits) | (1 << (bits - 1)))
        b = nat_from_int(rng.getrandbits(bits) | (1 << (bits - 1)))
        _, report = device.multiply(a, b)
        assert report.cycles == model.multiply_cycles(bits, bits)
        assert report.seconds == model.seconds(report.cycles)

    @pytest.mark.parametrize("config", CONFIGS, ids=bits_id)
    def test_stepped_pass_consumes_model_pass_latency(self, config):
        """The bit-serially *stepped* PE and the analytic fill latency
        must agree cycle for cycle."""
        pe = ProcessingElement(config.num_ipus, config.q,
                               config.limb_bits)
        model = CambriconPModel(config)
        rng = random.Random(7)
        limit = (1 << config.limb_bits) - 1
        chunk = [rng.randint(1, limit) for _ in range(config.q)]
        window = [rng.randint(1, limit)
                  for _ in range(pe.window_limbs)]
        stepped = pe.compute_pass_bit_serial(chunk, window)
        assert stepped.cycles == model.pass_latency_cycles

    def test_bit_serial_and_word_paths_agree(self):
        config = CONFIGS[1]
        device = CambriconP(config)
        rng = random.Random(42)
        a = nat_from_int(rng.getrandbits(300) | (1 << 299))
        b = nat_from_int(rng.getrandbits(290) | (1 << 289))
        fast, fast_report = device.multiply(a, b)
        slow, slow_report = device.multiply(a, b, bit_serial=True)
        assert fast == slow
        assert fast_report.cycles == slow_report.cycles


class TestCacheTransparency:
    def test_cached_equals_uncached_bitwise(self):
        model = CambriconPModel()
        for bits_a, bits_b in [(64, 64), (4096, 4096), (35904, 17),
                               (100, 1000)]:
            for dispatch in (True, False):
                cached = model.multiply_cycles(bits_a, bits_b, dispatch)
                uncached = model._multiply_cycles_uncached(
                    bits_a, bits_b, dispatch)
                assert struct.pack("<d", cached) \
                    == struct.pack("<d", uncached)
            cached = model.multiply_throughput_cycles(bits_a, bits_b)
            uncached = model._multiply_throughput_cycles_uncached(
                bits_a, bits_b)
            assert struct.pack("<d", cached) \
                == struct.pack("<d", uncached)

    def test_disk_roundtrip_is_bit_identical(self, tmp_path,
                                             monkeypatch):
        from repro.parallel import cache as cache_mod
        monkeypatch.setenv(cache_mod.CACHE_DIR_ENV, str(tmp_path))
        model = CambriconPModel()
        cache = cycle_cache()
        cache.clear()
        first = model.multiply_cycles(8192, 8192)
        assert cache.save() is not None
        cache.clear()
        assert cache.load() > 0
        # Served straight from the reloaded disk entries.
        hits_before = cache.hits
        second = model.multiply_cycles(8192, 8192)
        assert cache.hits == hits_before + 1
        assert struct.pack("<d", first) == struct.pack("<d", second)

    def test_distinct_configs_do_not_collide(self):
        small = CambriconPModel(CONFIGS[1])
        large = CambriconPModel(CONFIGS[0])
        assert small.multiply_cycles(2048, 2048) \
            != large.multiply_cycles(2048, 2048)
