"""Tests for the cycle model and the area/power/energy model."""

import pytest

from repro.core.energy import (AREA_MM2_PER_GE, PAPER_AREA_MM2,
                               PAPER_POWER_W, area_mm2, energy_joules,
                               gate_counts, multiplier_area_mm2,
                               multiplier_ratios, power_w)
from repro.core.model import (DEFAULT_CONFIG, CambriconPConfig,
                              CambriconPModel)


class TestCycleModel:
    def setup_method(self):
        self.model = CambriconPModel()

    def test_pass_constants(self):
        assert self.model.pass_occupancy_cycles == 32
        assert self.model.pass_latency_cycles == 70

    def test_throughput_anchor_4096(self):
        # Table III: a batched 4096x4096 multiply amortizes to 1.6e-8 s.
        seconds = self.model.multiply_throughput_seconds(4096, 4096)
        assert abs(seconds - 1.6e-8) < 2e-9

    def test_latency_exceeds_throughput(self):
        for bits in (64, 4096, 35904):
            assert self.model.multiply_cycles(bits, bits) \
                > self.model.multiply_throughput_cycles(bits, bits)

    def test_cycles_monotonic_in_size(self):
        previous = 0.0
        for bits in (64, 1024, 8192, 35904, 70000):
            cycles = self.model.multiply_cycles(bits, bits)
            assert cycles >= previous
            previous = cycles

    def test_monolithic_limit_is_paper_value(self):
        assert DEFAULT_CONFIG.monolithic_max_bits == 35904

    def test_add_is_bandwidth_dominated_at_scale(self):
        small = self.model.add_cycles(1024)
        large = self.model.add_cycles(1 << 20)
        assert large > small
        # Streaming term: tripling the bits roughly triples the cycles.
        ratio = self.model.add_cycles(3 << 20) / large
        assert 2.0 < ratio < 3.5

    def test_shift_is_dispatch_only(self):
        assert self.model.shift_cycles() == 40
        assert self.model.shift_cycles(include_dispatch=False) == 0

    def test_inner_product_cycles_scale(self):
        short = self.model.inner_product_cycles(16, 32)
        long = self.model.inner_product_cycles(1 << 20, 32)
        assert long > short


class TestEnergyModel:
    def test_anchored_at_paper_design_point(self):
        # Section VII-A: 1.894 mm^2 and 3.644 W for 256 PEs x 32 IPUs.
        assert abs(area_mm2() - PAPER_AREA_MM2) < 1e-9
        assert abs(power_w() - PAPER_POWER_W) < 1e-9

    def test_scales_with_pe_count(self):
        half = CambriconPConfig(num_pes=128)
        assert area_mm2(half) < PAPER_AREA_MM2
        assert area_mm2(half) > PAPER_AREA_MM2 * 0.4

    def test_power_scales_with_frequency(self):
        slow = CambriconPConfig(frequency_hz=1.0e9)
        assert abs(power_w(slow) - PAPER_POWER_W / 2) < 1e-9

    def test_component_shares_sum_to_one(self):
        shares = gate_counts().shares()
        assert abs(sum(shares.values()) - 1.0) < 1e-9
        # IPUs dominate the array, as the microarchitecture suggests.
        assert max(shares, key=shares.get) == "ipu"

    def test_energy_includes_llc(self):
        base = energy_joules(1e-6)
        with_traffic = energy_joules(1e-6, llc_bits=1e9)
        assert with_traffic > base

    def test_unit_constants_positive(self):
        assert AREA_MM2_PER_GE > 0


class TestMultiplierScaling:
    def test_section_3_claims(self):
        # 512-bit vs 32-bit: 189.36x area, 521.67x energy, 5.74x delay.
        ratios = multiplier_ratios(512)
        assert abs(ratios["area"] - 189.36) / 189.36 < 0.01
        assert abs(ratios["energy"] - 521.67) / 521.67 < 0.01
        assert abs(ratios["delay"] - 5.74) / 5.74 < 0.01

    def test_512_bit_area_anchor(self):
        assert abs(multiplier_area_mm2(512) - 0.16) < 1e-6

    def test_wide_multiplier_dwarfs_cambricon_p_pe(self):
        # The motivation: a PE's silicon is far below a monolithic
        # 512-bit array multiplier's.
        per_pe_area = area_mm2() / DEFAULT_CONFIG.num_pes
        assert multiplier_area_mm2(512) > 10 * per_pe_area
