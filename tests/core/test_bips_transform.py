"""Tests for the inner-product transformation and the BIPS scheme."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bips import (best_q, bips_inner_product, bops_add,
                             bops_bips, bops_bit_serial, bops_mul,
                             generate_patterns, index_stream, lambda_ratio,
                             measured_bops_bips, measured_bops_bit_serial,
                             pattern_matrix)
from repro.core.transform import (convolution_terms, evaluate_term,
                                  from_limbs, reconstruct,
                                  reuse_statistics, to_limbs)
from repro.mpn import nat

from tests.conftest import from_nat, naturals, to_nat

limb_values = st.integers(min_value=0, max_value=(1 << 32) - 1)
vectors = st.integers(min_value=1, max_value=6).flatmap(
    lambda q: st.tuples(st.lists(limb_values, min_size=q, max_size=q),
                        st.lists(limb_values, min_size=q, max_size=q)))


class TestLimbDecomposition:
    @given(naturals)
    def test_roundtrip(self, value):
        limbs = to_limbs(to_nat(value))
        assert from_nat(from_limbs(limbs)) == value

    @given(naturals, st.sampled_from([8, 16, 32, 64]))
    def test_roundtrip_other_widths(self, value, width):
        limbs = to_limbs(to_nat(value), width)
        assert from_nat(from_limbs(limbs, width)) == value
        assert all(0 <= limb < (1 << width) for limb in limbs)

    def test_zero_has_one_limb(self):
        assert to_limbs([]) == [0]


class TestConvolution:
    @given(st.integers(min_value=1, max_value=12),
           st.integers(min_value=1, max_value=12))
    def test_term_structure(self, nx, ny):
        terms = convolution_terms(nx, ny)
        assert len(terms) == nx + ny - 1
        total_pairs = sum(len(term.pairs) for term in terms)
        assert total_pairs == nx * ny
        for term in terms:
            for i, j in term.pairs:
                assert i + j == term.t
                assert 0 <= i < nx and 0 <= j < ny

    @given(naturals, naturals)
    @settings(max_examples=50)
    def test_equation_1_reconstruction(self, a, b):
        # The paper's Equation (1): x*y = sum_t 2^(tL) IP(t).
        if a == 0 or b == 0:
            return
        x_limbs = to_limbs(to_nat(a))
        y_limbs = to_limbs(to_nat(b))
        terms = convolution_terms(len(x_limbs), len(y_limbs))
        partials = [to_nat(evaluate_term(term, x_limbs, y_limbs))
                    for term in terms]
        assert from_nat(reconstruct(partials)) == a * b

    def test_reuse_statistics(self):
        with_reuse, without = reuse_statistics(4, 2)
        assert with_reuse == 6
        assert without == 2 * 8  # every pair fetched twice
        assert with_reuse < without


class TestPatternMatrix:
    @pytest.mark.parametrize("q", [1, 2, 3, 4, 5])
    def test_columns_enumerate_binary(self, q):
        matrix = pattern_matrix(q)
        assert len(matrix) == q and len(matrix[0]) == 1 << q
        for column in range(1 << q):
            value = sum(matrix[row][column] << row for row in range(q))
            assert value == column

    @given(st.lists(limb_values, min_size=4, max_size=4))
    def test_patterns_are_subset_sums(self, x_vec):
        patterns = generate_patterns(x_vec)
        for mask in range(16):
            expected = sum(x for i, x in enumerate(x_vec)
                           if (mask >> i) & 1)
            assert patterns[mask] == expected

    def test_pattern_zero_is_zero(self):
        assert generate_patterns([5, 6, 7, 8])[0] == 0


class TestIndexStream:
    @given(st.lists(limb_values, min_size=4, max_size=4))
    def test_index_recovers_bits(self, y_vec):
        stream = index_stream(y_vec, 32)
        for b, index in enumerate(stream):
            for i, y in enumerate(y_vec):
                assert (index >> i) & 1 == (y >> b) & 1

    def test_zero_vector_gives_zero_indices(self):
        assert index_stream([0, 0], 8) == [0] * 8


class TestBipsEquivalence:
    @given(vectors)
    def test_matches_dot_product(self, pair):
        x_vec, y_vec = pair
        expected = sum(a * b for a, b in zip(x_vec, y_vec))
        assert bips_inner_product(x_vec, y_vec) == expected

    def test_paper_example_shape(self):
        # Two-element example of Figures 6 and 8.
        x_vec = [0b0101, 0b1011]
        y_vec = [0b0110, 0b0011]
        assert bips_inner_product(x_vec, y_vec) \
            == 0b0101 * 0b0110 + 0b1011 * 0b0011

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bips_inner_product([1], [1, 2])


class TestBopsModel:
    def test_bops_definitions(self):
        assert bops_add(8, 12) == 12
        assert bops_mul(8, 12) == 96

    def test_bit_serial_formula(self):
        assert bops_bit_serial(4, 32, 32) == 4 * 32 * 32

    def test_bips_formula(self):
        assert bops_bips(4, 32, 32) == (16 - 4 - 1) * 32 + 32 * (32 + 4)

    def test_lambda_paper_value(self):
        # Section IV-B: lambda_min = 0.367 at q = 4 for p_y = 32.
        assert abs(lambda_ratio(4, 32) - 0.3672) < 1e-3
        q, value = best_q(32)
        assert q == 4
        assert abs(value - lambda_ratio(4, 32)) < 1e-12

    def test_lambda_matches_bops_ratio_asymptotically(self):
        # The paper's lambda keeps 2^q - 1 pattern additions in its
        # simplification where the exact count is 2^q - q - 1, so the
        # closed form sits slightly above the exact ratio.
        q, p_x, p_y = 4, 4096, 32
        ratio = bops_bips(q, p_x, p_y) / bops_bit_serial(q, p_x, p_y)
        assert ratio <= lambda_ratio(q, p_y) + 1e-9
        assert abs(ratio - lambda_ratio(q, p_y)) < 0.05

    # Dense 32-bit words built constructively (>= 12 set bits) so the
    # strategy never needs rejection filtering.
    _dense_words = st.sets(st.integers(min_value=0, max_value=31),
                           min_size=12, max_size=32).map(
        lambda positions: sum(1 << p for p in positions))

    @given(st.lists(_dense_words, min_size=4, max_size=4),
           st.lists(_dense_words, min_size=4, max_size=4))
    @settings(max_examples=60)
    def test_measured_bips_cheaper_on_dense_streams(self, x_vec, y_vec):
        # The paper's operating regime: dense 32-bit streams, where the
        # repeated-computation elimination pays for the fixed pattern
        # generation.  On single-set-bit operands, zero-skipping
        # bit-serial is nearly free and BIPS loses — which is why
        # lambda is derived for p_y = 32 dense flows.
        bips_cost = measured_bops_bips(x_vec, y_vec)
        serial_cost = measured_bops_bit_serial(x_vec, y_vec)
        assert bips_cost < serial_cost * 0.8

    def test_sparse_operands_cost_little(self):
        # Bit-sparsity: zero index slices are skipped entirely.
        x_vec = [0xFFFFFFFF] * 4
        sparse_y = [1, 0, 0, 0]
        dense_y = [0xFFFFFFFF] * 4
        assert measured_bops_bips(x_vec, sparse_y) \
            < measured_bops_bips(x_vec, dense_y) / 3
