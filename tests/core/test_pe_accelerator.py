"""Tests for the PE, controller, memory agents and full accelerator."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.accelerator import CambriconP
from repro.core.adder_tree import AdderTree
from repro.core.controller import CoreController, PEController
from repro.core.memory import MemoryAgent
from repro.core.model import CambriconPConfig, CambriconPModel
from repro.core.pe import ProcessingElement, slab_significance_limbs
from repro.mpn import nat
from repro.mpn.nat import MpnError

from tests.conftest import from_nat, naturals, to_nat

limb_values = st.integers(min_value=0, max_value=(1 << 32) - 1)


def pass_oracle(chunk, window, num_ipus=32, q=4):
    """Word-level oracle for one PE pass."""
    total = 0
    for i in range(num_ipus):
        operands = [window[i + q - 1 - m] for m in range(q)]
        partial = sum(x * y for x, y in zip(chunk, operands))
        total += partial << (32 * i)
    return total


class TestProcessingElement:
    @given(st.lists(limb_values, min_size=4, max_size=4),
           st.lists(limb_values, min_size=35, max_size=35))
    @settings(max_examples=25)
    def test_fast_pass_matches_oracle(self, chunk, window):
        pe = ProcessingElement()
        result = pe.compute_pass(chunk, window)
        assert result.slab == pass_oracle(chunk, window)

    def test_bit_serial_matches_fast(self, rng):
        pe = ProcessingElement()
        for _ in range(2):
            chunk = [rng.getrandbits(32) for _ in range(4)]
            window = [rng.getrandbits(32) for _ in range(35)]
            fast = pe.compute_pass(chunk, window)
            slow = pe.compute_pass_bit_serial(chunk, window)
            assert fast.slab == slow.slab
            assert fast.partial_sums == slow.partial_sums

    def test_window_geometry(self):
        pe = ProcessingElement(num_ipus=32, q=4)
        assert pe.window_limbs == 35

    def test_bad_shapes_rejected(self):
        pe = ProcessingElement()
        with pytest.raises(MpnError):
            pe.compute_pass([1, 2, 3], [0] * 35)
        with pytest.raises(MpnError):
            pe.compute_pass([1, 2, 3, 4], [0] * 34)
        with pytest.raises(MpnError):
            pe.compute_pass([1 << 32, 0, 0, 0], [0] * 35)

    def test_significance(self):
        assert slab_significance_limbs(4, 29, 4) == 36


class TestController:
    def test_schedule_covers_operands(self):
        controller = CoreController(num_pes=256, num_ipus=32, q=4)
        schedule = controller.plan_multiply(128, 128)
        chunks = {p.chunk_index for p in schedule.passes}
        windows = {p.window_index for p in schedule.passes}
        assert len(chunks) == 32          # 128 limbs / 4
        assert len(windows) == 5          # ceil((128+3)/32)
        assert schedule.num_passes == 160
        assert schedule.num_waves == 1

    def test_waves_respect_pe_count(self):
        controller = CoreController(num_pes=16)
        schedule = controller.plan_multiply(64, 64)
        for wave_passes in schedule.waves():
            assert len(wave_passes) <= 16
            pe_indices = [p.pe_index for p in wave_passes]
            assert len(set(pe_indices)) == len(pe_indices)

    def test_empty_rejected(self):
        with pytest.raises(MpnError):
            CoreController().plan_multiply(0, 4)

    def test_pec_tiling(self):
        pec = PEController(num_ipus=32, q=4)
        tiles = pec.tile_inner_product(10)
        assert [list(t) for t in tiles] == [[0, 1, 2, 3], [4, 5, 6, 7],
                                            [8, 9]]
        assert pec.tiles_per_pass() == 32


class TestMemoryAgent:
    def test_multicast_reuse_lowers_traffic(self):
        controller = CoreController()
        agent = MemoryAgent()
        schedule = controller.plan_multiply(512, 512)
        shared = agent.multiply_traffic(schedule)
        naive = agent.naive_multiply_traffic(schedule)
        assert shared.total_bits < naive.total_bits
        assert shared.output_write_bits == naive.output_write_bits

    def test_traffic_scales_with_operands(self):
        controller = CoreController()
        agent = MemoryAgent()
        small = agent.multiply_traffic(controller.plan_multiply(32, 32))
        large = agent.multiply_traffic(controller.plan_multiply(512, 512))
        assert large.total_bits > small.total_bits

    def test_streaming_cycles_positive(self):
        controller = CoreController()
        agent = MemoryAgent()
        traffic = agent.multiply_traffic(controller.plan_multiply(128, 128))
        assert agent.streaming_cycles(traffic) > 0


class TestAdderTree:
    def test_integrate(self):
        tree = AdderTree()
        slabs = [(5, 0), (7, 1), (0, 2), (9, 3)]
        total = tree.integrate(slabs)
        assert from_nat(total) == 5 + (7 << 32) + (9 << 96)
        assert tree.additions == 3  # the zero slab is skipped

    def test_depth(self):
        assert AdderTree().tree_depth(256) == 8


class TestAcceleratorMultiply:
    @given(naturals, naturals)
    @settings(max_examples=25, deadline=None)
    def test_matches_int(self, a, b):
        device = CambriconP()
        product, report = device.multiply(to_nat(a), to_nat(b))
        assert from_nat(product) == a * b
        if a and b:
            assert report.cycles > 0
            assert report.max_gather_carry <= 2

    def test_zero_operand(self):
        device = CambriconP()
        product, report = device.multiply([], to_nat(5))
        assert product == [] and report.cycles == 0

    def test_bit_serial_end_to_end(self, rng):
        device = CambriconP()
        a, b = rng.getrandbits(256), rng.getrandbits(200)
        product, _ = device.multiply(to_nat(a), to_nat(b), bit_serial=True)
        assert from_nat(product) == a * b

    def test_4096_bit_design_point(self):
        # Table III's workload: one wave, ~1.6e-8 s of throughput.
        device = CambriconP()
        a = (1 << 4096) - 12345
        product, report = device.multiply(to_nat(a), to_nat(a))
        assert from_nat(product) == a * a
        assert report.num_waves == 1
        throughput = device.model.multiply_throughput_seconds(4096, 4096)
        assert abs(throughput - 1.6e-8) < 2e-9

    def test_small_configuration(self, rng):
        config = CambriconPConfig(num_pes=4, num_ipus=8, q=4)
        device = CambriconP(config)
        a, b = rng.getrandbits(900), rng.getrandbits(700)
        product, report = device.multiply(to_nat(a), to_nat(b))
        assert from_nat(product) == a * b
        assert report.num_waves >= 1


class TestAcceleratorOtherOps:
    def test_add_sub_shift(self, rng):
        device = CambriconP()
        a, b = rng.getrandbits(500), rng.getrandbits(400)
        total, report = device.add(to_nat(a), to_nat(b))
        assert from_nat(total) == a + b and report.cycles > 0
        diff, _ = device.subtract(to_nat(a), to_nat(b))
        assert from_nat(diff) == a - b
        shifted, _ = device.shift(to_nat(a), 13)
        assert from_nat(shifted) == a << 13
        shifted, _ = device.shift(to_nat(a), 13, left=False)
        assert from_nat(shifted) == a >> 13

    def test_subtract_underflow_rejected(self):
        with pytest.raises(MpnError):
            CambriconP().subtract([1], [2])

    def test_inner_product(self, rng):
        device = CambriconP()
        x_vec = [rng.getrandbits(32) for _ in range(11)]
        y_vec = [rng.getrandbits(32) for _ in range(11)]
        total, report = device.inner_product(x_vec, y_vec)
        assert total == sum(a * b for a, b in zip(x_vec, y_vec))
        assert report.cycles > 0


@pytest.mark.slow
class TestMonolithicLimit:
    def test_35904_bit_functional_multiply(self, rng):
        # The full monolithic capability (Section VII-B), end to end
        # through the functional PE array.
        bits = 35904
        a = rng.getrandbits(bits) | (1 << (bits - 1))
        b = rng.getrandbits(bits) | (1 << (bits - 1))
        device = CambriconP()
        product, report = device.multiply(to_nat(a), to_nat(b))
        assert from_nat(product) == a * b
        assert report.num_waves == 40  # 10,116 passes over 256 PEs
        assert report.max_gather_carry <= 2
