"""Tests for the MPZ number-theoretic extras."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpz.number_theory import (binomial, factorial, fibonacci,
                                     lucas, lucas_lehmer, primorial)


class TestFactorial:
    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=30)
    def test_matches_math(self, n):
        assert int(factorial(n)) == math.factorial(n)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            factorial(-1)

    def test_large_is_consistent(self):
        # (n+1)! = (n+1) * n! without an oracle.
        n = 2000
        assert factorial(n + 1) == factorial(n) * (n + 1)


class TestBinomial:
    @given(st.integers(min_value=0, max_value=120),
           st.integers(min_value=-5, max_value=125))
    @settings(max_examples=60)
    def test_matches_math(self, n, k):
        expected = math.comb(n, k) if 0 <= k <= n else 0
        assert int(binomial(n, k)) == expected

    def test_symmetry(self):
        assert binomial(100, 30) == binomial(100, 70)

    def test_pascal_rule(self):
        assert binomial(80, 40) \
            == binomial(79, 39) + binomial(79, 40)


class TestFibonacci:
    def test_small_values(self):
        expected = [0, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55]
        for index, value in enumerate(expected):
            assert int(fibonacci(index)) == value

    @given(st.integers(min_value=2, max_value=800))
    @settings(max_examples=25)
    def test_recurrence(self, n):
        assert fibonacci(n) == fibonacci(n - 1) + fibonacci(n - 2)

    @given(st.integers(min_value=1, max_value=400))
    @settings(max_examples=25)
    def test_cassini_identity(self, n):
        # F(n-1)F(n+1) - F(n)^2 = (-1)^n
        left = fibonacci(n - 1) * fibonacci(n + 1) \
            - fibonacci(n) * fibonacci(n)
        assert int(left) == (1 if n % 2 == 0 else -1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            fibonacci(-1)

    def test_large_bit_length(self):
        # F(n) ~ phi^n / sqrt(5): F(10000) has ~6942 bits.
        assert abs(fibonacci(10000).bit_length() - 6942) <= 2


class TestLucas:
    def test_small_values(self):
        expected = [2, 1, 3, 4, 7, 11, 18, 29]
        for index, value in enumerate(expected):
            assert int(lucas(index)) == value

    @given(st.integers(min_value=1, max_value=300))
    @settings(max_examples=20)
    def test_lucas_fibonacci_identity(self, n):
        # L(n) = F(n-1) + F(n+1)
        assert lucas(n) == fibonacci(n - 1) + fibonacci(n + 1)


class TestPrimorial:
    def test_values(self):
        assert int(primorial(1)) == 1
        assert int(primorial(2)) == 2
        assert int(primorial(10)) == 210
        assert int(primorial(100)) == math.prod(
            p for p in range(2, 101)
            if all(p % d for d in range(2, int(p ** 0.5) + 1)))


class TestLucasLehmer:
    def test_known_mersenne_exponents(self):
        mersenne_prime_exponents = {2, 3, 5, 7, 13, 17, 19, 31, 61, 89,
                                    107, 127}
        for p in range(2, 130):
            expected = p in mersenne_prime_exponents
            if _small_prime(p):
                assert lucas_lehmer(p) == expected, p

    def test_composite_exponent_rejected(self):
        assert not lucas_lehmer(12)
        assert not lucas_lehmer(1)


def _small_prime(n: int) -> bool:
    return n > 1 and all(n % d for d in range(2, int(n ** 0.5) + 1))
