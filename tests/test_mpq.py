"""Tests for the rationals layer (MPQ)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpq import MPQ
from repro.mpz import MPZ

rationals = st.fractions(min_value=Fraction(-10 ** 9),
                         max_value=Fraction(10 ** 9),
                         max_denominator=10 ** 6)


def as_mpq(value: Fraction) -> MPQ:
    return MPQ(value.numerator, value.denominator)


def as_fraction(value: MPQ) -> Fraction:
    return Fraction(int(value.numerator), int(value.denominator))


class TestNormalization:
    def test_lowest_terms(self):
        q = MPQ(6, -9)
        assert int(q.numerator) == -2
        assert int(q.denominator) == 3

    def test_zero_canonical(self):
        q = MPQ(0, 7)
        assert int(q.denominator) == 1
        assert not q

    def test_zero_denominator_rejected(self):
        with pytest.raises(ZeroDivisionError):
            MPQ(1, 0)

    @given(rationals)
    def test_always_reduced(self, value):
        q = as_mpq(value)
        assert int(q.numerator.gcd(q.denominator)) == 1
        assert q.denominator > MPZ(0)


class TestFieldAxioms:
    @given(rationals, rationals)
    def test_add_sub_mul(self, a, b):
        assert as_fraction(as_mpq(a) + as_mpq(b)) == a + b
        assert as_fraction(as_mpq(a) - as_mpq(b)) == a - b
        assert as_fraction(as_mpq(a) * as_mpq(b)) == a * b

    @given(rationals, rationals.filter(lambda v: v != 0))
    def test_div(self, a, b):
        assert as_fraction(as_mpq(a) / as_mpq(b)) == a / b

    @given(rationals.filter(lambda v: v != 0))
    def test_reciprocal(self, a):
        q = as_mpq(a)
        assert as_fraction(q * q.reciprocal()) == 1

    @given(rationals, rationals, rationals)
    @settings(max_examples=40)
    def test_distributive(self, a, b, c):
        qa, qb, qc = as_mpq(a), as_mpq(b), as_mpq(c)
        assert qa * (qb + qc) == qa * qb + qa * qc

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            MPQ(1, 2) / MPQ(0)
        with pytest.raises(ZeroDivisionError):
            MPQ(0).reciprocal()


class TestComparisonAndConversion:
    @given(rationals, rationals)
    def test_order(self, a, b):
        assert (as_mpq(a) < as_mpq(b)) == (a < b)
        assert (as_mpq(a) >= as_mpq(b)) == (a >= b)
        assert (as_mpq(a) == as_mpq(b)) == (a == b)

    @given(rationals)
    def test_hash_matches_fraction(self, a):
        assert hash(as_mpq(a)) == hash(a)

    @given(rationals)
    def test_float_and_floor(self, a):
        q = as_mpq(a)
        assert abs(float(q) - float(a)) < max(1e-9, abs(float(a)) * 1e-9)
        assert int(q.floor_mpz()) == a.numerator // a.denominator

    def test_to_mpf(self):
        third = MPQ(1, 3).to_mpf(128)
        text = third.to_decimal_string(30)
        assert text.startswith("0." + "3" * 28)

    def test_int_interop(self):
        assert MPQ(1, 2) + 1 == MPQ(3, 2)
        assert 2 * MPQ(1, 4) == MPQ(1, 2)
        assert 1 - MPQ(1, 3) == MPQ(2, 3)
        assert 1 / MPQ(2, 3) == MPQ(3, 2)


class TestPower:
    @given(rationals.filter(lambda v: v != 0),
           st.integers(min_value=-6, max_value=6))
    def test_pow(self, a, exponent):
        assert as_fraction(as_mpq(a) ** exponent) == a ** exponent

    def test_zero_to_negative_rejected(self):
        with pytest.raises(ZeroDivisionError):
            MPQ(0) ** -1


class TestBinarySplittingUseCase:
    def test_partial_sums_of_e(self):
        # sum 1/k! accumulated exactly in MPQ, checked against exp(1).
        total = MPQ(0)
        factorial = MPZ(1)
        for k in range(25):
            if k:
                factorial = factorial * k
            total = total + MPQ(MPZ(1), factorial)
        from repro.mpf import MPF
        from repro.mpf.transcendental import exp
        euler = exp(MPF(1, 160), 160)
        difference = abs(total.to_mpf(160) - euler)
        assert not difference \
            or difference.exponent_of_top_bit < -70  # 25 terms ~ 1/25!
