"""Crash recovery: kill a shard mid-load, the fleet survives.

The contract under test (the sharded topology's whole reason to
exist):

* in-flight jobs routed to the killed shard fail *fast* with
  ``error:internal`` — never a hang, never a wrong answer;
* the supervisor restarts the dead worker on a fresh port and the
  router routes to the new generation;
* load driven after recovery is answered bit-identically with zero
  errors, and the surviving responses from the crash window verify
  against the oracle.

This module gets its own fleet (it breaks one on purpose).
"""

import os
import signal
import threading
import time

import pytest

from repro.serve.client import ServeClient, run_load
from repro.shard.cache import ShardResultCache
from repro.shard.router import RouterConfig, RouterThread

#: How long the supervisor may take to respawn and re-announce.
_RECOVERY_DEADLINE_S = 30.0


@pytest.fixture(scope="module")
def fleet():
    config = RouterConfig(port=0, shards=2, per_shard_depth=64,
                          max_wait_ms=120_000.0, drain_s=30.0,
                          max_restarts=5)
    with RouterThread(config,
                      cache=ShardResultCache(persist=False)) as fleet:
        yield fleet


def _await_recovery(client: ServeClient, min_restarts: int = 1):
    deadline = time.monotonic() + _RECOVERY_DEADLINE_S
    while time.monotonic() < deadline:
        stats = client.statz()
        if stats["restarts"] >= min_restarts and all(
                shard["state"] == "up"
                for shard in stats["shards"]):
            return stats
        time.sleep(0.25)
    raise AssertionError("fleet did not recover within %gs: %r"
                         % (_RECOVERY_DEADLINE_S, client.statz()))


class TestCrashRecovery:
    def test_kill_mid_load_fails_fast_then_recovers(self, fleet):
        client = ServeClient(fleet.host, fleet.port)
        stats = client.statz()
        assert all(s["state"] == "up" for s in stats["shards"])
        victim_pid = stats["shards"][0]["pid"]
        victim_generation = stats["shards"][0]["generation"]

        report_box = {}

        def drive():
            # timeout=30 bounds every request: a hung in-flight job
            # would surface as a slow transport error, failing the
            # wall-clock assertion below.
            report_box["report"] = run_load(
                fleet.host, fleet.port, requests=40, concurrency=8,
                seed=29, verify=True, timeout=30.0)

        loader = threading.Thread(target=drive)
        started = time.monotonic()
        loader.start()
        time.sleep(0.3)                     # let requests get in flight
        os.kill(victim_pid, signal.SIGKILL)
        loader.join(timeout=120.0)
        wall_s = time.monotonic() - started
        assert not loader.is_alive(), "load generator hung on a corpse"
        report = report_box["report"]

        # Every response accounted for; survivors bit-identical; the
        # crash window may surface 502 error:internal (counted under
        # errors) but never a wrong answer and never a hang.
        assert report["wrong_answers"] == 0
        assert report["ok"] > 0
        assert report["ok"] + report["shed"] + report["deadline"] \
            + report["errors"] == 40
        assert wall_s < 90.0, "in-flight jobs did not fail fast"
        for failure in report["failures"]:
            body = failure.get("body", {})
            if failure.get("status") == 502:
                assert body.get("error") == "error:internal"

        # The supervisor brings the shard back on a fresh generation.
        recovered = _await_recovery(client)
        revived = recovered["shards"][0]
        assert revived["restarts"] >= 1
        assert revived["generation"] > victim_generation
        assert revived["pid"] != victim_pid

    def test_load_after_recovery_is_clean(self, fleet):
        client = ServeClient(fleet.host, fleet.port)
        _await_recovery(client, min_restarts=1)
        report = run_load(fleet.host, fleet.port, requests=32,
                          concurrency=8, seed=31, verify=True,
                          timeout=60.0)
        assert report["wrong_answers"] == 0
        assert report["errors"] == 0
        assert report["ok"] > 0
        lines = client.health().splitlines()
        assert lines[0] == "ok"

    def test_crash_is_counted_in_router_metrics(self, fleet):
        client = ServeClient(fleet.host, fleet.port)
        values = client.metrics_values()
        crashes = sum(value for key, value in values.items()
                      if key.startswith("repro_router_shard_crash_total"))
        restarts = sum(value for key, value in values.items()
                       if key.startswith(
                           "repro_router_shard_restart_total"))
        assert crashes >= 1
        assert restarts >= 1
