"""End-to-end acceptance for the sharded topology.

A real router in front of two real shard worker processes: responses
must be bit-identical to the oracle across every op, the merged
``/metrics`` scrape must carry both shard and router series, the
health aggregate must reflect fleet state, and the cross-shard cache
must answer repeats without touching a shard.

One fleet boots per module (two OS processes per fixture are too
expensive to respawn per test); tests only read or add load, never
break the fleet — crash recovery has its own module.
"""

import json

import pytest

from repro.serve.client import ServeClient, run_load
from repro.serve.jobs import evaluate, validate_params
from repro.shard.cache import ShardResultCache
from repro.shard.router import RouterConfig, RouterThread


@pytest.fixture(scope="module")
def fleet():
    config = RouterConfig(port=0, shards=2, per_shard_depth=64,
                          max_wait_ms=120_000.0, drain_s=30.0)
    with RouterThread(config,
                      cache=ShardResultCache(persist=False)) as fleet:
        yield fleet


class TestShardedEndToEnd:
    def test_all_five_ops_bit_identical(self, fleet):
        client = ServeClient(fleet.host, fleet.port)
        cases = [
            {"op": "mul", "params": {"a": hex(3 ** 300),
                                     "b": hex(7 ** 250)}},
            {"op": "div", "params": {"a": hex(10 ** 100 + 7),
                                     "b": "9973"}},
            {"op": "powmod", "params": {"base": "0xabcdef",
                                        "exp": "65537",
                                        "mod": hex((1 << 255) - 19)}},
            {"op": "pi_digits", "params": {"digits": 40}},
            {"op": "model_cycles", "params": {"op": "powmod",
                                              "bits_a": 2048,
                                              "bits_b": 2048}},
        ]
        for payload in cases:
            status, body = client.request(payload)
            assert status == 200, body
            assert body["ok"]
            expected = evaluate((payload["op"], validate_params(
                payload["op"], payload["params"])))
            assert body["result"] == expected

    def test_mixed_load_zero_wrong_answers(self, fleet):
        report = run_load(fleet.host, fleet.port, requests=48,
                          concurrency=12, seed=13, verify=True)
        assert report["wrong_answers"] == 0
        assert report["errors"] == 0
        assert report["ok"] > 0
        assert report["ok"] + report["shed"] + \
            report["deadline"] == 48

    def test_invalid_requests_rejected_at_the_front_door(self, fleet):
        # Validation runs in the router; a malformed job must never
        # consume a shard round trip.
        client = ServeClient(fleet.host, fleet.port)
        status, body = client.request({"op": "div",
                                       "params": {"a": 5, "b": 0}})
        assert status == 400
        assert body["error"] == "invalid:zero-divisor"
        status, raw = client.raw("POST", "/v1/job", b"{not json")
        assert status == 400
        assert json.loads(raw)["error"] == "invalid:bad-json"
        status, _ = client.raw("GET", "/nowhere")
        assert status == 404

    def test_merged_metrics_carry_both_planes(self, fleet):
        client = ServeClient(fleet.host, fleet.port)
        # Drive one uncacheable job so at least one shard has series.
        status, body = client.request(
            {"op": "mul", "params": {"a": 7, "b": 9}})
        assert status == 200 and body["ok"]
        values = client.metrics_values()
        shard_series = [k for k in values
                        if k.startswith("repro_serve_")]
        router_series = [k for k in values
                         if k.startswith("repro_router_")]
        assert shard_series, "merged scrape lost the shard series"
        assert router_series, "merged scrape lost the router series"
        assert any(k.startswith("repro_serve_requests_total")
                   for k in values)
        assert any(k.startswith("repro_router_routed_total")
                   for k in values)

    def test_statz_reports_fleet_view(self, fleet):
        client = ServeClient(fleet.host, fleet.port)
        stats = client.statz()
        assert stats["ok"] and stats["role"] == "router"
        assert len(stats["shards"]) == 2
        assert all(shard["state"] == "up"
                   for shard in stats["shards"])
        assert all(shard["pid"] for shard in stats["shards"])
        assert stats["restarts"] == 0

    def test_healthz_aggregate_is_ok_with_per_shard_lines(self, fleet):
        client = ServeClient(fleet.host, fleet.port)
        lines = client.health().splitlines()
        assert lines[0] == "ok"
        assert lines[1:] == ["shard 0: up", "shard 1: up"]

    def test_cross_shard_cache_answers_repeats(self, fleet):
        client = ServeClient(fleet.host, fleet.port)
        payload = {"op": "pi_digits", "params": {"digits": 33}}
        status, first = client.request(payload)
        assert status == 200 and first["ok"]
        before = client.statz()["cache"]["hits"]
        status, second = client.request(payload)
        assert status == 200 and second["ok"]
        assert second["result"] == first["result"]
        assert second["cached"] is True
        assert client.statz()["cache"]["hits"] == before + 1

    def test_compatible_jobs_land_on_one_shard(self, fleet):
        # Plan-aware routing: jobs sharing a compat key must not
        # scatter (scattering would forfeit shard-side batching).
        client = ServeClient(fleet.host, fleet.port)
        before = {shard["index"]: shard["served"]
                  for shard in client.statz()["shards"]}
        for exponent in range(40, 56):
            status, body = client.request(
                {"op": "mul", "params": {"a": hex(3 ** exponent),
                                         "b": hex(5 ** exponent)}})
            assert status == 200 and body["ok"]
        after = {shard["index"]: shard["served"]
                 for shard in client.statz()["shards"]}
        gains = [after[i] - before[i] for i in sorted(after)]
        assert sum(gains) == 16
        # All sixteen share one compat key -> exactly one shard gains
        # (the idle fleet never crosses the spill margin).
        assert sorted(gains) == [0, 16]
