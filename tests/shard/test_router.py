"""Unit tests for the router's pure decision logic.

No sockets, no subprocesses: rendezvous placement, the bounded-load
spill, fleet admission arithmetic, and the memo-key salting of the
cross-shard result cache are all plain functions over plain state.
"""

import pytest

from repro.serve.jobs import make_job
from repro.shard.cache import ShardResultCache
from repro.shard.router import (RouterConfig, ShardRouter, rank_shards,
                                rendezvous_weight)
from repro.shard.supervisor import (STATE_DEAD, STATE_UP, ShardHandle,
                                    ShardSupervisor)


def _fleet(router, states):
    """Pin the router's supervisor handles to the given states."""
    supervisor = router.supervisor
    supervisor.handles = [ShardHandle(i, host="127.0.0.1",
                                      port=9000 + i, state=state)
                          for i, state in enumerate(states)]
    return supervisor.handles


@pytest.fixture()
def router():
    config = RouterConfig(port=0, shards=2, per_shard_depth=4,
                          max_wait_ms=1000.0)
    return ShardRouter(config,
                       cache=ShardResultCache(enabled=False))


class TestRendezvous:
    def test_weight_is_deterministic(self):
        assert rendezvous_weight("mul/device", 3) == \
            rendezvous_weight("mul/device", 3)
        assert rendezvous_weight("mul/device", 3) != \
            rendezvous_weight("mul/device", 4)
        assert rendezvous_weight("mul/device", 3) != \
            rendezvous_weight("div/library", 3)

    def test_same_key_same_winner(self):
        live = [ShardHandle(i, state=STATE_UP) for i in range(4)]
        first = rank_shards("powmod/rns", live)[0]
        for _ in range(5):
            assert rank_shards("powmod/rns", live)[0] is first

    def test_keys_spread_across_shards(self):
        live = [ShardHandle(i, state=STATE_UP) for i in range(4)]
        winners = {rank_shards("key-%d" % n, live)[0].index
                   for n in range(64)}
        assert len(winners) == 4

    def test_dead_shard_redistributes_without_reshuffling(self):
        # The HRW property: removing a shard reassigns only the keys
        # it owned; every other key keeps its winner.
        live = [ShardHandle(i, state=STATE_UP) for i in range(4)]
        keys = ["key-%d" % n for n in range(64)]
        before = {key: rank_shards(key, live)[0].index for key in keys}
        victim = 2
        survivors = [h for h in live if h.index != victim]
        for key in keys:
            after = rank_shards(key, survivors)[0].index
            if before[key] != victim:
                assert after == before[key]
            else:
                assert after != victim


class TestPickShard:
    def test_idle_fleet_routes_to_rendezvous_winner(self, router):
        live = _fleet(router, [STATE_UP, STATE_UP, STATE_UP])
        job = make_job({"op": "pi_digits", "params": {"digits": 30}})
        key = "%s/%s" % job.compat_key()
        expected = rank_shards(key, live)[0]
        assert router.pick_shard(job, live) is expected

    def test_deep_winner_spills_to_runner_up(self, router):
        live = _fleet(router, [STATE_UP, STATE_UP, STATE_UP])
        job = make_job({"op": "pi_digits", "params": {"digits": 30}})
        key = "%s/%s" % job.compat_key()
        ranked = rank_shards(key, live)
        ranked[0].inflight = 10       # well past the spill margin
        assert router.pick_shard(job, live) is ranked[1]

    def test_small_imbalance_stays_on_winner(self, router):
        # Sticky placement preserves batching; only a real queue-depth
        # gap justifies scattering a compat key.
        live = _fleet(router, [STATE_UP, STATE_UP, STATE_UP])
        job = make_job({"op": "pi_digits", "params": {"digits": 30}})
        key = "%s/%s" % job.compat_key()
        ranked = rank_shards(key, live)
        ranked[0].inflight = ranked[1].inflight + 1
        assert router.pick_shard(job, live) is ranked[0]


class TestAdmission:
    def _job(self):
        return make_job({"op": "model_cycles",
                         "params": {"op": "mul", "bits_a": 4096,
                                    "bits_b": 4096}})

    def test_admits_when_idle(self, router):
        live = _fleet(router, [STATE_UP, STATE_UP])
        assert router.admission_reason(self._job(), live) is None

    def test_draining_sheds(self, router):
        live = _fleet(router, [STATE_UP, STATE_UP])
        router._draining = True
        assert router.admission_reason(self._job(), live) == \
            "shutting-down"

    def test_no_live_shards_sheds(self, router):
        _fleet(router, [STATE_DEAD, STATE_DEAD])
        assert router.admission_reason(self._job(), []) == \
            "no-live-shards"

    def test_fleet_depth_bound_scales_with_live_shards(self, router):
        live = _fleet(router, [STATE_UP, STATE_UP])
        for handle in live:
            handle.inflight = router.config.per_shard_depth
        assert router.admission_reason(self._job(), live) == \
            "queue-full"
        live[0].inflight = 0
        assert router.admission_reason(self._job(), live) is None

    def test_fleet_wait_bound_uses_summed_ewma_rates(self, router):
        live = _fleet(router, [STATE_UP, STATE_UP])
        job = self._job()
        # Each shard retires 1 modeled cycle/ms; backlog of 3000 job
        # costs against a 2/ms fleet rate and a 1000 ms bound sheds.
        for handle in live:
            handle.stats = {"rate_cycles_per_ms": 1.0}
        live[0].inflight_cycles = 3000.0 * router.config.max_wait_ms
        assert router.admission_reason(job, live) == "wait-exceeded"
        # Doubling the fleet rate via a third shard re-admits the job
        # only if it brings the estimate under the bound; clearing the
        # backlog certainly does.
        live[0].inflight_cycles = 0.0
        assert router.admission_reason(job, live) is None

    def test_unwarmed_fleet_falls_back_to_depth_bound(self, router):
        live = _fleet(router, [STATE_UP, STATE_UP])
        live[0].inflight_cycles = 1e18   # huge backlog, no rate yet
        assert router.fleet_rate_cycles_per_ms() is None
        assert router.admission_reason(self._job(), live) is None


class TestShardCache:
    def _cache(self):
        return ShardResultCache(enabled=True, persist=False)

    def test_idempotent_job_round_trips(self):
        cache = self._cache()
        job = make_job({"op": "pi_digits", "params": {"digits": 25}})
        assert cache.get(job) is None
        cache.put(job, {"digits": "3.14", "terms": 2,
                        "precision_bits": 128})
        again = make_job({"op": "pi_digits", "params": {"digits": 25}})
        assert cache.get(again) == {"digits": "3.14", "terms": 2,
                                    "precision_bits": 128}
        assert cache.hits == 1 and cache.misses == 1

    def test_non_idempotent_ops_never_cache(self):
        cache = self._cache()
        job = make_job({"op": "mul", "params": {"a": 3, "b": 5}})
        assert job.cache_key() is None
        cache.put(job, {"product": "0xf"})
        assert cache.get(job) is None
        assert len(cache) == 0

    def test_memo_key_salts_the_cache(self):
        # A retune changes Plan.memo_key, which must invalidate every
        # cached answer computed under the old plan.
        cache = self._cache()
        job = make_job({"op": "pi_digits", "params": {"digits": 25}})
        cache.put(job, {"digits": "old"})

        class _RetunedPlan:
            memo_key = tuple(job.plan.memo_key) + ("retuned",)

        stale = make_job({"op": "pi_digits", "params": {"digits": 25}})
        stale.plan = _RetunedPlan()
        assert cache.get(stale) is None

    def test_killswitch_disables_everything(self):
        cache = ShardResultCache(enabled=False)
        job = make_job({"op": "pi_digits", "params": {"digits": 25}})
        cache.put(job, {"digits": "3.14"})
        assert cache.get(job) is None
        assert cache.load() == 0


class TestSupervisorQueries:
    def test_degraded_and_live_views(self):
        supervisor = ShardSupervisor(3)
        assert supervisor.degraded()          # all still starting
        for handle in supervisor.handles:
            handle.state = STATE_UP
        assert not supervisor.degraded()
        assert len(supervisor.live()) == 3
        supervisor.handles[1].state = STATE_DEAD
        assert supervisor.degraded()
        assert [h.index for h in supervisor.live()] == [0, 2]

    def test_health_text_aggregates(self, router):
        _fleet(router, [STATE_UP, STATE_UP])
        text = router.health_text()
        assert text.splitlines()[0] == "ok"
        _fleet(router, [STATE_UP, STATE_DEAD])
        assert router.health_text().splitlines()[0] == "degraded"
        router._draining = True
        assert router.health_text().splitlines()[0] == "draining"

    def test_shard_count_floor(self):
        with pytest.raises(ValueError):
            ShardSupervisor(0)
