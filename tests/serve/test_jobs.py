"""Job parsing, validation vocabulary, pricing, and the oracle."""

import pytest

from repro.serve.jobs import (JOB_OPS, JobError, estimated_cycles,
                              evaluate, make_job, validate_params)


def _job(op, params, **extra):
    payload = {"op": op, "params": params}
    payload.update(extra)
    return make_job(payload)


class TestMakeJob:
    def test_minimal_mul(self):
        job = _job("mul", {"a": 6, "b": 7})
        assert job.op == "mul"
        assert job.params == {"a": 6, "b": 7}
        assert job.priority == 0
        assert job.deadline_ms is None
        assert job.cost_cycles > 0
        assert job.job_id.startswith("job-")

    def test_hex_string_operands(self):
        job = _job("mul", {"a": "0xff", "b": "16"})
        assert job.params == {"a": 255, "b": 16}

    def test_explicit_id_priority_deadline(self):
        job = _job("mul", {"a": 1, "b": 2}, id="x", priority=9,
                   deadline_ms=50)
        assert job.job_id == "x"
        assert job.priority == 9
        assert job.deadline_at is not None
        assert not job.expired(job.created_at)
        assert job.expired(job.created_at + 1.0)

    @pytest.mark.parametrize("payload,code", [
        ({"op": "nope", "params": {}}, "invalid:unknown-op"),
        ({"op": "mul", "params": []}, "invalid:bad-params"),
        ({"op": "mul", "params": {"a": 1}}, "invalid:missing-param"),
        ({"op": "mul", "params": {"a": 1, "b": "xyz"}},
         "invalid:bad-int"),
        ({"op": "mul", "params": {"a": 1, "b": 2.5}}, "invalid:bad-int"),
        ({"op": "mul", "params": {"a": 1, "b": True}},
         "invalid:bad-int"),
        ({"op": "mul", "params": {"a": -1, "b": 2}}, "invalid:negative"),
        ({"op": "div", "params": {"a": 1, "b": 0}},
         "invalid:zero-divisor"),
        ({"op": "powmod", "params": {"base": 2, "exp": 3, "mod": 0}},
         "invalid:zero-modulus"),
        ({"op": "pi_digits", "params": {"digits": 10 ** 9}},
         "invalid:oversized"),
        ({"op": "pi_digits", "params": {"digits": 0}}, "invalid:bad-int"),
        ({"op": "model_cycles", "params": {"op": "frobnicate",
                                           "bits_a": 64}},
         "invalid:unknown-model-op"),
        ({"op": "mul", "params": {"a": 1, "b": 2}, "priority": 10},
         "invalid:priority"),
        ({"op": "mul", "params": {"a": 1, "b": 2}, "priority": "hi"},
         "invalid:priority"),
        ({"op": "mul", "params": {"a": 1, "b": 2}, "deadline_ms": -5},
         "invalid:deadline"),
        ({"op": "mul", "params": {"a": 1, "b": 2}, "id": "x" * 200},
         "invalid:id"),
    ])
    def test_rejection_vocabulary(self, payload, code):
        with pytest.raises(JobError) as excinfo:
            make_job(payload)
        assert excinfo.value.code == code

    def test_operand_ceiling_is_configurable(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_MAX_BITS", "16")
        with pytest.raises(JobError) as excinfo:
            _job("mul", {"a": 1 << 20, "b": 2})
        assert excinfo.value.code == "invalid:oversized"


class TestPricing:
    def test_every_op_is_priced(self):
        samples = {
            "mul": {"a": 1 << 100, "b": 1 << 90},
            "div": {"a": 1 << 100, "b": 7},
            "powmod": {"base": 3, "exp": 65537, "mod": (1 << 64) + 13},
            "pi_digits": {"digits": 50},
            "model_cycles": {"op": "mul", "bits_a": 4096, "bits_b": 0},
        }
        assert set(samples) == set(JOB_OPS)
        for op, raw in samples.items():
            cost = estimated_cycles(op, validate_params(op, raw))
            assert cost > 0

    def test_admission_estimate_is_the_one_model(self):
        """Serve keeps no private cycle math: the admission estimate
        for a job equals the CambriconPModel-backed MPApca pricing of
        the same OpSpec, exactly."""
        from repro.core.model import CambriconPModel
        from repro.runtime import mpapca
        a, b = 3 ** 800, 7 ** 650
        job = make_job({"op": "mul", "params": {"a": a, "b": b}})
        bits = (a.bit_length(), b.bit_length())
        assert job.cost_cycles == mpapca.mul_cycles(*bits)
        # ...which for a monolithic-range mul is the analytic model's
        # own multiply latency (DISPATCH included), untouched.
        assert job.cost_cycles == \
            CambriconPModel().multiply_cycles(*bits)
        div = make_job({"op": "div", "params": {"a": a, "b": b}})
        assert div.cost_cycles == mpapca.div_cycles(a.bit_length(),
                                                    b.bit_length())

    def test_job_cost_equals_plan_cost(self):
        job = make_job({"op": "powmod",
                        "params": {"base": 3, "exp": 65537,
                                   "mod": (1 << 127) - 1}})
        assert job.plan is not None
        assert job.cost_cycles == job.plan.cost()

    def test_bigger_work_costs_more(self):
        # Small monolithic muls fill a single PE wave, so the modeled
        # device latency is flat there; compare across sizes where the
        # wave count (and then the library fallback) actually grows.
        small = estimated_cycles(
            "mul", validate_params("mul", {"a": 1 << 64, "b": 1 << 64}))
        medium = estimated_cycles(
            "mul", validate_params(
                "mul", {"a": 1 << 35900, "b": 1 << 35900}))
        large = estimated_cycles(
            "mul", validate_params(
                "mul", {"a": 1 << (1 << 17), "b": 1 << (1 << 17)}))
        assert small < medium < large


class TestOracle:
    def test_mul_matches_python(self):
        a, b = 3 ** 120, 7 ** 95
        result = evaluate(("mul", {"a": a, "b": b}))
        assert int(result["product"], 16) == a * b

    def test_div_matches_python(self):
        a, b = 10 ** 60 + 12345, 997
        result = evaluate(("div", {"a": a, "b": b}))
        assert int(result["quotient"], 16) == a // b
        assert int(result["remainder"], 16) == a % b

    def test_powmod_matches_python(self):
        base, exp, mod = 0xABCDEF, 65537, (1 << 127) - 1
        result = evaluate(("powmod", {"base": base, "exp": exp,
                                      "mod": mod}))
        assert int(result["value"], 16) == pow(base, exp, mod)

    def test_pi_digits(self):
        result = evaluate(("pi_digits", {"digits": 20}))
        assert result["digits"].startswith("3.14159265358979")

    def test_model_cycles_matches_runtime_model(self):
        from repro.runtime import mpapca
        result = evaluate(("model_cycles",
                           {"op": "mul", "bits_a": 4096, "bits_b": 0}))
        assert result["cycles"] == mpapca.mul_cycles(4096, 4096)
        assert result["seconds"] > 0


class TestPlanKeys:
    def test_compat_key_splits_mul_by_backend(self):
        small = make_job({"op": "mul", "params": {"a": 3, "b": 5}})
        big = make_job({"op": "mul",
                        "params": {"a": 1 << 40000, "b": 1 << 40000}})
        assert small.compat_key() == ("mul", "device")
        # Over-monolithic muls now resolve to the compiled
        # specialization of the committed schedule.
        assert big.compat_key() == ("mul", "specialized")

    def test_cache_key_carries_plan_memo_key(self):
        job = make_job({"op": "model_cycles",
                        "params": {"op": "mul", "bits_a": 256,
                                   "bits_b": 0}})
        assert tuple(job.plan.memo_key) \
            == tuple(job.cache_key()[-len(job.plan.memo_key):])

    def test_retuning_changes_cache_key(self):
        """A ``repro tune`` retune in a running server must never be
        served results cached under the old thresholds: the plan memo
        key inside the cache key changes with the tuning."""
        import dataclasses

        from repro.plan import select
        from repro.plan.execute import plan_for_job
        params = {"op": "mul", "bits_a": 256, "bits_b": 0}
        job = make_job({"op": "model_cycles", "params": params})
        retuned = dataclasses.replace(select.active(),
                                      karatsuba_limbs=7)
        stale = dataclasses.replace(
            job, plan=plan_for_job("model_cycles", params, retuned))
        assert stale.cache_key() != job.cache_key()

    def test_cache_key_only_for_pure_queries(self):
        assert _job("pi_digits", {"digits": 10}).cache_key() is not None
        assert _job("model_cycles",
                    {"op": "mul", "bits_a": 64}).cache_key() is not None
        assert _job("mul", {"a": 2, "b": 3}).cache_key() is None
