"""Lifecycle regressions the flow analyzer forced into the open: the
batcher and shutdown tasks are spawned fire-and-forget, so a crash in
either used to vanish — queued clients hung and ``wait_terminated()``
never returned.  These tests pin the observed behaviour."""

import asyncio

from repro.serve.batcher import DynamicBatcher
from repro.serve.jobs import make_job
from repro.serve.metrics import MetricsRegistry
from repro.serve.queue import AdmissionQueue
from repro.serve.server import ReproServer, ServeConfig


def run(coro):
    return asyncio.run(coro)


def _config():
    return ServeConfig(port=0, queue_capacity=8, batch_ms=1.0)


def _queued_job(loop, queue, job_id="j1"):
    job = make_job({"op": "mul", "params": {"a": 3, "b": 7},
                    "id": job_id})
    job.future = loop.create_future()
    assert queue.try_submit(job) is None
    return job


class TestBatcherCrash:
    def test_queued_futures_fail_fast_instead_of_hanging(self):
        async def scenario():
            server = ReproServer(_config())
            loop = asyncio.get_running_loop()
            job = _queued_job(loop, server.queue)

            async def crashing_run():
                raise RuntimeError("boom")

            server.batcher.run = crashing_run
            await server.start()
            body = await asyncio.wait_for(job.future, 5.0)
            return server, body

        server, body = run(scenario())
        assert body["ok"] is False
        assert body["error"] == "error:internal"
        assert "boom" in body["message"]
        assert server.registry.counter_value("batcher_crash_total") == 1
        assert server.queue.closed  # no admissions after the crash

    def test_shutdown_still_drains_after_the_crash(self):
        async def scenario():
            server = ReproServer(_config())

            async def crashing_run():
                raise RuntimeError("boom")

            server.batcher.run = crashing_run
            await server.start()
            await asyncio.wait_for(server.shutdown(), 5.0)
            return server

        server = run(scenario())
        assert server.registry.counter_value("batcher_crash_total") == 1


class TestShutdownCrash:
    def test_wait_terminated_returns_even_if_the_drain_raises(self):
        async def scenario():
            server = ReproServer(_config())
            await server.start()

            async def crashing_shutdown():
                raise RuntimeError("drain exploded")

            server.shutdown = crashing_shutdown
            server.trigger_shutdown()
            await asyncio.wait_for(server.wait_terminated(), 5.0)
            return server

        server = run(scenario())
        assert server.registry.counter_value("shutdown_error_total") == 1


class TestDeadlineAccounting:
    def test_cancelled_future_counts_as_dropped_not_expired(self):
        # The server's wait_for timeout counts deadline_expired_total
        # and cancels the future; when the batcher later meets the
        # cancelled job it must use its own counter, or every timed-out
        # job is double-counted as two expiries.
        async def scenario():
            queue = AdmissionQueue(capacity=8)
            registry = MetricsRegistry()
            batcher = DynamicBatcher(queue, registry, max_batch=4,
                                     batch_ms=1.0)
            loop = asyncio.get_running_loop()
            job = _queued_job(loop, queue)
            job.future.cancel()
            queue.close()
            await asyncio.wait_for(batcher.run(), 5.0)
            return registry, batcher

        registry, batcher = run(scenario())
        assert registry.counter_total("deadline_dropped_total") == 1
        assert registry.counter_total("deadline_expired_total") == 0
        assert batcher.batches_dispatched == 0
