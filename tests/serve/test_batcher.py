"""Dynamic batching: coalescing, ordering, caching, deadlines."""

import asyncio

from repro.serve.batcher import DynamicBatcher
from repro.serve.jobs import evaluate, make_job
from repro.serve.metrics import MetricsRegistry
from repro.serve.queue import AdmissionQueue


def _submit(queue, loop, op, params, **extra):
    payload = {"op": op, "params": params}
    payload.update(extra)
    job = make_job(payload)
    job.future = loop.create_future()
    reason = queue.try_submit(job)
    assert reason is None, reason
    return job


async def _drain(queue, batcher_task):
    queue.close()
    await batcher_task


def run(coro):
    return asyncio.run(coro)


class TestBatching:
    def test_mul_batch_is_bit_identical_and_batched(self):
        async def scenario():
            queue = AdmissionQueue(capacity=32)
            registry = MetricsRegistry()
            batcher = DynamicBatcher(queue, registry, max_batch=8,
                                     batch_ms=20.0)
            loop = asyncio.get_running_loop()
            jobs = [_submit(queue, loop, "mul",
                            {"a": 3 ** (40 + i), "b": 7 ** (30 + i)},
                            id="m%d" % i)
                    for i in range(6)]
            task = asyncio.ensure_future(batcher.run())
            bodies = await asyncio.gather(*(job.future for job in jobs))
            await _drain(queue, task)
            return jobs, bodies, registry, batcher

        jobs, bodies, registry, batcher = run(scenario())
        for index, (job, body) in enumerate(zip(jobs, bodies)):
            assert body["ok"], body
            assert body["id"] == "m%d" % index
            expected = evaluate(("mul", job.params))
            assert body["result"] == expected
        # All six coalesced into few device batches.
        assert batcher.batches_dispatched < 6
        assert registry.counter_total("batches_total") == \
            batcher.batches_dispatched
        assert registry.histogram("batch_size").count > 0

    def test_mixed_ops_batch_separately_but_all_answer(self):
        async def scenario():
            queue = AdmissionQueue(capacity=32)
            batcher = DynamicBatcher(queue, max_batch=4, batch_ms=5.0)
            loop = asyncio.get_running_loop()
            jobs = [
                _submit(queue, loop, "mul", {"a": 11, "b": 13}),
                _submit(queue, loop, "div", {"a": 1000, "b": 7}),
                _submit(queue, loop, "powmod",
                        {"base": 5, "exp": 117, "mod": 1009}),
                _submit(queue, loop, "model_cycles",
                        {"op": "div", "bits_a": 2048, "bits_b": 1024}),
            ]
            task = asyncio.ensure_future(batcher.run())
            bodies = await asyncio.gather(*(job.future for job in jobs))
            await _drain(queue, task)
            return jobs, bodies

        jobs, bodies = run(scenario())
        for job, body in zip(jobs, bodies):
            assert body["ok"], body
            assert body["result"] == evaluate((job.op, job.params))

    def test_oversized_mul_takes_library_path(self):
        async def scenario():
            queue = AdmissionQueue(capacity=4)
            batcher = DynamicBatcher(queue, max_batch=2, batch_ms=1.0)
            loop = asyncio.get_running_loop()
            # Far above MONOLITHIC_MAX_BITS (35904): library path.
            big = (1 << 40000) | 0x1234567
            job = _submit(queue, loop, "mul", {"a": big, "b": big + 2})
            task = asyncio.ensure_future(batcher.run())
            body = await job.future
            await _drain(queue, task)
            return job, body

        job, body = run(scenario())
        assert body["ok"]
        assert body["result"] == evaluate(("mul", job.params))

    def test_cache_hits_for_pure_queries(self):
        async def scenario():
            queue = AdmissionQueue(capacity=8)
            registry = MetricsRegistry()
            batcher = DynamicBatcher(queue, registry, max_batch=1,
                                     batch_ms=0.0)
            loop = asyncio.get_running_loop()
            task = asyncio.ensure_future(batcher.run())
            params = {"op": "mul", "bits_a": 8192, "bits_b": 0}
            first = _submit(queue, loop, "model_cycles", dict(params))
            body_first = await first.future
            second = _submit(queue, loop, "model_cycles", dict(params))
            body_second = await second.future
            await _drain(queue, task)
            return body_first, body_second, registry

        first, second, registry = run(scenario())
        assert first["result"] == second["result"]
        assert first["cached"] is False
        assert second["cached"] is True
        assert registry.counter_value("cache_hits_total") == 1
        assert registry.counter_value("cache_misses_total") == 1

    def test_expired_job_is_rejected_not_executed(self):
        async def scenario():
            queue = AdmissionQueue(capacity=4)
            registry = MetricsRegistry()
            batcher = DynamicBatcher(queue, registry, max_batch=2,
                                     batch_ms=0.0)
            loop = asyncio.get_running_loop()
            job = _submit(queue, loop, "mul", {"a": 3, "b": 4},
                          deadline_ms=0.001)
            await asyncio.sleep(0.01)     # let the deadline lapse
            task = asyncio.ensure_future(batcher.run())
            body = await job.future
            await _drain(queue, task)
            return body, registry

        body, registry = run(scenario())
        assert body == {"ok": False, "id": body["id"], "op": "mul",
                        "error": "rejected:deadline"}
        assert registry.counter_value("deadline_expired_total") == 1

    def test_drain_answers_everything_queued(self):
        async def scenario():
            queue = AdmissionQueue(capacity=64)
            batcher = DynamicBatcher(queue, max_batch=4, batch_ms=1.0)
            loop = asyncio.get_running_loop()
            jobs = [_submit(queue, loop, "mul", {"a": i + 2, "b": 9})
                    for i in range(10)]
            task = asyncio.ensure_future(batcher.run())
            queue.close()                  # close with work queued
            await task                     # run() must drain first
            return jobs

        jobs = run(scenario())
        for job in jobs:
            assert job.future.done()
            assert job.future.result()["ok"]

    def test_service_rate_feeds_queue_estimator(self):
        async def scenario():
            queue = AdmissionQueue(capacity=8)
            batcher = DynamicBatcher(queue, max_batch=2, batch_ms=0.0)
            loop = asyncio.get_running_loop()
            job = _submit(queue, loop, "mul",
                          {"a": 3 ** 500, "b": 7 ** 400})
            task = asyncio.ensure_future(batcher.run())
            await job.future
            await _drain(queue, task)
            return queue

        queue = run(scenario())
        assert queue.estimated_wait_ms(extra_cycles=1000.0) is not None
