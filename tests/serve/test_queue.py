"""Admission control: depth bound, wait bound, priority ordering."""

import asyncio

import pytest

from repro.serve.jobs import make_job
from repro.serve.queue import (SHED_QUEUE_FULL, SHED_SHUTTING_DOWN,
                               SHED_WAIT_EXCEEDED, AdmissionQueue)


def _job(priority=0, cost=None, a=123456789):
    job = make_job({"op": "mul", "params": {"a": a, "b": 3},
                    "priority": priority})
    if cost is not None:
        job.cost_cycles = cost
    return job


def run(coro):
    return asyncio.run(coro)


class TestAdmission:
    def test_depth_bound_is_hard(self):
        queue = AdmissionQueue(capacity=3)
        for _ in range(3):
            assert queue.try_submit(_job()) is None
        assert queue.try_submit(_job()) == SHED_QUEUE_FULL
        assert queue.depth == 3
        assert queue.max_depth == 3
        assert queue.shed == 1

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            AdmissionQueue(capacity=0)

    def test_closed_queue_sheds_shutting_down(self):
        queue = AdmissionQueue(capacity=4)
        queue.close()
        assert queue.try_submit(_job()) == SHED_SHUTTING_DOWN

    def test_wait_bound_uses_observed_rate(self):
        queue = AdmissionQueue(capacity=100, max_wait_ms=10.0)
        #

        # Before any observation there is no rate: depth rules alone.
        assert queue.estimated_wait_ms() is None
        assert queue.try_submit(_job(cost=1000.0)) is None
        # 1 cycle per ms observed -> 1000 pending cycles = 1000 ms
        # estimated wait, far over the 10 ms bound.
        queue.observe_service(cycles=100.0, wall_ms=100.0)
        assert queue.try_submit(_job(cost=1000.0)) == SHED_WAIT_EXCEEDED
        assert queue.depth == 1

    def test_wait_estimate_tracks_backlog(self):
        queue = AdmissionQueue(capacity=100)
        queue.observe_service(cycles=1000.0, wall_ms=10.0)  # 100 c/ms
        for _ in range(4):
            queue.try_submit(_job(cost=200.0))
        assert queue.estimated_wait_ms() == pytest.approx(8.0)

    def test_ewma_smooths_rate(self):
        queue = AdmissionQueue(capacity=10)
        queue.observe_service(1000.0, 10.0)
        first = queue.estimated_wait_ms(extra_cycles=100.0)
        queue.observe_service(10.0, 10.0)   # much slower batch
        second = queue.estimated_wait_ms(extra_cycles=100.0)
        assert second > first


class TestOrdering:
    def test_priority_first_fifo_within(self):
        async def scenario():
            queue = AdmissionQueue(capacity=10)
            low1, low2 = _job(priority=1), _job(priority=1)
            high = _job(priority=8)
            for job in (low1, low2, high):
                queue.try_submit(job)
            assert await queue.get(0.01) is high
            assert await queue.get(0.01) is low1
            assert await queue.get(0.01) is low2
        run(scenario())

    def test_get_times_out_empty(self):
        async def scenario():
            queue = AdmissionQueue(capacity=2)
            assert await queue.get(timeout=0.01) is None
        run(scenario())

    def test_get_wakes_on_submit(self):
        async def scenario():
            queue = AdmissionQueue(capacity=2)

            async def feed():
                await asyncio.sleep(0.02)
                queue.try_submit(_job())

            feeder = asyncio.ensure_future(feed())
            job = await queue.get(timeout=1.0)
            await feeder
            return job

        assert run(scenario()) is not None

    def test_take_compatible_filters_and_orders(self):
        async def scenario():
            queue = AdmissionQueue(capacity=10)
            mul_low = _job(priority=0)
            div = make_job({"op": "div",
                            "params": {"a": 100, "b": 7}})
            mul_high = _job(priority=5)
            for job in (mul_low, div, mul_high):
                queue.try_submit(job)
            taken = queue.take_compatible(mul_low.compat_key(), 8)
            assert taken == [mul_high, mul_low]
            assert queue.depth == 1          # the div job remains
            assert queue.take_compatible(mul_low.compat_key(), 8) == []
        run(scenario())

    def test_take_compatible_respects_limit(self):
        async def scenario():
            queue = AdmissionQueue(capacity=10)
            jobs = [_job(priority=p) for p in (1, 9, 5)]
            for job in jobs:
                queue.try_submit(job)
            taken = queue.take_compatible(jobs[0].compat_key(), 2)
            assert [job.priority for job in taken] == [9, 5]
        run(scenario())

    def test_pending_cycles_balance(self):
        async def scenario():
            queue = AdmissionQueue(capacity=10)
            jobs = [_job(cost=cost) for cost in (100.0, 200.0, 300.0)]
            for job in jobs:
                queue.try_submit(job)
            assert queue.pending_cycles == pytest.approx(600.0)
            await queue.get(0.01)
            queue.take_compatible(jobs[0].compat_key(), 8)
            assert queue.pending_cycles == pytest.approx(0.0)
        run(scenario())

    def test_close_wakes_waiting_consumer(self):
        async def scenario():
            queue = AdmissionQueue(capacity=2)

            async def closer():
                await asyncio.sleep(0.02)
                queue.close()

            task = asyncio.ensure_future(closer())
            job = await queue.get(timeout=5.0)
            await task
            return job

        assert run(scenario()) is None


class TestSeededRate:
    def test_seed_only_while_cold(self):
        queue = AdmissionQueue(capacity=10)
        assert not queue.service_rate_seeded
        queue.seed_service_rate(50.0)
        assert queue.service_rate_seeded
        assert queue.service_rate_cycles_per_ms == pytest.approx(50.0)
        queue.seed_service_rate(999.0)  # second seed is a no-op
        assert queue.service_rate_cycles_per_ms == pytest.approx(50.0)

    def test_invalid_seed_ignored(self):
        queue = AdmissionQueue(capacity=10)
        queue.seed_service_rate(0.0)
        queue.seed_service_rate(-5.0)
        assert queue.service_rate_cycles_per_ms is None
        assert not queue.service_rate_seeded

    def test_first_observation_replaces_seed_outright(self):
        queue = AdmissionQueue(capacity=10)
        queue.seed_service_rate(50.0)
        queue.observe_service(cycles=1000.0, wall_ms=10.0)  # 100 c/ms
        # No EWMA blend with the seed: the rate is exactly 100.
        assert queue.service_rate_cycles_per_ms == pytest.approx(100.0)
        assert not queue.service_rate_seeded

    def test_seed_makes_wait_gate_live_before_first_batch(self):
        queue = AdmissionQueue(capacity=100, max_wait_ms=10.0)
        queue.seed_service_rate(100.0)  # 100 cycles per ms
        assert queue.try_submit(_job(cost=500.0)) is None  # 5 ms
        assert queue.try_submit(_job(cost=900.0)) == SHED_WAIT_EXCEEDED


class TestNsPricing:
    def _priced(self, cost_ns, priority=0):
        job = _job(priority=priority)
        job.cost_ns = cost_ns
        return job

    def test_ns_backlog_prices_the_wait(self):
        queue = AdmissionQueue(capacity=10)
        queue.try_submit(self._priced(2e6))  # 2 ms of predicted work
        queue.try_submit(self._priced(3e6))
        assert queue.pending_ns == pytest.approx(5e6)
        # Fully priced backlog + a priced arrival: no rate needed.
        assert queue.estimated_wait_ms(extra_ns=1e6) \
            == pytest.approx(6.0)

    def test_one_unpriced_job_falls_back_to_cycles(self):
        queue = AdmissionQueue(capacity=10)
        queue.try_submit(self._priced(2e6))
        queue.try_submit(_job(cost=500.0))  # no ns price
        assert queue.estimated_wait_ms(extra_ns=1e6) is None
        queue.observe_service(cycles=100.0, wall_ms=100.0)  # 1 c/ms
        estimate = queue.estimated_wait_ms(extra_cycles=0.0,
                                           extra_ns=1e6)
        assert estimate == pytest.approx(queue.pending_cycles)

    def test_calibration_scales_the_estimate(self):
        queue = AdmissionQueue(capacity=10)
        # Model says 1 ms, the wall said 2 ms: calibration drifts up.
        queue.observe_service(cycles=10.0, wall_ms=2.0,
                              predicted_ns=1e6)
        queue.try_submit(self._priced(1e6))
        estimate = queue.estimated_wait_ms(extra_ns=1e6)
        assert estimate > 2.0  # 2 ms raw, scaled by calibration > 1

    def test_consumption_forgets_ns_backlog(self):
        async def scenario():
            queue = AdmissionQueue(capacity=10)
            jobs = [self._priced(1e6), self._priced(2e6)]
            for job in jobs:
                queue.try_submit(job)
            await queue.get(0.01)
            queue.take_compatible(jobs[0].compat_key(), 8)
            assert queue.pending_ns == pytest.approx(0.0)
        run(scenario())

    def test_drain_resets_ns_accounting(self):
        queue = AdmissionQueue(capacity=10)
        queue.try_submit(self._priced(1e6))
        queue.try_submit(_job())
        queue.close()
        drained = queue.drain()
        assert len(drained) == 2
        assert queue.pending_ns == pytest.approx(0.0)
        assert queue.estimated_wait_ms(extra_ns=1e6) \
            == pytest.approx(1.0)
