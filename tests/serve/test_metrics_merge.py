"""Unit tests for the pure snapshot algebra (the sharded scrape path).

``merge_snapshots`` is what makes one fleet-wide ``/metrics`` scrape
honest: counters and histogram buckets must add element-wise, gauges
must respect high-water-mark semantics, and percentiles must be
interpolated only *after* the merge — averaging per-shard p50s is the
classic aggregation bug this module exists to prevent.
"""

import pytest

from repro.serve.metrics import (Histogram, MetricsRegistry,
                                 merge_snapshots, parse_exposition,
                                 render_snapshot)


def _snap(build):
    registry = MetricsRegistry()
    build(registry)
    return registry.snapshot()


class TestCounterMerge:
    def test_equal_keys_sum(self):
        a = _snap(lambda r: r.counter("requests_total", op="mul").inc(3))
        b = _snap(lambda r: r.counter("requests_total", op="mul").inc(5))
        merged = merge_snapshots([a, b])
        assert merged["counters"] == [
            ["requests_total", [["op", "mul"]], 8]]

    def test_disjoint_labels_stay_separate(self):
        a = _snap(lambda r: r.counter("requests_total", op="mul").inc(2))
        b = _snap(lambda r: r.counter("requests_total", op="div").inc(7))
        merged = merge_snapshots([a, b])
        values = {tuple(labels[0]): value
                  for _, labels, value in merged["counters"]}
        assert values == {("op", "div"): 7, ("op", "mul"): 2}

    def test_empty_merge_is_empty(self):
        merged = merge_snapshots([])
        assert merged == {"counters": [], "gauges": [],
                          "histograms": []}


class TestGaugeMerge:
    def test_plain_gauges_sum(self):
        a = _snap(lambda r: r.gauge("queue_depth").set(4))
        b = _snap(lambda r: r.gauge("queue_depth").set(9))
        merged = merge_snapshots([a, b])
        assert merged["gauges"] == [["queue_depth", [], 13.0]]

    def test_high_water_marks_take_max_not_sum(self):
        # Summing per-shard max depths would fabricate a depth no
        # process ever reached.
        a = _snap(lambda r: r.gauge("queue_max_depth").set_max(12))
        b = _snap(lambda r: r.gauge("queue_max_depth").set_max(30))
        merged = merge_snapshots([a, b])
        assert merged["gauges"] == [["queue_max_depth", [], 30.0]]


class TestHistogramMerge:
    def test_buckets_add_element_wise(self):
        bounds = (1.0, 10.0, 100.0)

        def build_a(r):
            h = r.histogram("latency_ms", bounds=bounds)
            h.observe(0.5)
            h.observe(50.0)

        def build_b(r):
            h = r.histogram("latency_ms", bounds=bounds)
            h.observe(5.0)
            h.observe(500.0)

        merged = merge_snapshots([_snap(build_a), _snap(build_b)])
        [[name, labels, got_bounds, counts, count, total]] = \
            merged["histograms"]
        assert name == "latency_ms"
        assert got_bounds == [1.0, 10.0, 100.0]
        assert counts == [1, 1, 1, 1]
        assert count == 4
        assert total == pytest.approx(555.5)

    def test_percentiles_come_from_merged_buckets(self):
        # Shard A saw only fast requests, shard B only slow ones; the
        # fleet p50 must fall between them, which no average of the
        # two per-shard p50s computed first could guarantee in general.
        bounds = (1.0, 10.0, 100.0, 1000.0)

        def fast(r):
            h = r.histogram("latency_ms", bounds=bounds)
            for _ in range(100):
                h.observe(0.5)

        def slow(r):
            h = r.histogram("latency_ms", bounds=bounds)
            for _ in range(100):
                h.observe(500.0)

        merged = merge_snapshots([_snap(fast), _snap(slow)])
        [[_, _, got_bounds, counts, count, total]] = \
            merged["histograms"]
        rebuilt = Histogram(got_bounds)
        rebuilt.counts = counts
        rebuilt.count = count
        rebuilt.total = total
        assert rebuilt.percentile(0.25) <= 1.0
        assert rebuilt.percentile(0.99) > 100.0

    def test_mismatched_bounds_raise(self):
        a = _snap(lambda r: r.histogram("h", bounds=(1.0, 2.0))
                  .observe(1.5))
        b = _snap(lambda r: r.histogram("h", bounds=(1.0, 4.0))
                  .observe(1.5))
        with pytest.raises(ValueError, match="mismatched bounds"):
            merge_snapshots([a, b])

    def test_mismatched_bucket_counts_raise(self):
        a = _snap(lambda r: r.histogram("h", bounds=(1.0, 2.0))
                  .observe(1.5))
        b = _snap(lambda r: r.histogram("h", bounds=(1.0, 2.0))
                  .observe(1.5))
        b["histograms"][0][3] = [0, 1]  # corrupt: drop a bucket slot
        with pytest.raises(ValueError, match="buckets"):
            merge_snapshots([a, b])


class TestRenderPath:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", op="mul").inc(4)
        registry.gauge("queue_depth").set(2)
        h = registry.histogram("latency_ms")
        for value in (0.3, 4.0, 40.0, 400.0):
            h.observe(value)
        return registry

    def test_render_goes_through_snapshot_path(self):
        # One formatting path: the registry's own render must equal
        # rendering its snapshot, so shard and merged scrapes can
        # never drift in format.
        registry = self._populated()
        assert registry.render() == render_snapshot(
            registry.snapshot(), registry.prefix)

    def test_merge_of_one_round_trips(self):
        registry = self._populated()
        merged = merge_snapshots([registry.snapshot()])
        assert parse_exposition(render_snapshot(merged)) == \
            parse_exposition(registry.render())

    def test_merged_render_doubles_counts(self):
        registry = self._populated()
        snapshot = registry.snapshot()
        merged = merge_snapshots([snapshot, snapshot])
        values = parse_exposition(render_snapshot(merged))
        assert values['repro_serve_requests_total{op="mul"}'] == 8
        assert values["repro_serve_latency_ms_count"] == 8
        assert values["repro_serve_queue_depth"] == 4
