"""Metrics registry exposition and request-span tracing."""

import json

import pytest

from repro.serve.metrics import (Counter, Gauge, Histogram,
                                 MetricsRegistry, parse_exposition)
from repro.serve.trace import RequestTrace, Tracer


class TestPrimitives:
    def test_counter_and_gauge(self):
        counter, gauge = Counter(), Gauge()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        gauge.set(3.5)
        gauge.set_max(2.0)
        assert gauge.value == 3.5
        gauge.set_max(7.0)
        assert gauge.value == 7.0

    def test_histogram_counts_and_mean(self):
        histogram = Histogram(bounds=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.counts == [1, 1, 1, 1]
        assert histogram.mean == pytest.approx(138.875)

    def test_histogram_percentiles_bracket_truth(self):
        histogram = Histogram()
        values = [float(v) for v in range(1, 1001)]  # 1..1000 ms
        for value in values:
            histogram.observe(value)
        # Interpolation is within one log-bucket of the exact answer.
        assert 200.0 <= histogram.percentile(0.5) <= 1000.0
        assert histogram.percentile(0.99) <= 1000.0
        assert histogram.percentile(0.0) >= 0.0

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(5.0, 1.0))
        with pytest.raises(ValueError):
            Histogram().percentile(1.5)


class TestRegistry:
    def test_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        assert registry.counter("hits", op="mul") is \
            registry.counter("hits", op="mul")
        assert registry.counter("hits", op="mul") is not \
            registry.counter("hits", op="div")

    def test_counter_total_sums_label_sets(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", op="mul").inc(3)
        registry.counter("requests_total", op="div").inc(2)
        assert registry.counter_total("requests_total") == 5
        assert registry.counter_value("requests_total", op="mul") == 3

    def test_render_round_trips_through_parser(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", op="mul").inc(7)
        registry.gauge("queue_depth").set(3)
        registry.histogram("latency_ms").observe(12.0)
        text = registry.render()
        values = parse_exposition(text)
        assert values['repro_serve_requests_total{op="mul"}'] == 7.0
        assert values["repro_serve_queue_depth"] == 3.0
        assert values["repro_serve_latency_ms_count"] == 1.0
        assert values["repro_serve_latency_ms_sum"] == 12.0

    def test_render_includes_buckets_and_quantiles(self):
        registry = MetricsRegistry()
        for value in (1.0, 3.0, 30.0):
            registry.histogram("latency_ms").observe(value)
        text = registry.render()
        assert 'latency_ms_bucket{le="+Inf"} 3' in text
        assert 'quantile="0.99"' in text


class TestTracing:
    def test_disabled_tracer_allocates_nothing(self):
        tracer = Tracer(enabled=False)
        assert tracer.begin("j1", "mul") is None
        tracer.record(None)
        assert tracer.completed() == []
        assert tracer.dump() is None

    def test_span_decomposition(self):
        trace = RequestTrace("j1", "mul")
        for name in ("received", "admitted", "batched",
                     "execute_start", "execute_end", "responded"):
            trace.mark(name)
        trace.annotate(batch_size=4)
        data = trace.to_dict()
        assert data["id"] == "j1"
        assert set(data["spans_ms"]) == {
            "received->admitted", "admitted->batched",
            "batched->execute_start", "execute_start->execute_end",
            "execute_end->responded"}
        assert data["meta"]["batch_size"] == 4
        assert trace.span_ms("received", "responded") is not None
        assert trace.span_ms("received", "nope") is None

    def test_env_enables_tracing(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        tracer = Tracer()
        trace = tracer.begin("j2", "div")
        assert trace is not None
        tracer.record(trace)
        assert tracer.recorded == 1

    def test_dump_writes_jsonl(self, tmp_path):
        tracer = Tracer(enabled=True)
        for index in range(3):
            trace = tracer.begin("j%d" % index, "mul")
            trace.mark("responded")
            tracer.record(trace)
        target = tmp_path / "trace.jsonl"
        written = tracer.dump(target)
        assert written == target
        lines = target.read_text().splitlines()
        assert len(lines) == 3
        assert json.loads(lines[0])["op"] == "mul"
        # The buffer drains on dump.
        assert tracer.completed() == []

    def test_capacity_bounds_the_buffer(self):
        tracer = Tracer(enabled=True, capacity=2)
        for index in range(5):
            tracer.record(tracer.begin("j%d" % index, "mul"))
        assert len(tracer.completed()) == 2
        assert tracer.recorded == 5
