"""End-to-end acceptance: a real server, real sockets, real load.

Covers the subsystem's contract: bit-identical answers across all five
job types under 32 in-flight concurrent clients, K-bounded memory with
explicit shed responses under a 4x-capacity burst, ``/metrics``
agreeing with the load generator's ground truth, and a graceful drain
that answers queued work before exiting.
"""

import json
import threading
import time

import pytest

from repro.serve.client import ServeClient, build_jobs, run_load
from repro.serve.jobs import evaluate, validate_params
from repro.serve.server import ServeConfig, ServerThread
from repro.serve.trace import Tracer


@pytest.fixture()
def server():
    config = ServeConfig(port=0, queue_capacity=64, max_batch=8,
                         batch_ms=2.0, max_wait_ms=60_000.0)
    with ServerThread(config) as hosted:
        yield hosted


class TestEndToEnd:
    def test_all_five_ops_bit_identical(self, server):
        client = ServeClient(server.host, server.port)
        cases = [
            {"op": "mul", "params": {"a": hex(3 ** 300),
                                     "b": hex(7 ** 250)}},
            {"op": "div", "params": {"a": hex(10 ** 100 + 7),
                                     "b": "9973"}},
            {"op": "powmod", "params": {"base": "0xabcdef",
                                        "exp": "65537",
                                        "mod": hex((1 << 255) - 19)}},
            {"op": "pi_digits", "params": {"digits": 40}},
            {"op": "model_cycles", "params": {"op": "powmod",
                                              "bits_a": 2048,
                                              "bits_b": 2048}},
        ]
        for payload in cases:
            status, body = client.request(payload)
            assert status == 200, body
            assert body["ok"]
            expected = evaluate((payload["op"], validate_params(
                payload["op"], payload["params"])))
            assert body["result"] == expected

    def test_32_concurrent_clients_zero_wrong_answers(self, server):
        report = run_load(server.host, server.port, requests=96,
                          concurrency=32, seed=11, verify=True)
        assert report["wrong_answers"] == 0
        assert report["errors"] == 0
        assert report["ok"] + report["shed"] + report["deadline"] == 96
        assert report["ok"] > 0

    def test_invalid_requests_get_400_vocabulary(self, server):
        client = ServeClient(server.host, server.port)
        status, body = client.request({"op": "div",
                                       "params": {"a": 5, "b": 0}})
        assert status == 400
        assert body["error"] == "invalid:zero-divisor"
        status, body = client.request({"op": "nope", "params": {}})
        assert status == 400
        assert body["error"] == "invalid:unknown-op"
        status, raw = client.raw("POST", "/v1/job", b"{not json")
        assert status == 400
        assert json.loads(raw)["error"] == "invalid:bad-json"
        status, raw = client.raw("GET", "/nowhere")
        assert status == 404

    def test_metrics_match_ground_truth_within_one_percent(self, server):
        requests = 120
        report = run_load(server.host, server.port, requests=requests,
                          concurrency=8, seed=3, verify=False)
        client = ServeClient(server.host, server.port)
        values = client.metrics_values()
        served = sum(value for key, value in values.items()
                     if key.startswith("repro_serve_requests_total{"))
        shed = sum(value for key, value in values.items()
                   if key.startswith("repro_serve_shed_total"))
        answered = report["ok"] + report["shed"] + report["deadline"]
        assert answered == requests
        # The server's counters must agree with the load generator.
        assert served == pytest.approx(requests, rel=0.01)
        assert shed == pytest.approx(report["shed"], rel=0.01)
        ok_responses = values.get(
            'repro_serve_responses_total{status="ok"}', 0.0)
        assert ok_responses == pytest.approx(report["ok"], rel=0.01)
        latency_count = values.get("repro_serve_latency_ms_count", 0.0)
        assert latency_count >= report["ok"]

    def test_healthz(self, server):
        client = ServeClient(server.host, server.port)
        assert client.health() == "ok"


class TestOverload:
    def test_4x_capacity_burst_sheds_explicitly_and_stays_bounded(self):
        capacity = 8
        config = ServeConfig(port=0, queue_capacity=capacity,
                             max_batch=4, batch_ms=1.0,
                             max_wait_ms=1e9)
        with ServerThread(config) as hosted:
            client = ServeClient(hosted.host, hosted.port)
            total = 4 * capacity
            results = [None] * total
            # Distinct expensive pi queries defeat the result cache so
            # the queue genuinely backs up.
            payloads = [{"op": "pi_digits",
                         "params": {"digits": 300 + index},
                         "id": "burst-%d" % index}
                        for index in range(total)]

            def fire(index):
                results[index] = client.request(payloads[index])

            threads = [threading.Thread(target=fire, args=(index,))
                       for index in range(total)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            ok = shed = 0
            for status, body in results:
                if status == 200 and body["ok"]:
                    ok += 1
                else:
                    assert status == 503, (status, body)
                    assert body["error"] == "rejected:overloaded"
                    assert body["reason"] in ("queue-full",
                                              "wait-exceeded")
                    shed += 1
            assert ok + shed == total
            assert shed > 0                  # the burst did overload
            assert ok > 0                    # but service continued
            # K-bounded: the queue never exceeded its capacity.
            depth = hosted.server.queue.max_depth
            assert depth <= capacity
            metrics = client.metrics_values()
            shed_metric = sum(
                value for key, value in metrics.items()
                if key.startswith("repro_serve_shed_total"))
            assert shed_metric == shed


class TestDeadlinesAndPriorities:
    def test_deadline_rejected_when_impossible(self, server):
        client = ServeClient(server.host, server.port)
        status, body = client.request(
            {"op": "pi_digits", "params": {"digits": 600},
             "deadline_ms": 0.01})
        assert status in (200, 504)
        if status == 504:
            assert body["error"] == "rejected:deadline"

    def test_priorities_accepted_across_range(self, server):
        client = ServeClient(server.host, server.port)
        for priority in (0, 5, 9):
            status, body = client.request(
                {"op": "mul", "params": {"a": 3, "b": 4},
                 "priority": priority})
            assert status == 200 and body["ok"]


class TestShutdownDrain:
    def test_queued_work_is_answered_then_clean_exit(self):
        config = ServeConfig(port=0, queue_capacity=64, max_batch=4,
                             batch_ms=1.0)
        hosted = ServerThread(config)
        hosted.start()
        client = ServeClient(hosted.host, hosted.port)
        results = []
        lock = threading.Lock()

        def fire(index):
            outcome = client.request(
                {"op": "pi_digits", "params": {"digits": 150 + index}})
            with lock:
                results.append(outcome)

        threads = [threading.Thread(target=fire, args=(index,))
                   for index in range(6)]
        for thread in threads:
            thread.start()
        # Wait until the server has received every request, then begin
        # the drain while they are in flight (or already queued).
        deadline = time.monotonic() + 30.0
        registry = hosted.server.registry
        while registry.counter_total("requests_total") < 6:
            assert time.monotonic() < deadline, "requests never arrived"
            time.sleep(0.001)
        hosted._loop.call_soon_threadsafe(
            hosted.server.trigger_shutdown)
        for thread in threads:
            thread.join()
        hosted.stop()
        assert len(results) == 6
        ok = 0
        for status, body in results:
            # In-flight work drains (200); a request that races the
            # drain flag is shed explicitly — never dropped.
            assert status in (200, 503), (status, body)
            if status == 503:
                assert body["reason"] == "shutting-down"
            else:
                assert body["ok"]
                ok += 1
        assert ok >= 1                       # the drain answered work


class TestTracing:
    def test_traces_collected_when_enabled(self, tmp_path, monkeypatch):
        # The server dumps buffered traces on drain; keep that file
        # inside the test sandbox.
        monkeypatch.setenv("REPRO_TRACE_FILE",
                           str(tmp_path / "drain.jsonl"))
        config = ServeConfig(port=0, queue_capacity=16, max_batch=4,
                             batch_ms=1.0)
        tracer = Tracer(enabled=True)
        hosted = ServerThread(config, tracer=tracer)
        hosted.start()
        try:
            client = ServeClient(hosted.host, hosted.port)
            status, body = client.request(
                {"op": "mul", "params": {"a": 5, "b": 6}, "id": "t1"})
            assert status == 200 and body["ok"]
            status, raw = client.raw("GET", "/traces")
            assert status == 200
            traces = json.loads(raw)["traces"]
            assert any(trace["id"] == "t1" for trace in traces)
            spans = [trace for trace in traces
                     if trace["id"] == "t1"][0]["spans_ms"]
            assert "execute_start->execute_end" in spans
        finally:
            hosted.stop()
        target = tmp_path / "spans.jsonl"
        # Anything still buffered can be dumped after the drain.
        tracer.dump(target)

    def test_traces_endpoint_404_when_disabled(self, server):
        client = ServeClient(server.host, server.port)
        status, _ = client.raw("GET", "/traces")
        assert status == 404
