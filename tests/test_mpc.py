"""Tests for the arbitrary-precision complex layer (MPC)."""

import cmath

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpc import MPC
from repro.mpf import MPF

components = st.integers(min_value=-10 ** 6, max_value=10 ** 6)


def as_mpc(re: int, im: int, precision: int = 128) -> MPC:
    return MPC(MPF(re, precision), MPF(im, precision))


class TestFieldOperations:
    @given(components, components, components, components)
    def test_add_sub_mul(self, ar, ai, br, bi):
        x, y = as_mpc(ar, ai), as_mpc(br, bi)
        a, b = complex(ar, ai), complex(br, bi)
        assert complex(x + y) == a + b
        assert complex(x - y) == a - b
        assert complex(x * y) == a * b

    @given(components, components, components, components)
    @settings(max_examples=60)
    def test_div(self, ar, ai, br, bi):
        if br == 0 and bi == 0:
            return
        x, y = as_mpc(ar, ai), as_mpc(br, bi)
        got = complex(x / y)
        expected = complex(ar, ai) / complex(br, bi)
        assert cmath.isclose(got, expected, rel_tol=1e-12, abs_tol=1e-12)

    @given(components, components)
    def test_conj(self, re, im):
        assert complex(as_mpc(re, im).conj()) == complex(re, -im)

    @given(components, components)
    def test_mul_by_conjugate_is_abs2(self, re, im):
        z = as_mpc(re, im)
        product = z * z.conj()
        assert float(product.re) == float(z.abs2())
        assert not product.im

    @given(components, components)
    def test_abs(self, re, im):
        import math
        got = float(as_mpc(re, im).abs())
        assert math.isclose(got, abs(complex(re, im)),
                            rel_tol=1e-12, abs_tol=1e-12)


class TestInterop:
    def test_int_and_mpf_coercion(self):
        z = as_mpc(3, 4)
        assert complex(z + 1) == complex(4, 4)
        assert complex(2 * z) == complex(6, 8)
        assert complex(z - MPF(1, 128)) == complex(2, 4)

    def test_scale(self):
        z = as_mpc(3, -4).scale(MPF(2, 128))
        assert complex(z) == complex(6, -8)

    def test_from_ratio(self):
        z = MPC.from_ratio(1, 2, -3, 4, 128)
        assert complex(z) == complex(0.5, -0.75)

    def test_bool_eq(self):
        assert not as_mpc(0, 0)
        assert as_mpc(0, 1)
        assert as_mpc(2, 3) == as_mpc(2, 3)
        assert as_mpc(2, 3) != as_mpc(3, 2)


class TestPrecision:
    def test_high_precision_rotation_stays_unit(self):
        # Repeated multiplication by a unit complex number must keep
        # |z| = 1 far beyond double precision.
        from repro.apps.zkcm import _cos_sin
        cos_value, sin_value = _cos_sin(1, 5, 192)  # 2*pi/32
        rotation = MPC(cos_value, sin_value)
        z = MPC(MPF(1, 192), MPF(0, 192))
        for _ in range(32):
            z = z * rotation
        # After 32 steps of 2*pi/32 we are back at 1, far beyond what
        # float64 could certify: check through decimal rendering.
        from fractions import Fraction
        re_value = Fraction(z.re.to_decimal_string(35))
        im_value = Fraction(z.im.to_decimal_string(35))
        assert abs(re_value - 1) < Fraction(1, 10 ** 28)
        assert abs(im_value) < Fraction(1, 10 ** 28)


class TestEdgeCases:
    def test_division_by_zero_complex(self):
        import pytest
        with pytest.raises(ZeroDivisionError):
            as_mpc(1, 1) / as_mpc(0, 0)

    def test_division_by_pure_imaginary(self):
        # 1 / i = -i
        got = as_mpc(1, 0) / as_mpc(0, 1)
        assert complex(got) == complex(0, -1)

    def test_repr(self):
        assert "MPC(" in repr(as_mpc(1, 2))

    def test_hash_equal_values(self):
        assert hash(as_mpc(3, 4)) == hash(as_mpc(3, 4))
