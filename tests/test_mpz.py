"""Tests for the signed integer layer (MPZ)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpn.nat import MpnError
from repro.mpz import MPZ

signed_ints = st.one_of(
    st.integers(min_value=-(1 << 40), max_value=1 << 40),
    st.integers(min_value=-(1 << 500), max_value=(1 << 500) - 1),
)

nonzero_ints = signed_ints.filter(lambda v: v != 0)


class TestRingOperations:
    @given(signed_ints, signed_ints)
    def test_add_sub_mul(self, a, b):
        x, y = MPZ(a), MPZ(b)
        assert int(x + y) == a + b
        assert int(x - y) == a - b
        assert int(x * y) == a * b

    @given(signed_ints, signed_ints, signed_ints)
    @settings(max_examples=50)
    def test_distributivity(self, a, b, c):
        x, y, z = MPZ(a), MPZ(b), MPZ(c)
        assert x * (y + z) == x * y + x * z

    @given(signed_ints)
    def test_neg_abs(self, a):
        assert int(-MPZ(a)) == -a
        assert int(abs(MPZ(a))) == abs(a)

    @given(signed_ints)
    def test_int_interop(self, a):
        assert int(MPZ(a) + 7) == a + 7
        assert int(7 + MPZ(a)) == 7 + a
        assert int(MPZ(a) * -3) == a * -3
        assert int(5 - MPZ(a)) == 5 - a


class TestDivision:
    @given(signed_ints, nonzero_ints)
    def test_divmod_floor_semantics(self, a, b):
        quotient, remainder = divmod(MPZ(a), MPZ(b))
        assert (int(quotient), int(remainder)) == divmod(a, b)

    @given(signed_ints, nonzero_ints)
    def test_floordiv_mod_consistency(self, a, b):
        x, y = MPZ(a), MPZ(b)
        assert x == (x // y) * y + (x % y)

    def test_zero_division(self):
        with pytest.raises(ZeroDivisionError):
            divmod(MPZ(1), MPZ(0))

    @pytest.mark.parametrize("a,b", [(7, 2), (-7, 2), (7, -2), (-7, -2)])
    def test_sign_table(self, a, b):
        assert (int(MPZ(a) // MPZ(b)), int(MPZ(a) % MPZ(b))) == divmod(a, b)


class TestShifts:
    @given(signed_ints, st.integers(min_value=0, max_value=150))
    def test_lshift(self, a, count):
        assert int(MPZ(a) << count) == a << count

    @given(signed_ints, st.integers(min_value=0, max_value=150))
    def test_rshift_floor(self, a, count):
        assert int(MPZ(a) >> count) == a >> count


class TestComparison:
    @given(signed_ints, signed_ints)
    def test_total_order(self, a, b):
        x, y = MPZ(a), MPZ(b)
        assert (x < y) == (a < b)
        assert (x <= y) == (a <= b)
        assert (x == y) == (a == b)
        assert (x > y) == (a > b)

    @given(signed_ints)
    def test_hash_consistent_with_int(self, a):
        assert hash(MPZ(a)) == hash(a)


class TestPower:
    @given(st.integers(min_value=-50, max_value=50),
           st.integers(min_value=0, max_value=30))
    def test_pow(self, base, exponent):
        assert int(MPZ(base) ** MPZ(exponent)) == base ** exponent

    @given(st.integers(min_value=-(1 << 100), max_value=(1 << 100) - 1),
           st.integers(min_value=0, max_value=(1 << 50) - 1),
           st.integers(min_value=1, max_value=(1 << 200) - 1))
    @settings(max_examples=40)
    def test_powmod(self, base, exponent, modulus):
        got = pow(MPZ(base), MPZ(exponent), MPZ(modulus))
        assert int(got) == pow(base, exponent, modulus)

    def test_negative_exponent_rejected(self):
        with pytest.raises(MpnError):
            MPZ(2) ** MPZ(-1)


class TestNumberTheory:
    @given(signed_ints, signed_ints)
    def test_gcd(self, a, b):
        import math
        assert int(MPZ(a).gcd(MPZ(b))) == math.gcd(a, b)

    @given(st.integers(min_value=1, max_value=(1 << 200) - 1))
    @settings(max_examples=40)
    def test_invmod(self, a):
        import math
        modulus = (1 << 207) - 91  # odd, nearly certainly coprime
        if math.gcd(a, modulus) != 1:
            return
        inverse = MPZ(a).invmod(MPZ(modulus))
        assert int(inverse * a % modulus) == 1

    @given(st.integers(min_value=0, max_value=(1 << 300) - 1))
    def test_isqrt(self, a):
        import math
        assert int(MPZ(a).isqrt()) == math.isqrt(a)

    def test_isqrt_negative_rejected(self):
        with pytest.raises(MpnError):
            MPZ(-4).isqrt()


class TestMisc:
    def test_bool_sign_bitlength(self):
        assert not MPZ(0)
        assert MPZ(0).sign == 0
        assert MPZ(-5).sign == -1 and MPZ(5).sign == 1
        assert MPZ(255).bit_length() == 8

    def test_repr_roundtrip(self):
        assert repr(MPZ(-123)) == "MPZ(-123)"

    def test_copy_constructor(self):
        original = MPZ(12345)
        assert int(MPZ(original)) == 12345

    def test_from_limbs(self):
        assert int(MPZ.from_limbs([1, 1])) == (1 << 32) + 1
        assert int(MPZ.from_limbs([1, 1], sign=-1)) == -((1 << 32) + 1)


class TestBitwise:
    @given(st.integers(min_value=0, max_value=(1 << 300) - 1),
           st.integers(min_value=0, max_value=(1 << 300) - 1))
    def test_and_or_xor(self, a, b):
        x, y = MPZ(a), MPZ(b)
        assert int(x & y) == a & b
        assert int(x | y) == a | b
        assert int(x ^ y) == a ^ b

    @given(st.integers(min_value=0, max_value=(1 << 300) - 1))
    def test_popcount(self, a):
        assert MPZ(a).popcount() == a.bit_count()

    @given(st.integers(min_value=0, max_value=(1 << 300) - 1),
           st.integers(min_value=0, max_value=(1 << 300) - 1))
    def test_hamming_distance(self, a, b):
        assert MPZ(a).hamming_distance(MPZ(b)) == (a ^ b).bit_count()

    def test_negative_rejected(self):
        with pytest.raises(MpnError):
            MPZ(-1) & MPZ(1)
        with pytest.raises(MpnError):
            MPZ(-2).popcount()


class TestSerialization:
    @given(st.integers(min_value=0, max_value=(1 << 500) - 1))
    def test_bytes_roundtrip_little(self, a):
        data = MPZ(a).to_bytes("little")
        assert int(MPZ.from_bytes(data, "little")) == a

    @given(st.integers(min_value=0, max_value=(1 << 500) - 1))
    def test_bytes_roundtrip_big(self, a):
        data = MPZ(a).to_bytes("big")
        assert int(MPZ.from_bytes(data, "big")) == a

    @given(st.integers(min_value=1, max_value=(1 << 300) - 1))
    def test_matches_int_to_bytes(self, a):
        expected = a.to_bytes((a.bit_length() + 7) // 8, "big")
        assert MPZ(a).to_bytes("big") == expected

    def test_zero(self):
        assert MPZ(0).to_bytes() == b"\x00"
        assert int(MPZ.from_bytes(b"\x00")) == 0

    def test_sign_passthrough(self):
        data = MPZ(123456789).to_bytes()
        assert int(MPZ.from_bytes(data, sign=-1)) == -123456789

    def test_bad_byteorder(self):
        with pytest.raises(ValueError):
            MPZ(1).to_bytes("middle")
        with pytest.raises(ValueError):
            MPZ.from_bytes(b"\x01", "middle")
