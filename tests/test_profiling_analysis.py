"""Tests for the operator-class analysis helper."""

import pytest

from repro.profiling import ClassBreakdown, classify_breakdown


class TestClassify:
    def test_mapping(self):
        breakdown = {"mul": 0.4, "powmod": 0.2, "add": 0.1, "sub": 0.05,
                     "shift": 0.05, "div": 0.1, "sqrt": 0.02,
                     "highlevel": 0.05, "aux": 0.03}
        classes = classify_breakdown(breakdown)
        assert classes.multiply == pytest.approx(0.6)
        assert classes.add == pytest.approx(0.15)
        assert classes.shift == pytest.approx(0.05)
        assert classes.other_low == pytest.approx(0.12)
        assert classes.high_level == pytest.approx(0.05)
        assert classes.aux == pytest.approx(0.03)

    def test_aggregates(self):
        classes = ClassBreakdown(0.5, 0.2, 0.1, 0.1, 0.07, 0.03)
        assert classes.kernel_share == pytest.approx(0.8)
        assert classes.low_level_share == pytest.approx(0.9)
        assert sum(classes.as_dict().values()) == pytest.approx(1.0)

    def test_unknown_names_count_as_low_level(self):
        classes = classify_breakdown({"mod": 0.5, "cmp": 0.3,
                                      "logic": 0.2})
        assert classes.other_low == pytest.approx(1.0)

    def test_empty(self):
        classes = classify_breakdown({})
        assert classes.kernel_share == 0.0
