"""Tests for arbitrary-precision dense linear algebra."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import Matrix
from repro.mpf import MPF
from repro.mpn.nat import MpnError

small_ints = st.integers(min_value=-50, max_value=50)


def int_matrix(rows, precision=160):
    return Matrix.from_ints(rows, precision)


class TestBasics:
    def test_shape_and_access(self):
        m = int_matrix([[1, 2, 3], [4, 5, 6]])
        assert m.shape == (2, 3)
        assert float(m[1, 2]) == 6.0

    def test_ragged_rejected(self):
        with pytest.raises(MpnError):
            Matrix.from_ints([[1, 2], [3]])

    def test_add_sub(self):
        a = int_matrix([[1, 2], [3, 4]])
        b = int_matrix([[5, 6], [7, 8]])
        assert float((a + b)[0, 1]) == 8.0
        assert float((b - a)[1, 0]) == 4.0

    def test_matmul_against_reference(self):
        a = int_matrix([[1, 2], [3, 4]])
        b = int_matrix([[5, 6], [7, 8]])
        c = a @ b
        assert [[float(c[r, cc]) for cc in range(2)] for r in range(2)] \
            == [[19.0, 22.0], [43.0, 50.0]]

    def test_matvec(self):
        m = int_matrix([[2, 0], [1, 3]])
        out = m.matvec([MPF(4, 160), MPF(5, 160)])
        assert [float(v) for v in out] == [8.0, 19.0]


class TestLUAndSolve:
    @given(st.lists(st.lists(small_ints, min_size=3, max_size=3),
                    min_size=3, max_size=3),
           st.lists(small_ints, min_size=3, max_size=3))
    @settings(max_examples=40, deadline=None)
    def test_solve_satisfies_system(self, rows, rhs):
        matrix = int_matrix(rows)
        try:
            solution = matrix.solve([MPF(v, 160) for v in rhs])
        except MpnError:
            return  # singular: fine
        back = matrix.matvec(solution)
        for got, expected in zip(back, rhs):
            difference = abs(got - MPF(expected, 160))
            assert not difference \
                or difference.exponent_of_top_bit < -100

    def test_permutation_parity_in_determinant(self):
        # A permutation matrix with odd parity has determinant -1.
        m = int_matrix([[0, 1, 0], [1, 0, 0], [0, 0, 1]])
        assert float(m.determinant()) == -1.0

    def test_known_determinant(self):
        m = int_matrix([[2, 0, 0], [0, 3, 0], [0, 0, 4]])
        assert float(m.determinant()) == 24.0

    def test_singular_rejected(self):
        with pytest.raises(MpnError):
            int_matrix([[1, 2], [2, 4]]).lu()

    def test_non_square_lu_rejected(self):
        with pytest.raises(MpnError):
            int_matrix([[1, 2, 3], [4, 5, 6]]).lu()


class TestHilbert:
    """The APC showcase: computations float64 cannot do at all."""

    def test_hilbert_10_inversion_to_150_bits(self):
        n = 10
        h = Matrix.hilbert(n, precision=256)
        residual = (h @ h.inverse()) - Matrix.identity(n, 256)
        worst = residual.max_abs_entry()
        assert not worst or worst.exponent_of_top_bit < -150

    def test_hilbert_inverse_entries_are_integers(self):
        # H^-1 has (huge) integer entries; corner = n^2.
        n = 8
        inverse = Matrix.hilbert(n, precision=256).inverse()
        corner = inverse[0, 0]
        error = abs(corner - MPF(n * n, 256))
        assert not error or error.exponent_of_top_bit < -180

    def test_hilbert_3_determinant_exact(self):
        det = Matrix.hilbert(3, 224).determinant()
        expected = MPF.from_ratio(1, 2160, 224)
        error = abs(det - expected)
        assert not error or error.exponent_of_top_bit < -180

    def test_float64_would_fail(self):
        # At 64-bit working precision the same inversion residual is
        # enormous — the reason this workload needs APC.
        n = 10
        coarse = Matrix.hilbert(n, precision=64)
        residual = (coarse @ coarse.inverse()) \
            - Matrix.identity(n, 64)
        high = Matrix.hilbert(n, precision=256)
        fine_residual = (high @ high.inverse()) \
            - Matrix.identity(n, 256)
        assert float(residual.max_abs_entry()) \
            > 1e12 * float(fine_residual.max_abs_entry())


class TestExactRational:
    def test_solve_exact_small(self):
        from repro.linalg import solve_exact
        from repro.mpq import MPQ
        matrix = [[MPQ(2), MPQ(1)], [MPQ(1), MPQ(3)]]
        rhs = [MPQ(5), MPQ(10)]
        x = solve_exact(matrix, rhs)
        assert x == [MPQ(1), MPQ(3)]

    def test_hilbert_determinant_exact(self):
        from repro.linalg import determinant_exact, hilbert_exact
        from repro.mpq import MPQ
        assert determinant_exact(hilbert_exact(3)) == MPQ(1, 2160)
        # det(H4) = 1/6048000
        assert determinant_exact(hilbert_exact(4)) == MPQ(1, 6048000)

    def test_singular_detected(self):
        from repro.linalg import determinant_exact, solve_exact
        from repro.mpn.nat import MpnError
        from repro.mpq import MPQ
        singular = [[MPQ(1), MPQ(2)], [MPQ(2), MPQ(4)]]
        assert determinant_exact(singular) == MPQ(0)
        with pytest.raises(MpnError):
            solve_exact(singular, [MPQ(1), MPQ(1)])

    def test_mpf_solver_agrees_with_exact(self, rng=None):
        # The float path at 224 bits must match the exact rational
        # solution of a Hilbert system to ~full precision.
        import random
        from repro.linalg import hilbert_exact, solve_exact
        from repro.mpq import MPQ
        n = 6
        rng = random.Random(61)
        rhs_ints = [rng.randrange(-9, 10) for _ in range(n)]
        exact = solve_exact(hilbert_exact(n),
                            [MPQ(v) for v in rhs_ints])
        precision = 224
        float_matrix = Matrix.hilbert(n, precision)
        float_solution = float_matrix.solve(
            [MPF(v, precision) for v in rhs_ints])
        for got, reference in zip(float_solution, exact):
            expected = reference.to_mpf(precision)
            error = abs(got - expected)
            if not error:
                continue
            if expected:
                bound = expected.exponent_of_top_bit - 150
            else:
                bound = -150
            assert error.exponent_of_top_bit < bound
