"""Smoke tests: every example script runs end to end.

Marked slow (the full set takes a couple of minutes); run with
``pytest -m slow tests/test_examples.py`` or as part of the full suite.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: (script, argv) — arguments chosen so each finishes in seconds.
CASES = [
    ("quickstart.py", []),
    ("pi_digits.py", ["200"]),
    ("deep_zoom_mandelbrot.py", ["40"]),
    ("rsa_crypto.py", ["192"]),
    ("quantum_precision.py", ["3"]),
    ("bitflow_microscope.py", []),
    ("number_theory_tour.py", []),
    ("integer_relations.py", []),
    ("private_aggregation.py", []),
    ("ill_conditioned_science.py", []),
]


@pytest.mark.slow
@pytest.mark.parametrize("script,argv", CASES,
                         ids=[case[0] for case in CASES])
def test_example_runs(script, argv):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *argv],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_every_example_is_covered():
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    covered = {case[0] for case in CASES}
    assert scripts == covered, scripts ^ covered
