"""Every AF/CC/EV rule, proven on its fixture: positives fire at the
expected function, negatives stay silent, noqa comments suppress."""

from pathlib import Path

from repro.analysis.flow import analyze_paths

FIXTURES = Path(__file__).parent / "fixtures" / "flow"


def _findings(name, rule=None):
    report = analyze_paths([str(FIXTURES / name)], baseline_path=None)
    found = report.findings if rule is None \
        else [f for f in report.findings if f.rule == rule]
    return report, found


def _functions(found):
    return {f.function.rsplit(".", 1)[-1] if "." in f.function
            else f.function for f in found}


class TestAF001CallerMutation:
    def test_positives_negatives_and_noqa(self):
        report, found = _findings("af_caller_mutation.py",
                                  "flow-caller-mutation")
        assert _functions(found) == {"forwards", "deep", "keyword_forward"}
        # sink() mutates *directly* — that is RPR003's finding, not AF001's.
        assert all(f.function != "af_caller_mutation.sink"
                   for f in report.findings)
        assert report.suppressed_noqa == 1  # forwards_noqa

    def test_chain_is_named_in_the_message(self):
        _, found = _findings("af_caller_mutation.py",
                             "flow-caller-mutation")
        deep = [f for f in found if f.function.endswith(".deep")][0]
        assert "forwards() -> sink()" in deep.message


class TestAF002OperandOverlap:
    def test_positives_negatives_and_noqa(self):
        report, found = _findings("af_operand_overlap.py",
                                  "inplace-operand-overlap")
        assert _functions(found) == {"overlap"}
        assert "both" not in _functions(found)  # disjoint/same_but_harmless silent
        overlap = found[0]
        assert "'values'" in overlap.message
        assert "'dst'" in overlap.message


class TestCC001AwaitSpanningRmw:
    def test_positives(self):
        _, found = _findings("cc_rmw.py", "await-spanning-rmw")
        assert _functions(found) == {"racy", "augmented", "loop_carried"}

    def test_negatives_lock_early_return_refresh(self):
        _, found = _findings("cc_rmw.py", "await-spanning-rmw")
        silent = {"guarded", "early_return", "refreshed", "racy_noqa"}
        assert not (_functions(found) & silent)

    def test_noqa_suppresses(self):
        report, _ = _findings("cc_rmw.py")
        assert report.suppressed_noqa == 1


class TestCC002UnawaitedCoroutine:
    def test_positives_and_negatives(self):
        _, found = _findings("cc_tasks.py", "unawaited-coroutine")
        assert _functions(found) == {"fire_and_forget", "forgot_await"}


class TestCC003UntrackedTask:
    def test_positives_and_negatives(self):
        _, found = _findings("cc_tasks.py", "untracked-task")
        assert _functions(found) == {"spawner", "begin"}

    def test_noqa_suppresses_both_rules(self):
        report, _ = _findings("cc_tasks.py")
        assert report.suppressed_noqa == 2  # coro_noqa + begin_noqa


class TestCC004ExecutorCapture:
    def test_positives_negatives_and_noqa(self):
        report, found = _findings("cc_executor.py", "executor-capture")
        assert _functions(found) == {"submits_lambda", "submits_nested"}
        assert report.suppressed_noqa == 1


class TestEVRegistryRules:
    def test_ev001_raw_reads(self):
        _, found = _findings("ev_env.py", "env-read-outside-registry")
        assert _functions(found) == {"ev_env", "reads_raw",
                                     "reads_subscript"}

    def test_ev002_undeclared_names(self):
        _, found = _findings("ev_env.py", "undeclared-env-var")
        names = {f.message.split("'")[1] for f in found}
        assert names == {"REPRO_FIXTURE_DEBUG", "REPRO_FIXTURE_MISSING"}

    def test_noqa_suppresses(self):
        report, _ = _findings("ev_env.py")
        assert report.suppressed_noqa == 1
