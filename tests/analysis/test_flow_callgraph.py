"""Unit coverage for the flow engine's program model: module naming,
import tables, call resolution, summaries, and the mutation fixpoint."""

from pathlib import Path

import repro
from repro.analysis.flow import build_program, module_name_for, propagate
from repro.analysis.flow.callgraph import load_program

FIXTURES = Path(__file__).parent / "fixtures" / "flow"


class TestModuleNaming:
    def test_package_files_get_dotted_names(self):
        root = Path(repro.__file__).parent
        assert module_name_for(str(root / "mpn" / "nat.py")) \
            == "repro.mpn.nat"
        assert module_name_for(str(root / "__init__.py")) == "repro"
        assert module_name_for(str(root / "serve" / "__init__.py")) \
            == "repro.serve"

    def test_fixture_files_are_their_own_modules(self):
        assert module_name_for(
            str(FIXTURES / "af_caller_mutation.py")) \
            == "af_caller_mutation"


class TestProgramLoading:
    def test_functions_and_methods_register_by_qualname(self):
        program = load_program([str(FIXTURES / "cc_tasks.py")])
        assert "cc_tasks.work" in program.functions
        assert "cc_tasks.Owner.begin" in program.functions
        info = program.functions["cc_tasks.work"]
        assert info.is_async
        assert program.functions["cc_tasks.Owner.begin"].class_name \
            == "Owner"

    def test_import_table_resolves_from_imports_and_aliases(self):
        root = Path(repro.__file__).parent
        program = load_program([str(root / "serve" / "batcher.py")])
        module = program.modules["repro.serve.batcher"]
        assert module.imports["AdmissionQueue"] \
            == "repro.serve.queue.AdmissionQueue"
        assert module.imports["tracing"] == "repro.serve.trace"


class TestSummaries:
    def test_direct_mutation_is_recorded_with_noqa_ignored(self):
        # sink() carries a caller-aliasing noqa; its *summary* still
        # records the mutation, because callers care about behaviour,
        # not about what the linter was told to accept.
        program = build_program([str(FIXTURES / "af_caller_mutation.py")])
        summary = program.summaries["af_caller_mutation.sink"]
        assert 0 in summary.mutates
        assert summary.mutates[0].direct
        assert summary.mutates[0].how == ".append()"

    def test_rebound_parameters_are_not_live(self):
        program = build_program([str(FIXTURES / "af_caller_mutation.py")])
        summary = program.summaries["af_caller_mutation.rebinds_first"]
        assert "data" in summary.rebound
        propagate(program)
        assert not summary.mutates

    def test_await_points_and_calls_are_collected(self):
        program = build_program([str(FIXTURES / "cc_rmw.py")])
        summary = program.summaries["cc_rmw.Counter.racy"]
        assert summary.awaits
        callees = {site.callee for site in summary.calls}
        assert "cc_rmw.compute" in callees


class TestFixpoint:
    def test_transitive_mutation_propagates_with_chain(self):
        program = build_program([str(FIXTURES / "af_caller_mutation.py")])
        rounds = propagate(program)
        assert rounds >= 2  # deep() needs forwards() resolved first
        forwards = program.summaries["af_caller_mutation.forwards"]
        assert 0 in forwards.mutates
        assert forwards.mutates[0].chain == ("af_caller_mutation.sink",)
        deep = program.summaries["af_caller_mutation.deep"]
        assert deep.mutates[0].chain == (
            "af_caller_mutation.forwards", "af_caller_mutation.sink")

    def test_keyword_arguments_map_to_parameter_slots(self):
        program = build_program([str(FIXTURES / "af_caller_mutation.py")])
        propagate(program)
        summary = program.summaries["af_caller_mutation.keyword_forward"]
        assert 0 in summary.mutates

    def test_whole_tree_fixpoint_terminates(self):
        program = build_program([str(Path(repro.__file__).parent)])
        rounds = propagate(program)
        assert rounds < 64
        assert len(program.functions) > 900
