"""The runtime invariant sanitizer: install semantics and what it catches."""

import pytest

import repro.mpn as mpn
from repro.analysis import sanitize
from repro.analysis.sanitize import SanitizerError, check_nat, sanitizer
from repro.mpn import nat


@pytest.fixture(autouse=True)
def clean_state():
    """Every test starts and ends with the sanitizer uninstalled."""
    sanitize.uninstall()
    yield
    sanitize.uninstall()


class TestZeroOverheadWhenDisabled:
    def test_disabled_kernels_are_the_raw_functions(self):
        # The acceptance bar: no wrapper object exists when disabled.
        assert not sanitize.is_enabled()
        for name in sanitize._NAT_KERNELS:
            assert not hasattr(getattr(nat, name), "__repro_sanitizer__")
        for name in sanitize._MPN_API:
            assert not hasattr(getattr(mpn, name), "__repro_sanitizer__")

    def test_install_uninstall_round_trips_identity(self):
        originals = {name: getattr(nat, name)
                     for name in sanitize._NAT_KERNELS}
        sanitize.install()
        assert all(getattr(nat, name) is not originals[name]
                   for name in sanitize._NAT_KERNELS)
        sanitize.uninstall()
        assert all(getattr(nat, name) is originals[name]
                   for name in sanitize._NAT_KERNELS)

    def test_install_is_idempotent(self):
        sanitize.install()
        wrapped = nat.add
        sanitize.install()          # no double wrapping
        assert nat.add is wrapped
        assert nat.add.__repro_sanitizer__.__name__ == "add"


class TestEnvHook:
    def test_env_parsing(self, monkeypatch):
        for value, expected in (("1", True), ("true", True),
                                ("0", False), ("", False),
                                ("off", False), ("no", False)):
            monkeypatch.setenv(sanitize.ENV_VAR, value)
            assert sanitize.env_requests_sanitizer() is expected
        monkeypatch.delenv(sanitize.ENV_VAR)
        assert not sanitize.env_requests_sanitizer()


class TestCheckNat:
    def test_accepts_canonical_nats(self):
        for good in ([], [1], [0, 1], [nat.LIMB_MASK] * 3):
            check_nat(good, "k", "argument")

    def test_rejects_non_list(self):
        with pytest.raises(SanitizerError, match="not a limb list"):
            check_nat(7, "k", "argument")

    def test_rejects_non_int_limb(self):
        with pytest.raises(SanitizerError, match="not an int"):
            check_nat([1.5], "k", "argument")
        with pytest.raises(SanitizerError, match="not an int"):
            check_nat([True], "k", "argument")

    def test_rejects_out_of_range_limb(self):
        with pytest.raises(SanitizerError, match="carry propagation"):
            check_nat([nat.LIMB_BASE], "k", "argument")
        with pytest.raises(SanitizerError, match="outside"):
            check_nat([-1], "k", "argument")

    def test_rejects_trailing_zero(self):
        with pytest.raises(SanitizerError, match="trailing zero"):
            check_nat([5, 0], "k", "argument")


class TestWrappedKernels:
    def test_clean_calls_pass_through(self):
        with sanitizer():
            assert nat.add([5], [7]) == [12]
            assert mpn.mul([3], [4]) == [12]

    def test_unnormalized_argument_is_caught_at_the_call(self):
        with sanitizer():
            with pytest.raises(SanitizerError, match="add: argument 0"):
                nat.add([5, 0], [7])

    def test_oversized_limb_is_caught(self):
        with sanitizer():
            with pytest.raises(SanitizerError, match="argument 1"):
                nat.add([5], [nat.LIMB_BASE])

    def test_broken_kernel_result_is_caught(self, monkeypatch):
        monkeypatch.setattr(nat, "add", lambda a, b: [7, 0])
        with sanitizer():
            with pytest.raises(SanitizerError, match="result"):
                nat.add([1], [2])

    def test_tuple_results_are_checked_elementwise(self, monkeypatch):
        monkeypatch.setattr(nat, "split",
                            lambda limbs, count: ([1], [2, 0]))
        with sanitizer():
            with pytest.raises(SanitizerError, match=r"result\[1\]"):
                nat.split([1, 2, 3], 1)

    def test_caller_mutation_is_caught(self, monkeypatch):
        def mutating_add(a, b):
            a.append(0xBAD)
            return [0xBAD]
        monkeypatch.setattr(nat, "add", mutating_add)
        with sanitizer():
            with pytest.raises(SanitizerError, match="mutated caller"):
                nat.add([1], [2])

    def test_profiled_api_is_wrapped_too(self):
        with sanitizer():
            with pytest.raises(SanitizerError, match="divmod_nat"):
                mpn.divmod_nat([1, 0], [3])


class TestContextManager:
    def test_scoped_enable(self):
        assert not sanitize.is_enabled()
        with sanitizer():
            assert sanitize.is_enabled()
        assert not sanitize.is_enabled()

    def test_scoped_disable_inside_enable(self):
        with sanitizer():
            with sanitizer(enabled=False):
                assert not sanitize.is_enabled()
                nat.add([5, 0], [7])   # unchecked by request
            assert sanitize.is_enabled()
        assert not sanitize.is_enabled()

    def test_restores_state_on_error(self):
        with pytest.raises(RuntimeError):
            with sanitizer():
                raise RuntimeError("boom")
        assert not sanitize.is_enabled()
