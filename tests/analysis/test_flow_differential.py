"""Differential test: the AF static analysis and the runtime sanitizer
must agree about the mpn public API.

The sanitizer (``REPRO_SANITIZE=1``) snapshots every limb-list argument
and raises if a kernel mutates a caller's operand; the flow engine
proves the same property statically via the interprocedural mutation
fixpoint.  Running both over the same sixteen entry points catches a
bug in either: a kernel that mutates (sanitizer fires, static summary
should show it) or an analysis regression (static claims a mutation the
runtime never performs, or misses one it does).
"""

from pathlib import Path

import pytest

import repro
import repro.mpn as mpn
from repro.analysis.flow import build_program, propagate
from repro.analysis.sanitize import SanitizerError, sanitizer, _MPN_API
from repro.mpn import nat_from_int

A = nat_from_int(3 ** 80)
B = nat_from_int(7 ** 40)
PRODUCT = nat_from_int(3 ** 80 * 7 ** 40)

#: Arguments that exercise every public entry point with real operands
#: (and, through them, the wrapped ``repro.mpn.nat`` limb kernels).
SAMPLES = {
    "add": (A, B),
    "sub": (A, B),
    "mul": (A, B),
    "sqr": (A,),
    "divmod_nat": (A, B),
    "mod": (A, B),
    "divexact": (PRODUCT, B),
    "isqrt": (A,),
    "sqrtrem": (A,),
    "iroot": (A, 3),
    "powmod": (B, nat_from_int(65537), A),
    "gcd": (A, B),
    "invmod": (B, A),
    "shl": (A, 17),
    "shr": (A, 17),
    "compare": (A, B),
}


def _api_summaries():
    program = build_program([str(Path(repro.__file__).parent / "mpn")])
    propagate(program)
    return {name: program.summaries["repro.mpn." + name]
            for name in _MPN_API}


class TestStaticRuntimeAgreement:
    def test_samples_cover_the_whole_api(self):
        assert set(SAMPLES) == set(_MPN_API)

    def test_static_side_proves_no_operand_mutation(self):
        for name, summary in _api_summaries().items():
            assert not summary.mutates, \
                "static analysis claims repro.mpn.%s mutates a " \
                "caller operand; the sanitizer differential below " \
                "would have caught a real mutation" % name

    def test_runtime_side_observes_no_operand_mutation(self):
        with sanitizer(True):
            for name, args in SAMPLES.items():
                getattr(mpn, name)(*args)  # SanitizerError on mutation

    def test_operands_round_trip_unchanged(self):
        with sanitizer(True):
            a_before, b_before = list(A), list(B)
            mpn.divmod_nat(A, B)
            mpn.gcd(A, B)
        assert A == a_before and B == b_before


class TestOracleIsNotVacuous:
    """Both sides must *detect* a planted mutation, not just pass."""

    def test_sanitizer_catches_a_mutating_kernel(self):
        # Wrap the evil kernel directly: under REPRO_SANITIZE=1 the
        # module tables already hold wrappers, so monkeypatching
        # repro.mpn.sub would bypass the oracle instead of testing it.
        from repro.analysis import sanitize

        def evil_sub(a, b):
            a.append(0)
            return a

        checked = sanitize._wrap(evil_sub, "sub")
        with pytest.raises(SanitizerError, match="mutated caller"):
            checked(list(A), list(B))

    def test_static_analysis_catches_the_same_kernel(self, tmp_path):
        victim = tmp_path / "evil.py"
        victim.write_text(
            "def evil_sub(a, b):\n"
            "    a.append(0)\n"
            "    return a\n")
        program = build_program([str(victim)])
        propagate(program)
        summary = program.summaries["evil.evil_sub"]
        assert 0 in summary.mutates
        assert summary.mutates[0].how == ".append()"
