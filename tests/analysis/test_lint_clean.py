"""Gate: the shipped tree lints clean (the CI invariant, as a test)."""

from pathlib import Path

import repro
from repro.analysis.lint import lint_paths


def test_src_repro_lints_clean():
    package_root = Path(repro.__file__).parent
    report = lint_paths([package_root])
    assert report.files_checked > 80
    assert report.ok, "\n" + report.render()


def test_cli_lint_exits_zero():
    from repro.cli import main
    assert main(["lint"]) == 0
