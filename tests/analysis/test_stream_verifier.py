"""The BIPS/ISA stream verifier flags every hazard class it documents."""

import pytest

from repro.analysis.stream import StreamError, verify_stream
from repro.core.isa import Driver, Instruction, Opcode, OperandRef
from repro.mpn import nat

from tests.conftest import to_nat


def checks(violations):
    return {v.check for v in violations}


@pytest.fixture
def driver():
    return Driver()


class TestCleanStreams:
    def test_straight_line_program_verifies(self, driver):
        a = driver.alloc(to_nat(12345))
        b = driver.alloc(to_nat(67890))
        program = [
            Instruction(Opcode.MUL, (a, b), destination=10),
            Instruction(Opcode.SHL, (OperandRef(10, a.bits + b.bits),),
                        destination=11, immediate=32),
        ]
        assert driver.verify(program) == []

    def test_empty_program(self, driver):
        assert driver.verify([]) == []

    def test_computed_operand_within_bound_is_accepted(self, driver):
        a = driver.alloc(to_nat(3))
        b = driver.alloc(to_nat(5))
        program = [
            Instruction(Opcode.ADD, (a, b), destination=7),
            # a=2 bits, b=3 bits -> sum is at most 4 bits.
            Instruction(Opcode.ADD, (OperandRef(7, 4), b), destination=8),
        ]
        assert driver.verify(program) == []


class TestHazards:
    def test_sv_arity(self, driver):
        a = driver.alloc(to_nat(7))
        program = [Instruction(Opcode.ADD, (a,), destination=9)]
        assert checks(driver.verify(program)) == {"SV-ARITY"}

    def test_sv_undef(self, driver):
        a = driver.alloc(to_nat(7))
        program = [Instruction(Opcode.ADD, (a, OperandRef(99, 8)),
                               destination=9)]
        assert checks(driver.verify(program)) == {"SV-UNDEF"}

    def test_sv_bits_truncating_descriptor(self, driver):
        a = driver.alloc(to_nat(1 << 100))     # 101 significant bits
        short = OperandRef(a.address, 32)       # drops 69 of them
        program = [Instruction(Opcode.ADD, (short, short.__class__(
            driver.alloc(to_nat(1)).address, 1)), destination=9)]
        assert "SV-BITS" in checks(driver.verify(program))

    def test_sv_bits_overdeclared_computed_operand(self, driver):
        a = driver.alloc(to_nat(3))
        b = driver.alloc(to_nat(5))
        program = [
            Instruction(Opcode.ADD, (a, b), destination=7),
            # The producing ADD yields at most 4 bits; 1000 is a lie.
            Instruction(Opcode.ADD, (OperandRef(7, 1000), b),
                        destination=8),
        ]
        assert checks(driver.verify(program)) == {"SV-BITS"}

    def test_sv_overlap(self, driver):
        a = driver.alloc(to_nat(7))
        b = driver.alloc(to_nat(9))
        program = [Instruction(Opcode.ADD, (a, b),
                               destination=a.address)]
        assert checks(driver.verify(program)) == {"SV-OVERLAP"}

    def test_sv_imm_negative_shift(self, driver):
        a = driver.alloc(to_nat(7))
        program = [Instruction(Opcode.SHL, (a,), destination=9,
                               immediate=-1)]
        assert checks(driver.verify(program)) == {"SV-IMM"}

    def test_sv_imm_stray_immediate(self, driver):
        a = driver.alloc(to_nat(7))
        b = driver.alloc(to_nat(9))
        program = [Instruction(Opcode.MUL, (a, b), destination=9,
                               immediate=3)]
        assert checks(driver.verify(program)) == {"SV-IMM"}

    def test_sv_ipshape_mismatched_vectors(self, driver):
        a = driver.alloc(to_nat((1 << 200) - 1))   # 7 limbs
        b = driver.alloc(to_nat(5))                # 1 limb
        program = [Instruction(Opcode.IP, (a, b), destination=9)]
        assert checks(driver.verify(program)) == {"SV-IPSHAPE"}

    def test_sv_plan_oversized_mul(self, driver):
        limit = driver.device.config.monolithic_max_bits
        a = driver.alloc(to_nat(1 << limit))       # limit + 1 bits
        b = driver.alloc(to_nat(3))
        program = [Instruction(Opcode.MUL, (a, b), destination=9)]
        assert checks(driver.verify(program)) == {"SV-PLAN"}

    def test_hazards_carry_op_index_provenance(self, driver):
        a = driver.alloc(to_nat(7))
        b = driver.alloc(to_nat(9))
        program = [
            Instruction(Opcode.ADD, (a, b), destination=9),
            Instruction(Opcode.ADD, (a, OperandRef(99, 8)),
                        destination=10),
        ]
        violations = driver.verify(program)
        assert [v.op_index for v in violations] == [1]
        assert "op#1" in violations[0].render()


class TestDriverIntegration:
    def test_execute_with_verify_raises_stream_error(self, driver):
        a = driver.alloc(to_nat(7))
        program = [Instruction(Opcode.ADD, (a, OperandRef(99, 8)),
                               destination=9)]
        with pytest.raises(StreamError) as excinfo:
            driver.execute(program, verify=True)
        assert excinfo.value.violations
        assert driver.retired == []    # nothing was simulated

    def test_execute_with_verify_runs_clean_programs(self, driver):
        a = driver.alloc(to_nat(1234))
        b = driver.alloc(to_nat(5678))
        program = [Instruction(Opcode.MUL, (a, b), destination=10)]
        driver.execute(program, verify=True)
        assert nat.nat_to_int(driver.result(10)) == 1234 * 5678

    def test_verify_stream_without_llc(self):
        # No LLC: every operand must be produced by the program itself.
        program = [Instruction(Opcode.ADD, (OperandRef(0, 4),
                                            OperandRef(1, 4)),
                               destination=2)]
        assert checks(verify_stream(program)) == {"SV-UNDEF"}


class TestCliSelftest:
    def test_selftest_passes(self):
        from repro.cli import main
        assert main(["verify-stream", "--selftest"]) == 0
