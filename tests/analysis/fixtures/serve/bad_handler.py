"""Seeded async-safety violations for RPR011 (blocking-call-in-async).

The directory name places this file in the serve scope; the coroutine
below blocks the event loop three different ways.
"""

import time


async def stalls_the_loop(sock, fut):
    time.sleep(0.1)                    # RPR011: module-level sleep
    sock.connect(("localhost", 80))    # RPR011: blocking socket call
    return fut.result()                # RPR011: synchronous future wait
