"""Seeded dispatch-discipline violations (linted, never imported).

Lives under ``serve/`` — a layer that must lower work through
repro.plan, not reach past it to kernels or raw ISA streams.
"""

from repro.core.isa import Instruction, Opcode
from repro.mpn.karatsuba import mul_karatsuba
from repro.mpn.schoolbook import mul_schoolbook


def sneaky_mul(a, b):                              # RPR012 x2
    product = mul_karatsuba(a, b, mul_schoolbook)
    return product


def sneaky_stream(ref_a, ref_b):                   # RPR012
    return Instruction(Opcode.MUL, (ref_a, ref_b), destination=2)
