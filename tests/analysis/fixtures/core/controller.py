"""Seeded functional-core violations (linted, never imported).

Named ``controller.py`` so the file matches the functional-core module
list that scopes RPR005.
"""

import random
import time                                        # RPR006 (import)


def jittered_cycles(cycles: int) -> float:         # RPR005 x2, RPR006 x2
    scale = 1.5 + random.random()
    time.sleep(0)
    return cycles / scale


def debug_dump(cycles: int) -> None:               # RPR009
    print("cycles:", cycles)
