"""Seeded schedule-bypass violations (linted, never imported).

Lives under ``mpn/`` with a non-dispatcher filename — inside the
kernels' package, where RPR012 is silent, the recursion internals are
still reachable only through the committed schedule layer.
"""

from repro.mpn.karatsuba import mul_karatsuba
from repro.mpn.schoolbook import mul_schoolbook
from repro.mpn.toom import mul_toom


def adhoc_descent(a, b):                           # RPR013 x2
    if max(len(a), len(b)) > 64:
        return mul_toom(a, b, 3, mul_schoolbook)
    return mul_karatsuba(a, b, mul_schoolbook)
