"""Seeded kernel-contract violations (linted, never imported)."""

from repro.mpn.nat import Nat, nat_from_int, nat_to_int


def roundtrip_mul(a: Nat, b: Nat) -> Nat:          # RPR001 x3, RPR002
    product = nat_to_int(a) * nat_to_int(b)
    return [product & 0xFFFF][:1]


def push_limb(limbs: Nat, limb: int) -> None:      # RPR003 (.append)
    limbs.append(limb)


def clobber(limbs: Nat) -> None:                   # RPR003 (subscript)
    limbs[0] = 0


def checked_double(a: Nat, scratch=[]) -> Nat:     # RPR004, RPR007
    assert a, "empty"
    scratch.extend(a)
    return nat_from_int(2)


def wrap(value: int) -> int:                       # RPR008 x2
    base = 1 << 32
    return value % base % 4294967295


def swallow(value: int) -> int:                    # RPR010
    try:
        return 1 // value
    except Exception:
        pass
    return 0
