"""A clean module: the fixture sweep must report nothing here."""

from repro.mpn import nat
from repro.mpn.nat import MpnError, Nat


def doubled(value: Nat) -> Nat:
    if not value:
        raise MpnError("doubled() needs a non-zero operand")
    return nat.shl(value, 1)


def suppressed_crossing(value: Nat) -> int:
    return nat.nat_to_int(value)  # repro: noqa=bigint-in-kernel -- fixture demonstrating the escape hatch
