"""Fixture: EV001/EV002 env-registry rules (analyzed, never imported)."""

import os

DEBUG = os.environ.get("REPRO_FIXTURE_DEBUG", "")  # EV001 + EV002


def reads_raw():
    return os.getenv("PATH", "")  # EV001: every read goes via the registry


def reads_subscript():
    return os.environ["HOME"]  # EV001


def snapshot():
    return dict(os.environ)  # negative: wholesale copy, not a read


def declared_literal():
    return "REPRO_SANITIZE"  # negative: declared in the registry


def undeclared_literal():
    return "REPRO_FIXTURE_MISSING"  # EV002: not in the registry


def prose_mention():
    """Docstrings citing REPRO_SANITIZE inline are not literals."""
    return None


def read_noqa():
    return os.environ.get("TERM")  # repro: noqa=env-read-outside-registry -- fixture: suppressed positive
