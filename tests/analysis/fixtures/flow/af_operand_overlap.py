"""Fixture: AF002 inplace-operand-overlap (analyzed, never imported).

``accumulate`` extends its first operand in place; passing the same
object in both slots corrupts the source mid-iteration.  Forwarding a
parameter into ``accumulate`` at all is an AF001 positive as well, so
the expectations in ``test_flow_rules.py`` assert per rule.
"""


def accumulate(dst, src):
    dst.extend(src)  # repro: noqa=caller-aliasing -- fixture: the in-place kernel
    return dst


def overlap(values):
    return accumulate(values, values)  # AF002 (and AF001): same object, both slots


def overlap_noqa(values):
    return accumulate(values, values)  # repro: noqa=inplace-operand-overlap,flow-caller-mutation -- fixture: suppressed positive


def disjoint(a, b):
    return accumulate(a, b)  # AF001 only: distinct operands, no AF002


def same_but_harmless(a):
    return compare(a, a)  # negative: compare mutates nothing


def compare(x, y):
    return len(x) - len(y)
