"""Fixture: CC001 await-spanning-rmw (analyzed, never imported)."""

import asyncio


async def compute(chunk):
    return chunk


class Counter:
    def __init__(self):
        self.total = 0
        self._lock = asyncio.Lock()

    async def racy(self, chunk):
        current = self.total
        value = await compute(chunk)
        self.total = current + value  # CC001: read at top, await, write

    async def augmented(self):
        self.total += await compute(1)  # CC001: RMW spanning one await

    async def guarded(self, chunk):
        async with self._lock:
            current = self.total
            value = await compute(chunk)
            self.total = current + value  # negative: under the lock

    async def early_return(self):
        if self.total:
            await asyncio.sleep(0)
            return
        self.total = 1  # negative: the awaiting branch returns

    async def refreshed(self, chunk):
        value = await compute(chunk)
        self.total = self.total + value  # negative: re-read after await

    async def racy_noqa(self):
        current = self.total
        await asyncio.sleep(0)
        self.total = current + 1  # repro: noqa=await-spanning-rmw -- fixture: suppressed positive

    async def loop_carried(self, chunks):
        for chunk in chunks:
            staged = self.total + chunk
            await asyncio.sleep(0)
            self.total = staged  # CC001: carried across iterations
