"""Fixture: AF001 flow-caller-mutation (analyzed, never imported).

``sink`` mutates directly (RPR003's jurisdiction, not AF001); every
function that forwards its own parameter into ``sink`` — at any chain
depth — is an AF001 positive unless it rebinds first or suppresses.
"""


def sink(buf):
    buf.append(1)  # repro: noqa=caller-aliasing -- fixture: the direct mutator
    return buf


def forwards(data):
    return sink(data)  # AF001: data flows into sink's mutation


def deep(data):
    return forwards(data)  # AF001: two-hop chain deep -> forwards -> sink


def forwards_noqa(data):
    return sink(data)  # repro: noqa=flow-caller-mutation -- fixture: suppressed positive


def rebinds_first(data):
    data = list(data)
    return sink(data)  # negative: sink gets a fresh copy


def local_buffer():
    scratch = []
    return sink(scratch)  # negative: scratch is function-owned


def keyword_forward(data):
    return sink(buf=data)  # AF001: keyword arguments map too
