"""Fixture: CC002 unawaited-coroutine / CC003 untracked-task
(analyzed, never imported)."""

import asyncio


async def work():
    return 1


def fire_and_forget():
    work()  # CC002: coroutine created and dropped


async def forgot_await():
    work()  # CC002: same mistake inside a coroutine


async def awaited_properly():
    await work()  # negative


def coro_noqa():
    work()  # repro: noqa=unawaited-coroutine -- fixture: suppressed positive


async def spawner():
    asyncio.ensure_future(work())  # CC003: task discarded outright


class Owner:
    def __init__(self):
        self._task = None

    def begin(self):
        self._task = asyncio.ensure_future(work())  # CC003: stored, never observed

    def begin_watched(self):
        self._task = asyncio.ensure_future(work())
        self._task.add_done_callback(print)  # negative: observed

    def begin_awaited(self):
        task = asyncio.create_task(work())
        return task  # negative: handed to the caller

    async def begin_gathered(self):
        task = asyncio.create_task(work())
        await asyncio.gather(task)  # negative: passed onward

    def begin_noqa(self):
        self._task = asyncio.ensure_future(work())  # repro: noqa=untracked-task -- fixture: suppressed positive
