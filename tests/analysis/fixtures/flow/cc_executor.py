"""Fixture: CC004 executor-capture (analyzed, never imported)."""


def double(x):
    return 2 * x


def submits_lambda(executor, items):
    return executor.map(lambda x: 2 * x, items)  # CC004: lambda can't pickle


def submits_nested(executor, items):
    def worker(x):
        return 2 * x
    return executor.map(worker, items)  # CC004: nested def can't pickle


def submits_module_level(executor, items):
    return executor.map(double, items)  # negative: picklable

def submits_noqa(executor, items):
    return executor.starmap(lambda x, y: x * y, items)  # repro: noqa=executor-capture -- fixture: suppressed positive


def builtin_map(items):
    return map(lambda x: 2 * x, items)  # negative: not a pool
