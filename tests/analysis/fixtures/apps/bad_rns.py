"""Seeded rns-kernel dispatch violations (linted, never imported).

Lives under ``apps/`` — above mpn, where the residue-number-system
kernels may only be reached through the dispatchers' ``backend="rns"``
resolution, a lowered rns plan, or the accelerator's batch entry
point.  Calling them by name here must trip RPR012 exactly like
calling the limb or packed kernels does.
"""

from repro.mpn.rns import mul_batch_rns, mul_rns, powmod_rns


def sneaky_rns_mul(a, b):                          # RPR012
    return mul_rns(a, b)


def sneaky_rns_powmod(base, exponent, modulus):    # RPR012
    return powmod_rns(base, exponent, modulus)


def sneaky_rns_batch(pairs):                       # RPR012
    return mul_batch_rns(pairs)
