"""Seeded packed-kernel dispatch violations (linted, never imported).

Lives under ``apps/`` — above mpn, where the block-packed kernels may
only be reached through the dispatchers or a lowered ``packed`` plan.
Calling them by name here must trip RPR012 exactly like calling the
limb kernels does.
"""

from repro.mpn.packed import divmod_packed, mul_packed


def sneaky_packed_mul(a, b):                       # RPR012
    return mul_packed(a, b)


def sneaky_packed_div(a, b):                       # RPR012
    quotient, _ = divmod_packed(a, b)
    return quotient
