"""The central REPRO_* registry: declarations, typed accessors, and
the docs/ENV.md sync contract."""

from pathlib import Path

import pytest

from repro.analysis import env

DOCS = Path(__file__).parents[2] / "docs" / "ENV.md"


class TestDeclarations:
    def test_every_variable_is_namespaced_and_documented(self):
        assert len(env.REGISTRY) >= 16
        for var in env.all_vars():
            assert var.name.startswith("REPRO_")
            assert var.doc and var.default and var.scope

    def test_known_killswitches_are_present(self):
        assert env.REGISTRY["REPRO_CACHE"].kind == "killswitch"
        assert env.REGISTRY["REPRO_PACKED"].kind == "killswitch"
        assert env.REGISTRY["REPRO_SANITIZE"].kind == "flag"

    def test_duplicate_declaration_is_an_error(self):
        with pytest.raises(ValueError, match="declared twice"):
            env.declare("REPRO_SANITIZE", "off", "flag", "dup", "test")

    def test_unknown_kind_is_an_error(self):
        with pytest.raises(ValueError, match="unknown env kind"):
            env.declare("REPRO_TEST_BOGUS", "", "enum", "x", "test")
        assert "REPRO_TEST_BOGUS" not in env.REGISTRY


class TestTypedAccessors:
    def test_flag_is_opt_in(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert env.flag(env.SANITIZE) is False
        for value in ("0", "false", "No", "OFF", ""):
            monkeypatch.setenv("REPRO_SANITIZE", value)
            assert env.flag(env.SANITIZE) is False
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert env.flag(env.SANITIZE) is True

    def test_killswitch_is_on_unless_zero(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert env.enabled(env.CACHE) is True
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert env.enabled(env.CACHE) is False
        monkeypatch.setenv("REPRO_CACHE", "off")  # only exact 0 kills
        assert env.enabled(env.CACHE) is True

    def test_int_value_default_floor_and_garbage(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVE_BATCH", raising=False)
        assert env.int_value(env.SERVE_BATCH, 16, minimum=1) == 16
        monkeypatch.setenv("REPRO_SERVE_BATCH", "4")
        assert env.int_value(env.SERVE_BATCH, 16, minimum=1) == 4
        monkeypatch.setenv("REPRO_SERVE_BATCH", "0")
        with pytest.raises(ValueError, match="must be >= 1"):
            env.int_value(env.SERVE_BATCH, 16, minimum=1)
        monkeypatch.setenv("REPRO_SERVE_BATCH", "many")
        with pytest.raises(ValueError, match="must be an integer"):
            env.int_value(env.SERVE_BATCH, 16)

    def test_float_value_and_string(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_BATCH_MS", "2.5")
        assert env.float_value(env.SERVE_BATCH_MS, 5.0) == 2.5
        monkeypatch.setenv("REPRO_SERVE_BATCH_MS", "soon")
        with pytest.raises(ValueError, match="must be a number"):
            env.float_value(env.SERVE_BATCH_MS, 5.0)
        monkeypatch.delenv("REPRO_TRACE_FILE", raising=False)
        assert env.string(env.TRACE_FILE, "fallback.jsonl") \
            == "fallback.jsonl"
        monkeypatch.setenv("REPRO_TRACE_FILE", "  spans.jsonl  ")
        assert env.string(env.TRACE_FILE) == "spans.jsonl"


class TestDocsSync:
    def test_env_md_contains_the_rendered_table(self):
        assert DOCS.exists(), "docs/ENV.md is generated from " \
            "env.render_table(); regenerate it"
        assert env.render_table() in DOCS.read_text(encoding="utf-8")

    def test_table_lists_every_variable(self):
        text = DOCS.read_text(encoding="utf-8")
        for name in env.REGISTRY:
            assert "`%s`" % name in text
