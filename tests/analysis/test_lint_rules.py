"""Every lint rule fires on seeded code, and noqa suppresses precisely."""

from pathlib import Path

from repro.analysis.lint import (LintReport, collect_noqa, lint_paths,
                                 lint_source)
from repro.analysis.rules import ALL_RULES, RULES_BY_NAME

FIXTURES = Path(__file__).parent / "fixtures"

#: Fake paths that place a source in each rule scope.
KERNEL = "src/repro/mpn/fake_kernel.py"
CORE = "src/repro/core/controller.py"
APP = "src/repro/apps/fake_app.py"
SERVE = "src/repro/serve/fake_server.py"


def rules_fired(source: str, path: str):
    return {v.rule for v in lint_source(source, path)}


class TestRuleCatalogue:
    def test_thirteen_rules_with_stable_codes(self):
        assert len(ALL_RULES) == 13
        codes = [rule.code for rule in ALL_RULES]
        assert codes == ["RPR%03d" % i for i in range(1, 14)]
        assert all(rule.rationale for rule in ALL_RULES)

    def test_rules_by_name_round_trips(self):
        for rule in ALL_RULES:
            assert RULES_BY_NAME[rule.name] is rule


class TestEachRuleFires:
    def test_bigint_in_kernel(self):
        src = "def f(a):\n    return nat_to_int(a)\n"
        assert "bigint-in-kernel" in rules_fired(src, KERNEL)
        # Boundary modules and non-mpn code are out of scope.
        assert "bigint-in-kernel" not in rules_fired(
            src, "src/repro/mpn/nat.py")
        assert "bigint-in-kernel" not in rules_fired(src, APP)

    def test_unnormalized_return(self):
        src = ("def f(a) -> Nat:\n"
               "    return a[1:]\n")
        assert "unnormalized-return" in rules_fired(src, KERNEL)
        ok = "def f(a) -> Nat:\n    return normalize(list(a))\n"
        assert "unnormalized-return" not in rules_fired(ok, KERNEL)

    def test_unnormalized_return_sees_through_ternary(self):
        src = ("def f(a, flag) -> Nat:\n"
               "    return a if flag else [x for x in a]\n")
        assert "unnormalized-return" in rules_fired(src, KERNEL)

    def test_caller_aliasing(self):
        assert "caller-aliasing" in rules_fired(
            "def f(a):\n    a.append(1)\n", APP)
        assert "caller-aliasing" in rules_fired(
            "def f(a):\n    a[0] = 1\n", APP)
        assert "caller-aliasing" in rules_fired(
            "def f(a):\n    del a[0]\n", APP)

    def test_caller_aliasing_spares_rebound_params(self):
        src = ("def f(a):\n"
               "    a = list(a)\n"
               "    a.append(1)\n"
               "    return a\n")
        assert "caller-aliasing" not in rules_fired(src, APP)

    def test_caller_aliasing_swap_is_one_finding(self):
        src = ("def f(a, i, j):\n"
               "    a[i], a[j] = a[j], a[i]\n")
        findings = [v for v in lint_source(src, APP)
                    if v.rule == "caller-aliasing"]
        assert len(findings) == 1

    def test_subscript_swap_does_not_count_as_rebinding(self):
        # ``a[i], a[j] = ...`` must not be mistaken for ``a = ...``.
        src = ("def f(a, i, j):\n"
               "    a[i], a[j] = a[j], a[i]\n"
               "    a.append(1)\n")
        findings = [v for v in lint_source(src, APP)
                    if v.rule == "caller-aliasing"]
        assert len(findings) == 2

    def test_bare_assert_in_library(self):
        assert "bare-assert-in-library" in rules_fired(
            "def f(a):\n    assert a\n", APP)

    def test_float_in_cycle_model(self):
        fired = rules_fired("def f(n):\n    return n / 2 + 0.5\n", CORE)
        assert "float-in-cycle-model" in fired
        # Timing models (not in the functional list) may use floats.
        assert "float-in-cycle-model" not in rules_fired(
            "def f(n):\n    return n / 2\n", "src/repro/core/model.py")

    def test_nondeterminism(self):
        assert "nondeterminism" in rules_fired(
            "import time\n", "src/repro/core/pe.py")
        assert "nondeterminism" in rules_fired(
            "import random\ndef f():\n    return random.random()\n",
            "src/repro/core/pe.py")
        assert "nondeterminism" in rules_fired(
            "import random\ndef f():\n    return random.Random()\n",
            "src/repro/core/pe.py")
        # A seeded RNG is the sanctioned pattern.
        assert "nondeterminism" not in rules_fired(
            "import random\ndef f(seed):\n"
            "    return random.Random(seed)\n",
            "src/repro/core/pe.py")

    def test_mutable_default_arg(self):
        assert "mutable-default-arg" in rules_fired(
            "def f(a, scratch=[]):\n    return scratch\n", APP)
        assert "mutable-default-arg" in rules_fired(
            "def f(a, table=dict()):\n    return table\n", APP)

    def test_magic_limb_constant(self):
        assert "magic-limb-constant" in rules_fired(
            "BASE = 1 << 32\n", APP)
        assert "magic-limb-constant" in rules_fired(
            "MASK = 4294967295\n", APP)
        # nat.py defines the limb geometry and is exempt.
        assert "magic-limb-constant" not in rules_fired(
            "BASE = 1 << 32\n", "src/repro/mpn/nat.py")

    def test_print_in_kernel(self):
        src = "def f(x):\n    print(x)\n"
        assert "print-in-kernel" in rules_fired(src, KERNEL)
        assert "print-in-kernel" in rules_fired(src, CORE)
        assert "print-in-kernel" not in rules_fired(src, APP)

    def test_broad_except(self):
        assert "broad-except" in rules_fired(
            "try:\n    f()\nexcept:\n    raise\n", APP)
        assert "broad-except" in rules_fired(
            "try:\n    f()\nexcept Exception:\n    pass\n", APP)
        # A typed, handled exception is fine.
        assert "broad-except" not in rules_fired(
            "try:\n    f()\nexcept ValueError:\n    pass\n", APP)

    def test_blocking_call_in_async(self):
        src = ("import time\n"
               "async def handler():\n"
               "    time.sleep(1)\n")
        assert "blocking-call-in-async" in rules_fired(src, SERVE)
        # Only the serve layer is in scope.
        assert "blocking-call-in-async" not in rules_fired(src, APP)

    def test_blocking_future_wait_in_async(self):
        src = ("async def handler(fut):\n"
               "    return fut.result()\n")
        assert "blocking-call-in-async" in rules_fired(src, SERVE)

    def test_blocking_socket_ops_in_async(self):
        src = ("async def handler(sock):\n"
               "    sock.connect((\"h\", 1))\n"
               "    return sock.recv(1)\n")
        findings = [v for v in lint_source(src, SERVE)
                    if v.rule == "blocking-call-in-async"]
        assert len(findings) == 2

    def test_awaited_calls_are_not_blocking(self):
        src = ("import asyncio\n"
               "async def handler():\n"
               "    await asyncio.sleep(1)\n")
        assert "blocking-call-in-async" not in rules_fired(src, SERVE)

    def test_sync_def_and_executor_thunks_are_out_of_scope(self):
        src = ("import time\n"
               "def worker():\n"
               "    time.sleep(1)\n"
               "async def handler(loop):\n"
               "    def thunk():\n"
               "        time.sleep(1)\n"
               "    await loop.run_in_executor(None, thunk)\n")
        assert "blocking-call-in-async" not in rules_fired(src, SERVE)

    def test_direct_dispatch_kernel_call(self):
        src = ("def f(a, b):\n"
               "    return mul_karatsuba(a, b, mul_schoolbook)\n")
        assert "direct-dispatch" in rules_fired(src, SERVE)
        assert "direct-dispatch" in rules_fired(src, APP)
        # The kernels' own package is the sanctioned home.
        assert "direct-dispatch" not in rules_fired(src, KERNEL)

    def test_direct_dispatch_instruction_construction(self):
        src = ("def f(ref):\n"
               "    return Instruction(Opcode.MUL, (ref, ref), 2)\n")
        assert "direct-dispatch" in rules_fired(src, SERVE)
        # plan.streams and the ISA definition itself stay exempt.
        assert "direct-dispatch" not in rules_fired(
            src, "src/repro/plan/streams.py")
        assert "direct-dispatch" not in rules_fired(
            src, "src/repro/core/isa.py")

    def test_direct_dispatch_covers_packed_entrypoints(self):
        """The block-packed kernels joined KERNEL_ENTRYPOINTS: calling
        them above mpn is the same contract breach as calling the limb
        kernels directly."""
        for name in ("mul_packed", "sqr_packed", "divmod_packed",
                     "add_packed", "sub_packed", "shl_packed",
                     "shr_packed"):
            src = ("def f(a, b):\n"
                   "    return %s(a, b)\n" % name)
            assert "direct-dispatch" in rules_fired(src, SERVE), name
            assert "direct-dispatch" in rules_fired(src, APP), name
            # Inside mpn (the dispatchers' home) the calls are legal.
            assert "direct-dispatch" not in rules_fired(src, KERNEL), \
                name

    def test_direct_dispatch_leaves_dispatchers_alone(self):
        src = ("def f(a, b):\n"
               "    return mul(a, b)\n"
               "def g(a, b):\n"
               "    return divmod_nat(a, b)\n")
        assert "direct-dispatch" not in rules_fired(src, SERVE)

    def test_schedule_bypass_fires_inside_mpn(self):
        src = ("def f(a, b):\n"
               "    return mul_karatsuba(a, b, mul_schoolbook)\n")
        # RPR012 is silent inside mpn; RPR013 takes over there.
        assert "schedule-bypass" in rules_fired(src, KERNEL)
        assert "schedule-bypass" in rules_fired(
            src, "src/repro/plan/execute.py")
        # ...but not in the schedule layer itself: the walking
        # dispatchers, the internals' defining modules, the tuner.
        for sanctioned in ("src/repro/mpn/mul.py",
                           "src/repro/mpn/div.py",
                           "src/repro/mpn/tune.py",
                           "src/repro/mpn/karatsuba.py"):
            assert "schedule-bypass" not in rules_fired(src, sanctioned)
        # Outside mpn/plan it is RPR012's jurisdiction, not RPR013's.
        assert "schedule-bypass" not in rules_fired(src, SERVE)

    def test_schedule_bypass_covers_every_internal(self):
        for name in ("mul_karatsuba", "sqr_karatsuba", "mul_toom",
                     "mul_ssa", "divmod_newton", "divmod_bz"):
            src = "def f(a, b):\n    return %s(a, b)\n" % name
            assert "schedule-bypass" in rules_fired(src, KERNEL), name

    def test_schedule_bypass_leaves_dispatchers_alone(self):
        src = ("def f(a, b):\n"
               "    return mul(a, b, backend='specialized')\n")
        assert "schedule-bypass" not in rules_fired(src, KERNEL)


class TestNoqa:
    def test_named_suppression(self):
        src = "def f(a):\n    return nat_to_int(a)  # repro: noqa=bigint-in-kernel\n"
        assert "bigint-in-kernel" not in rules_fired(src, KERNEL)

    def test_named_suppression_with_justification(self):
        src = ("def f(a):\n"
               "    return nat_to_int(a)"
               "  # repro: noqa=bigint-in-kernel -- word-size base case\n")
        assert rules_fired(src, KERNEL) == set()

    def test_bare_noqa_suppresses_everything(self):
        src = "def f(a):\n    a.append(nat_to_int(a))  # repro: noqa\n"
        assert rules_fired(src, KERNEL) == set()

    def test_other_rules_stay_live(self):
        src = ("def f(a):\n"
               "    a.append(nat_to_int(a))  # repro: noqa=bigint-in-kernel\n")
        assert rules_fired(src, KERNEL) == {"caller-aliasing"}

    def test_multiline_statement_covered_by_last_line(self):
        src = ("def f(a) -> Nat:\n"
               "    return (a +\n"
               "            a)  # repro: noqa=unnormalized-return\n")
        assert "unnormalized-return" not in rules_fired(src, KERNEL)

    def test_unknown_rule_name_is_reported(self):
        src = "x = 1  # repro: noqa=no-such-rule\n"
        violations = lint_source(src, APP)
        assert [v.rule for v in violations] == ["unknown-noqa"]
        assert "no-such-rule" in violations[0].message

    def test_collect_noqa_parses_lists(self):
        mapping = collect_noqa(
            "a = 1  # repro: noqa=rule-a, rule-b -- reason\n"
            "b = 2  # repro: noqa\n")
        assert mapping[1] == {"rule-a", "rule-b"}
        assert mapping[2] == {"*"}


class TestEngine:
    def test_syntax_error_is_a_finding_not_a_crash(self):
        violations = lint_source("def broken(:\n", APP)
        assert [v.code for v in violations] == ["RPR000"]

    def test_report_renders_with_provenance(self):
        report = LintReport(violations=lint_source(
            "def f(a):\n    assert a\n", APP), files_checked=1)
        assert not report.ok
        rendered = report.render()
        assert APP + ":2:" in rendered
        assert "RPR004" in rendered
        assert "1 file(s) checked, 1 violation(s)" in rendered


class TestFixtureSweep:
    """The on-disk seeded fixtures exercise every rule end to end."""

    def test_every_rule_fires_on_the_fixture_tree(self):
        report = lint_paths([FIXTURES])
        codes = {v.code for v in report.violations}
        assert codes == {"RPR%03d" % i for i in range(1, 14)}

    def test_clean_fixture_is_silent(self):
        report = lint_paths([FIXTURES / "clean"])
        assert report.ok
        assert report.files_checked == 1
