"""The analyzer as a gate: the tree stays clean, the baseline stays
honest, the noqa audit stays empty, and the CLI exit codes hold."""

import json
from pathlib import Path

import repro
from repro.analysis.audit import audit_noqa
from repro.analysis.flow import (DEFAULT_BASELINE, analyze_paths,
                                 load_baseline, save_baseline, to_sarif,
                                 write_sarif)
from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures" / "flow"
SRC = Path(repro.__file__).parent


class TestTreeIsClean:
    def test_src_repro_has_zero_findings(self):
        report = analyze_paths([str(SRC)])
        assert report.ok, report.render()

    def test_and_needs_zero_baseline_entries(self):
        # The checked-in baseline is empty: every defect the analyzer
        # found in-tree was fixed, not accepted.  Keep it that way.
        report = analyze_paths([str(SRC)])
        assert report.suppressed_baseline == 0
        entries, problems = load_baseline(DEFAULT_BASELINE)
        assert entries == [] and problems == []

    def test_no_noqa_comment_in_tree_is_dead(self):
        audit = audit_noqa([SRC])
        assert audit.ok, audit.render()
        assert audit.total_noqa > 0  # the audit did see real markers


class TestBaselineWorkflow:
    def test_write_then_apply_suppresses_everything(self, tmp_path):
        fixture = str(FIXTURES / "af_caller_mutation.py")
        open_report = analyze_paths([fixture], baseline_path=None)
        assert open_report.findings
        baseline = tmp_path / "baseline.json"
        save_baseline(str(baseline), open_report.findings)
        gated = analyze_paths([fixture], baseline_path=str(baseline))
        assert gated.ok
        assert gated.suppressed_baseline == len(open_report.findings)

    def test_stale_entry_is_a_finding(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"version": 1, "entries": [
            {"rule": "flow-caller-mutation",
             "function": "af_caller_mutation.no_such_function",
             "why": "left over from a deleted function"}]}))
        report = analyze_paths([str(FIXTURES / "cc_executor.py")],
                               baseline_path=str(baseline))
        stale = [f for f in report.findings if f.code == "AF000"]
        assert len(stale) == 1
        assert "stale" in stale[0].message

    def test_entry_without_why_is_a_finding(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"version": 1, "entries": [
            {"rule": "flow-caller-mutation",
             "function": "af_caller_mutation.forwards", "why": "  "}]}))
        report = analyze_paths([str(FIXTURES / "af_caller_mutation.py")],
                               baseline_path=str(baseline))
        problems = [f for f in report.findings if f.code == "AF000"]
        assert len(problems) == 1
        assert "why" in problems[0].message

    def test_round_trip_preserves_keys(self, tmp_path):
        fixture = str(FIXTURES / "cc_rmw.py")
        report = analyze_paths([fixture], baseline_path=None)
        path = tmp_path / "baseline.json"
        save_baseline(str(path), report.findings)
        entries, problems = load_baseline(str(path))
        assert problems == []
        assert {(e.rule, e.function) for e in entries} \
            == {f.key() for f in report.findings}
        assert all(e.why for e in entries)


class TestSarifExport:
    def test_document_shape(self):
        report = analyze_paths([str(FIXTURES / "ev_env.py")],
                               baseline_path=None)
        doc = to_sarif(report.findings)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-analyze"
        declared = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert len(run["results"]) == len(report.findings) > 0
        for result in run["results"]:
            assert result["ruleId"] in declared
            region = result["locations"][0]["physicalLocation"]["region"]
            assert region["startLine"] >= 1

    def test_write_sarif_emits_valid_json(self, tmp_path):
        report = analyze_paths([str(FIXTURES / "cc_tasks.py")],
                               baseline_path=None)
        out = tmp_path / "analysis.sarif.json"
        write_sarif(str(out), report.findings)
        loaded = json.loads(out.read_text())
        assert loaded["runs"][0]["results"]


class TestCliExitCodes:
    def test_clean_tree_exits_zero(self, capsys):
        assert main(["analyze", str(SRC)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        code = main(["analyze", "--no-baseline",
                     str(FIXTURES / "cc_rmw.py")])
        assert code == 1
        assert "await-spanning-rmw" in capsys.readouterr().out

    def test_no_files_exit_two(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path)]) == 2
        capsys.readouterr()

    def test_list_rules_and_env_table(self, capsys):
        assert main(["analyze", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "AF001" in out and "EV002" in out
        assert main(["analyze", "--env-table"]) == 0
        assert "REPRO_SANITIZE" in capsys.readouterr().out

    def test_audit_noqa_flags_dead_marker(self, tmp_path, capsys):
        victim = tmp_path / "victim.py"
        victim.write_text(
            "def f(xs):\n"
            "    return xs  # repro: noqa=caller-aliasing -- stale\n")
        assert main(["lint", "--audit-noqa", str(tmp_path)]) == 1
        assert "dead noqa" in capsys.readouterr().out

    def test_audit_noqa_clean_tree_exits_zero(self, capsys):
        assert main(["lint", "--audit-noqa", str(SRC)]) == 0
        capsys.readouterr()
