"""Differential mpn-vs-bigint tests under the runtime sanitizer.

Every example runs with the invariant sanitizer installed, so a kernel
that produced the right value through an unnormalized or out-of-range
intermediate at the API boundary would still fail here.  Deadlines are
disabled: the sanitizer deliberately doubles the constant factor, and
the strategies include 1200-bit operands.
"""

import math

import pytest
from hypothesis import given, settings

from repro import mpn
from repro.analysis import sanitize

from tests.conftest import from_nat, naturals, positive_naturals, \
    shift_counts, to_nat


@pytest.fixture(scope="module", autouse=True)
def _sanitized():
    """Module-scoped so hypothesis examples all run under the wrappers."""
    sanitize.install()
    yield
    sanitize.uninstall()


@settings(deadline=None)
@given(naturals, naturals)
def test_add_matches_bigint(x, y):
    assert from_nat(mpn.add(to_nat(x), to_nat(y))) == x + y


@settings(deadline=None)
@given(naturals, naturals)
def test_sub_matches_bigint(x, y):
    big, small = max(x, y), min(x, y)
    assert from_nat(mpn.sub(to_nat(big), to_nat(small))) == big - small


@settings(deadline=None)
@given(naturals, naturals)
def test_mul_matches_bigint(x, y):
    assert from_nat(mpn.mul(to_nat(x), to_nat(y))) == x * y


@settings(deadline=None, max_examples=60)
@given(naturals, positive_naturals)
def test_divmod_matches_bigint(x, y):
    quotient, remainder = mpn.divmod_nat(to_nat(x), to_nat(y))
    assert (from_nat(quotient), from_nat(remainder)) == divmod(x, y)


@settings(deadline=None)
@given(naturals, shift_counts)
def test_shifts_match_bigint(x, count):
    assert from_nat(mpn.shl(to_nat(x), count)) == x << count
    assert from_nat(mpn.shr(to_nat(x), count)) == x >> count


@settings(deadline=None)
@given(naturals)
def test_sqrtrem_matches_bigint(x):
    root, remainder = mpn.sqrtrem(to_nat(x))
    r = from_nat(root)
    assert r * r <= x < (r + 1) * (r + 1)
    assert from_nat(remainder) == x - r * r


@settings(deadline=None, max_examples=40)
@given(naturals, naturals, positive_naturals)
def test_powmod_matches_bigint(base, exponent, modulus):
    result = mpn.powmod(to_nat(base), to_nat(exponent), to_nat(modulus))
    assert from_nat(result) == pow(base, exponent, modulus)


@settings(deadline=None)
@given(naturals, naturals)
def test_gcd_matches_bigint(x, y):
    assert from_nat(mpn.gcd(to_nat(x), to_nat(y))) == math.gcd(x, y)
