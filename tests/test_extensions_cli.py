"""Tests for the FFT extension and the command-line interface."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import build_parser, main
from repro.extensions.fft import (PIECE_BITS, fft, fft_multiply,
                                  required_precision)
from repro.mpc import MPC
from repro.mpf import MPF
from repro.mpn import nat
from repro.mpn.nat import MpnError

from tests.conftest import from_nat, to_nat


class TestFftTransform:
    def test_roundtrip(self):
        precision = 128
        rng = random.Random(6)
        values = [MPC(MPF(rng.randrange(1000), precision),
                      MPF(rng.randrange(1000), precision))
                  for _ in range(16)]
        spectrum = fft(values, precision)
        back = fft(spectrum, precision, inverse=True)
        for original, recovered in zip(values, back):
            assert abs(float(original.re - recovered.re)) < 1e-20
            assert abs(float(original.im - recovered.im)) < 1e-20

    def test_non_power_of_two_rejected(self):
        precision = 96
        values = [MPC(MPF(1, precision), MPF(0, precision))] * 3
        with pytest.raises(MpnError):
            fft(values, precision)

    def test_parseval_spot_check(self):
        precision = 160
        values = [MPC(MPF(v, precision), MPF(0, precision))
                  for v in (3, 1, 4, 1, 5, 9, 2, 6)]
        spectrum = fft(values, precision)
        time_energy = sum(float(v.abs2()) for v in values)
        freq_energy = sum(float(v.abs2()) for v in spectrum) / 8
        assert abs(time_energy - freq_energy) < 1e-9


class TestFftMultiply:
    @given(st.integers(min_value=0, max_value=(1 << 600) - 1),
           st.integers(min_value=0, max_value=(1 << 600) - 1))
    @settings(max_examples=10, deadline=None)
    def test_matches_int(self, a, b):
        product, _ = fft_multiply(to_nat(a), to_nat(b))
        assert from_nat(product) == a * b

    def test_residue_is_tiny(self):
        rng = random.Random(7)
        a, b = rng.getrandbits(2000), rng.getrandbits(2000)
        product, stats = fft_multiply(to_nat(a), to_nat(b))
        assert from_nat(product) == a * b
        assert stats["worst_residue"] < 1e-10

    def test_zero(self):
        product, stats = fft_multiply([], to_nat(5))
        assert product == [] and stats["size"] == 0

    def test_precision_budget_grows_with_size(self):
        assert required_precision(1 << 12) > required_precision(4)
        assert required_precision(4) > 2 * PIECE_BITS


class TestCli:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["multiply", "512"])
        assert args.bits == 512

    def test_info(self, capsys):
        assert main(["info"]) == 0
        output = capsys.readouterr().out
        assert "1.894" in output and "256 PEs" in output

    def test_multiply(self, capsys):
        assert main(["multiply", "512", "--seed", "3"]) == 0
        assert "speedup" in capsys.readouterr().out

    def test_multiply_bit_serial(self, capsys):
        assert main(["multiply", "96", "--bit-serial"]) == 0

    def test_pi(self, capsys):
        assert main(["pi", "30"]) == 0
        assert capsys.readouterr().out.startswith("3.14159265358979")

    def test_lambda(self, capsys):
        assert main(["lambda"]) == 0
        assert "q=4" in capsys.readouterr().out

    def test_rsa(self, capsys):
        assert main(["rsa", "128"]) == 0
        assert "ok" in capsys.readouterr().out

    def test_sweep(self, capsys):
        assert main(["sweep", "--max-bits", "4096"]) == 0
        assert "speedup" in capsys.readouterr().out


class TestCliExtras:
    def test_info_selftest(self, capsys):
        assert main(["info", "--selftest"]) == 0
        assert "selftest: all passed" in capsys.readouterr().out

    def test_tune(self, capsys, tmp_path, monkeypatch):
        # Isolate the persisted outputs: without this, the test retunes
        # the *host's* thresholds file — and appends its bisection
        # probes to the checked-in cost dataset — on every suite run.
        monkeypatch.setenv("REPRO_THRESHOLDS",
                           str(tmp_path / "thresholds.json"))
        monkeypatch.setenv("REPRO_COST_DATASET",
                           str(tmp_path / "cost.jsonl"))
        assert main(["tune", "--max-limbs", "96"]) == 0
        assert "schoolbook->karatsuba" in capsys.readouterr().out
