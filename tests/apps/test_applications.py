"""Tests for the four APC applications (Table II)."""

import cmath
import math

import pytest

from repro.apps import WORKLOADS, frac, pi, rsa, zkcm
from repro.mpz import MPZ


class TestPi:
    def test_100_digits_exact(self):
        assert pi.run(100).digits == pi.PI_REFERENCE_100

    def test_longer_runs_extend_consistently(self):
        long_run = pi.run(300).digits
        assert long_run.startswith(pi.PI_REFERENCE_100)
        assert len(long_run) == 302  # "3." + 300 digits

    def test_terms_scale_with_digits(self):
        short = pi.run(50)
        long = pi.run(1000)
        assert long.terms > short.terms
        assert long.terms >= 1000 / pi.DIGITS_PER_TERM

    def test_invalid_digits_rejected(self):
        with pytest.raises(ValueError):
            pi.compute_pi(0)

    def test_trace_is_multiply_dominated(self):
        _, trace = pi.trace_run(200)
        names = trace.names()
        assert names.get("mul", 0) > names.get("add", 0)
        assert names.get("sqrt", 0) == 1
        assert names.get("div", 0) >= 1


class TestFrac:
    def test_perturbation_matches_direct(self):
        shared = dict(width=6, height=6, max_iterations=40, precision=128)
        pert = frac.render(frac.DEFAULT_CENTER_RE, frac.DEFAULT_CENTER_IM,
                           10, **shared)
        direct = frac.render_direct(frac.DEFAULT_CENTER_RE,
                                    frac.DEFAULT_CENTER_IM, 10, **shared)
        agree = sum(1 for r in range(6) for c in range(6)
                    if abs(pert.iterations[r][c]
                           - direct.iterations[r][c]) <= 1)
        assert agree >= 33  # <=3 boundary pixels may differ by >1 iter

    def test_deep_zoom_needs_arbitrary_precision(self):
        # At zoom 2^-200 the pixel offsets underflow doubles entirely;
        # the render must still produce a structured (non-constant)
        # image thanks to the high-precision reference orbit.
        result = frac.run(zoom_exponent=200, width=8, height=8,
                          max_iterations=320, precision=384)
        flat = [i for row in result.iterations for i in row]
        # The Misiurewicz reference orbit never escapes...
        assert result.orbit_length == 320
        # ...and the window still resolves dendrite structure.
        assert len(set(flat)) > 1

    def test_interior_point_never_escapes(self):
        result = frac.render((0, 1), (0, 1), 4, width=2, height=2,
                             max_iterations=32, precision=96)
        # Pixels around the origin lie deep inside the set.
        assert all(i == 32 for row in result.iterations for i in row)

    def test_trace_records_multiplies(self):
        _, trace = frac.trace_run(zoom_exponent=30, precision=128,
                                  max_iterations=32)
        assert trace.count("mul") > 10


class TestZkcm:
    @pytest.mark.parametrize("num_qubits,basis", [(2, 1), (3, 5)])
    def test_qft_closed_form(self, num_qubits, basis):
        size = 1 << num_qubits
        result = zkcm.qft_state(num_qubits, basis, precision=128)
        for y in range(size):
            expected = cmath.exp(2j * math.pi * basis * y / size) \
                / math.sqrt(size)
            assert abs(complex(result.state[y]) - expected) < 1e-12

    def test_qft_preserves_norm(self):
        result = zkcm.qft_state(3, 2, precision=128)
        norm = sum(float(amplitude.abs2()) for amplitude in result.state)
        assert abs(norm - 1.0) < 1e-12

    def test_unitarity_beyond_double(self):
        result = zkcm.run(num_qubits=3, precision=192)
        assert result.unitarity_error < 1e-15

    def test_ghz(self):
        result = zkcm.ghz_state(4, precision=96)
        amplitudes = [abs(complex(a)) for a in result.state]
        expected = 1 / math.sqrt(2)
        assert abs(amplitudes[0] - expected) < 1e-10
        assert abs(amplitudes[-1] - expected) < 1e-10
        assert all(a < 1e-12 for a in amplitudes[1:-1])

    def test_matrix_helpers(self):
        identity = zkcm.identity(2, 96)
        h = zkcm.hadamard(96)
        hh = zkcm.matmul(h, h)
        for r in range(2):
            for c in range(2):
                # complex() conversion floors the comparison at float64.
                assert abs(complex(hh[r][c])
                           - complex(identity[r][c])) < 1e-14

    def test_tensor_dimensions(self):
        h = zkcm.hadamard(96)
        hh = zkcm.tensor(h, h)
        assert len(hh) == 4 and len(hh[0]) == 4


class TestRsa:
    def test_round_trip_and_signature(self):
        result = rsa.run(bits=256, messages=2)
        assert result.ok
        signature = rsa.sign(result.message, result.key)
        assert rsa.verify(signature, result.message, result.key)
        assert not rsa.verify(signature + 1, result.message, result.key)

    def test_crt_matches_plain_decrypt(self):
        key = rsa.generate_keypair(256, seed=7)
        message = MPZ(0x1234567890ABCDEF)
        ciphertext = rsa.encrypt(message, key)
        assert rsa.decrypt(ciphertext, key, use_crt=True) \
            == rsa.decrypt(ciphertext, key, use_crt=False) == message

    def test_key_structure(self):
        key = rsa.generate_keypair(256, seed=11)
        assert key.bits == 256
        assert key.prime_p * key.prime_q == key.modulus
        phi = (key.prime_p - 1) * (key.prime_q - 1)
        assert (key.public_exponent * key.private_exponent) % phi == MPZ(1)

    def test_miller_rabin(self):
        known_primes = [2, 3, 5, 97, 2 ** 61 - 1,
                        (1 << 89) - 1]  # Mersenne primes included
        for p in known_primes:
            assert rsa.is_probable_prime(MPZ(p))
        known_composites = [1, 4, 561, 1105, 6601,  # Carmichael numbers
                            (2 ** 67) - 1]
        for c in known_composites:
            assert not rsa.is_probable_prime(MPZ(c))

    def test_deterministic_keygen(self):
        a = rsa.generate_keypair(128, seed=5)
        b = rsa.generate_keypair(128, seed=5)
        assert a.modulus == b.modulus

    def test_message_out_of_range_rejected(self):
        key = rsa.generate_keypair(128, seed=3)
        with pytest.raises(ValueError):
            rsa.encrypt(key.modulus + 1, key)

    def test_odd_bits_rejected(self):
        with pytest.raises(ValueError):
            rsa.generate_keypair(129)

    def test_trace_is_powmod_dominated(self):
        _, trace = rsa.trace_run(bits=128, messages=2)
        assert trace.count("powmod") >= 4  # MR rounds + enc/dec


class TestWorkloadRegistry:
    def test_all_four_apps_present(self):
        assert set(WORKLOADS) == {"Pi", "Frac", "zkcm", "RSA"}

    def test_smallest_configs_run(self):
        for name, (runner, sweeps) in WORKLOADS.items():
            result, trace = runner(**sweeps[0])
            assert trace.count() > 0, name


class TestFracImageOutput:
    def test_pgm_roundtrip(self, tmp_path):
        result = frac.run(zoom_exponent=10, width=6, height=4,
                          max_iterations=40, precision=96)
        path = tmp_path / "frame.pgm"
        frac.write_pgm(result, str(path))
        lines = path.read_text().splitlines()
        assert lines[0] == "P2"
        assert lines[1] == "6 4"
        assert lines[2] == "255"
        pixels = [int(v) for line in lines[3:] for v in line.split()]
        assert len(pixels) == 24
        assert all(0 <= v <= 255 for v in pixels)


class TestGrover:
    def test_closed_form_amplitude(self):
        import math
        num_qubits, marked = 3, 5
        size = 8
        for iterations in (1, 2):
            result = zkcm.grover_search(num_qubits, marked,
                                        precision=160,
                                        iterations=iterations)
            theta = math.asin(1 / math.sqrt(size))
            expected = math.sin((2 * iterations + 1) * theta)
            got = float(result.state[marked].re)
            assert abs(got - expected) < 1e-12

    def test_search_succeeds(self):
        result = zkcm.grover_search(4, marked=11, precision=128)
        probabilities = [float(a.abs2()) for a in result.state]
        assert probabilities[11] == max(probabilities)
        assert probabilities[11] > 0.9

    def test_norm_preserved(self):
        result = zkcm.grover_search(3, marked=2, precision=128,
                                    iterations=3)
        norm = sum(float(a.abs2()) for a in result.state)
        assert abs(norm - 1.0) < 1e-12

    def test_marked_out_of_range(self):
        with pytest.raises(ValueError):
            zkcm.grover_search(3, marked=8)


class TestZkcmMatrixAlgebra:
    def test_dagger_is_conjugate_transpose(self):
        precision = 96
        from repro.mpc import MPC
        from repro.mpf import MPF
        m = [[MPC(MPF(1, precision), MPF(2, precision)),
              MPC(MPF(3, precision), MPF(-4, precision))],
             [MPC(MPF(5, precision), MPF(0, precision)),
              MPC(MPF(0, precision), MPF(1, precision))]]
        dag = zkcm.dagger(m)
        assert complex(dag[0][1]) == complex(5, 0)
        assert complex(dag[1][0]) == complex(3, 4)
        assert complex(dag[1][1]) == complex(0, -1)

    def test_tensor_matches_kronecker(self):
        import numpy
        precision = 96
        h = zkcm.hadamard(precision)
        p = zkcm.phase_gate(2, precision)
        ours = zkcm.tensor(h, p)
        h_np = numpy.array([[complex(c) for c in row] for row in h])
        p_np = numpy.array([[complex(c) for c in row] for row in p])
        reference = numpy.kron(h_np, p_np)
        for r in range(4):
            for c in range(4):
                assert abs(complex(ours[r][c]) - reference[r, c]) < 1e-12

    @pytest.mark.parametrize("k", [1, 2, 3, 5, 8])
    def test_phase_gates_are_unitary(self, k):
        precision = 128
        gate = zkcm.phase_gate(k, precision)
        product = zkcm.matmul(gate, zkcm.dagger(gate))
        identity = zkcm.identity(2, precision)
        for r in range(2):
            for c in range(2):
                assert abs(complex(product[r][c])
                           - complex(identity[r][c])) < 1e-14

    def test_controlled_gate_block_structure(self):
        precision = 96
        controlled_h = zkcm.controlled(zkcm.hadamard(precision),
                                       precision)
        # Upper-left 2x2 block is identity; lower-right is H.
        assert complex(controlled_h[0][0]) == 1 and \
            complex(controlled_h[1][1]) == 1
        assert abs(complex(controlled_h[2][2])
                   - complex(2 ** -0.5, 0)) < 1e-12
        assert complex(controlled_h[0][2]) == 0
