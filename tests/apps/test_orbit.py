"""Tests for the arbitrary-precision orbit calculation."""

import math

import pytest

from repro.apps import orbit
from repro.mpf import MPF
from repro.mpn.nat import MpnError


class TestKeplerSolver:
    @pytest.mark.parametrize("e,m", [(0.0, 1.0), (0.3, 0.5),
                                     (0.6, 2.0), (0.9, 5.5)])
    def test_satisfies_keplers_equation(self, e, m):
        precision = 160
        ecc = MPF.from_ratio(int(e * 10), 10, precision)
        mean = MPF.from_ratio(int(m * 10), 10, precision)
        e_anomaly = orbit.solve_kepler(ecc, mean, precision)
        from repro.mpf.transcendental import cos_sin
        _, sin_e = cos_sin(e_anomaly, precision)
        residual = abs(e_anomaly - ecc * sin_e - mean)
        assert not residual or residual.exponent_of_top_bit < -140

    def test_circular_orbit_is_identity(self):
        precision = 128
        mean = MPF.from_ratio(7, 5, precision)
        got = orbit.solve_kepler(MPF(0, precision), mean, precision)
        assert not abs(got - mean)

    def test_hyperbolic_rejected(self):
        with pytest.raises(MpnError):
            orbit.solve_kepler(MPF(2, 128), MPF(1, 128), 128)

    def test_matches_float64_solver(self):
        precision = 128
        got = orbit.solve_kepler(MPF.from_ratio(6, 10, precision),
                                 MPF(2, precision), precision)
        # float64 reference by fixed-point iteration.
        e_ref = 2.0
        for _ in range(100):
            e_ref = 2.0 + 0.6 * math.sin(e_ref)
        assert abs(float(got) - e_ref) < 1e-12


class TestPropagation:
    def test_orbit_closes_to_precision(self):
        result = orbit.run(precision=192, steps=6)
        assert result.closure_exponent < -150

    def test_positions_on_the_ellipse(self):
        # x^2/a^2 + y^2/b^2 = 1 with a=1, b^2 = 1-e^2, center (-e, 0).
        precision = 160
        result = orbit.propagate((6, 10), steps=5, precision=precision)
        e = MPF.from_ratio(6, 10, precision)
        one = MPF(1, precision)
        b2 = one - e * e
        for x, y in result.positions:
            shifted = x + e
            lhs = shifted * shifted + y * y / b2
            error = abs(lhs - one)
            assert not error or error.exponent_of_top_bit < -120

    def test_beats_float64_by_many_orders(self):
        result = orbit.run(precision=192, steps=4)
        float_error = orbit.float64_closure_error()
        assert 2.0 ** result.closure_exponent < float_error * 1e-30

    def test_trace_records_kernel_work(self):
        _, trace = orbit.trace_run(precision=128, steps=3)
        assert trace.count("mul") > 50
