"""Tests for the quantum-circuit builder."""

import math

import pytest

from repro.apps import zkcm
from repro.apps.circuits import (Circuit, Gate, bell_pair, measure,
                                 probabilities, qft_circuit, simulate)
from repro.mpn.nat import MpnError


class TestCircuitBuilder:
    def test_fluent_construction(self):
        circuit = Circuit(3).h(0).cnot(0, 1).phase(2, 2).z(1).x(2)
        assert circuit.depth() == 5

    def test_qubit_bounds_checked(self):
        with pytest.raises(MpnError):
            Circuit(2).h(2)
        with pytest.raises(MpnError):
            Circuit(2).cnot(0, 5)

    def test_bad_gate_kind(self):
        with pytest.raises(MpnError):
            Gate("toffoli", 0)

    def test_controlled_needs_control(self):
        with pytest.raises(MpnError):
            Gate("cnot", 0)

    def test_empty_register_rejected(self):
        with pytest.raises(MpnError):
            Circuit(0)


class TestSimulation:
    def test_bell_pair(self):
        state = simulate(bell_pair(), precision=96)
        weights = probabilities(state)
        assert abs(weights[0b00] - 0.5) < 1e-12
        assert abs(weights[0b11] - 0.5) < 1e-12
        assert weights[0b01] < 1e-20 and weights[0b10] < 1e-20

    def test_x_and_z(self):
        state = simulate(Circuit(1).x(0), precision=96)
        assert probabilities(state) == pytest.approx([0.0, 1.0])
        # Z|1> = -|1>: global phase visible in the amplitude sign.
        state = simulate(Circuit(1).x(0).z(0), precision=96)
        assert float(state[1].re) == pytest.approx(-1.0)

    def test_double_hadamard_is_identity(self):
        state = simulate(Circuit(1).h(0).h(0), precision=128)
        assert probabilities(state) == pytest.approx([1.0, 0.0])

    def test_qft_circuit_matches_zkcm(self):
        # The builder's QFT ladder against zkcm's hardcoded flow (which
        # also bit-reverses at the end).
        num_qubits, basis = 3, 5
        built = simulate(qft_circuit(num_qubits), precision=128,
                         initial_basis=basis)
        built = zkcm._bit_reverse_state(built, num_qubits)
        reference = zkcm.qft_state(num_qubits, basis, precision=128)
        for mine, theirs in zip(built, reference.state):
            assert abs(complex(mine) - complex(theirs)) < 1e-12

    def test_norm_preserved_through_long_circuit(self):
        circuit = Circuit(3)
        for _ in range(10):
            circuit.h(0).cnot(0, 1).phase(2, 3).cnot(1, 2).z(0)
        state = simulate(circuit, precision=160)
        assert sum(probabilities(state)) == pytest.approx(1.0, abs=1e-12)

    def test_initial_basis_out_of_range(self):
        with pytest.raises(MpnError):
            simulate(Circuit(2), initial_basis=4)


class TestMeasurement:
    def test_deterministic_state(self):
        state = simulate(Circuit(2).x(1), precision=96)
        outcomes = measure(state, shots=50, seed=1)
        assert outcomes == [(0b10, 50)]

    def test_bell_statistics(self):
        state = simulate(bell_pair(), precision=96)
        outcomes = dict(measure(state, shots=2000, seed=2))
        assert set(outcomes) <= {0b00, 0b11}
        assert abs(outcomes.get(0, 0) - 1000) < 150  # ~4 sigma

    def test_seed_reproducible(self):
        state = simulate(bell_pair(), precision=96)
        assert measure(state, 100, seed=3) == measure(state, 100, seed=3)
