"""Tests for exact LLL and integer-relation detection."""

import pytest

from repro.apps.expmath import (RelationResult, _round_mpq, lll_reduce,
                                minimal_polynomial)
from repro.mpf import MPF
from repro.mpq import MPQ
from repro.mpz import MPZ


def as_basis(rows):
    return [[MPZ(x) for x in row] for row in rows]


def norms(basis):
    return [sum(int(x) ** 2 for x in row) for row in basis]


class TestRounding:
    @pytest.mark.parametrize("num,den,expected", [
        (1, 2, 1), (-1, 2, 0), (3, 4, 1), (-3, 4, -1), (5, 1, 5),
        (7, 3, 2), (-7, 3, -2),
    ])
    def test_round_mpq(self, num, den, expected):
        assert int(_round_mpq(MPQ(num, den))) == expected


class TestLLL:
    def test_classic_2d(self):
        # The textbook example: heavily skewed 2D basis reduces to
        # something near-orthogonal with the same lattice.
        basis = as_basis([[1, 1], [0, 1000]])
        reduced = lll_reduce(basis)
        assert max(norms(reduced)) < 10 ** 6
        # Determinant (lattice volume) is preserved up to sign.
        det = int(reduced[0][0]) * int(reduced[1][1]) \
            - int(reduced[0][1]) * int(reduced[1][0])
        assert abs(det) == 1000

    def test_finds_short_vector(self):
        # Lattice containing (1, 0, 0) hidden behind large combos.
        basis = as_basis([[101, 100, 0], [100, 99, 0], [0, 0, 7]])
        reduced = lll_reduce(basis)
        shortest = min(norms(reduced))
        assert shortest <= 2

    def test_identity_is_fixed_point(self):
        basis = as_basis([[1, 0], [0, 1]])
        assert norms(lll_reduce(basis)) == [1, 1]


class TestMinimalPolynomial:
    def test_sqrt2(self):
        result = minimal_polynomial(MPF(2, 96).sqrt(), 2, 96)
        assert result.coefficients == [-2, 0, 1]
        assert result.residual_exponent < -80

    def test_golden_ratio(self):
        golden = (MPF(1, 96) + MPF(5, 96).sqrt()) / MPF(2, 96)
        result = minimal_polynomial(golden, 2, 96)
        assert result.coefficients == [-1, -1, 1]

    def test_rational_value(self):
        value = MPF.from_ratio(7, 3, 96)
        result = minimal_polynomial(value, 2, 96)
        # Any short lattice vector is a multiple of (3x - 7) — e.g.
        # x*(3x - 7) is equally short — so certify via the residual.
        assert any(result.coefficients)
        assert result.residual_exponent < -80
        # And the recovered relation must involve the value (not the
        # trivial constant-only vector).
        assert any(result.coefficients[1:])

    @pytest.mark.slow
    def test_quartic_sqrt2_plus_sqrt3(self):
        value = MPF(2, 128).sqrt() + MPF(3, 128).sqrt()
        result = minimal_polynomial(value, 4, 128)
        assert result.coefficients == [1, 0, -10, 0, 1]
        assert result.residual_exponent < -100

    def test_pretty_and_degree(self):
        result = RelationResult([-2, 0, 1], -90, 96)
        assert result.pretty() == "-2 + 1*x^2"
        assert result.degree == 2
        assert RelationResult([5, 0, 0], -90, 96).degree == 0
