"""Tests for the Paillier homomorphic-encryption extension workload."""

import random

import pytest

from repro.apps import he
from repro.apps.synthetic import he_trace
from repro.mpz import MPZ


@pytest.fixture(scope="module")
def key():
    return he.generate_keypair(192, seed=5)


class TestKeygen:
    def test_structure(self, key):
        assert key.bits == 192
        assert key.n_squared == key.n * key.n
        assert key.generator == key.n + 1

    def test_deterministic(self):
        a = he.generate_keypair(128, seed=9)
        b = he.generate_keypair(128, seed=9)
        assert a.n == b.n

    def test_odd_bits_rejected(self):
        with pytest.raises(ValueError):
            he.generate_keypair(129)


class TestEncryption:
    def test_round_trip(self, key):
        rng = random.Random(11)
        for _ in range(5):
            message = MPZ(rng.randrange(0, int(key.n)))
            assert he.decrypt(he.encrypt(message, key, rng), key) \
                == message

    def test_probabilistic(self, key):
        # Fresh randomness gives distinct ciphertexts for one message.
        rng = random.Random(12)
        message = MPZ(42)
        c1 = he.encrypt(message, key, rng)
        c2 = he.encrypt(message, key, rng)
        assert c1 != c2
        assert he.decrypt(c1, key) == he.decrypt(c2, key) == message

    def test_out_of_range_rejected(self, key):
        with pytest.raises(ValueError):
            he.encrypt(key.n + 1, key)


class TestHomomorphism:
    def test_additive(self, key):
        rng = random.Random(13)
        a = MPZ(rng.getrandbits(100))
        b = MPZ(rng.getrandbits(100))
        combined = he.add_encrypted(he.encrypt(a, key, rng),
                                    he.encrypt(b, key, rng), key)
        assert he.decrypt(combined, key) == (a + b) % key.n

    def test_scalar(self, key):
        rng = random.Random(14)
        message = MPZ(123456789)
        scaled = he.scale_encrypted(he.encrypt(message, key, rng),
                                    MPZ(7), key)
        assert he.decrypt(scaled, key) == (message * 7) % key.n

    def test_wraparound(self, key):
        # Sums reduce modulo n, like any residue arithmetic.
        rng = random.Random(15)
        near_max = key.n - 1
        doubled = he.add_encrypted(he.encrypt(near_max, key, rng),
                                   he.encrypt(near_max, key, rng), key)
        assert he.decrypt(doubled, key) == (near_max * 2) % key.n


class TestRunAndTrace:
    def test_run(self):
        result = he.run(bits=192, values=3, seed=4)
        assert result.ok

    def test_trace_is_powmod_dominated(self):
        _, trace = he.trace_run(bits=128, values=2, seed=4)
        names = trace.names()
        assert names.get("powmod", 0) >= 4

    def test_synthetic_trace_same_scale(self):
        from repro.platforms import cpu
        _, real = he.trace_run(bits=256, values=4, seed=4)
        synthetic_trace = he_trace(256, values=4)
        real_cost = cpu.price_trace(real).seconds
        synthetic_cost = cpu.price_trace(synthetic_trace).seconds
        assert 0.3 < synthetic_cost / real_cost < 3.0
