"""Validation of the synthetic trace generators against functional runs.

The Figure 13 benchmark uses synthetic traces for paper-scale operand
sizes; these tests pin the generators to reality at sizes where the
functional stack is affordable.
"""

import pytest

from repro.apps import frac, pi, rsa, synthetic, zkcm
from repro.platforms import cpu
from repro.runtime import mpapca


def priced_ratio(synthetic_trace, real_trace, pricer):
    return pricer(synthetic_trace).seconds / pricer(real_trace).seconds


class TestPiSynthetic:
    def test_op_counts_match_functional(self):
        _, real = pi.trace_run(1500)
        syn = synthetic.pi_trace(1500)
        real_names, syn_names = real.names(), syn.names()
        assert abs(syn_names["mul"] - real_names["mul"]) \
            < 0.1 * real_names["mul"]
        assert syn_names["sqrt"] == real_names["sqrt"] == 1

    def test_priced_cost_tracks_functional(self):
        _, real = pi.trace_run(3000)
        syn = synthetic.pi_trace(3000)
        for pricer in (cpu.price_trace, mpapca.price_trace):
            assert 0.6 < priced_ratio(syn, real, pricer) < 1.6

    def test_paper_scale_speedups_in_band(self):
        # Figure 13 Pi band: 5.82x-16.65x across the precision sweep.
        for digits in (10 ** 5, 10 ** 6, 10 ** 7):
            trace = synthetic.pi_trace(digits)
            speedup = (cpu.price_trace(trace).seconds
                       / mpapca.price_trace(trace).seconds)
            assert 4 < speedup < 20, digits


class TestRsaSynthetic:
    def test_speedup_preserved_despite_count_variance(self):
        # Prime-search candidate counts are stochastic in the real run;
        # the synthetic expectation may differ in totals but must
        # preserve the CPU/accelerator ratio.
        _, real = rsa.trace_run(512, messages=4)
        syn = synthetic.rsa_trace(512, messages=4)
        real_speedup = (cpu.price_trace(real).seconds
                        / mpapca.price_trace(real).seconds)
        syn_speedup = (cpu.price_trace(syn).seconds
                       / mpapca.price_trace(syn).seconds)
        assert syn_speedup == pytest.approx(real_speedup, rel=0.25)

    def test_speedup_grows_with_key_size(self):
        speedups = []
        for bits in (2048, 8192, 32768):
            trace = synthetic.rsa_trace(bits)
            speedups.append(cpu.price_trace(trace).seconds
                            / mpapca.price_trace(trace).seconds)
        assert speedups[0] < speedups[1] < speedups[2]
        assert speedups[2] > 50  # paper: up to 166x on large RSA


class TestFracSynthetic:
    def test_priced_cost_tracks_functional(self):
        _, real = frac.trace_run(40, 128)
        syn = synthetic.frac_trace(40, 128)
        for pricer in (cpu.price_trace, mpapca.price_trace):
            assert 0.7 < priced_ratio(syn, real, pricer) < 1.5

    def test_paper_scale_speedups_in_band(self):
        # Figure 13 Frac band: 6.71x-63.92x.
        for zoom, precision in ((2000, 8192), (10000, 40960),
                                (60000, 262144)):
            trace = synthetic.frac_trace(zoom, precision)
            speedup = (cpu.price_trace(trace).seconds
                       / mpapca.price_trace(trace).seconds)
            assert 6 < speedup < 70


class TestZkcmSynthetic:
    def test_priced_cost_same_scale_as_functional(self):
        _, real = zkcm.trace_run(3, 128)
        syn = synthetic.zkcm_trace(3, 128)
        for pricer in (cpu.price_trace, mpapca.price_trace):
            assert 0.3 < priced_ratio(syn, real, pricer) < 3.0

    def test_paper_scale_speedups_in_band(self):
        # Figure 13 zkcm band: 3.38x-34.97x.
        for precision in (8192, 32768, 131072):
            trace = synthetic.zkcm_trace(6, precision)
            speedup = (cpu.price_trace(trace).seconds
                       / mpapca.price_trace(trace).seconds)
            assert 3 < speedup < 120


class TestRegistry:
    def test_generators_cover_all_workloads(self):
        from repro.apps import WORKLOADS
        # Every paper workload has a generator; extensions (HE) may add
        # more.
        assert set(WORKLOADS) <= set(synthetic.GENERATORS)
