"""Arbitrary-precision binary floats (GMP MPF / MPFR equivalent).

``MPF`` is the number type; :mod:`repro.mpf.transcendental` adds the
MPFR-style high-level functions (AGM pi, exp/ln by Newton, trig by
argument reduction + Taylor).
"""

from repro.mpf.floatnum import GUARD_BITS, MPF
from repro.mpf import transcendental

__all__ = ["GUARD_BITS", "MPF", "transcendental"]
