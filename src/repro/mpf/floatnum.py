"""Arbitrary-precision binary floating point (GMP MPF / MPFR-lite).

Figure 1's "Reals (GMP MPF)" layer: a float is ``sign * mantissa * 2**exponent``
with the mantissa kept to a per-value precision (in bits).  High-level
functions in the paper (division, square root, transcendentals) are
"decomposed to naturals ... performed with Karatsuba's algorithms"
(Section II-A); here too every mantissa operation routes through the
profiled :mod:`repro.mpn` kernels, so an application built on ``MPF``
produces exactly the operator trace the platform cost models price.

Rounding is truncation toward zero; callers that need N correct digits
carry guard bits (as the Pi application does), which is also how the
paper's binary-splitting pipeline manages error.
"""

from __future__ import annotations

from typing import Tuple, Union

from repro import mpn
from repro.mpn.nat import MpnError, Nat
from repro.mpz import MPZ
from repro.profiling import kernel

_Scalar = Union["MPF", MPZ, int]

#: Guard bits carried by division and square root beyond the target precision.
GUARD_BITS = 32


class MPF:
    """An immutable arbitrary-precision binary float.

    Attributes
    ----------
    precision:
        Mantissa budget in bits.  Binary operations produce results at
        the larger of the two operands' precisions.
    """

    __slots__ = ("_sign", "_mant", "_exp", "precision")

    def __init__(self, value: Union[int, MPZ, "MPF"] = 0,
                 precision: int = 128) -> None:
        if precision < 4:
            raise MpnError("MPF precision must be at least 4 bits")
        if isinstance(value, MPF):
            self._sign, self._mant, self._exp = (
                value._sign, value._mant, value._exp)
            self.precision = precision
            self._normalize_in_place()
            return
        as_int = int(value)
        self._sign = -1 if as_int < 0 else 1
        self._mant = mpn.nat_from_int(abs(as_int))
        self._exp = 0
        self.precision = precision
        self._normalize_in_place()

    # -- internal ---------------------------------------------------------

    @classmethod
    def _raw(cls, sign: int, mant: Nat, exp: int, precision: int) -> "MPF":
        instance = object.__new__(cls)
        instance._sign = 1 if mpn.is_zero(mant) else sign
        instance._mant = mant
        instance._exp = exp if mant else 0
        instance.precision = precision
        instance._normalize_in_place()
        return instance

    def _normalize_in_place(self) -> None:
        """Truncate the mantissa to the precision budget."""
        excess = mpn.bit_length(self._mant) - self.precision
        if excess > 0:
            self._mant = mpn.shr(self._mant, excess)
            self._exp += excess
        if mpn.is_zero(self._mant):
            self._sign = 1
            self._exp = 0

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_ratio(cls, numerator: Union[int, MPZ],
                   denominator: Union[int, MPZ], precision: int) -> "MPF":
        """The float nearest (truncated) to numerator/denominator."""
        num = numerator if isinstance(numerator, MPZ) else MPZ(numerator)
        den = denominator if isinstance(denominator, MPZ) else MPZ(denominator)
        if not den:
            raise ZeroDivisionError("MPF.from_ratio denominator is zero")
        sign = num.sign * den.sign
        shift = (precision + GUARD_BITS
                 + max(0, abs(den).bit_length() - abs(num).bit_length()))
        scaled = abs(num) << shift
        quotient = scaled // abs(den)
        return cls._raw(sign if sign else 1, quotient.limbs, -shift,
                        precision)

    # -- inspection ---------------------------------------------------------

    @property
    def sign(self) -> int:
        """-1, 0 or +1."""
        if mpn.is_zero(self._mant):
            return 0
        return self._sign

    @property
    def exponent_of_top_bit(self) -> int:
        """floor(log2(|x|)); undefined (raises) for zero."""
        if not self:
            raise MpnError("log2 of zero")
        return self._exp + mpn.bit_length(self._mant) - 1

    def __bool__(self) -> bool:
        return not mpn.is_zero(self._mant)

    def __repr__(self) -> str:
        return "MPF(%s, precision=%d)" % (self.to_decimal_string(12),
                                          self.precision)

    def __float__(self) -> float:
        bits = mpn.bit_length(self._mant)
        if bits == 0:
            return 0.0
        keep = min(bits, 53)
        top = mpn.nat_to_int(mpn.shr(self._mant, bits - keep))
        return float(self._sign * top) * 2.0 ** (self._exp + bits - keep)

    # -- comparisons ----------------------------------------------------------

    def _cmp(self, other: _Scalar) -> int:
        difference = self - _coerce(other, self.precision)
        return difference.sign

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, (MPF, MPZ, int)):
            return NotImplemented
        return self._cmp(other) == 0

    def __lt__(self, other: _Scalar) -> bool:
        return self._cmp(other) < 0

    def __le__(self, other: _Scalar) -> bool:
        return self._cmp(other) <= 0

    def __gt__(self, other: _Scalar) -> bool:
        return self._cmp(other) > 0

    def __ge__(self, other: _Scalar) -> bool:
        return self._cmp(other) >= 0

    def __hash__(self) -> int:
        return hash((self.sign, tuple(self._mant), self._exp))

    # -- arithmetic -------------------------------------------------------------

    def __neg__(self) -> "MPF":
        return MPF._raw(-self._sign, self._mant, self._exp, self.precision)

    def __abs__(self) -> "MPF":
        return MPF._raw(1, self._mant, self._exp, self.precision)

    def __add__(self, other: _Scalar) -> "MPF":
        other = _coerce(other, self.precision)
        precision = max(self.precision, other.precision)
        if not self:
            return MPF(other, precision)
        if not other:
            return MPF(self, precision)
        # Align the two mantissas at the smaller exponent.
        low_exp = min(self._exp, other._exp)
        # Cap alignment: bits further than precision + guard below the
        # larger operand's top cannot affect the truncated result.
        top = max(self.exponent_of_top_bit, other.exponent_of_top_bit)
        floor_exp = top - (precision + GUARD_BITS)
        low_exp = max(low_exp, floor_exp)
        mant_a = _align(self, low_exp)
        mant_b = _align(other, low_exp)
        with kernel("highlevel", 1):
            same_sign = self._sign == other._sign
        if same_sign:
            return MPF._raw(self._sign, mpn.add(mant_a, mant_b), low_exp,
                            precision)
        order = mpn.cmp(mant_a, mant_b)
        if order == 0:
            return MPF(0, precision)
        if order > 0:
            return MPF._raw(self._sign, mpn.sub(mant_a, mant_b), low_exp,
                            precision)
        return MPF._raw(other._sign, mpn.sub(mant_b, mant_a), low_exp,
                        precision)

    __radd__ = __add__

    def __sub__(self, other: _Scalar) -> "MPF":
        return self + (-_coerce(other, self.precision))

    def __rsub__(self, other: _Scalar) -> "MPF":
        return _coerce(other, self.precision) + (-self)

    def __mul__(self, other: _Scalar) -> "MPF":
        other = _coerce(other, self.precision)
        precision = max(self.precision, other.precision)
        return MPF._raw(self._sign * other._sign,
                        mpn.mul(self._mant, other._mant),
                        self._exp + other._exp, precision)

    __rmul__ = __mul__

    def __truediv__(self, other: _Scalar) -> "MPF":
        other = _coerce(other, self.precision)
        if not other:
            raise ZeroDivisionError("MPF division by zero")
        precision = max(self.precision, other.precision)
        if not self:
            return MPF(0, precision)
        # Scale so the quotient carries precision + guard significant
        # bits regardless of the operands' mantissa lengths.
        shift = (precision + GUARD_BITS
                 + max(0, mpn.bit_length(other._mant)
                       - mpn.bit_length(self._mant)))
        scaled = mpn.shl(self._mant, shift)
        quotient, _ = mpn.divmod_nat(scaled, other._mant)
        return MPF._raw(self._sign * other._sign, quotient,
                        self._exp - other._exp - shift, precision)

    def __rtruediv__(self, other: _Scalar) -> "MPF":
        return _coerce(other, self.precision) / self

    def sqrt(self) -> "MPF":
        """Square root at this value's precision (truncated)."""
        if self.sign < 0:
            raise MpnError("sqrt of a negative float")
        if not self:
            return MPF(0, self.precision)
        # Scale mantissa so the result carries precision + guard bits and
        # the exponent stays even.
        shift = 2 * (self.precision + GUARD_BITS)
        exp = self._exp - shift
        mant = mpn.shl(self._mant, shift)
        if exp % 2:
            mant = mpn.shl(mant, 1)
            exp -= 1
        root = mpn.isqrt(mant)
        return MPF._raw(1, root, exp // 2, self.precision)

    # -- conversions -----------------------------------------------------------

    def trunc_mpz(self) -> MPZ:
        """Truncate toward zero, as an integer."""
        if self._exp >= 0:
            return MPZ.from_limbs(mpn.shl(self._mant, self._exp),
                                  self._sign)
        return MPZ.from_limbs(mpn.shr(self._mant, -self._exp),
                              self._sign)

    def ceil_mpz(self) -> MPZ:
        """Ceiling toward positive infinity, as an integer."""
        return -((-self).floor_mpz())

    def round_mpz(self) -> MPZ:
        """Round half away from zero, as an integer."""
        half = MPF.from_ratio(1, 2, self.precision)
        if self.sign >= 0:
            return (self + half).floor_mpz()
        return (self - half).ceil_mpz()

    def to_fraction_parts(self) -> tuple[MPZ, int]:
        """(mantissa, exponent) with value = mantissa * 2**exponent.

        The exact dyadic decomposition (frexp flavor); exponent may be
        negative.
        """
        return MPZ.from_limbs(self._mant, self._sign), self._exp

    def ldexp(self, exponent: int) -> "MPF":
        """value * 2**exponent, exactly."""
        return MPF._raw(self._sign, self._mant, self._exp + exponent,
                        self.precision)

    def floor_mpz(self) -> MPZ:
        """Floor toward negative infinity, as an integer."""
        if self._exp >= 0:
            magnitude = mpn.shl(self._mant, self._exp)
            return MPZ.from_limbs(magnitude, self._sign)
        truncated = mpn.shr(self._mant, -self._exp)
        value = MPZ.from_limbs(truncated, self._sign)
        if self._sign < 0 and not mpn.is_zero(
                _low_part(self._mant, -self._exp)):
            value = value - 1
        return value

    def to_decimal_string(self, digits: int) -> str:
        """Decimal rendering with ``digits`` digits after the point.

        The conversion runs on the library's own divide-and-conquer
        radix kernels, so even million-digit output never touches the
        interpreter's int->str path (or its 4300-digit cap).
        """
        scale = MPZ(10) ** MPZ(digits)
        scaled_value = (MPF(self, self.precision + 16) *
                        MPF(scale, self.precision + 16))
        as_int = scaled_value.floor_mpz()
        negative = as_int.sign < 0
        text = abs(as_int).to_decimal().rjust(digits + 1, "0")
        integral, fractional = text[:-digits] or "0", text[-digits:]
        rendered = integral + ("." + fractional if digits else "")
        return "-" + rendered if negative else rendered


def _align(value: MPF, target_exp: int) -> Nat:
    """Mantissa of ``value`` re-expressed at exponent ``target_exp``."""
    delta = value._exp - target_exp
    if delta == 0:
        return value._mant
    if delta > 0:
        return mpn.shl(value._mant, delta)
    return mpn.shr(value._mant, -delta)


def _low_part(mant: Nat, count: int) -> Nat:
    """The bits of ``mant`` below position ``count`` (fraction detector)."""
    from repro.mpn import nat as _nat
    return _nat.low_bits(mant, count)


def _coerce(value: _Scalar, precision: int) -> MPF:
    if isinstance(value, MPF):
        return value
    if isinstance(value, (int, MPZ)):
        return MPF(value, precision)
    raise TypeError("cannot coerce %r to MPF" % (value,))
