"""Transcendental functions over MPF (the MPFR layer of Figure 1).

The paper's stack tops out with "high-level functions with error
analysis, e.g. transcendental", decomposed to the naturals kernels "via
iterative methods or divide-and-conquer methods, such as
Newton-Raphson, AGM, and binary-splitting" (Section II-A).  This module
implements exactly those decompositions:

* ``pi_agm``      — Salamin-Brent arithmetic-geometric mean (quadratic
                    convergence, all sqrt/mul work);
* ``ln`` / ``ln2`` — AGM-seeded Newton iteration on ``exp``;
* ``exp``         — scaling-and-squaring around a Taylor core;
* ``sin`` / ``cos`` / ``atan`` — argument reduction + Taylor.

All functions take a target precision and carry guard bits internally;
results are truncated MPFs at the caller's precision.  Like everything
above the mpn layer, every operation lands on the profiled kernels, so
transcendental-heavy workloads price correctly on the platform models.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.mpf.floatnum import MPF
from repro.mpn.nat import MpnError

#: Guard bits carried by the iterative algorithms.
GUARD = 48

_PI_CACHE: Dict[int, MPF] = {}
_LN2_CACHE: Dict[int, MPF] = {}


def pi_agm(precision: int) -> MPF:
    """pi by the Salamin-Brent AGM iteration (quadratic convergence)."""
    if precision in _PI_CACHE:
        return _PI_CACHE[precision]
    work = precision + GUARD
    a = MPF(1, work)
    b = MPF(1, work) / MPF(2, work).sqrt()
    t = MPF.from_ratio(1, 4, work)
    p = MPF(1, work)
    iterations = max(4, precision.bit_length() + 2)
    for _ in range(iterations):
        a_next = (a + b) / MPF(2, work)
        b = (a * b).sqrt()
        delta = a - a_next
        t = t - p * delta * delta
        p = p + p
        a = a_next
    result = MPF((a + b) * (a + b) / (t * MPF(4, work)), precision)
    _PI_CACHE[precision] = result
    return result


def exp(x: MPF, precision: int) -> MPF:
    """e**x by scaling-and-squaring around a Taylor core."""
    work = precision + GUARD
    value = MPF(x, work)
    if not value:
        return MPF(1, precision)
    # Scale the argument below 2^-8 so the Taylor series converges in
    # ~precision/8 terms, then square back up.
    squarings = max(0, value.exponent_of_top_bit + 9)
    scaled = value
    for _ in range(squarings):
        scaled = scaled / MPF(2, work)
    total = MPF(1, work)
    term = MPF(1, work)
    for k in range(1, work):
        term = term * scaled / MPF(k, work)
        total = total + term
        if term.sign >= 0 and _negligible(term, work):
            break
        if term.sign < 0 and _negligible(-term, work):
            break
    for _ in range(squarings):
        total = total * total
    return MPF(total, precision)


def _negligible(value: MPF, work_bits: int) -> bool:
    """|value| < 2^-work (series truncation test)."""
    if not value:
        return True
    return value.exponent_of_top_bit < -work_bits


def ln(x: MPF, precision: int) -> MPF:
    """Natural log by Newton iteration on exp: y += x*exp(-y) - 1."""
    if x.sign <= 0:
        raise MpnError("ln of a non-positive value")
    work = precision + GUARD
    value = MPF(x, work)
    # Seed from the binary exponent: ln(x) ~ e * ln2 for x ~ 2^e.
    exponent = value.exponent_of_top_bit
    seed = ln2(work) * MPF(exponent, work) if exponent else MPF(0, work)
    y = seed
    iterations = max(5, precision.bit_length() + 2)
    one = MPF(1, work)
    for _ in range(iterations):
        correction = value * exp(-y, work) - one
        y = y + correction
        if _negligible(abs(correction), precision):
            break
    return MPF(y, precision)


def ln2(precision: int) -> MPF:
    """ln(2), by the fast atanh series ln2 = 2*atanh(1/3)."""
    if precision in _LN2_CACHE:
        return _LN2_CACHE[precision]
    work = precision + GUARD
    # atanh(1/3) = sum_{k>=0} (1/3)^(2k+1) / (2k+1)
    third = MPF.from_ratio(1, 3, work)
    ninth = third * third
    term = third
    total = MPF(0, work)
    k = 0
    while not _negligible(term, work):
        total = total + term / MPF(2 * k + 1, work)
        term = term * ninth
        k += 1
    result = MPF(total + total, precision)
    _LN2_CACHE[precision] = result
    return result


def cos_sin(x: MPF, precision: int) -> Tuple[MPF, MPF]:
    """(cos x, sin x) with argument reduction modulo 2*pi."""
    work = precision + GUARD
    value = MPF(x, work)
    two_pi = pi_agm(work) * MPF(2, work)
    # Range-reduce into [-pi, pi] by subtracting floor(x/2pi)*2pi.
    turns = (value / two_pi).floor_mpz()
    value = value - two_pi * MPF(turns, work)
    if value > pi_agm(work):
        value = value - two_pi

    cos_acc = MPF(1, work)
    sin_acc = MPF(value, work)
    cos_term = MPF(1, work)
    sin_term = MPF(value, work)
    x2 = value * value
    for k in range(1, work):
        cos_term = cos_term * x2 / MPF((2 * k - 1) * (2 * k), work)
        sin_term = sin_term * x2 / MPF((2 * k) * (2 * k + 1), work)
        sign = -1 if k % 2 else 1
        cos_acc = cos_acc + cos_term * sign
        sin_acc = sin_acc + sin_term * sign
        if _negligible(cos_term, work) and _negligible(sin_term, work):
            break
    return MPF(cos_acc, precision), MPF(sin_acc, precision)


def cos(x: MPF, precision: int) -> MPF:
    """cos x."""
    return cos_sin(x, precision)[0]


def sin(x: MPF, precision: int) -> MPF:
    """sin x."""
    return cos_sin(x, precision)[1]


def power(base: MPF, exponent: MPF, precision: int) -> MPF:
    """base**exponent = exp(exponent * ln(base)) for base > 0."""
    if base.sign <= 0:
        raise MpnError("power needs a positive base")
    work = precision + GUARD
    return MPF(exp(MPF(exponent, work) * ln(MPF(base, work), work),
                   work), precision)


def log10(x: MPF, precision: int) -> MPF:
    """Base-10 logarithm: ln(x) / ln(10)."""
    work = precision + GUARD
    ln10 = ln(MPF(10, work), work)
    return MPF(ln(MPF(x, work), work) / ln10, precision)


def atan(x: MPF, precision: int) -> MPF:
    """arctan by argument halving + Taylor.

    atan(x) = 2*atan(x / (1 + sqrt(1 + x^2))) halves the argument; a few
    halvings bring |x| under 1/8 where the series converges quickly.
    """
    work = precision + GUARD
    value = MPF(x, work)
    negative = value.sign < 0
    if negative:
        value = -value
    halvings = 0
    one = MPF(1, work)
    eighth = MPF.from_ratio(1, 8, work)
    while value > eighth and halvings < work:
        value = value / (one + (one + value * value).sqrt())
        halvings += 1
    # Taylor: atan(v) = v - v^3/3 + v^5/5 - ...
    term = MPF(value, work)
    v2 = value * value
    total = MPF(0, work)
    k = 0
    while not _negligible(term, work):
        total = total + term / MPF(2 * k + 1, work) * (-1 if k % 2 else 1)
        term = term * v2
        k += 1
    for _ in range(halvings):
        total = total + total
    result = MPF(total, precision)
    return -result if negative else result
