"""Signed arbitrary-precision integers (GMP MPZ equivalent).

The integers layer adds sign handling on top of the naturals kernel
(Figure 1's "Integers (GMP MPZ)" box).  Following the paper's Section
V-C, negatives use sign-magnitude — not two's complement — "to avoid the
additional costs on computing with sign-extended leading 1s"; the sign
logic itself is host-CPU work with negligible cost, which the profiler
records under the ``highlevel`` class.

``MPZ`` is immutable and supports the usual operator protocol, so
application code reads like ordinary arithmetic while every magnitude
operation routes through the profiled :mod:`repro.mpn` kernels.
"""

from __future__ import annotations

from typing import Tuple, Union

from repro import mpn
from repro.mpn.nat import MpnError, Nat
from repro.profiling import kernel

_Operand = Union["MPZ", int]


class MPZ:
    """An immutable signed arbitrary-precision integer."""

    __slots__ = ("_sign", "_mag")

    def __init__(self, value: Union[int, "MPZ"] = 0) -> None:
        if isinstance(value, MPZ):
            self._sign = value._sign
            self._mag = value._mag
            return
        self._sign = -1 if value < 0 else 1
        self._mag = mpn.nat_from_int(abs(value))

    # -- construction helpers ------------------------------------------

    @classmethod
    def _raw(cls, sign: int, mag: Nat) -> "MPZ":
        instance = object.__new__(cls)
        instance._sign = 1 if mpn.is_zero(mag) else sign
        instance._mag = mag
        return instance

    @classmethod
    def from_limbs(cls, mag: Nat, sign: int = 1) -> "MPZ":
        """Wrap an mpn limb list (no copy) as an integer."""
        return cls._raw(sign, mpn.normalize(list(mag)))

    # -- conversions ----------------------------------------------------

    def __int__(self) -> int:
        return self._sign * mpn.nat_to_int(self._mag)

    def __index__(self) -> int:
        return int(self)

    def __float__(self) -> float:
        return float(int(self))

    def __bool__(self) -> bool:
        return not mpn.is_zero(self._mag)

    def __repr__(self) -> str:
        return "MPZ(%d)" % int(self)

    def __hash__(self) -> int:
        return hash(int(self))

    @property
    def limbs(self) -> Nat:
        """The underlying magnitude limbs (little-endian, read-only use)."""
        return self._mag

    @property
    def sign(self) -> int:
        """-1, 0 or +1."""
        if mpn.is_zero(self._mag):
            return 0
        return self._sign

    def bit_length(self) -> int:
        """Significant bits of the magnitude."""
        return mpn.bit_length(self._mag)

    # -- comparisons ------------------------------------------------------

    def _cmp(self, other: _Operand) -> int:
        other = _coerce(other)
        if self.sign != other.sign:
            return -1 if self.sign < other.sign else 1
        magnitude_order = mpn.cmp(self._mag, other._mag)
        return magnitude_order if self._sign > 0 else -magnitude_order

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, (MPZ, int)):
            return NotImplemented
        return self._cmp(other) == 0

    def __lt__(self, other: _Operand) -> bool:
        return self._cmp(other) < 0

    def __le__(self, other: _Operand) -> bool:
        return self._cmp(other) <= 0

    def __gt__(self, other: _Operand) -> bool:
        return self._cmp(other) > 0

    def __ge__(self, other: _Operand) -> bool:
        return self._cmp(other) >= 0

    # -- arithmetic -------------------------------------------------------

    def __neg__(self) -> "MPZ":
        return MPZ._raw(-self._sign, self._mag)

    def __abs__(self) -> "MPZ":
        return MPZ._raw(1, self._mag)

    def __add__(self, other: _Operand) -> "MPZ":
        other = _coerce(other)
        if self._sign == other._sign:
            return MPZ._raw(self._sign, mpn.add(self._mag, other._mag))
        with kernel("highlevel", 1):
            order = mpn.cmp(self._mag, other._mag)
        if order == 0:
            return MPZ._raw(1, [])
        if order > 0:
            return MPZ._raw(self._sign, mpn.sub(self._mag, other._mag))
        return MPZ._raw(other._sign, mpn.sub(other._mag, self._mag))

    __radd__ = __add__

    def __sub__(self, other: _Operand) -> "MPZ":
        return self + (-_coerce(other))

    def __rsub__(self, other: _Operand) -> "MPZ":
        return _coerce(other) + (-self)

    def __mul__(self, other: _Operand) -> "MPZ":
        other = _coerce(other)
        return MPZ._raw(self._sign * other._sign,
                        mpn.mul(self._mag, other._mag))

    __rmul__ = __mul__

    def __divmod__(self, other: _Operand) -> Tuple["MPZ", "MPZ"]:
        """Floor division with remainder (Python semantics)."""
        other = _coerce(other)
        if not other:
            raise ZeroDivisionError("MPZ division by zero")
        quotient_mag, remainder_mag = mpn.divmod_nat(self._mag, other._mag)
        quotient = MPZ._raw(self._sign * other._sign, quotient_mag)
        remainder = MPZ._raw(self._sign, remainder_mag)
        if remainder and self._sign * other._sign < 0:
            quotient = quotient - 1
            remainder = remainder + other
        return quotient, remainder

    def __floordiv__(self, other: _Operand) -> "MPZ":
        return divmod(self, other)[0]

    def __rfloordiv__(self, other: _Operand) -> "MPZ":
        return _coerce(other) // self

    def __mod__(self, other: _Operand) -> "MPZ":
        return divmod(self, other)[1]

    def __rmod__(self, other: _Operand) -> "MPZ":
        return _coerce(other) % self

    def __lshift__(self, count: int) -> "MPZ":
        return MPZ._raw(self._sign, mpn.shl(self._mag, count))

    def __rshift__(self, count: int) -> "MPZ":
        if self._sign < 0:
            # Floor semantics for negatives: -((-x + 2^c - 1) >> c).
            rounded = mpn.add(self._mag,
                              mpn.nat_from_int((1 << count) - 1))
            return MPZ._raw(-1, mpn.shr(rounded, count))
        return MPZ._raw(1, mpn.shr(self._mag, count))

    def __pow__(self, exponent: _Operand,
                modulus: _Operand | None = None) -> "MPZ":
        exponent = _coerce(exponent)
        if exponent.sign < 0:
            raise MpnError("negative exponents are not integers")
        if modulus is not None:
            modulus = _coerce(modulus)
            if self.sign < 0:
                base = self % modulus
            else:
                base = self
            result = mpn.powmod(base._mag, exponent._mag, abs(modulus)._mag)
            return MPZ._raw(1, result)
        result = MPZ(1)
        base = self
        for index in range(exponent.bit_length()):
            if mpn.get_bit(exponent._mag, index):
                result = result * base
            if index + 1 < exponent.bit_length():
                base = base * base
        return result

    # -- number-theoretic helpers ----------------------------------------

    def gcd(self, other: _Operand) -> "MPZ":
        """Greatest common divisor of the absolute values."""
        other = _coerce(other)
        return MPZ._raw(1, mpn.gcd(self._mag, other._mag))

    def invmod(self, modulus: _Operand) -> "MPZ":
        """Modular inverse (raises MpnError when not invertible)."""
        modulus = _coerce(modulus)
        value = self % modulus
        return MPZ._raw(1, mpn.invmod(value._mag, modulus._mag))

    def isqrt(self) -> "MPZ":
        """Floor square root (magnitude must be non-negative)."""
        if self._sign < 0 and self:
            raise MpnError("isqrt of a negative integer")
        return MPZ._raw(1, mpn.isqrt(self._mag))

    def iroot(self, k: int) -> "MPZ":
        """Floor k-th root (odd k allows negative values)."""
        if self._sign < 0 and self:
            if k % 2 == 0:
                raise MpnError("even root of a negative integer")
            return -((-self).iroot(k))
        return MPZ._raw(1, mpn.iroot(self._mag, k))

    # -- serialization (GMP mpz_import/mpz_export) ---------------------------

    def to_bytes(self, byteorder: str = "little") -> bytes:
        """Magnitude as bytes (GMP mpz_export); sign handled by caller.

        Built limb-by-limb from our own representation — no Python
        int.to_bytes on the full magnitude.
        """
        if byteorder not in ("little", "big"):
            raise ValueError("byteorder must be 'little' or 'big'")
        raw = bytearray()
        for limb in self._mag:
            raw += limb.to_bytes(4, "little")  # one machine word
        while raw and raw[-1] == 0:
            raw.pop()
        if byteorder == "big":
            raw.reverse()
        return bytes(raw) or b"\x00"

    @classmethod
    def from_bytes(cls, data: bytes, byteorder: str = "little",
                   sign: int = 1) -> "MPZ":
        """Rebuild from bytes (GMP mpz_import)."""
        if byteorder not in ("little", "big"):
            raise ValueError("byteorder must be 'little' or 'big'")
        raw = bytearray(data)
        if byteorder == "big":
            raw.reverse()
        limbs = []
        for offset in range(0, len(raw), 4):
            word = bytes(raw[offset:offset + 4]).ljust(4, b"\x00")
            limbs.append(int.from_bytes(word, "little"))
        return cls._raw(sign, mpn.normalize(limbs))

    # -- bitwise operations (non-negative operands, like mpn) ---------------

    def popcount(self) -> int:
        """Number of set bits (requires a non-negative value)."""
        self._require_non_negative("popcount")
        return mpn._nat.popcount(self._mag)

    def hamming_distance(self, other: "MPZ") -> int:
        """Set bits of the XOR (both operands non-negative)."""
        self._require_non_negative("hamming_distance")
        other._require_non_negative("hamming_distance")
        return mpn._nat.hamming_distance(self._mag, other._mag)

    def __and__(self, other: _Operand) -> "MPZ":
        other = _coerce(other)
        self._require_non_negative("&")
        other._require_non_negative("&")
        return MPZ._raw(1, mpn._nat.and_(self._mag, other._mag))

    def __or__(self, other: _Operand) -> "MPZ":
        other = _coerce(other)
        self._require_non_negative("|")
        other._require_non_negative("|")
        return MPZ._raw(1, mpn._nat.or_(self._mag, other._mag))

    def __xor__(self, other: _Operand) -> "MPZ":
        other = _coerce(other)
        self._require_non_negative("^")
        other._require_non_negative("^")
        return MPZ._raw(1, mpn._nat.xor_(self._mag, other._mag))

    def _require_non_negative(self, operation: str) -> None:
        if self._sign < 0 and self:
            raise MpnError("%s requires non-negative operands"
                           % operation)

    # -- radix conversion ---------------------------------------------------

    def to_decimal(self) -> str:
        """Decimal string via divide-and-conquer on our own kernels.

        O(M(n) log n) like GMP's mpz_get_str — no interpreter int->str
        shortcut anywhere in the path.
        """
        from repro.mpn.radix import to_decimal
        text = to_decimal(self._mag, mpn._unprofiled_mul)
        return "-" + text if self.sign < 0 else text

    @classmethod
    def from_decimal(cls, text: str) -> "MPZ":
        """Parse a decimal string (divide-and-conquer set_str)."""
        from repro.mpn.radix import from_decimal
        text = text.strip()
        negative = text.startswith("-")
        magnitude = from_decimal(text.lstrip("+-"), mpn._unprofiled_mul)
        return cls._raw(-1 if negative else 1, magnitude)


def _coerce(value: _Operand) -> MPZ:
    if isinstance(value, MPZ):
        return value
    if isinstance(value, int):
        return MPZ(value)
    raise TypeError("cannot coerce %r to MPZ" % (value,))
