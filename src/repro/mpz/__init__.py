"""Signed arbitrary-precision integers (GMP MPZ equivalent), plus the
number-theoretic extras (factorial, binomial, Fibonacci, primorial,
Lucas-Lehmer) built on them."""

from repro.mpz.integer import MPZ
from repro.mpz import number_theory

__all__ = ["MPZ", "number_theory"]
