"""Number-theoretic functions over MPZ (GMP's mpz_* extras).

Part of the "algebras for number theories" block at the top of Figure
1: factorials and binomials by binary splitting (the same
divide-and-conquer that powers the Pi application), Fibonacci/Lucas by
fast doubling, primorials, and a Lucas-Lehmer Mersenne-prime test —
all of them multiplication-dominated APC workloads in their own right.
"""

from __future__ import annotations

from typing import Tuple

from repro.mpz.integer import MPZ


def factorial(n: int) -> MPZ:
    """n! by binary splitting of the product tree (O(M(n log n)))."""
    if n < 0:
        raise ValueError("factorial of a negative integer")

    def product(low: int, high: int) -> MPZ:
        if high - low <= 4:
            total = MPZ(low)
            for value in range(low + 1, high + 1):
                total = total * value
            return total
        mid = (low + high) // 2
        return product(low, mid) * product(mid + 1, high)

    return MPZ(1) if n < 2 else product(2, n)


def binomial(n: int, k: int) -> MPZ:
    """Binomial coefficient by factored product (exact division)."""
    if k < 0 or k > n:
        return MPZ(0)
    k = min(k, n - k)
    if k == 0:
        return MPZ(1)
    numerator = MPZ(1)
    for value in range(n - k + 1, n + 1):
        numerator = numerator * value
    return numerator // factorial(k)


def fibonacci(n: int) -> MPZ:
    """F(n) by fast doubling: two squarings per bit of n."""
    if n < 0:
        raise ValueError("negative Fibonacci index")
    return _fib_pair(n)[0]


def lucas(n: int) -> MPZ:
    """L(n) = F(n-1) + F(n+1)."""
    if n == 0:
        return MPZ(2)
    f_n, f_next = _fib_pair(n)
    return (f_next + f_next) - f_n


def _fib_pair(n: int) -> Tuple[MPZ, MPZ]:
    """(F(n), F(n+1)) by the doubling identities."""
    if n == 0:
        return MPZ(0), MPZ(1)
    f, g = _fib_pair(n // 2)
    # F(2k) = F(k) * (2*F(k+1) - F(k)); F(2k+1) = F(k)^2 + F(k+1)^2
    doubled = f * ((g + g) - f)
    squared = f * f + g * g
    if n % 2:
        return squared, doubled + squared
    return doubled, squared


def primorial(n: int) -> MPZ:
    """Product of all primes <= n (sieve + binary-split product)."""
    if n < 2:
        return MPZ(1)
    sieve = bytearray([1]) * (n + 1)
    sieve[0:2] = b"\x00\x00"
    for p in range(2, int(n ** 0.5) + 1):
        if sieve[p]:
            sieve[p * p::p] = b"\x00" * len(sieve[p * p::p])
    primes = [p for p in range(2, n + 1) if sieve[p]]

    def product(values) -> MPZ:
        if len(values) == 1:
            return MPZ(values[0])
        mid = len(values) // 2
        return product(values[:mid]) * product(values[mid:])

    return product(primes)


def lucas_lehmer(p: int) -> bool:
    """Lucas-Lehmer primality of the Mersenne number 2^p - 1.

    The classic APC stress test: p-2 iterations of ``s = s^2 - 2`` with
    a cheap reduction modulo 2^p - 1 (fold high bits onto low).
    """
    if p == 2:
        return True
    if p < 2 or not _is_small_prime(p):
        return False
    mersenne = (MPZ(1) << p) - 1
    s = MPZ(4)
    for _ in range(p - 2):
        s = s * s - 2
        # Fast reduction: x mod (2^p - 1) = (x >> p) + (x & (2^p - 1)).
        while s.bit_length() > p:
            s = (s >> p) + (s - ((s >> p) << p))
        if s == mersenne:
            s = MPZ(0)
    return not s


def _is_small_prime(n: int) -> bool:
    if n < 2:
        return False
    divisor = 2
    while divisor * divisor <= n:
        if n % divisor == 0:
            return False
        divisor += 1
    return True
