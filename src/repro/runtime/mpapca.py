"""MPApca: the Cambricon-P runtime library (Section V-C).

MPApca realizes the essential operators — addition, subtraction,
multiplication, bit-shifts — plus high-level operators (division,
square root, Montgomery reduction, inner products) on the accelerator,
while the host CPU handles signs, exponents and control.  Like GMP it
selects fast multiply algorithms at runtime by comparing operand
bitwidths to tuned thresholds; because the hardware multiplies up to
35,904 bits monolithically, the fast-algorithm ranges are delayed and
the schoolbook basecase disappears entirely (Section VII-B).

Two services are provided:

* :class:`MPApca` — a functional runtime: operators execute on the
  :class:`~repro.core.accelerator.CambriconP` simulator (or the
  equivalent mpn kernels under the MPApca policy) while modeled time
  and energy accumulate on the instance.
* :func:`price_trace` — prices a recorded operation trace, so an
  application run once on the software stack can be costed on
  Cambricon-P exactly as the paper overrides GMP operators with MPApca
  and collects simulator time/energy.

The multiply timing model mirrors MPApca's own algorithm selection:
monolithic below 35,904 bits, then Karatsuba / Toom-3/4/6 recursions
whose leaves are monolithic hardware multiplies, then SSA *with
power-of-two padding* — MPApca "always pads the bitwidth of inputs to
the next 2^k", producing the zigzag of Figure 11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.core.accelerator import CambriconP
from repro.core.energy import LLC_ENERGY_PJ_PER_BIT, power_w
from repro.core.model import (DEFAULT_CONFIG, CambriconPConfig,
                              CambriconPModel, DISPATCH_CYCLES)
from repro.mpn import MPAPCA_POLICY, MpnError
from repro.mpn import nat as _nat
from repro.mpn.mul import mul as _raw_mul
from repro.mpn.nat import Nat
from repro.profiling import OperationTrace

_MODEL = CambriconPModel(DEFAULT_CONFIG)

#: MPApca fast-algorithm thresholds in bits (delayed relative to GMP
#: because the basecase is the 35,904-bit monolithic hardware multiply).
MONOLITHIC_MAX_BITS = DEFAULT_CONFIG.monolithic_max_bits
TOOM3_BITS = 3 * MONOLITHIC_MAX_BITS
TOOM4_BITS = 8 * MONOLITHIC_MAX_BITS
TOOM6_BITS = 18 * MONOLITHIC_MAX_BITS
SSA_BITS = 80 * MONOLITHIC_MAX_BITS

#: Sanity ceiling for cycle queries (bits).  The model extrapolates
#: far beyond the hardware, but a width this absurd is always a bug in
#: the caller (overflowed arithmetic, a byte/bit mix-up), so the
#: pricing functions reject it rather than spin in the recursion.
MODEL_MAX_QUERY_BITS = 1 << 40


def _check_bits(name: str, bits: int, minimum: int = 0) -> None:
    """Reject malformed operand widths before they enter the model."""
    if not isinstance(bits, int) or isinstance(bits, bool):
        raise MpnError("%s must be an int, got %r" % (name, bits))
    if bits < minimum:
        raise MpnError("%s must be >= %d, got %d"
                       % (name, minimum, bits))
    if bits > MODEL_MAX_QUERY_BITS:
        raise MpnError("%s=%d exceeds the %d-bit model ceiling"
                       % (name, bits, MODEL_MAX_QUERY_BITS))


@lru_cache(maxsize=None)
def mul_cycles(bits_a: int, bits_b: int = 0) -> float:
    """Accelerator cycles for an (a x b)-bit MPApca multiplication."""
    _check_bits("bits_a", bits_a)
    _check_bits("bits_b", bits_b)
    if bits_b == 0:
        bits_b = bits_a
    small, large = sorted((max(1, bits_a), max(1, bits_b)))
    if large <= MONOLITHIC_MAX_BITS:
        return _MODEL.multiply_cycles(small, large)
    if large > 2 * small:
        pieces = -(-large // small)
        return pieces * mul_cycles(small, small) \
            + pieces * _MODEL.add_cycles(2 * small)
    n = large
    if n <= TOOM3_BITS:
        sub_mults, split, linear = 3, 2, 4.0       # Karatsuba
    elif n <= TOOM4_BITS:
        sub_mults, split, linear = 5, 3, 8.0       # Toom-3
    elif n <= TOOM6_BITS:
        sub_mults, split, linear = 7, 4, 14.0      # Toom-4
    elif n <= SSA_BITS:
        sub_mults, split, linear = 11, 6, 26.0     # Toom-6
    else:
        return _ssa_cycles(n)
    piece = -(-n // split) + 32
    return (sub_mults * mul_cycles(piece, piece)
            + linear * _MODEL.add_cycles(n)
            + 2 * DISPATCH_CYCLES)


def _ssa_cycles(bits: int) -> float:
    """MPApca SSA: inputs padded to the next power of two (zigzag)."""
    padded = 1 << (bits - 1).bit_length()
    total_bits = 2 * padded
    # MPApca mirrors GMP's sqrt-balanced split but without the
    # fine-grained per-size policy (the padding above is the zigzag).
    k = max(4, total_bits.bit_length() // 2)
    pieces = 1 << k
    piece_bits = -(-total_bits // pieces)
    w = 2 * piece_bits + k + 2
    transform = 2 * pieces
    # Butterflies are fused shift+add streams on the accelerator.
    butterflies = 3 * (transform // 2) * (transform.bit_length() - 1)
    butterfly_cost = _MODEL.add_cycles(w, include_dispatch=False)
    pointwise = transform * mul_cycles(w, w)
    assembly = 4 * _MODEL.add_cycles(total_bits)
    return butterflies * butterfly_cost + pointwise + assembly


def add_cycles(bits_a: int, bits_b: int = 0) -> float:
    """Accelerator cycles for addition/subtraction."""
    _check_bits("bits_a", bits_a)
    _check_bits("bits_b", bits_b)
    return _MODEL.add_cycles(max(bits_a, bits_b))


def shift_cycles() -> float:
    """Shifts are timing delays: dispatch cost only."""
    return _MODEL.shift_cycles()


def div_cycles(bits_a: int, bits_b: int) -> float:
    """Division by Newton reciprocal: a few multiplies at operand size."""
    _check_bits("bits_a", bits_a)
    _check_bits("bits_b", bits_b)
    return 3.5 * mul_cycles(bits_a, max(bits_b, 1)) + DISPATCH_CYCLES


def sqrt_cycles(bits: int) -> float:
    """Square root: ~2x a multiply (precision-doubling Newton)."""
    _check_bits("bits", bits)
    return 2.0 * mul_cycles(bits, bits) + DISPATCH_CYCLES


def powmod_cycles(mod_bits: int, exp_bits: int) -> float:
    """Montgomery exponentiation: ~2.5 hardware products per exp bit.

    Each step is a multiply plus a Montgomery reduction, both composed
    of inner productions on the PE array (Section V-C).
    """
    _check_bits("mod_bits", mod_bits)
    _check_bits("exp_bits", exp_bits)
    per_product = 2.2 * mul_cycles(mod_bits, mod_bits)
    return 1.25 * exp_bits * per_product + DISPATCH_CYCLES


_CMP_CYCLES = float(DISPATCH_CYCLES)

_PRICERS = {
    "mul": lambda op: mul_cycles(op.bits_a, op.bits_b),
    "add": lambda op: add_cycles(op.bits_a, op.bits_b),
    "sub": lambda op: add_cycles(op.bits_a, op.bits_b),
    "shift": lambda op: shift_cycles(),
    "cmp": lambda op: _CMP_CYCLES,
    "logic": lambda op: add_cycles(op.bits_a, op.bits_b),
    "div": lambda op: div_cycles(op.bits_a, max(op.bits_b, 1)),
    "mod": lambda op: div_cycles(op.bits_a, max(op.bits_b, 1)),
    "sqrt": lambda op: sqrt_cycles(op.bits_a),
    "powmod": lambda op: powmod_cycles(op.bits_a, max(op.bits_b, 1)),
    # Sign/exponent handling stays on the host CPU (Section V-C): it is
    # negligible but non-zero, priced at host speed scaled to cycles.
    "highlevel": lambda op: 20.0,
    "aux": lambda op: 20.0,
}


@dataclass
class AcceleratorCost:
    """Modeled cost of a workload on Cambricon-P."""

    seconds: float
    joules: float
    cycles_by_class: dict

    def breakdown(self) -> dict:
        total = sum(self.cycles_by_class.values()) or 1.0
        return {name: cycles / total
                for name, cycles in self.cycles_by_class.items()}


def _traffic_bits(op) -> float:
    """Approximate LLC bits moved by one operator (for LLC energy)."""
    return 3.0 * max(op.bits_a, op.bits_b)


def price_trace(trace: OperationTrace,
                config: CambriconPConfig = DEFAULT_CONFIG
                ) -> AcceleratorCost:
    """Price a recorded trace on the Cambricon-P + MPApca model."""
    cycles_by_class: dict = {}
    llc_bits = 0.0
    for op in trace.ops:
        pricer = _PRICERS.get(op.name, _PRICERS["highlevel"])
        cycles_by_class[op.name] = cycles_by_class.get(op.name, 0.0) \
            + pricer(op)
        llc_bits += _traffic_bits(op)
    total_cycles = sum(cycles_by_class.values())
    seconds = total_cycles / config.frequency_hz
    joules = (power_w(config) * seconds
              + llc_bits * LLC_ENERGY_PJ_PER_BIT * 1e-12)
    return AcceleratorCost(seconds, joules, cycles_by_class)


def multiply_seconds(bits: int) -> float:
    """Wall time of one balanced N-bit multiply (Figure 11 curve)."""
    return mul_cycles(bits, bits) / DEFAULT_CONFIG.frequency_hz


@lru_cache(maxsize=4096)
def _mul_plan(bits_a: int, bits_b: int, use_device: bool):
    """The lowered multiply Plan for one width pair (cached: the
    runtime calls this on every ``mul``)."""
    from repro.plan import OpSpec
    from repro.plan.lowering import lower
    backend = "auto" if use_device else "library"
    return lower(OpSpec("mul", bits_a, bits_b, backend), MPAPCA_POLICY)


class MPApca:
    """Functional runtime: execute operators, accumulate modeled cost.

    Operators compute exact results (through the accelerator's
    functional simulator for multiplies when ``use_device`` is set, or
    the mpn kernels under the MPApca policy otherwise) and accumulate
    modeled accelerator time and energy on the instance.
    """

    def __init__(self, config: CambriconPConfig = DEFAULT_CONFIG,
                 use_device: bool = False) -> None:
        self.config = config
        self.device = CambriconP(config) if use_device else None
        self.cycles = 0.0
        self.llc_bits = 0.0
        self.operations = 0

    # -- operators -----------------------------------------------------------

    def mul(self, a: Nat, b: Nat) -> Nat:
        """Multiplication (monolithic in hardware when it fits).

        The request lowers to a :class:`~repro.plan.lowering.Plan`
        (under the MPApca hardware policy) and executes through
        :meth:`execute_plan`, so what runs, what is accounted, and what
        the planner would price are one and the same.
        """
        bits_a, bits_b = _nat.bit_length(a), _nat.bit_length(b)
        plan = _mul_plan(bits_a, bits_b, self.device is not None)
        self._account(plan.cost(), 3 * max(bits_a, bits_b))
        return self.execute_plan(plan, a, b)

    def execute_plan(self, plan, *operands: Nat) -> Nat:
        """Execute a lowered Plan's kernel chain or device stream.

        Accounting is the caller's job (:meth:`mul` charges
        ``plan.cost()``); execution is exact on either backend.
        """
        if plan.spec.op != "mul":
            raise MpnError("MPApca executes mul plans; %r lowers "
                           "through the high-level operators"
                           % (plan.spec.op,))
        a, b = operands
        if plan.backend == "device":
            if self.device is None:
                raise MpnError("device-backed plan on a library-only "
                               "runtime")
            product, _ = self.device.multiply(a, b)
            return product
        if plan.backend in ("packed", "specialized"):
            # Pin the plan's resolved backend so what runs is exactly
            # what the plan priced (specialized falls back to the
            # generic auto path under REPRO_CODEGEN=0).
            return _raw_mul(a, b, plan.policy(), backend=plan.backend)
        return _raw_mul(a, b, plan.policy())

    def add(self, a: Nat, b: Nat) -> Nat:
        """Parallel addition across PEs with chained GU carries."""
        bits = max(_nat.bit_length(a), _nat.bit_length(b))
        self._account(add_cycles(bits), 3 * bits)
        return _nat.add(a, b)

    def sub(self, a: Nat, b: Nat) -> Nat:
        """Subtraction: inverted subtrahend bitflow + initial carry."""
        bits = max(_nat.bit_length(a), _nat.bit_length(b))
        self._account(add_cycles(bits), 3 * bits)
        return _nat.sub(a, b)

    def shift(self, a: Nat, count: int, left: bool = True) -> Nat:
        """Bit shifts as timing delays."""
        self._account(shift_cycles(), 0)
        return _nat.shl(a, count) if left else _nat.shr(a, count)

    # -- accounting -----------------------------------------------------------

    def _account(self, cycles: float, llc_bits: float) -> None:
        self.cycles += cycles
        self.llc_bits += llc_bits
        self.operations += 1

    @property
    def seconds(self) -> float:
        """Accumulated modeled wall time."""
        return self.cycles / self.config.frequency_hz

    @property
    def joules(self) -> float:
        """Accumulated modeled energy (core + LLC)."""
        return (power_w(self.config) * self.seconds
                + self.llc_bits * LLC_ENERGY_PJ_PER_BIT * 1e-12)
