"""Dependency-aware program scheduling for the instruction interface.

The CC accepts one order at a time, but a host runtime sees whole
programs.  This scheduler builds the data-dependency DAG of an
instruction list (through the LLC addresses), levels it, and executes
each level's independent MUL instructions as one pipelined batch
(:meth:`~repro.core.accelerator.CambriconP.multiply_batch`) — packing
PE waves densely instead of paying a fill per multiply, the software
side of the paper's batch-processing capability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.isa import (Driver, Instruction, Opcode,
                            RetiredInstruction)
from repro.mpn.nat import MpnError


@dataclass
class ScheduledProgram:
    """A program leveled into dependency layers."""

    levels: List[List[Instruction]]

    @property
    def depth(self) -> int:
        return len(self.levels)

    @property
    def width(self) -> int:
        return max((len(level) for level in self.levels), default=0)


def level_program(program: List[Instruction]) -> ScheduledProgram:
    """Group instructions into dependency levels.

    An instruction depends on the latest earlier instruction writing
    any address it reads (and on earlier writers of its own destination,
    preserving write order).
    """
    level_of_address: Dict[int, int] = {}
    levels: List[List[Instruction]] = []
    for instruction in program:
        depth = 0
        # Reads wait for the level after their producer's (RAW)...
        for ref in instruction.sources:
            if ref.address in level_of_address:
                depth = max(depth, level_of_address[ref.address] + 1)
        # ...and rewrites of an address stay ordered (WAW).
        if instruction.destination in level_of_address:
            depth = max(depth,
                        level_of_address[instruction.destination] + 1)
        while len(levels) <= depth:
            levels.append([])
        levels[depth].append(instruction)
        level_of_address[instruction.destination] = depth
    return ScheduledProgram(levels)


class BatchingDriver(Driver):
    """A driver that executes leveled programs with batched multiplies.

    An optional :class:`repro.parallel.ParallelExecutor` fans each
    level's independent multiply simulations across worker processes;
    by construction (deterministic per-pair simulation + ordered
    gathering) the retirement log and statistics are identical to the
    serial driver's, so ``REPRO_WORKERS=0`` is a strict no-op.
    """

    def __init__(self, device=None, executor=None,
                 max_pending: Optional[int] = None) -> None:
        super().__init__(device)
        self.executor = executor
        if max_pending is not None and max_pending < 1:
            raise MpnError("max_pending must be at least 1")
        #: Size-triggered flush threshold for :meth:`submit` (``None``
        #: disables the guard; flushes are then explicit only).
        self.max_pending = max_pending
        self._pending: List[Instruction] = []

    # -- incremental batching -------------------------------------------------

    @property
    def pending(self) -> int:
        """Instructions buffered but not yet flushed."""
        return len(self._pending)

    def submit(self, instruction: Instruction
               ) -> Optional[Tuple[List[RetiredInstruction], dict]]:
        """Buffer one instruction toward the next batch.

        Returns the retirement log and stats when the ``max_pending``
        guard fires (the buffered batch is forced out), ``None`` while
        the instruction merely joins the pending batch.  Long-lived
        callers (the serve batcher, latency-sensitive hosts) pair this
        with :meth:`flush` so a partially-filled batch can always be
        forced out instead of waiting for the size trigger.
        """
        self._pending.append(instruction)
        if self.max_pending is not None \
                and len(self._pending) >= self.max_pending:
            return self.flush()
        return None

    def submit_plan(self, plan, operands,
                    destination: int
                    ) -> Optional[Tuple[List[RetiredInstruction], dict]]:
        """Buffer a device-backed Plan's instruction stream.

        Operand values land in the shared LLC and the plan's lowered
        stream (:func:`repro.plan.streams.instructions_for`) is
        submitted instruction by instruction — the one sanctioned way
        for callers above the runtime to turn work into device orders.
        Returns whatever the last :meth:`submit` returned (a flushed
        batch when the ``max_pending`` guard fires).
        """
        from repro.plan.streams import instructions_for
        refs = [self.alloc(value) for value in operands]
        flushed = None
        for instruction in instructions_for(plan, refs, destination):
            flushed = self.submit(instruction)
        return flushed

    def flush(self) -> Tuple[List[RetiredInstruction], dict]:
        """Execute whatever is pending now (partial batches included).

        Idempotent when nothing is pending: returns an empty log and
        zeroed stats, so shutdown paths can call it unconditionally.
        """
        if not self._pending:
            return [], {"levels": 0, "width": 0, "batched_multiplies": 0,
                        "batched_cycles": 0.0, "serial_mul_cycles": 0.0}
        program, self._pending = self._pending, []
        return self.execute_scheduled(program)

    def execute_scheduled(self, program: List[Instruction]
                          ) -> Tuple[List[RetiredInstruction], dict]:
        """Run a program level by level; independent MULs batch.

        Returns the retirement log plus scheduling statistics
        (levels, batched multiplies, cycles with and without batching).
        """
        scheduled = level_program(program)
        retirements: List[RetiredInstruction] = []
        batched_multiplies = 0
        batched_cycles = 0.0
        serial_mul_cycles = 0.0
        for level in scheduled.levels:
            multiplies = [i for i in level if i.opcode is Opcode.MUL]
            others = [i for i in level if i.opcode is not Opcode.MUL]
            if len(multiplies) > 1:
                pairs = [tuple(self.llc.read(ref)
                               for ref in instruction.sources)
                         for instruction in multiplies]
                if any(len(pair) != 2 for pair in pairs):
                    raise MpnError("MUL expects two sources")
                products, report = self.device.multiply_batch(
                    list(pairs), executor=self.executor)
                for instruction, product in zip(multiplies, products):
                    self.llc.write(instruction.destination, product)
                    retirements.append(
                        RetiredInstruction(instruction, report))
                batched_multiplies += len(multiplies)
                batched_cycles += report.cycles
                serial_mul_cycles += sum(
                    self.device.model.multiply_cycles(
                        ref_a.bits, ref_b.bits)
                    for ref_a, ref_b in
                    (instruction.sources for instruction in multiplies))
            else:
                others = level
            for instruction in others:
                retirements.append(self._execute_one(instruction))
        self.retired.extend(retirements)
        stats = {
            "levels": scheduled.depth,
            "width": scheduled.width,
            "batched_multiplies": batched_multiplies,
            "batched_cycles": batched_cycles,
            "serial_mul_cycles": serial_mul_cycles,
        }
        return retirements, stats
