"""High-level MPApca operators (Section V-C).

"Several high-level operators are also provided in MPApca including
polynomial convolution, division, square root, and Montgomery
reduction, etc., composed with inner-production, addition, subtraction,
shift, and multiplication."  This module is that composition: each
operator is built *from the runtime's primitive operators*, so the
accelerator cost model accounts every constituent multiply/add/shift
exactly as the hardware would execute them, while results stay exact.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.mpn import nat
from repro.mpn.div import divmod_nat
from repro.mpn.montgomery import MontgomeryContext
from repro.mpn.nat import MpnError, Nat
from repro.mpn.sqrt import isqrt as _isqrt
from repro.runtime.mpapca import MPApca


class HighLevelOps:
    """Composite operators executing through an MPApca runtime."""

    def __init__(self, runtime: MPApca | None = None) -> None:
        self.runtime = runtime or MPApca()

    # -- polynomial convolution ------------------------------------------

    def polynomial_convolution(self, x_coeffs: Sequence[Nat],
                               y_coeffs: Sequence[Nat]) -> List[Nat]:
        """Coefficient-wise convolution of two big-number polynomials.

        Each output coefficient is an inner product of coefficient
        slices — exactly the form the PE array batch-processes
        (Figure 7a); every partial product runs through the runtime.
        """
        if not x_coeffs or not y_coeffs:
            return []
        output = [[] for _ in range(len(x_coeffs) + len(y_coeffs) - 1)]
        for i, x in enumerate(x_coeffs):
            if nat.is_zero(x):
                continue
            for j, y in enumerate(y_coeffs):
                if nat.is_zero(y):
                    continue
                term = self.runtime.mul(x, y)
                output[i + j] = self.runtime.add(output[i + j], term)
        return [nat.normalize(c) for c in output]

    # -- division -----------------------------------------------------------

    def divide(self, a: Nat, b: Nat) -> Tuple[Nat, Nat]:
        """(quotient, remainder) by Newton reciprocal on the runtime.

        Every multiplication inside the reciprocal iteration and the
        correction loop is dispatched through ``runtime.mul``, so the
        modeled cost is the true composite cost (a few multiplies at
        operand size, Table I's O(n^m log n) class).
        """
        if nat.is_zero(b):
            raise MpnError("division by zero")
        # divmod_nat selects schoolbook vs. Newton through plan.select
        # (small divisors: the host CPU path wins), with the runtime's
        # mul composing the reciprocal iteration.
        return divmod_nat(a, b, self.runtime.mul)

    # -- square root -----------------------------------------------------------

    def sqrt(self, a: Nat) -> Nat:
        """Floor square root, precision-doubling Newton on the runtime."""
        return _isqrt(a, self.runtime.mul)

    # -- Montgomery reduction ------------------------------------------------

    def montgomery_context(self, modulus: Nat) -> MontgomeryContext:
        """A Montgomery domain whose big reductions ride the runtime."""
        return MontgomeryContext(modulus, self.runtime.mul)

    def montgomery_reduce(self, value: Nat, modulus: Nat) -> Nat:
        """REDC: value * R^-1 mod modulus (R = 2^(32*len(modulus))).

        The textbook reduction — m = (value mod R) * (-n^-1) mod R,
        t = (value + m*n) / R — with the wide products dispatched
        through the runtime; requires value < R * modulus.
        """
        if nat.is_zero(modulus) or not modulus[0] & 1:
            raise MpnError("Montgomery reduction needs an odd modulus")
        r_bits = 32 * len(modulus)
        if nat.bit_length(value) > r_bits + nat.bit_length(modulus):
            raise MpnError("REDC input must be below R * modulus")
        n_prime = self._negated_inverse_mod_2k(modulus, r_bits)
        low = nat.low_bits(value, r_bits)
        # Truncated product (MulLo): only the low R bits of low*n' are
        # needed — the optional operator the paper's MPApca lacked.
        from repro.mpn.fused import mullo
        m = mullo(low, n_prime, r_bits, self.runtime.mul)
        t = self.runtime.shift(
            self.runtime.add(value, self.runtime.mul(m, modulus)),
            r_bits, left=False)
        if nat.cmp(t, modulus) >= 0:
            t = self.runtime.sub(t, modulus)
        return t

    @staticmethod
    def _negated_inverse_mod_2k(modulus: Nat, bits: int) -> Nat:
        """-modulus^-1 mod 2^bits by Newton (Hensel) lifting."""
        inverse: Nat = [1]  # odd numbers are self-inverse mod 2
        precision = 1
        while precision < bits:
            precision = min(2 * precision, bits)
            # x <- x * (2 - n*x) mod 2^precision
            from repro.mpn.mul import mul as raw_mul
            product = nat.low_bits(raw_mul(modulus, inverse), precision)
            two_minus = nat.sub(nat.add(nat.shl([1], precision), [2]),
                                product)
            inverse = nat.low_bits(raw_mul(inverse, two_minus), precision)
        return nat.low_bits(nat.sub(nat.shl([1], bits), inverse), bits)

    def powmod(self, base: Nat, exponent: Nat, modulus: Nat) -> Nat:
        """Modular exponentiation through the runtime-backed context."""
        if nat.is_zero(modulus):
            raise MpnError("zero modulus")
        if not modulus[0] & 1:
            raise MpnError("runtime powmod requires an odd modulus")
        return self.montgomery_context(modulus).pow(base, exponent)

    # -- big-number linear algebra ----------------------------------------------

    def matrix_multiply(self, a: List[List[Nat]],
                        b: List[List[Nat]]) -> List[List[Nat]]:
        """Matrix product with arbitrary-precision entries.

        Section V-B3: with patterns shared along rows and indexes along
        columns, "high-level operators, e.g., convolution and matrix
        multiplication are also directly supported".  Each output entry
        is an inner product of big-number vectors, executed through the
        runtime's multiply/add operators.
        """
        if not a or not b or len(a[0]) != len(b):
            raise MpnError("matrix shapes do not compose")
        inner = len(b)
        cols = len(b[0])
        output: List[List[Nat]] = []
        for row in a:
            out_row: List[Nat] = []
            for col in range(cols):
                accumulator: Nat = []
                for k in range(inner):
                    term = self.runtime.mul(row[k], b[k][col])
                    accumulator = self.runtime.add(accumulator, term)
                out_row.append(accumulator)
            output.append(out_row)
        return output
