"""The MPApca runtime library (Section V-C) and program scheduling."""

from repro.runtime.highlevel import HighLevelOps
from repro.runtime.mpapca import (AcceleratorCost, MPApca, add_cycles,
                                  div_cycles, mul_cycles, multiply_seconds,
                                  powmod_cycles, price_trace, shift_cycles,
                                  sqrt_cycles)
from repro.runtime.scheduler import (BatchingDriver, ScheduledProgram,
                                     level_program)

__all__ = ["AcceleratorCost", "BatchingDriver", "HighLevelOps", "MPApca",
           "ScheduledProgram", "add_cycles", "div_cycles", "level_program",
           "mul_cycles", "multiply_seconds", "powmod_cycles",
           "price_trace", "shift_cycles", "sqrt_cycles"]
