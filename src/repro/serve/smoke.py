"""End-to-end smoke check: boot a real server, hammer it, drain it.

Run as ``PYTHONPATH=src python -m repro.serve.smoke`` (CI's serve-smoke
job) or ``... --shards 2`` (the sharded serve-smoke job).  The
sequence:

1. boot ``repro serve --port 0`` — with ``--shards N`` the plan-aware
   router plus N supervised shard workers — as a subprocess and parse
   the announced ephemeral port;
2. drive ~200 mixed requests through :func:`repro.serve.client.
   run_load` with bit-identical verification against the oracle;
3. scrape ``/metrics`` and require the core series to be present and
   consistent with the load generator's own counts (the sharded scrape
   must carry both the merged ``repro_serve_*`` shard series and the
   router's own ``repro_router_*`` series);
4. send SIGTERM and require a graceful drain (exit code 0) — sharded,
   that proves the router propagated the drain to every worker within
   the bounded deadline.

Exit status is non-zero on any failure; all output goes to stdout so
CI logs read as a transcript.
"""

from __future__ import annotations

import argparse
import os
import re
import signal
import subprocess
import sys
import time

from repro.serve.client import ServeClient, run_load

_LISTEN_RE = re.compile(
    r"repro-serve listening on (?P<host>[0-9.]+):(?P<port>\d+)")
_ROUTER_LISTEN_RE = re.compile(
    r"repro-router listening on (?P<host>[0-9.]+):(?P<port>\d+)")

#: How long to wait for the subprocess to announce its port.
_BOOT_TIMEOUT_S = 30.0
#: How long SIGTERM may take to drain (sharded: router + workers).
_DRAIN_TIMEOUT_S = 60.0


def _fail(message: str) -> int:
    print("SMOKE FAIL: %s" % message)
    return 1


def main(requests: int = 200, concurrency: int = 8,
         shards: int = 0) -> int:
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env.setdefault("REPRO_SERVE_BATCH_MS", "2")
    if shards:
        # Keep the smoke hermetic: no disk-warmed cross-shard cache.
        env.setdefault("REPRO_SHARD_CACHE", "0")
    command = [sys.executable, "-m", "repro", "serve", "--port", "0",
               "--shards", str(shards)]
    label = "router" if shards else "server"
    process = subprocess.Popen(
        command, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env)
    try:
        host, port = _await_listening(
            process, _ROUTER_LISTEN_RE if shards else _LISTEN_RE,
            label=label)
        print("smoke: %s up on %s:%d (pid %d)"
              % (label, host, port, process.pid))

        client = ServeClient(host, port)
        health = client.health()
        if not health.startswith("ok"):
            return _fail("healthz did not answer ok (got %r)" % health)
        if shards and health.count("shard") != shards:
            return _fail("healthz reported %d shard lines, expected %d"
                         % (health.count("shard"), shards))

        report = run_load(host, port, requests=requests,
                          concurrency=concurrency, seed=7, verify=True)
        print("smoke: load report: ok=%d shed=%d invalid=%d "
              "deadline=%d errors=%d wrong=%d p50=%.1fms p99=%.1fms"
              % (report["ok"], report["shed"], report["invalid"],
                 report["deadline"], report["errors"],
                 report["wrong_answers"],
                 report["latency_ms"]["p50"],
                 report["latency_ms"]["p99"]))
        if report["wrong_answers"] != 0:
            return _fail("bit-identical verification failed: %r"
                         % report["failures"])
        if report["errors"] != 0:
            return _fail("transport/internal errors: %r"
                         % report["failures"])
        answered = report["ok"] + report["shed"] + report["deadline"]
        if answered != requests:
            return _fail("%d of %d requests unaccounted for"
                         % (requests - answered, requests))
        if report["ok"] == 0:
            return _fail("no request succeeded")

        text = client.metrics_text()
        if "repro_serve_requests_total" not in text:
            return _fail("/metrics missing repro_serve_requests_total")
        if "repro_serve_latency_ms" not in text:
            return _fail("/metrics missing latency histogram")
        values = client.metrics_values()
        front = "repro_router" if shards else "repro_serve"
        if shards and not any(key.startswith("repro_router_")
                              for key in values):
            return _fail("merged /metrics missing router series")
        served = sum(value for key, value in values.items()
                     if key.startswith("%s_requests_total" % front))
        if served < requests:
            return _fail("%s_requests_total=%g < %d driven"
                         % (front, served, requests))
        print("smoke: metrics ok (%d series, requests_total=%g)"
              % (len(values), served))

        process.send_signal(signal.SIGTERM)
        try:
            code = process.wait(timeout=_DRAIN_TIMEOUT_S)
        except subprocess.TimeoutExpired:
            return _fail("%s did not drain within %gs after "
                         "SIGTERM" % (label, _DRAIN_TIMEOUT_S))
        if code != 0:
            return _fail("%s exited %d after SIGTERM" % (label, code))
        print("smoke: graceful drain confirmed (exit 0)")
        print("SMOKE PASS")
        return 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()


def _await_listening(process: "subprocess.Popen[str]",
                     pattern: "re.Pattern[str]" = _LISTEN_RE,
                     label: str = "server"):
    deadline = time.monotonic() + _BOOT_TIMEOUT_S
    stdout = process.stdout
    if stdout is None:
        raise RuntimeError("%s stdout not captured" % label)
    while time.monotonic() < deadline:
        line = stdout.readline()
        if not line:
            raise RuntimeError("%s exited before announcing a port "
                               "(code %r)" % (label, process.poll()))
        sys.stdout.write("%s| %s" % (label, line))
        match = pattern.search(line)
        if match:
            return match.group("host"), int(match.group("port"))
    raise RuntimeError("%s did not announce a port within %gs"
                       % (label, _BOOT_TIMEOUT_S))


def _parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="repro serve end-to-end smoke check")
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--shards", type=int, default=0,
                        help="boot the plan-aware router with N shard "
                             "workers instead of one server process")
    return parser.parse_args(argv)


if __name__ == "__main__":
    _args = _parse_args()
    sys.exit(main(requests=_args.requests,
                  concurrency=_args.concurrency,
                  shards=_args.shards))
