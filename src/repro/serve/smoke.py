"""End-to-end smoke check: boot a real server, hammer it, drain it.

Run as ``PYTHONPATH=src python -m repro.serve.smoke`` (CI's serve-smoke
job).  The sequence:

1. boot ``repro serve --port 0`` as a subprocess and parse the
   announced ephemeral port;
2. drive ~200 mixed requests through :func:`repro.serve.client.
   run_load` with bit-identical verification against the oracle;
3. scrape ``/metrics`` and require the core series to be present and
   consistent with the load generator's own counts;
4. send SIGTERM and require a graceful drain (exit code 0).

Exit status is non-zero on any failure; all output goes to stdout so
CI logs read as a transcript.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import time

from repro.serve.client import ServeClient, run_load

_LISTEN_RE = re.compile(
    r"repro-serve listening on (?P<host>[0-9.]+):(?P<port>\d+)")

#: How long to wait for the subprocess to announce its port.
_BOOT_TIMEOUT_S = 30.0
#: How long SIGTERM may take to drain.
_DRAIN_TIMEOUT_S = 30.0


def _fail(message: str) -> int:
    print("SMOKE FAIL: %s" % message)
    return 1


def main(requests: int = 200, concurrency: int = 8) -> int:
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env.setdefault("REPRO_SERVE_BATCH_MS", "2")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env)
    try:
        host, port = _await_listening(process)
        print("smoke: server up on %s:%d (pid %d)"
              % (host, port, process.pid))

        client = ServeClient(host, port)
        if client.health() != "ok":
            return _fail("healthz did not answer ok")

        report = run_load(host, port, requests=requests,
                          concurrency=concurrency, seed=7, verify=True)
        print("smoke: load report: ok=%d shed=%d invalid=%d "
              "deadline=%d errors=%d wrong=%d p50=%.1fms p99=%.1fms"
              % (report["ok"], report["shed"], report["invalid"],
                 report["deadline"], report["errors"],
                 report["wrong_answers"],
                 report["latency_ms"]["p50"],
                 report["latency_ms"]["p99"]))
        if report["wrong_answers"] != 0:
            return _fail("bit-identical verification failed: %r"
                         % report["failures"])
        if report["errors"] != 0:
            return _fail("transport/internal errors: %r"
                         % report["failures"])
        answered = report["ok"] + report["shed"] + report["deadline"]
        if answered != requests:
            return _fail("%d of %d requests unaccounted for"
                         % (requests - answered, requests))
        if report["ok"] == 0:
            return _fail("no request succeeded")

        text = client.metrics_text()
        if "repro_serve_requests_total" not in text:
            return _fail("/metrics missing repro_serve_requests_total")
        if "repro_serve_latency_ms" not in text:
            return _fail("/metrics missing latency histogram")
        values = client.metrics_values()
        served = sum(value for key, value in values.items()
                     if key.startswith("repro_serve_requests_total"))
        if served < requests:
            return _fail("requests_total=%g < %d driven"
                         % (served, requests))
        print("smoke: metrics ok (%d series, requests_total=%g)"
              % (len(values), served))

        process.send_signal(signal.SIGTERM)
        try:
            code = process.wait(timeout=_DRAIN_TIMEOUT_S)
        except subprocess.TimeoutExpired:
            return _fail("server did not drain within %gs after "
                         "SIGTERM" % _DRAIN_TIMEOUT_S)
        if code != 0:
            return _fail("server exited %d after SIGTERM" % code)
        print("smoke: graceful drain confirmed (exit 0)")
        print("SMOKE PASS")
        return 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()


def _await_listening(process: "subprocess.Popen[str]"):
    deadline = time.monotonic() + _BOOT_TIMEOUT_S
    stdout = process.stdout
    if stdout is None:
        raise RuntimeError("server stdout not captured")
    while time.monotonic() < deadline:
        line = stdout.readline()
        if not line:
            raise RuntimeError("server exited before announcing a port "
                               "(code %r)" % process.poll())
        sys.stdout.write("server| " + line)
        match = _LISTEN_RE.search(line)
        if match:
            return match.group("host"), int(match.group("port"))
    raise RuntimeError("server did not announce a port within %gs"
                       % _BOOT_TIMEOUT_S)


if __name__ == "__main__":
    sys.exit(main())
