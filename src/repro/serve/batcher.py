"""Dynamic batcher: coalesce compatible jobs, dispatch, respond.

The consumer half of the serve pipeline.  A single asyncio task pulls
the highest-priority job off the :class:`~repro.serve.queue.
AdmissionQueue`, coalesces queued jobs sharing a plan compatibility
key (``Job.compat_key()`` — op + lowered backend) into one batch until
either ``max_batch`` is reached or the ``batch_ms`` latency window
expires, then dispatches the batch on a worker thread:

* jobs whose plan lowered to the ``device`` backend (muls within the
  monolithic hardware limit) run through :class:`~repro.runtime.
  scheduler.BatchingDriver` — operands land in the shared LLC, each
  plan's instruction stream is submitted incrementally via
  ``submit_plan``, and the partial batch is forced out with the
  driver's ``flush()`` (one pipelined device pass instead of per-job
  fills);
* jobs whose plan lowered to the ``rns`` backend (powmods past the
  tuned ``rns_powmod_limbs`` crossover, explicit rns muls) fan out as
  one carry-free residue-channel batch through
  :func:`repro.plan.execute.run_rns_batch` — the amortized regime
  where batch items parallelize with no carry-chain serialization;
* everything else (library-backend plans: big muls, ``div``,
  ``powmod``, ``pi_digits``) runs the direct library call via
  :class:`~repro.parallel.ParallelExecutor`, with the executor's
  ``timeout=`` bounding a batch by the tightest member deadline;
* ``model_cycles`` and ``pi_digits`` results memoize in a small LRU —
  identical queries are answered from cache without touching the
  executor.

Results always return in request order and are bit-identical to
:func:`repro.serve.jobs.evaluate` for the same parameters — batching
is a throughput optimization, never a semantic one.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from repro.core.accelerator import CambriconP
from repro.core.model import DEFAULT_CONFIG
from repro.mpn import nat_from_int, nat_to_int
from repro.parallel import ExecutorTimeout, ParallelExecutor
from repro.runtime.scheduler import BatchingDriver
from repro.serve import trace as tracing
from repro.serve.jobs import Job, evaluate
from repro.serve.metrics import (BATCH_SIZE_BOUNDS, MetricsRegistry)
from repro.serve.queue import AdmissionQueue

#: LLC address block for batch destinations (far above operand allocs).
_DEST_BASE = 1 << 30


class DynamicBatcher:
    """Coalesce → dispatch → respond, one batch at a time."""

    def __init__(self, queue: AdmissionQueue,
                 registry: Optional[MetricsRegistry] = None,
                 max_batch: int = 16, batch_ms: float = 5.0,
                 workers: Optional[int] = None,
                 exec_timeout_s: Optional[float] = None,
                 config=DEFAULT_CONFIG,
                 cache_size: int = 512) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if batch_ms < 0:
            raise ValueError("batch_ms must be non-negative")
        self.queue = queue
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.max_batch = max_batch
        self.batch_ms = batch_ms
        self.exec_timeout_s = exec_timeout_s
        self.executor = ParallelExecutor(workers)
        self.config = config
        self._device: Optional[CambriconP] = None
        self._cache: "OrderedDict[Tuple, Dict[str, Any]]" = OrderedDict()
        self._cache_size = cache_size
        self.batches_dispatched = 0
        self.jobs_completed = 0

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        self.executor.close()

    @property
    def device(self) -> CambriconP:
        """The shared functional simulator (built on first mul batch)."""
        if self._device is None:
            self._device = CambriconP(self.config)
        return self._device

    # -- main loop ------------------------------------------------------------

    async def run(self) -> None:
        """Consume the queue until it is closed *and* drained."""
        loop = asyncio.get_running_loop()
        while True:
            job = await self.queue.get(timeout=0.1)
            if job is None:
                if self.queue.closed and self.queue.depth == 0:
                    break
                continue
            batch = [job]
            batch += self.queue.take_compatible(
                job.compat_key(), self.max_batch - len(batch))
            window_end = time.monotonic() + self.batch_ms / 1000.0
            while len(batch) < self.max_batch and not self.queue.closed:
                remaining = window_end - time.monotonic()
                if remaining <= 0:
                    break
                arrived = await self.queue.wait_for_item(remaining)
                if not arrived:
                    break
                more = self.queue.take_compatible(
                    job.compat_key(), self.max_batch - len(batch))
                if more:
                    batch.extend(more)
                elif self.queue.depth > 0:
                    # Only incompatible work is queued: dispatch now,
                    # the next loop iteration will batch it.
                    break
            self.registry.gauge("queue_depth").set(self.queue.depth)
            await self._dispatch(loop, job.op, batch)
        self.close()

    # -- dispatch -------------------------------------------------------------

    async def _dispatch(self, loop: asyncio.AbstractEventLoop, op: str,
                        batch: List[Job]) -> None:
        now = time.monotonic()
        live: List[Job] = []
        for job in batch:
            tracing.mark(job.trace, "batched")
            if job.future is not None and job.future.cancelled():
                # The server already answered (its wait_for timed out,
                # cancelling the future) and counted the expiry; count
                # the drop under its own name or every timed-out job
                # shows up twice in deadline_expired_total.
                self.registry.counter("deadline_dropped_total").inc()
                continue
            if job.expired(now):
                self._finish(job, {"ok": False, "id": job.job_id,
                                   "op": job.op,
                                   "error": "rejected:deadline"},
                             status="deadline")
                self.registry.counter("deadline_expired_total").inc()
                continue
            live.append(job)
        if not live:
            return
        for job in live:
            tracing.mark(job.trace, "execute_start")
        self.batches_dispatched += 1
        self.registry.counter("batches_total", op=op).inc()
        self.registry.histogram("batch_size",
                                bounds=BATCH_SIZE_BOUNDS).observe(
            float(len(live)))
        started = time.monotonic()
        try:
            outcomes = await loop.run_in_executor(
                None, self._execute_batch, op, live)
        except ExecutorTimeout:
            self.registry.counter("execute_timeout_total", op=op).inc()
            for job in live:
                tracing.mark(job.trace, "execute_end")
                self._finish(job, {"ok": False, "id": job.job_id,
                                   "op": job.op, "error": "error:timeout"},
                             status="timeout")
            return
        except Exception as error:
            self.registry.counter("execute_error_total", op=op).inc()
            for job in live:
                tracing.mark(job.trace, "execute_end")
                self._finish(job, {"ok": False, "id": job.job_id,
                                   "op": job.op,
                                   "error": "error:internal",
                                   "message": str(error)},
                             status="error")
            return
        wall_ms = (time.monotonic() - started) * 1000.0
        # The batch's predicted-ns price calibrates the ns wait path,
        # but only when every member was priced (a partial sum would
        # look like a model that underpredicts).
        predicted_ns = None
        if all(job.cost_ns is not None for job in live):
            predicted_ns = sum(job.cost_ns for job in live)
        self.queue.observe_service(
            sum(job.cost_cycles for job in live), wall_ms,
            predicted_ns=predicted_ns)
        for job, (payload, cached) in zip(live, outcomes):
            tracing.mark(job.trace, "execute_end")
            if job.trace is not None:
                job.trace.annotate(batch_size=len(live), cached=cached)
            self.registry.counter(
                "cache_hits_total" if cached
                else "cache_misses_total").inc()
            self._finish(job, {"ok": True, "id": job.job_id,
                               "op": job.op, "result": payload,
                               "batch_size": len(live),
                               "cached": cached,
                               "queue_ms": round(job.queue_ms(), 3)},
                         status="ok")

    def _finish(self, job: Job, body: Dict[str, Any],
                status: str) -> None:
        self.jobs_completed += 1
        self.registry.counter("responses_total", status=status).inc()
        self.registry.histogram("latency_ms").observe(job.queue_ms())
        self.registry.histogram("latency_ms", op=job.op).observe(
            job.queue_ms())
        if job.future is not None and not job.future.done():
            job.future.set_result(body)

    # -- execution (worker thread) --------------------------------------------

    def _execute_batch(self, op: str, jobs: List[Job]
                       ) -> List[Tuple[Dict[str, Any], bool]]:
        """Evaluate one batch; returns ``(payload, cached)`` per job."""
        results: List[Optional[Tuple[Dict[str, Any], bool]]] = \
            [None] * len(jobs)
        pending: List[int] = []
        for index, job in enumerate(jobs):
            key = job.cache_key()
            if key is not None and key in self._cache:
                self._cache.move_to_end(key)
                results[index] = (self._cache[key], True)
            else:
                pending.append(index)
        if pending:
            todo = [jobs[index] for index in pending]
            # Coalescing already keys on the plan's compat_key, so a
            # batch is homogeneous: either every plan lowered to the
            # device backend or none did.
            if op == "mul" and all(
                    job.plan is not None
                    and job.plan.backend == "device" for job in todo):
                payloads = self._run_mul_batch(todo)
            elif op in ("mul", "powmod") and all(
                    job.plan is not None
                    and job.plan.backend == "rns" for job in todo):
                payloads = self._run_rns_batch(op, todo)
            else:
                payloads = self.executor.map(
                    evaluate,
                    [(job.op, job.params) for job in todo],
                    timeout=self._timeout_for(todo))
            for index, payload in zip(pending, payloads):
                key = jobs[index].cache_key()
                if key is not None:
                    self._cache[key] = payload
                    while len(self._cache) > self._cache_size:
                        self._cache.popitem(last=False)
                results[index] = (payload, False)
        return [entry for entry in results if entry is not None]

    def _run_mul_batch(self, jobs: List[Job]) -> List[Dict[str, Any]]:
        """Device-backed mul batch through the BatchingDriver.

        Operands land in the shared LLC; each job's lowered plan
        streams its instructions through ``submit_plan`` (the
        ``max_pending`` guard matches the batch bound) and the partial
        batch is forced out with ``flush()`` — products read back in
        request order are exact, so the payload is bit-identical to
        the library multiply.
        """
        driver = BatchingDriver(
            self.device,
            executor=self.executor if self.executor.workers > 1
            else None,
            max_pending=self.max_batch)
        for index, job in enumerate(jobs):
            driver.submit_plan(job.plan,
                               [nat_from_int(job.params["a"]),
                                nat_from_int(job.params["b"])],
                               _DEST_BASE + index)
        driver.flush()
        return [{"product": hex(nat_to_int(
            driver.result(_DEST_BASE + index)))}
            for index in range(len(jobs))]

    def _run_rns_batch(self, op: str,
                       jobs: List[Job]) -> List[Dict[str, Any]]:
        """Rns-backed batch through the sanctioned plan-layer route.

        Plans that lowered to the ``rns`` backend (batched muls past
        the ``rns_mul_limbs`` floor, powmods past ``rns_powmod_limbs``)
        fan their carry-free channel work across the executor's
        workers via :func:`repro.plan.execute.run_rns_batch`; results
        come back in request order, bit-identical to the per-job
        :func:`~repro.serve.jobs.evaluate` oracle, and are re-encoded
        here into the serve hex transport.
        """
        from repro.plan.execute import run_rns_batch
        raw = run_rns_batch(op, [job.params for job in jobs],
                            executor=self.executor,
                            timeout=self._timeout_for(jobs))
        return [{key: hex(value) for key, value in payload.items()}
                for payload in raw]

    def _timeout_for(self, jobs: List[Job]) -> Optional[float]:
        """Executor deadline: the tightest member deadline, bounded by
        the configured per-batch execution timeout."""
        candidates: List[float] = []
        if self.exec_timeout_s is not None:
            candidates.append(self.exec_timeout_s)
        now = time.monotonic()
        deadlines = [job.deadline_at - now for job in jobs
                     if job.deadline_at is not None]
        if deadlines:
            candidates.append(max(0.05, min(deadlines)))
        return min(candidates) if candidates else None
