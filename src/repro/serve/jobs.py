"""Job model for the serve layer: parse, validate, price, evaluate.

A *job* is one client-requested operation — ``mul``, ``div``,
``powmod``, ``pi_digits``, or ``model_cycles`` — with canonicalized
integer parameters, the lowered execution :class:`~repro.plan.
lowering.Plan` (admission cost = ``plan.cost()``, batch compatibility
= ``plan.compat_key``, cache salting = ``plan.memo_key``), an optional
deadline, and a priority.  Validation happens entirely at the front
door so nothing malformed, oversized, or divide-by-zero ever reaches
the batching executor; the error codes here are the service's public
vocabulary (``invalid:*`` for rejected inputs).

:func:`evaluate` is the ground truth: it runs the *direct library
call* for a job (mpn kernels, the pi application, the MPApca cycle
model).  The server's answers must be bit-identical to it — the
end-to-end property tests and the load-generating client both verify
against this single definition.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.analysis import env as _env
from repro.core.model import DEFAULT_CONFIG
from repro.plan import PlanError
from repro.plan.execute import model_query, plan_for_job
from repro.runtime import mpapca

#: The service's job vocabulary.
JOB_OPS = ("mul", "div", "powmod", "pi_digits", "model_cycles")

#: Operand-size ceiling (bits) for mul/div/powmod requests.
MAX_BITS_ENV = _env.SERVE_MAX_BITS.name
DEFAULT_MAX_BITS = 1 << 20

#: Ceiling for ``pi_digits`` requests.
MAX_DIGITS_ENV = _env.SERVE_MAX_DIGITS.name
DEFAULT_MAX_DIGITS = 20_000

#: Ceiling for ``model_cycles`` bitwidth queries (the model is priced,
#: not executed, so this is far above the execution ceiling).
MODEL_MAX_BITS = 1 << 30

#: Cycle-model operators a ``model_cycles`` job may query.
MODEL_OPS = ("mul", "add", "sub", "shift", "cmp", "div", "mod", "sqrt",
             "powmod")

_job_counter = itertools.count(1)


class JobError(ValueError):
    """A request rejected at validation, carrying its public code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


def max_operand_bits() -> int:
    """Execution operand ceiling (``REPRO_SERVE_MAX_BITS``)."""
    return _env.int_value(_env.SERVE_MAX_BITS, DEFAULT_MAX_BITS,
                          minimum=1)


def max_pi_digits() -> int:
    """``pi_digits`` ceiling (``REPRO_SERVE_MAX_DIGITS``)."""
    return _env.int_value(_env.SERVE_MAX_DIGITS, DEFAULT_MAX_DIGITS,
                          minimum=1)


@dataclass
class Job:
    """One validated, admission-priced request."""

    op: str
    params: Dict[str, Any]
    priority: int = 0
    deadline_ms: Optional[float] = None
    job_id: str = ""
    cost_cycles: float = 0.0
    #: Predicted wall nanoseconds from the learned cost model; ``None``
    #: when REPRO_COST=0, no fitted model is live, or the plan is
    #: outside the fitted domain (the queue then prices by cycles).
    cost_ns: Optional[float] = None
    created_at: float = field(default_factory=time.monotonic)
    deadline_at: Optional[float] = None
    seq: int = 0                     # assigned by the admission queue
    future: Any = None               # asyncio.Future, attached by server
    trace: Any = None                # RequestTrace when tracing is on
    plan: Any = None                 # lowered repro.plan Plan

    def expired(self, now: Optional[float] = None) -> bool:
        """Has this job's deadline passed?"""
        if self.deadline_at is None:
            return False
        return (now if now is not None else time.monotonic()) \
            > self.deadline_at

    def queue_ms(self, now: Optional[float] = None) -> float:
        """Milliseconds since the job was admitted."""
        return ((now if now is not None else time.monotonic())
                - self.created_at) * 1000.0

    def compat_key(self) -> Tuple[str, str]:
        """Batch-compatibility key (jobs sharing it may coalesce)."""
        if self.plan is not None:
            return self.plan.compat_key
        return (self.op, "library")

    def cache_key(self) -> Optional[Tuple]:
        """Memo key for idempotent, parameter-pure job types.

        Includes the plan's memo key (thresholds fingerprint +
        algorithm choice), so a ``repro tune`` retune in a running
        server changes every cache key and can never serve a result
        computed under the old plan.
        """
        if self.op in ("pi_digits", "model_cycles"):
            salt = self.plan.memo_key if self.plan is not None else ()
            return (self.op,) + tuple(sorted(self.params.items())) \
                + tuple(salt)
        return None


def make_job(payload: Dict[str, Any]) -> Job:
    """Parse one request body into a validated :class:`Job`.

    Raises :class:`JobError` with a public ``invalid:*`` code on any
    malformed field; nothing about the payload is trusted.
    """
    if not isinstance(payload, dict):
        raise JobError("invalid:bad-json", "request body must be an object")
    op = payload.get("op")
    if op not in JOB_OPS:
        raise JobError("invalid:unknown-op",
                       "op must be one of %s, got %r"
                       % (", ".join(JOB_OPS), op))
    raw_params = payload.get("params", {})
    if not isinstance(raw_params, dict):
        raise JobError("invalid:bad-params", "params must be an object")
    params = validate_params(op, raw_params)
    priority = payload.get("priority", 0)
    if not isinstance(priority, int) or isinstance(priority, bool) \
            or not 0 <= priority <= 9:
        raise JobError("invalid:priority",
                       "priority must be an integer in [0, 9]")
    deadline_ms = payload.get("deadline_ms")
    if deadline_ms is not None:
        if not isinstance(deadline_ms, (int, float)) \
                or isinstance(deadline_ms, bool) or deadline_ms <= 0:
            raise JobError("invalid:deadline",
                           "deadline_ms must be a positive number")
        deadline_ms = float(deadline_ms)
    job_id = payload.get("id")
    if job_id is None:
        job_id = "job-%d" % next(_job_counter)
    elif not isinstance(job_id, str) or len(job_id) > 128:
        raise JobError("invalid:id", "id must be a short string")
    plan = plan_for_job(op, params)
    from repro import cost as _cost
    job = Job(op=op, params=params, priority=priority,
              deadline_ms=deadline_ms, job_id=job_id,
              cost_cycles=plan.cost(),
              cost_ns=_cost.predict_plan_ns(plan), plan=plan)
    if deadline_ms is not None:
        job.deadline_at = job.created_at + deadline_ms / 1000.0
    return job


# -- validation ---------------------------------------------------------------

def validate_params(op: str, params: Dict[str, Any]) -> Dict[str, Any]:
    """Canonicalize one op's parameters (ints decoded, sizes checked)."""
    if op == "mul":
        a = _parse_operand(params, "a")
        b = _parse_operand(params, "b")
        return {"a": a, "b": b}
    if op == "div":
        a = _parse_operand(params, "a")
        b = _parse_operand(params, "b")
        if b == 0:
            raise JobError("invalid:zero-divisor",
                           "div requires a non-zero divisor")
        return {"a": a, "b": b}
    if op == "powmod":
        base = _parse_operand(params, "base")
        exponent = _parse_operand(params, "exp")
        modulus = _parse_operand(params, "mod")
        if modulus == 0:
            raise JobError("invalid:zero-modulus",
                           "powmod requires a non-zero modulus")
        return {"base": base, "exp": exponent, "mod": modulus}
    if op == "pi_digits":
        digits = _parse_count(params, "digits")
        ceiling = max_pi_digits()
        if digits > ceiling:
            raise JobError("invalid:oversized",
                           "pi_digits limited to %d digits (got %d)"
                           % (ceiling, digits))
        return {"digits": digits}
    if op == "model_cycles":
        model_op = params.get("op")
        if model_op not in MODEL_OPS:
            raise JobError("invalid:unknown-model-op",
                           "model op must be one of %s, got %r"
                           % (", ".join(MODEL_OPS), model_op))
        bits_a = _parse_count(params, "bits_a")
        bits_b = _parse_count(params, "bits_b", default=0, minimum=0)
        if max(bits_a, bits_b) > MODEL_MAX_BITS:
            raise JobError("invalid:oversized",
                           "model_cycles bitwidths limited to %d"
                           % MODEL_MAX_BITS)
        return {"op": model_op, "bits_a": bits_a, "bits_b": bits_b}
    raise JobError("invalid:unknown-op", "unknown op %r" % op)


def _parse_operand(params: Dict[str, Any], name: str) -> int:
    """Decode one big-integer operand (int, or a hex/"0x" string)."""
    if name not in params:
        raise JobError("invalid:missing-param",
                       "missing required parameter %r" % name)
    value = params[name]
    if isinstance(value, bool):
        raise JobError("invalid:bad-int", "%s must be an integer" % name)
    if isinstance(value, int):
        number = value
    elif isinstance(value, str):
        try:
            number = int(value, 0) if not value.lower().startswith("0x") \
                else int(value, 16)
        except ValueError:
            raise JobError("invalid:bad-int",
                           "%s is not a parsable integer (use hex "
                           "\"0x...\" for large values)" % name) from None
    else:
        raise JobError("invalid:bad-int",
                       "%s must be an int or a string" % name)
    if number < 0:
        raise JobError("invalid:negative",
                       "%s must be non-negative" % name)
    ceiling = max_operand_bits()
    if number.bit_length() > ceiling:
        raise JobError("invalid:oversized",
                       "%s exceeds the %d-bit operand ceiling "
                       "(REPRO_SERVE_MAX_BITS)" % (name, ceiling))
    return number


def _parse_count(params: Dict[str, Any], name: str,
                 default: Optional[int] = None, minimum: int = 1) -> int:
    value = params.get(name, default)
    if value is None:
        raise JobError("invalid:missing-param",
                       "missing required parameter %r" % name)
    if not isinstance(value, int) or isinstance(value, bool):
        raise JobError("invalid:bad-int", "%s must be an integer" % name)
    if value < minimum:
        raise JobError("invalid:bad-int",
                       "%s must be >= %d" % (name, minimum))
    return value


# -- admission pricing --------------------------------------------------------

def estimated_cycles(op: str, params: Dict[str, Any]) -> float:
    """Modeled service cost of one job, for queue-wait estimation.

    A thin view over the plan lowering: the estimate *is* the lowered
    plan's cost, priced by the one
    :class:`~repro.core.model.CambriconPModel` — there is no serve-side
    copy of the cycle math to drift from it.
    """
    return plan_for_job(op, params).cost()


# -- evaluation (the direct library call) -------------------------------------

def evaluate(task: Tuple[str, Dict[str, Any]]) -> Dict[str, Any]:
    """Run one ``(op, params)`` job through the direct library call.

    Top-level and picklable so :class:`repro.parallel.ParallelExecutor`
    can fan batches across worker processes.  This function *is* the
    service's correctness oracle: every server response must be
    bit-identical to its output for the same canonical parameters.
    """
    op, params = task
    if op == "mul":
        return {"product": hex(_library_mul(params["a"], params["b"]))}
    if op == "div":
        quotient, remainder = _library_divmod(params["a"], params["b"])
        return {"quotient": hex(quotient), "remainder": hex(remainder)}
    if op == "powmod":
        value = _library_powmod(params["base"], params["exp"],
                                params["mod"])
        return {"value": hex(value)}
    if op == "pi_digits":
        from repro.apps import pi
        result = pi.run(params["digits"])
        return {"digits": result.digits, "terms": result.terms,
                "precision_bits": result.precision_bits}
    if op == "model_cycles":
        cycles = model_cycles(params["op"], params["bits_a"],
                              params["bits_b"])
        return {"cycles": cycles,
                "seconds": cycles / DEFAULT_CONFIG.frequency_hz}
    raise JobError("invalid:unknown-op", "unknown op %r" % op)


def _library_mul(a: int, b: int) -> int:
    from repro.mpn import mul, nat_from_int, nat_to_int
    return nat_to_int(mul(nat_from_int(a), nat_from_int(b)))


def _library_divmod(a: int, b: int) -> Tuple[int, int]:
    from repro.mpn import divmod_nat, nat_from_int, nat_to_int
    quotient, remainder = divmod_nat(nat_from_int(a), nat_from_int(b))
    return nat_to_int(quotient), nat_to_int(remainder)


def _library_powmod(base: int, exponent: int, modulus: int) -> int:
    from repro.mpn import nat_from_int, nat_to_int, powmod
    return nat_to_int(powmod(nat_from_int(base), nat_from_int(exponent),
                             nat_from_int(modulus)))


def model_cycles(model_op: str, bits_a: int, bits_b: int) -> float:
    """The queryable MPApca cycle model (``model_cycles`` jobs)."""
    try:
        return model_query(model_op, bits_a, bits_b)
    except PlanError as error:
        raise JobError("invalid:unknown-model-op", str(error)) from None
