"""repro.serve — asyncio service layer for arbitrary-precision jobs.

The serving pipeline, front to back:

* :mod:`repro.serve.server` — stdlib HTTP/1.1 front-end
  (``repro serve``) with per-request deadlines and priorities;
* :mod:`repro.serve.queue` — bounded, admission-controlled priority
  queue that sheds load explicitly (``rejected:overloaded``);
* :mod:`repro.serve.batcher` — dynamic batcher coalescing compatible
  jobs into device/executor batches;
* :mod:`repro.serve.jobs` — validation, pricing, and the correctness
  oracle (:func:`~repro.serve.jobs.evaluate`);
* :mod:`repro.serve.metrics` / :mod:`repro.serve.trace` — lock-free
  counters and histograms at ``/metrics``, span traces under
  ``REPRO_TRACE=1``;
* :mod:`repro.serve.client` — load-generating, verifying client
  (``repro bench-serve``).

:mod:`repro.shard` scales this pipeline across OS processes: a
plan-aware router in front of N supervised shard workers, each one a
:class:`~repro.serve.server.ReproServer` (``repro serve --shards N``).

See ``docs/SERVING.md`` for the protocol and capacity knobs.
"""

from repro.serve.batcher import DynamicBatcher
from repro.serve.jobs import JOB_OPS, Job, JobError, evaluate, make_job
from repro.serve.metrics import (Counter, Gauge, Histogram,
                                 MetricsRegistry, merge_snapshots,
                                 parse_exposition, render_snapshot)
from repro.serve.queue import (SHED_QUEUE_FULL, SHED_SHUTTING_DOWN,
                               SHED_WAIT_EXCEEDED, AdmissionQueue)
from repro.serve.server import ReproServer, ServeConfig, run_server
from repro.serve.trace import RequestTrace, Tracer, trace_enabled

__all__ = [
    "AdmissionQueue",
    "Counter",
    "DynamicBatcher",
    "Gauge",
    "Histogram",
    "JOB_OPS",
    "Job",
    "JobError",
    "MetricsRegistry",
    "ReproServer",
    "RequestTrace",
    "SHED_QUEUE_FULL",
    "SHED_SHUTTING_DOWN",
    "SHED_WAIT_EXCEEDED",
    "ServeConfig",
    "Tracer",
    "evaluate",
    "make_job",
    "merge_snapshots",
    "parse_exposition",
    "render_snapshot",
    "run_server",
    "trace_enabled",
]
