"""Asyncio TCP/HTTP front-end: ``repro serve --port N``.

A stdlib-only, single-event-loop HTTP/1.1 server.  Every connection
carries one request (``Connection: close``), which keeps the parser
trivial and the drain logic exact:

* ``POST /v1/job`` (or ``POST /``) — submit one JSON job
  (``{"op": "mul", "params": {...}, "priority": 0-9,
  "deadline_ms": N, "id": "..."}``); the response is the job body
  from the batcher, an ``invalid:*`` 400, an explicit
  ``rejected:overloaded`` 503 from admission control, or a
  ``rejected:deadline`` 504;
* ``GET /metrics`` — the metrics plane's text exposition;
* ``GET /healthz`` — liveness;
* ``GET /traces`` — collected span traces (404 unless ``REPRO_TRACE``
  is enabled).

Shutdown (SIGTERM/SIGINT through :meth:`ReproServer.trigger_shutdown`)
is graceful and bounded: the listener closes, new admissions shed with
``shutting-down``, queued work drains through the batcher (partial
batches forced out via the driver's ``flush``), in-flight responses
complete, and only then does the process exit.
"""

from __future__ import annotations

import asyncio
import json
import signal
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Set, Tuple

from repro.analysis import env as _env
from repro.serve import trace as tracing
from repro.serve.batcher import DynamicBatcher
from repro.serve.jobs import JobError, make_job
from repro.serve.metrics import MetricsRegistry
from repro.serve.queue import AdmissionQueue

#: Capacity knobs (see docs/SERVING.md).
QUEUE_ENV = _env.SERVE_QUEUE.name
MAX_WAIT_ENV = _env.SERVE_MAX_WAIT_MS.name
BATCH_ENV = _env.SERVE_BATCH.name
BATCH_MS_ENV = _env.SERVE_BATCH_MS.name
TIMEOUT_ENV = _env.SERVE_TIMEOUT_S.name

_MAX_BODY_BYTES = 8 << 20
_MAX_HEADER_LINES = 64


@dataclass
class ServeConfig:
    """Server configuration; env defaults, CLI overrides."""

    host: str = "127.0.0.1"
    port: int = 8421
    queue_capacity: int = 256
    max_wait_ms: float = 10_000.0
    max_batch: int = 16
    batch_ms: float = 5.0
    workers: Optional[int] = None
    exec_timeout_s: Optional[float] = 120.0
    max_body_bytes: int = _MAX_BODY_BYTES

    @classmethod
    def from_env(cls, **overrides: Any) -> "ServeConfig":
        config = cls(
            queue_capacity=_env.int_value(_env.SERVE_QUEUE, 256,
                                          minimum=1),
            max_wait_ms=_env.float_value(_env.SERVE_MAX_WAIT_MS,
                                         10_000.0, minimum=1.0),
            max_batch=_env.int_value(_env.SERVE_BATCH, 16, minimum=1),
            batch_ms=_env.float_value(_env.SERVE_BATCH_MS, 5.0,
                                      minimum=0.0),
            exec_timeout_s=_env.float_value(_env.SERVE_TIMEOUT_S, 120.0,
                                            minimum=0.1),
        )
        for name, value in overrides.items():
            if value is not None:
                setattr(config, name, value)
        return config


@dataclass
class _HttpRequest:
    method: str
    path: str
    body: bytes
    headers: Dict[str, str] = field(default_factory=dict)


class _BadRequest(Exception):
    """Malformed transport-level request (connection is answered 400)."""


# -- transport helpers (shared with the shard router) -------------------------

async def read_http_request(reader: asyncio.StreamReader,
                            max_body_bytes: int = _MAX_BODY_BYTES
                            ) -> _HttpRequest:
    """Parse one ``Connection: close`` HTTP/1.1 request.

    Raises :class:`_BadRequest` on malformed transport; module-level so
    :mod:`repro.shard.router` speaks byte-identical framing."""
    request_line = (await reader.readline()).decode(
        "latin-1", "replace").strip()
    if not request_line:
        raise _BadRequest("empty request")
    parts = request_line.split()
    if len(parts) < 2:
        raise _BadRequest("malformed request line")
    method, path = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    for _ in range(_MAX_HEADER_LINES):
        line = (await reader.readline()).decode("latin-1", "replace")
        if line in ("\r\n", "\n", ""):
            break
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    else:
        raise _BadRequest("too many headers")
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            size = int(length)
        except ValueError:
            raise _BadRequest("bad content-length") from None
        if size < 0 or size > max_body_bytes:
            raise _BadRequest("body too large")
        body = await reader.readexactly(size)
    return _HttpRequest(method, path, body, headers)


async def respond_json(writer: asyncio.StreamWriter, status: int,
                       body: Dict[str, Any]) -> None:
    data = json.dumps(body).encode("utf-8")
    await respond_raw(writer, status, data, "application/json")


async def respond_text(writer: asyncio.StreamWriter, status: int,
                       text: str) -> None:
    await respond_raw(writer, status, text.encode("utf-8"),
                      "text/plain; charset=utf-8")


async def respond_raw(writer: asyncio.StreamWriter, status: int,
                      data: bytes, content_type: str) -> None:
    reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
              500: "Internal Server Error",
              502: "Bad Gateway",
              503: "Service Unavailable",
              504: "Gateway Timeout"}.get(status, "OK")
    head = ("HTTP/1.1 %d %s\r\n"
            "Content-Type: %s\r\n"
            "Content-Length: %d\r\n"
            "Connection: close\r\n\r\n"
            % (status, reason, content_type, len(data)))
    writer.write(head.encode("latin-1") + data)
    await writer.drain()


class ReproServer:
    """The serve subsystem wired together: queue → batcher → HTTP."""

    def __init__(self, config: Optional[ServeConfig] = None,
                 registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[tracing.Tracer] = None) -> None:
        self.config = config if config is not None else \
            ServeConfig.from_env()
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.tracer = tracer if tracer is not None else tracing.Tracer()
        self.queue = AdmissionQueue(
            capacity=self.config.queue_capacity,
            max_wait_ms=self.config.max_wait_ms)
        self.batcher = DynamicBatcher(
            self.queue, self.registry,
            max_batch=self.config.max_batch,
            batch_ms=self.config.batch_ms,
            workers=self.config.workers,
            exec_timeout_s=self.config.exec_timeout_s)
        self.host = self.config.host
        self.port = self.config.port
        self._server: Optional[asyncio.AbstractServer] = None
        self._batcher_task: Optional[asyncio.Task] = None
        self._connections: Set[asyncio.Task] = set()
        self._draining = False
        self._shutdown_task: Optional[asyncio.Task] = None
        self._terminated = asyncio.Event()

    # -- lifecycle ------------------------------------------------------------

    def warm_start_codegen(self) -> int:
        """Pre-compile kernel specializations for the tuned hot keys.

        Runs before the listener binds (shard workers boot the same
        server, so every shard warms too): first requests must not pay
        compile latency.  Counts ``codegen_compile_total``; a no-op
        under ``REPRO_CODEGEN=0``.
        """
        from repro.plan import codegen
        warmed = codegen.warm_start()
        if warmed:
            self.registry.counter("codegen_compile_total").inc(warmed)
        return warmed

    def seed_service_rate(self) -> Optional[float]:
        """Warm the admission queue's service-rate estimate at boot.

        The estimated-wait shed gate is dead until the first batch
        completes; seeding it from the learned cost model's observed
        cycles-per-ns rate (or the analytic machine rate when no fit
        is live) makes it answer from the first request.  A no-op
        under ``REPRO_COST=0`` — the queue then boots cold exactly as
        it always did."""
        from repro import cost
        seed = cost.seed_rate_cycles_per_ms()
        if seed is not None:
            self.queue.seed_service_rate(seed)
        return seed

    async def start(self) -> Tuple[str, int]:
        """Bind the listener and start the batcher; returns (host, port)."""
        self.warm_start_codegen()
        self.seed_service_rate()
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        self._batcher_task = asyncio.ensure_future(self.batcher.run())
        self._batcher_task.add_done_callback(self._on_batcher_done)
        return self.host, self.port

    def trigger_shutdown(self) -> None:
        """Begin a graceful drain (signal-handler entry point)."""
        if self._shutdown_task is None:
            self._shutdown_task = asyncio.ensure_future(self.shutdown())
            self._shutdown_task.add_done_callback(self._on_shutdown_done)

    def _on_batcher_done(self, task: "asyncio.Task") -> None:
        """Observe the batcher consumer (it is spawned, never awaited
        on the hot path): if it crashes, every queued future would
        otherwise hang until its client's deadline, silently.  Fail
        them immediately, stop admissions, and count the crash."""
        if task.cancelled():
            return
        error = task.exception()
        if error is None:
            return
        self.registry.counter("batcher_crash_total").inc()
        self.queue.close()
        for job in self.queue.drain():
            if job.future is not None and not job.future.done():
                job.future.set_result(
                    {"ok": False, "id": job.job_id, "op": job.op,
                     "error": "error:internal",
                     "message": "batcher crashed: %s" % error})

    def _on_shutdown_done(self, task: "asyncio.Task") -> None:
        """Observe the drain task: an exception mid-shutdown must not
        leave ``wait_terminated()`` callers hanging forever."""
        if task.cancelled():
            return
        if task.exception() is not None:
            self.registry.counter("shutdown_error_total").inc()
            self._terminated.set()

    async def shutdown(self) -> None:
        """Drain: stop accepting, shed new work, finish queued work."""
        if self._draining:
            await self._terminated.wait()
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.queue.close()
        if self._batcher_task is not None:
            try:
                await self._batcher_task
            except Exception:  # repro: noqa=broad-except -- observed and counted by _on_batcher_done; the drain must still terminate
                pass
        if self._connections:
            await asyncio.gather(*tuple(self._connections),
                                 return_exceptions=True)
        self.tracer.dump()
        self._terminated.set()

    async def wait_terminated(self) -> None:
        await self._terminated.wait()

    @property
    def draining(self) -> bool:
        return self._draining

    # -- connection handling --------------------------------------------------

    def _on_connection(self, reader: asyncio.StreamReader,
                       writer: asyncio.StreamWriter) -> None:
        task = asyncio.ensure_future(self._handle(reader, writer))
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                request = await self._read_request(reader)
            except _BadRequest as error:
                await self._respond_json(
                    writer, 400, {"ok": False, "error": "invalid:http",
                                  "message": str(error)})
                return
            except (asyncio.IncompleteReadError, ConnectionError,
                    asyncio.LimitOverrunError):
                return
            await self._route(request, writer)
        except Exception as error:
            self.registry.counter("internal_error_total").inc()
            await self._try_respond_error(writer, error)
        finally:
            try:
                writer.close()
            except Exception:
                self.registry.counter("connection_close_error_total").inc()

    async def _read_request(self,
                            reader: asyncio.StreamReader) -> _HttpRequest:
        return await read_http_request(reader,
                                       self.config.max_body_bytes)

    async def _route(self, request: _HttpRequest,
                     writer: asyncio.StreamWriter) -> None:
        if request.method == "GET" and request.path == "/metrics":
            await self._respond_text(writer, 200, self.registry.render())
            return
        if request.method == "GET" and request.path == "/metrics.json":
            # The shard wire form: the router scrapes this and folds
            # snapshots with metrics.merge_snapshots.
            await self._respond_json(
                writer, 200, {"ok": True,
                              "snapshot": self.registry.snapshot()})
            return
        if request.method == "GET" and request.path == "/statz":
            await self._respond_json(writer, 200, self.statz())
            return
        if request.method == "GET" and request.path == "/healthz":
            await self._respond_text(
                writer, 200, "draining\n" if self._draining else "ok\n")
            return
        if request.method == "GET" and request.path == "/traces":
            if not self.tracer.enabled:
                await self._respond_json(
                    writer, 404, {"ok": False,
                                  "error": "invalid:tracing-disabled"})
                return
            await self._respond_json(
                writer, 200, {"ok": True,
                              "traces": self.tracer.to_json()})
            return
        if request.method == "POST" and request.path in ("/", "/v1/job"):
            await self._handle_job(request, writer)
            return
        await self._respond_json(
            writer, 404, {"ok": False, "error": "invalid:route",
                          "message": "%s %s not found"
                          % (request.method, request.path)})

    # -- the job path ---------------------------------------------------------

    async def _handle_job(self, request: _HttpRequest,
                          writer: asyncio.StreamWriter) -> None:
        try:
            payload = json.loads(request.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            self.registry.counter("invalid_total").inc()
            await self._respond_json(
                writer, 400, {"ok": False, "error": "invalid:bad-json",
                              "message": "body is not valid JSON"})
            return
        try:
            job = make_job(payload)
        except JobError as error:
            self.registry.counter("invalid_total").inc()
            await self._respond_json(
                writer, 400, {"ok": False, "error": error.code,
                              "message": error.message})
            return
        self.registry.counter("requests_total", op=job.op).inc()
        job.trace = self.tracer.begin(job.job_id, job.op)
        tracing.annotate_plan(job.trace, job.plan, cost_ns=job.cost_ns)
        if self._draining:
            reason = "shutting-down"
        else:
            job.future = asyncio.get_running_loop().create_future()
            reason = self.queue.try_submit(job)
        if reason is not None:
            self.registry.counter("shed_total", reason=reason).inc()
            self.registry.gauge("queue_depth").set(self.queue.depth)
            tracing.mark(job.trace, "responded")
            self.tracer.record(job.trace)
            await self._respond_json(
                writer, 503, {"ok": False, "id": job.job_id,
                              "op": job.op,
                              "error": "rejected:overloaded",
                              "reason": reason,
                              "queue_depth": self.queue.depth})
            return
        tracing.mark(job.trace, "admitted")
        self.registry.gauge("queue_depth").set(self.queue.depth)
        self.registry.gauge("queue_max_depth").set_max(
            self.queue.max_depth)
        body = await self._await_result(job)
        tracing.mark(job.trace, "responded")
        self.tracer.record(job.trace)
        status = 200
        if not body.get("ok"):
            error = str(body.get("error", ""))
            status = 504 if error == "rejected:deadline" else 500
        await self._respond_json(writer, status, body)

    async def _await_result(self, job) -> Dict[str, Any]:
        """Wait for the batcher's answer, bounded by the deadline."""
        if job.deadline_at is None:
            return await job.future
        remaining = max(0.0, job.deadline_at
                        - asyncio.get_running_loop().time())
        # Grace covers the batcher marking the expiry itself (it owns
        # the queue-side deadline check).
        try:
            return await asyncio.wait_for(job.future, remaining + 0.25)
        except asyncio.TimeoutError:
            self.registry.counter("deadline_expired_total").inc()
            return {"ok": False, "id": job.job_id, "op": job.op,
                    "error": "rejected:deadline"}

    # -- introspection --------------------------------------------------------

    def statz(self) -> Dict[str, Any]:
        """One shard's live service stats (the ``/statz`` payload).

        The router polls this to aggregate fleet admission state: the
        queue's observed-service-rate EWMA, its pending backlog, and
        the drain flag that marks the shard degraded."""
        return {
            "ok": True,
            "draining": self._draining,
            "queue_depth": self.queue.depth,
            "pending_cycles": self.queue.pending_cycles,
            "rate_cycles_per_ms":
                self.queue.service_rate_cycles_per_ms,
            "rate_seeded": self.queue.service_rate_seeded,
            "pending_ns": self.queue.pending_ns,
            "submitted": self.queue.submitted,
            "shed": self.queue.shed,
            "jobs_completed": self.batcher.jobs_completed,
            "batches_dispatched": self.batcher.batches_dispatched,
        }

    # -- responses ------------------------------------------------------------

    async def _respond_json(self, writer: asyncio.StreamWriter,
                            status: int, body: Dict[str, Any]) -> None:
        await respond_json(writer, status, body)

    async def _respond_text(self, writer: asyncio.StreamWriter,
                            status: int, text: str) -> None:
        await respond_text(writer, status, text)

    async def _try_respond_error(self, writer: asyncio.StreamWriter,
                                 error: Exception) -> None:
        try:
            await self._respond_json(
                writer, 500, {"ok": False, "error": "error:internal",
                              "message": str(error)})
        except Exception:
            self.registry.counter("connection_close_error_total").inc()


class ServerThread:
    """A :class:`ReproServer` on a background thread's event loop.

    Self-hosting for the benchmark client and in-process tests:
    ``start()`` blocks until the listener is bound and returns
    ``(host, port)``; ``stop()`` runs the graceful drain and joins.
    """

    def __init__(self, config: Optional[ServeConfig] = None,
                 tracer: Optional[tracing.Tracer] = None) -> None:
        import threading
        self.config = config
        self._tracer = tracer
        self.server: Optional[ReproServer] = None
        self.host = ""
        self.port = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:
            self._error = error
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.server = ReproServer(self.config, tracer=self._tracer)
        self.host, self.port = await self.server.start()
        self._ready.set()
        await self.server.wait_terminated()

    def start(self, timeout: float = 30.0) -> Tuple[str, int]:
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("server thread did not come up")
        if self._error is not None:
            raise RuntimeError("server thread failed: %r" % self._error)
        return self.host, self.port

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is not None and self.server is not None \
                and self._thread.is_alive():
            self._loop.call_soon_threadsafe(
                self.server.trigger_shutdown)
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeError("server thread did not drain")

    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


def run_server(config: Optional[ServeConfig] = None,
               announce=None) -> int:
    """Blocking entry point for ``repro serve`` (installs signal
    handlers, runs until drained)."""
    return asyncio.run(_serve_main(config, announce))


async def _serve_main(config: Optional[ServeConfig],
                      announce) -> int:
    server = ReproServer(config)
    host, port = await server.start()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, server.trigger_shutdown)
        except (NotImplementedError, RuntimeError):
            # Platforms without loop signal support fall back to the
            # default KeyboardInterrupt path.
            break
    if announce is not None:
        announce("repro-serve listening on %s:%d" % (host, port))
        announce("  queue=%d max_wait_ms=%g max_batch=%d batch_ms=%g"
                 % (server.config.queue_capacity,
                    server.config.max_wait_ms,
                    server.config.max_batch, server.config.batch_ms))
    await server.wait_terminated()
    if announce is not None:
        announce("repro-serve drained: %d served, %d shed, %d batches"
                 % (server.batcher.jobs_completed, server.queue.shed,
                    server.batcher.batches_dispatched))
    return 0
