"""Lock-free metrics plane: counters, gauges, log-bucket histograms.

"Lock-free" is literal: every write is a single integer/float add or
list-slot increment, atomic under the GIL, and no code path here ever
takes a lock.  Writers are the server's event loop and the batcher's
execution thread; readers (the ``/metrics`` scrape) tolerate the
instant-in-time skew that lock-freedom implies — a scrape races a
concurrent increment by at most one observation, never sees torn
state, and never stalls the hot path.

Rendered exposition is Prometheus-style text: ``name{label="v"} value``
lines, histogram ``_bucket``/``_count``/``_sum`` series plus
convenience ``quantile`` summary lines (p50/p90/p99 interpolated from
the log buckets).

For the sharded topology the registry also has a *wire form*:
:meth:`MetricsRegistry.snapshot` exports every series as a JSON-able
dict (the shard ``/metrics.json`` payload), :func:`merge_snapshots`
folds any number of such snapshots into one — counters and histogram
buckets add element-wise (never by percentile), gauges add except
high-water marks (any name containing ``max``), which take the max —
and :func:`render_snapshot` turns a snapshot back into the text
exposition.  ``render()`` itself goes through the same pair, so the
single-process and merged scrapes can never drift in format.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

#: Latency histogram boundaries (milliseconds, log-spaced).
LATENCY_BOUNDS_MS = (0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0,
                     200.0, 500.0, 1000.0, 2000.0, 5000.0, 10000.0)

#: Batch-size histogram boundaries (jobs per dispatched batch).
BATCH_SIZE_BOUNDS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: _LabelKey, extra: str = "") -> str:
    parts = ['%s="%s"' % (name, value) for name, value in key]
    if extra:
        parts.append(extra)
    return "{%s}" % ",".join(parts) if parts else ""


class Counter:
    """A monotonically increasing count (GIL-atomic increments)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (queue depth, max depth seen)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def set_max(self, value: float) -> None:
        if value > self.value:
            self.value = value


class Histogram:
    """Fixed-boundary histogram with interpolated percentiles.

    ``counts[i]`` holds observations ``<= bounds[i]`` (exclusive of
    earlier buckets); the final slot is the overflow bucket.  A
    percentile interpolates linearly inside its bucket, which over
    log-spaced bounds keeps the p50/p99 report within one bucket width
    of the exact value — adequate for a service dashboard, exact
    enough for the benchmark client to cross-check against its own
    sorted-sample percentiles.
    """

    __slots__ = ("bounds", "counts", "count", "total")

    def __init__(self, bounds: Iterable[float] = LATENCY_BOUNDS_MS) -> None:
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("histogram bounds must be strictly "
                             "increasing")
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.count += 1
        self.total += value

    def percentile(self, q: float) -> float:
        """Interpolated quantile in [0, 1] (0.0 when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                lower = self.bounds[i - 1] if i > 0 else 0.0
                upper = self.bounds[i] if i < len(self.bounds) \
                    else self.bounds[-1]
                fraction = (rank - cumulative) / bucket_count
                return lower + (upper - lower) * min(1.0, fraction)
            cumulative += bucket_count
        return self.bounds[-1]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Get-or-create registry keyed by (name, sorted labels)."""

    def __init__(self, prefix: str = "repro_serve") -> None:
        self.prefix = prefix
        self._counters: Dict[Tuple[str, _LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, _LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, _LabelKey], Histogram] = {}

    # -- get-or-create --------------------------------------------------------

    def counter(self, name: str, **labels: str) -> Counter:
        key = (name, _label_key(labels))
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters.setdefault(key, Counter())
        return metric

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = (name, _label_key(labels))
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges.setdefault(key, Gauge())
        return metric

    def histogram(self, name: str,
                  bounds: Optional[Iterable[float]] = None,
                  **labels: str) -> Histogram:
        key = (name, _label_key(labels))
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms.setdefault(
                key, Histogram(bounds if bounds is not None
                               else LATENCY_BOUNDS_MS))
        return metric

    # -- read side ------------------------------------------------------------

    def counter_value(self, name: str, **labels: str) -> int:
        metric = self._counters.get((name, _label_key(labels)))
        return metric.value if metric else 0

    def counter_total(self, name: str) -> int:
        """Sum of one counter family across all label sets."""
        return sum(metric.value
                   for (metric_name, _), metric in self._counters.items()
                   if metric_name == name)

    def render(self) -> str:
        """Prometheus-style text exposition of every metric."""
        return render_snapshot(self.snapshot(), self.prefix)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able export of every series (the shard wire form).

        The inverse direction is :func:`render_snapshot`; snapshots
        from many registries fold with :func:`merge_snapshots`.
        """
        return {
            "counters": [[name, [list(pair) for pair in key],
                          metric.value]
                         for (name, key), metric
                         in sorted(self._counters.items())],
            "gauges": [[name, [list(pair) for pair in key],
                        metric.value]
                       for (name, key), metric
                       in sorted(self._gauges.items())],
            "histograms": [[name, [list(pair) for pair in key],
                            list(metric.bounds), list(metric.counts),
                            metric.count, metric.total]
                           for (name, key), metric
                           in sorted(self._histograms.items())],
        }


# -- snapshot algebra (the sharded aggregation path) --------------------------

def _snapshot_key(name: str, labels: Iterable[Iterable[str]]) -> Tuple:
    return (str(name), tuple((str(k), str(v)) for k, v in labels))


def merge_snapshots(snapshots: Iterable[Dict[str, Any]]
                    ) -> Dict[str, Any]:
    """Fold registry snapshots into one — the *only* aggregation rule.

    Pure (inputs untouched, no registry involved) so the router's
    ``/metrics`` merge is unit-testable arithmetic:

    * counters with equal (name, labels) add;
    * gauges add, except high-water marks — any name containing
      ``max`` — which take the maximum across shards;
    * histograms merge **bucket-wise**: per-bucket counts, the total
      count, and the value sum add element-wise.  Percentiles are
      interpolated only after the merge (averaging per-shard p50s
      would be statistically meaningless); merging histograms of the
      same name with different bounds raises ``ValueError``.
    """
    counters: Dict[Tuple, int] = {}
    gauges: Dict[Tuple, float] = {}
    histograms: Dict[Tuple, List[Any]] = {}
    for snapshot in snapshots:
        for name, labels, value in snapshot.get("counters", ()):
            key = _snapshot_key(name, labels)
            counters[key] = counters.get(key, 0) + int(value)
        for name, labels, value in snapshot.get("gauges", ()):
            key = _snapshot_key(name, labels)
            if "max" in str(name):
                gauges[key] = max(gauges.get(key, float(value)),
                                  float(value))
            else:
                gauges[key] = gauges.get(key, 0.0) + float(value)
        for name, labels, bounds, counts, count, total \
                in snapshot.get("histograms", ()):
            key = _snapshot_key(name, labels)
            seen = histograms.get(key)
            if seen is None:
                histograms[key] = [list(bounds), list(counts),
                                   int(count), float(total)]
                continue
            if seen[0] != list(bounds):
                raise ValueError(
                    "histogram %r merged with mismatched bounds "
                    "(%r vs %r)" % (name, seen[0], list(bounds)))
            if len(seen[1]) != len(counts):
                raise ValueError(
                    "histogram %r merged with %d vs %d buckets"
                    % (name, len(seen[1]), len(counts)))
            seen[1] = [a + int(b) for a, b in zip(seen[1], counts)]
            seen[2] += int(count)
            seen[3] += float(total)
    return {
        "counters": [[name, [list(pair) for pair in labels], value]
                     for (name, labels), value
                     in sorted(counters.items())],
        "gauges": [[name, [list(pair) for pair in labels], value]
                   for (name, labels), value in sorted(gauges.items())],
        "histograms": [[name, [list(pair) for pair in labels],
                        parts[0], parts[1], parts[2], parts[3]]
                       for (name, labels), parts
                       in sorted(histograms.items())],
    }


def render_snapshot(snapshot: Dict[str, Any],
                    prefix: str = "repro_serve") -> str:
    """Text exposition of one snapshot (merged or single-registry).

    This is the one formatting path: :meth:`MetricsRegistry.render`
    delegates here, so shard scrapes and the router's merged scrape
    are byte-compatible in shape.
    """
    lines: List[str] = []
    full = "%s_%s" % (prefix, "%s")
    for name, labels, value in snapshot.get("counters", ()):
        key = _snapshot_key(name, labels)[1]
        lines.append("%s%s %d" % (full % name, _render_labels(key),
                                  int(value)))
    for name, labels, value in snapshot.get("gauges", ()):
        key = _snapshot_key(name, labels)[1]
        lines.append("%s%s %g" % (full % name, _render_labels(key),
                                  float(value)))
    for name, labels, bounds, counts, count, total \
            in snapshot.get("histograms", ()):
        key = _snapshot_key(name, labels)[1]
        metric = Histogram(bounds)
        metric.counts = [int(c) for c in counts]
        metric.count = int(count)
        metric.total = float(total)
        cumulative = 0
        for bound, bucket in zip(metric.bounds, metric.counts):
            cumulative += bucket
            lines.append("%s_bucket%s %d" % (
                full % name,
                _render_labels(key, 'le="%g"' % bound), cumulative))
        lines.append("%s_bucket%s %d" % (
            full % name, _render_labels(key, 'le="+Inf"'),
            metric.count))
        lines.append("%s_count%s %d" % (full % name,
                                        _render_labels(key),
                                        metric.count))
        lines.append("%s_sum%s %g" % (full % name, _render_labels(key),
                                      metric.total))
        for quantile in (0.5, 0.9, 0.99):
            lines.append("%s%s %g" % (
                full % name,
                _render_labels(key, 'quantile="%g"' % quantile),
                metric.percentile(quantile)))
    return "\n".join(lines) + "\n"


def parse_exposition(text: str) -> Dict[str, float]:
    """Parse rendered exposition back into ``{line-key: value}``.

    The inverse of :meth:`MetricsRegistry.render` for tests and the
    benchmark client's ground-truth cross-check.
    """
    values: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        key, _, raw = line.rpartition(" ")
        if not key:
            continue
        try:
            values[key] = float(raw)
        except ValueError:
            continue
    return values
