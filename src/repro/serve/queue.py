"""Bounded, admission-controlled priority queue for the serve layer.

Two admission gates, checked synchronously at submit time so a client
always gets an explicit answer instead of a silent drop:

* **depth** — the queue never holds more than ``capacity`` jobs, so
  server memory is K-bounded no matter how many clients arrive at
  once (``rejected:overloaded`` / ``queue-full``);
* **estimated wait** — every job is priced in modeled accelerator
  cycles (its lowered plan's ``Plan.cost()``, attached by
  :mod:`repro.serve.jobs`), and the queue converts its backlog of
  pending cycles into an expected wait using an EWMA of the observed
  service rate (modeled cycles retired per wall millisecond).  Once
  the estimate exceeds ``max_wait_ms`` the queue sheds rather than
  building latency (``wait-exceeded``).

When the learned cost model (:mod:`repro.cost`) has priced every
pending job in predicted wall nanoseconds (``Job.cost_ns``), the wait
estimate uses that backlog directly — scaled by an EWMA calibration of
predicted-vs-observed batch time — instead of the cycles/rate detour;
one unpriced job in the queue falls the whole estimate back to cycles
so the two backlogs never mix.  The service-rate EWMA itself can be
*seeded* before the first batch completes (:meth:`seed_service_rate`,
fed by the cost model at server boot) so the wait gate is live from
the first request; the first real observation replaces the seed
outright rather than blending with it.

Ordering is priority-first (9 highest), FIFO within a priority.  The
consumer side is a single batcher task on the asyncio loop; submit is
synchronous (no awaits between check and append), so admission is
atomic with respect to the loop.
"""

from __future__ import annotations

import asyncio
import time
from typing import List, Optional

from repro.serve.jobs import Job

#: Public shed reasons (the ``reason`` field of an overload response).
SHED_QUEUE_FULL = "queue-full"
SHED_WAIT_EXCEEDED = "wait-exceeded"
SHED_SHUTTING_DOWN = "shutting-down"

#: EWMA smoothing for the observed service rate.
_RATE_ALPHA = 0.3


class AdmissionQueue:
    """Priority queue with depth- and wait-based load shedding."""

    def __init__(self, capacity: int = 256,
                 max_wait_ms: Optional[float] = None) -> None:
        if capacity < 1:
            raise ValueError("queue capacity must be at least 1")
        self.capacity = capacity
        self.max_wait_ms = max_wait_ms
        self.closed = False
        self.pending_cycles = 0.0
        #: Predicted-ns backlog of the jobs the cost model priced.
        self.pending_ns = 0.0
        #: Queued jobs *without* a ns price; any > 0 disables the ns
        #: wait path (a mixed backlog would undercount the unpriced).
        self._pending_unpriced = 0
        #: High-water mark of the depth, proving K-boundedness.
        self.max_depth = 0
        self.submitted = 0
        self.shed = 0
        self._items: List[Job] = []
        self._seq = 0
        self._event = asyncio.Event()
        self._rate_cycles_per_ms: Optional[float] = None
        self._rate_seeded = False
        #: EWMA of observed wall ms per predicted ms (model
        #: calibration); 1.0 = the model's ns are trusted as-is.
        self._ns_calibration = 1.0

    # -- admission ------------------------------------------------------------

    @property
    def depth(self) -> int:
        return len(self._items)

    def try_submit(self, job: Job) -> Optional[str]:
        """Admit a job or return the shed reason (``None`` = admitted)."""
        if self.closed:
            self.shed += 1
            return SHED_SHUTTING_DOWN
        if len(self._items) >= self.capacity:
            self.shed += 1
            return SHED_QUEUE_FULL
        if self.max_wait_ms is not None:
            estimate = self.estimated_wait_ms(
                job.cost_cycles, extra_ns=getattr(job, "cost_ns", None))
            if estimate is not None and estimate > self.max_wait_ms:
                self.shed += 1
                return SHED_WAIT_EXCEEDED
        self._seq += 1
        job.seq = self._seq
        self._items.append(job)
        self.pending_cycles += job.cost_cycles
        cost_ns = getattr(job, "cost_ns", None)
        if cost_ns is not None and cost_ns > 0.0:
            self.pending_ns += cost_ns
        else:
            self._pending_unpriced += 1
        self.submitted += 1
        if len(self._items) > self.max_depth:
            self.max_depth = len(self._items)
        self._event.set()
        return None

    def estimated_wait_ms(self, extra_cycles: float = 0.0,
                          extra_ns: Optional[float] = None
                          ) -> Optional[float]:
        """Expected queueing delay for a job arriving now.

        When the arriving job carries a predicted-ns price
        (``extra_ns``) and every queued job was priced too, the
        estimate is the calibrated ns backlog — no service rate
        needed.  Otherwise the cycles/rate path answers, and returns
        ``None`` until a rate exists (observed or seeded) — admission
        then falls back to the depth bound alone.
        """
        if extra_ns is not None and extra_ns > 0.0 \
                and self._pending_unpriced == 0:
            return (self.pending_ns + extra_ns) \
                * self._ns_calibration / 1e6
        if self._rate_cycles_per_ms is None \
                or self._rate_cycles_per_ms <= 0.0:
            return None
        return (self.pending_cycles + extra_cycles) \
            / self._rate_cycles_per_ms

    @property
    def service_rate_cycles_per_ms(self) -> Optional[float]:
        """The observed-service-rate EWMA (``None`` before the first
        completed batch) — exported at ``/statz`` so a fleet router can
        aggregate per-shard rates into one admission bound."""
        return self._rate_cycles_per_ms

    @property
    def service_rate_seeded(self) -> bool:
        """True while the rate is a boot-time seed, not an observation."""
        return self._rate_seeded

    def seed_service_rate(self, cycles_per_ms: float) -> None:
        """Pre-load the service rate before any batch has completed.

        Only takes effect while the queue is cold (no observed rate);
        the first :meth:`observe_service` replaces the seed outright,
        so a bad seed costs exactly one batch of estimation error."""
        if cycles_per_ms <= 0.0 or self._rate_cycles_per_ms is not None:
            return
        self._rate_cycles_per_ms = cycles_per_ms
        self._rate_seeded = True

    def observe_service(self, cycles: float, wall_ms: float,
                        predicted_ns: Optional[float] = None) -> None:
        """Feed one completed batch into the service-rate EWMA.

        ``predicted_ns`` — the cost model's price for the same batch,
        when every member had one — additionally calibrates the
        predicted-ns wait path against observed wall time."""
        if wall_ms <= 0.0 or cycles <= 0.0:
            return
        rate = cycles / wall_ms
        if self._rate_cycles_per_ms is None or self._rate_seeded:
            self._rate_cycles_per_ms = rate
            self._rate_seeded = False
        else:
            self._rate_cycles_per_ms = (
                _RATE_ALPHA * rate
                + (1.0 - _RATE_ALPHA) * self._rate_cycles_per_ms)
        if predicted_ns is not None and predicted_ns > 0.0:
            ratio = wall_ms / (predicted_ns / 1e6)
            self._ns_calibration = (
                _RATE_ALPHA * ratio
                + (1.0 - _RATE_ALPHA) * self._ns_calibration)

    # -- consumption ----------------------------------------------------------

    def _best_index(self) -> int:
        best = 0
        for index in range(1, len(self._items)):
            job, incumbent = self._items[index], self._items[best]
            if (job.priority, -job.seq) > (incumbent.priority,
                                           -incumbent.seq):
                best = index
        return best

    def _forget_pending(self, job: Job) -> None:
        self.pending_cycles = max(0.0,
                                  self.pending_cycles - job.cost_cycles)
        cost_ns = getattr(job, "cost_ns", None)
        if cost_ns is not None and cost_ns > 0.0:
            self.pending_ns = max(0.0, self.pending_ns - cost_ns)
        else:
            self._pending_unpriced = max(0, self._pending_unpriced - 1)

    def _pop_index(self, index: int) -> Job:
        job = self._items.pop(index)
        self._forget_pending(job)
        return job

    async def get(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Highest-priority job; ``None`` on timeout or closed-empty."""
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        while True:
            if self._items:
                return self._pop_index(self._best_index())
            if self.closed:
                return None
            self._event.clear()
            if deadline is None:
                await self._event.wait()
                continue
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None
            try:
                await asyncio.wait_for(self._event.wait(), remaining)
            except asyncio.TimeoutError:
                return None

    def take_compatible(self, key, limit: int) -> List[Job]:
        """Pop up to ``limit`` queued jobs with the same batch
        compatibility key (``Job.compat_key()`` — op + plan backend),
        in priority order — the batcher's coalescing primitive.

        Keying on the plan rather than the op name keeps device-backed
        muls and oversized library-path muls in separate batches, so a
        big multiply never forces a whole device batch onto the
        library path."""
        if limit <= 0:
            return []
        matching = sorted(
            (index for index, job in enumerate(self._items)
             if job.compat_key() == key),
            key=lambda index: (-self._items[index].priority,
                               self._items[index].seq))
        chosen = set(matching[:limit])
        taken = [job for index, job in enumerate(self._items)
                 if index in chosen]
        self._items = [job for index, job in enumerate(self._items)
                       if index not in chosen]
        for job in taken:
            self._forget_pending(job)
        taken.sort(key=lambda job: (-job.priority, job.seq))
        return taken

    async def wait_for_item(self, timeout: float) -> bool:
        """Block until something is queued (or ``timeout`` seconds)."""
        if self._items:
            return True
        if self.closed:
            return False
        self._event.clear()
        try:
            await asyncio.wait_for(self._event.wait(), max(0.0, timeout))
        except asyncio.TimeoutError:
            return False
        return bool(self._items)

    def drain(self) -> List[Job]:
        """Pop every queued job at once (the crash path).

        The caller owns answering the drained futures — the batcher is
        gone, so nobody else ever will.
        """
        taken, self._items = self._items, []
        self.pending_cycles = 0.0
        self.pending_ns = 0.0
        self._pending_unpriced = 0
        return taken

    def close(self) -> None:
        """Stop admissions; wake the consumer so it can drain."""
        self.closed = True
        self._event.set()
