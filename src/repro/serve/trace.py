"""Per-request span traces, enabled with ``REPRO_TRACE=1``.

Each request carries a :class:`RequestTrace` through its lifecycle;
the server and batcher mark the canonical span boundaries —
``received`` → ``admitted`` → ``batched`` → ``execute_start`` →
``execute_end`` → ``responded`` — so a dumped trace decomposes a
request's latency into queueing, batching delay, execution, and
response time.  Completed traces collect in a bounded ring buffer and
are written as JSON lines to ``REPRO_TRACE_FILE`` (default
``repro-serve-trace.jsonl``) when the server drains, or on demand via
:meth:`Tracer.dump`.

Tracing off (the default) means no trace objects are ever allocated:
``Tracer.begin`` returns ``None`` and every mark is a no-op.
"""

from __future__ import annotations

import json
import time
from collections import deque
from pathlib import Path
from typing import Deque, Dict, List, Optional, Tuple

from repro.analysis import env as _env

TRACE_ENV = _env.TRACE.name
TRACE_FILE_ENV = _env.TRACE_FILE.name
DEFAULT_TRACE_FILE = "repro-serve-trace.jsonl"

#: Span boundaries in lifecycle order.
SPAN_MARKS = ("received", "admitted", "batched", "execute_start",
              "execute_end", "responded")


def trace_enabled() -> bool:
    """Is tracing requested via the environment?"""
    return _env.flag(_env.TRACE)


class RequestTrace:
    """Timestamped marks plus free-form annotations for one request."""

    __slots__ = ("job_id", "op", "marks", "meta")

    def __init__(self, job_id: str, op: str) -> None:
        self.job_id = job_id
        self.op = op
        self.marks: List[Tuple[str, float]] = []
        self.meta: Dict[str, object] = {}

    def mark(self, name: str) -> None:
        self.marks.append((name, time.monotonic() * 1000.0))

    def annotate(self, **meta: object) -> None:
        self.meta.update(meta)

    def span_ms(self, start: str, end: str) -> Optional[float]:
        """Elapsed milliseconds between two named marks."""
        times = dict(self.marks)
        if start in times and end in times:
            return times[end] - times[start]
        return None

    def to_dict(self) -> Dict[str, object]:
        times = dict(self.marks)
        origin = self.marks[0][1] if self.marks else 0.0
        spans = {}
        previous = None
        for name in SPAN_MARKS:
            if name not in times:
                continue
            if previous is not None:
                spans["%s->%s" % (previous, name)] = round(
                    times[name] - times[previous], 3)
            previous = name
        return {
            "id": self.job_id,
            "op": self.op,
            "marks": {name: round(at - origin, 3)
                      for name, at in self.marks},
            "spans_ms": spans,
            "meta": self.meta,
        }


def mark(trace: Optional[RequestTrace], name: str) -> None:
    """No-op-friendly marking helper (``trace`` may be ``None``)."""
    if trace is not None:
        trace.mark(name)


def annotate_plan(trace: Optional[RequestTrace], plan,
                  cost_ns: Optional[float] = None) -> None:
    """Stamp a trace with its lowered plan's identity.

    Records the resolved backend, the ``memo_key`` fingerprint, the
    canonical limb-count feature, and the analytic/predicted prices —
    everything :func:`repro.cost.dataset.harvest_trace` needs to join
    a span dump into the training dataset without re-lowering the
    request (which, after a retune, would not even reproduce the plan
    the span actually measured).
    """
    if trace is None or plan is None:
        return
    from repro.cost.features import plan_features
    features = plan_features(plan)
    trace.annotate(
        backend=plan.backend,
        memo_key=list(plan.memo_key),
        limbs=features[2] if features is not None else None,
        cost_cycles=plan.cost(),
    )
    if cost_ns is not None:
        trace.annotate(cost_ns=cost_ns)


class Tracer:
    """Bounded collector of completed request traces."""

    def __init__(self, enabled: Optional[bool] = None,
                 capacity: int = 1024) -> None:
        self.enabled = trace_enabled() if enabled is None else enabled
        self._completed: Deque[RequestTrace] = deque(maxlen=capacity)
        self.recorded = 0

    def begin(self, job_id: str, op: str) -> Optional[RequestTrace]:
        """A fresh trace, or ``None`` when tracing is disabled."""
        if not self.enabled:
            return None
        trace = RequestTrace(job_id, op)
        trace.mark("received")
        return trace

    def record(self, trace: Optional[RequestTrace]) -> None:
        if trace is None or not self.enabled:
            return
        self._completed.append(trace)
        self.recorded += 1

    def completed(self) -> List[RequestTrace]:
        return list(self._completed)

    def to_json(self) -> List[Dict[str, object]]:
        return [trace.to_dict() for trace in self._completed]

    def dump(self, path: Optional[Path] = None) -> Optional[Path]:
        """Append collected traces as JSON lines; returns the path.

        ``None`` when tracing is disabled or nothing was collected.
        """
        if not self.enabled or not self._completed:
            return None
        target = Path(path) if path is not None else Path(
            _env.string(_env.TRACE_FILE, DEFAULT_TRACE_FILE))
        with open(target, "a", encoding="utf-8") as handle:
            for trace in self._completed:
                handle.write(json.dumps(trace.to_dict(),
                                        sort_keys=True) + "\n")
        self._completed.clear()
        return target
