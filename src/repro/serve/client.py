"""Load-generating client and benchmark harness for ``repro serve``.

:class:`ServeClient` is a minimal stdlib HTTP client (one
``http.client`` connection per request, mirroring the server's
``Connection: close`` framing).  :func:`run_load` drives a seeded,
deterministic mix of all five job types at a configurable concurrency,
verifies every successful answer bit-for-bit against the in-process
oracle (:func:`repro.serve.jobs.evaluate`), and reports honest
latency/throughput numbers — exact sorted-sample percentiles, not the
server's interpolated histogram — plus the machine context (CPU
count, worker count) the numbers were measured under.  The report also
tallies, per op, which backend (library/device/packed/rns) the plan
lowering resolved for each verified job — the same
:func:`~repro.plan.execute.plan_for_job` the server's admission path
runs — so a serve benchmark records the rns-vs-packed-vs-limb split of
its workload.

``repro bench-serve`` wires this to ``results/BENCH_serve.json``.
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.parallel import available_cpus
from repro.serve.jobs import JOB_OPS, evaluate, validate_params
from repro.serve.metrics import parse_exposition

#: Weighted op mix for generated load (mul-heavy, like the paper's
#: workloads; pi_digits kept rare because each request is expensive).
_OP_WEIGHTS = (("mul", 40), ("div", 25), ("powmod", 15),
               ("model_cycles", 15), ("pi_digits", 5))


class ServeClient:
    """Blocking HTTP client for one repro-serve endpoint."""

    def __init__(self, host: str, port: int,
                 timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport ------------------------------------------------------------

    def raw(self, method: str, path: str,
            body: Optional[bytes] = None) -> Tuple[int, bytes]:
        """One request; returns ``(status, body)``."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        try:
            headers = {"Connection": "close"}
            if body is not None:
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            return response.status, response.read()
        finally:
            connection.close()

    def request(self, payload: Dict[str, Any]
                ) -> Tuple[int, Dict[str, Any]]:
        """Submit one job payload; returns ``(status, decoded body)``."""
        status, body = self.raw(
            "POST", "/v1/job", json.dumps(payload).encode("utf-8"))
        try:
            decoded = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            decoded = {"ok": False, "error": "error:bad-response",
                       "raw": body.decode("latin-1", "replace")[:200]}
        return status, decoded

    def metrics_text(self) -> str:
        status, body = self.raw("GET", "/metrics")
        if status != 200:
            raise RuntimeError("GET /metrics returned %d" % status)
        return body.decode("utf-8")

    def metrics_values(self) -> Dict[str, float]:
        return parse_exposition(self.metrics_text())

    def health(self) -> str:
        status, body = self.raw("GET", "/healthz")
        if status != 200:
            raise RuntimeError("GET /healthz returned %d" % status)
        return body.decode("utf-8").strip()

    def statz(self) -> Dict[str, Any]:
        """The live service-stats endpoint (shard EWMA rate and queue
        state; routers answer their fleet view)."""
        status, body = self.raw("GET", "/statz")
        if status != 200:
            raise RuntimeError("GET /statz returned %d" % status)
        return json.loads(body.decode("utf-8"))


# -- job generation -----------------------------------------------------------

def build_jobs(count: int, seed: int = 0,
               max_bits: int = 2048) -> List[Dict[str, Any]]:
    """A deterministic mixed workload of ``count`` job payloads."""
    rng = random.Random(seed)
    ops = [op for op, weight in _OP_WEIGHTS for _ in range(weight)]
    payloads: List[Dict[str, Any]] = []
    for index in range(count):
        op = ops[rng.randrange(len(ops))]
        if op == "mul" or op == "div":
            bits = rng.randrange(8, max_bits)
            a = rng.getrandbits(bits) | (1 << (bits - 1))
            b = rng.getrandbits(max(4, bits // 2)) | 1
            params = {"a": hex(a), "b": hex(b)}
        elif op == "powmod":
            bits = rng.randrange(8, max(16, max_bits // 4))
            params = {"base": hex(rng.getrandbits(bits) | 1),
                      "exp": hex(rng.getrandbits(16) | 1),
                      "mod": hex(rng.getrandbits(bits) | 1)}
        elif op == "pi_digits":
            params = {"digits": rng.randrange(10, 120)}
        else:
            params = {"op": rng.choice(("mul", "div", "add", "powmod")),
                      "bits_a": rng.randrange(64, 1 << 16),
                      "bits_b": rng.randrange(64, 1 << 14)}
        payloads.append({"op": op, "params": params,
                         "priority": rng.randrange(0, 10),
                         "id": "bench-%d-%d" % (seed, index)})
    return payloads


def expected_result(payload: Dict[str, Any]) -> Dict[str, Any]:
    """The oracle's answer for one job payload (direct library call)."""
    params = validate_params(payload["op"], payload["params"])
    return evaluate((payload["op"], params))


def plan_backend(payload: Dict[str, Any]) -> str:
    """The backend the plan lowering resolves for one job payload.

    Mirrors the server's admission path (same ``plan_for_job``), so the
    tally reflects what the server actually executed; ops without a
    lowered backend report ``"-"``.
    """
    return plan_key(payload)[0]


def plan_key(payload: Dict[str, Any]
             ) -> Tuple[str, Optional[int]]:
    """``(backend, canonical limbs)`` of one payload's lowered plan.

    The limb count is the cost-model size feature
    (:func:`repro.cost.features.plan_features`), ``None`` for jobs
    outside the model's domain — those still tally a backend but never
    join a latency aggregate.
    """
    from repro.cost.features import plan_features
    from repro.plan import PlanError
    from repro.plan.execute import plan_for_job
    try:
        params = validate_params(payload["op"], payload["params"])
        plan = plan_for_job(payload["op"], params)
    except (PlanError, ValueError):
        return "-", None
    backend = getattr(plan, "backend", None) or "-"
    features = plan_features(plan)
    return backend, features[2] if features is not None else None


# -- load generation ----------------------------------------------------------

def _percentile(sorted_values: List[float], q: float) -> float:
    """Exact sorted-sample percentile (nearest-rank with interpolation)."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = q * (len(sorted_values) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = position - low
    return (sorted_values[low] * (1.0 - fraction)
            + sorted_values[high] * fraction)


def run_load(host: str, port: int, requests: int = 200,
             concurrency: int = 8, seed: int = 0,
             verify: bool = True,
             timeout: float = 120.0) -> Dict[str, Any]:
    """Drive a mixed workload and return an honest report dict."""
    payloads = build_jobs(requests, seed=seed)
    client = ServeClient(host, port, timeout=timeout)
    results: List[Optional[Tuple[int, Dict[str, Any], float]]] = \
        [None] * len(payloads)
    cursor = {"next": 0}
    lock = threading.Lock()

    def worker() -> None:
        while True:
            with lock:
                index = cursor["next"]
                if index >= len(payloads):
                    return
                cursor["next"] = index + 1
            started = time.monotonic()
            try:
                status, body = client.request(payloads[index])
            except (OSError, http.client.HTTPException) as error:
                status, body = 0, {"ok": False,
                                   "error": "error:transport",
                                   "message": str(error)}
            elapsed_ms = (time.monotonic() - started) * 1000.0
            results[index] = (status, body, elapsed_ms)

    started = time.monotonic()
    threads = [threading.Thread(target=worker)
               for _ in range(max(1, concurrency))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_s = time.monotonic() - started

    ok = shed = invalid = deadline = errors = wrong = 0
    ok_latencies: List[float] = []
    per_op: Dict[str, int] = {op: 0 for op in JOB_OPS}
    backends: Dict[str, Dict[str, int]] = {}
    latency_groups: Dict[Tuple[str, str, int], List[float]] = {}
    failures: List[Dict[str, Any]] = []
    for payload, outcome in zip(payloads, results):
        if outcome is None:
            errors += 1
            continue
        status, body, elapsed_ms = outcome
        if status == 200 and body.get("ok"):
            ok += 1
            ok_latencies.append(elapsed_ms)
            per_op[payload["op"]] += 1
            resolved, limbs = plan_key(payload)
            op_tally = backends.setdefault(payload["op"], {})
            op_tally[resolved] = op_tally.get(resolved, 0) + 1
            if limbs is not None:
                latency_groups.setdefault(
                    (payload["op"], resolved, limbs),
                    []).append(elapsed_ms)
            if verify:
                expected = expected_result(payload)
                if body.get("result") != expected:
                    wrong += 1
                    if len(failures) < 5:
                        failures.append({"payload": payload,
                                         "got": body.get("result"),
                                         "expected": expected})
        elif status == 503:
            shed += 1
        elif status == 400:
            invalid += 1
        elif status == 504:
            deadline += 1
        else:
            errors += 1
            if len(failures) < 5:
                failures.append({"payload": payload, "status": status,
                                 "body": body})
    ok_latencies.sort()
    report = {
        "requests": requests,
        "concurrency": concurrency,
        "seed": seed,
        "ok": ok,
        "shed": shed,
        "invalid": invalid,
        "deadline": deadline,
        "errors": errors,
        "wrong_answers": wrong,
        "verified": bool(verify),
        "wall_s": round(wall_s, 3),
        "throughput_rps": round(ok / wall_s, 2) if wall_s > 0 else 0.0,
        "latency_ms": {
            "p50": round(_percentile(ok_latencies, 0.50), 3),
            "p90": round(_percentile(ok_latencies, 0.90), 3),
            "p99": round(_percentile(ok_latencies, 0.99), 3),
            "max": round(ok_latencies[-1], 3) if ok_latencies else 0.0,
        },
        "per_op_ok": per_op,
        "plan_backends": backends,
        # Per-(op, backend, limbs) end-to-end latency aggregates: the
        # rows ``repro cost harvest --serve`` folds into the dataset
        # (flagged end_to_end — calibration data, not kernel training).
        "op_backend_latency": [
            {"op": op, "backend": backend, "limbs": limbs,
             "n": len(values),
             "p50_ms": round(_percentile(sorted(values), 0.50), 3),
             "p90_ms": round(_percentile(sorted(values), 0.90), 3)}
            for (op, backend, limbs), values
            in sorted(latency_groups.items())
        ],
        "cpus": available_cpus(),
        "failures": failures,
    }
    return report


def write_bench(report: Dict[str, Any], path: str) -> None:
    """Persist a load report as pretty-printed JSON."""
    import pathlib
    target = pathlib.Path(path)
    if target.parent != pathlib.Path("."):
        target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
