"""Continued fractions and best rational approximations.

The classic exact-arithmetic companion to high-precision computation:
expand a rational (or a high-precision float) into its continued
fraction, and read off the convergents — provably best rational
approximations.  The famous instance: the convergents of pi are 3,
22/7, 333/106, 355/113, ... — 355/113 being the approximation that
needs 7 digits of pi to discover, i.e. already beyond eyeballing.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.mpf import MPF
from repro.mpq import MPQ
from repro.mpz import MPZ


def expansion(value: MPQ, max_terms: int = 64) -> List[MPZ]:
    """Continued-fraction terms [a0; a1, a2, ...] of a rational.

    Terminates exactly (rationals have finite expansions); the Euclid
    recurrence runs on the numerator/denominator pair.
    """
    terms: List[MPZ] = []
    numerator, denominator = value.numerator, value.denominator
    while denominator and len(terms) < max_terms:
        quotient, remainder = divmod(numerator, denominator)
        terms.append(quotient)
        numerator, denominator = denominator, remainder
    return terms


def convergents(terms: List[MPZ]) -> Iterator[MPQ]:
    """Successive convergents p_k/q_k of a continued fraction."""
    p_prev, p_curr = MPZ(1), terms[0] if terms else MPZ(0)
    q_prev, q_curr = MPZ(0), MPZ(1)
    if terms:
        yield MPQ(p_curr, q_curr)
    for term in terms[1:]:
        p_prev, p_curr = p_curr, term * p_curr + p_prev
        q_prev, q_curr = q_curr, term * q_curr + q_prev
        yield MPQ(p_curr, q_curr)


def from_mpf(value: MPF, precision_terms: int = 32) -> List[MPZ]:
    """Expansion of a float via its exact dyadic rational.

    The mantissa/exponent pair IS a rational, so the expansion is exact
    for the stored value; terms beyond the float's precision are
    artifacts and callers should stop at the first huge term.
    """
    # Reconstruct the dyadic rational exactly: value = m * 2^e.
    scaled = value * MPF(MPZ(1) << 512, value.precision + 520)
    as_int = scaled.floor_mpz()
    return expansion(MPQ(as_int, MPZ(1) << 512), precision_terms)


def best_approximation(value: MPF, max_denominator: int) -> MPQ:
    """The best rational approximation with a bounded denominator.

    Walks the convergents until the denominator budget is exceeded and
    returns the last one inside it — optimal by the classic theorem.
    """
    terms = from_mpf(value)
    best = MPQ(terms[0] if terms else 0)
    for convergent in convergents(terms):
        if int(convergent.denominator) > max_denominator:
            break
        best = convergent
    return best
