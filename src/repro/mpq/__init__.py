"""Arbitrary-precision rationals (GMP MPQ equivalent), with continued
fractions and best rational approximations."""

from repro.mpq.rational import MPQ
from repro.mpq import contfrac

__all__ = ["MPQ", "contfrac"]
