"""Arbitrary-precision rationals (GMP MPQ equivalent).

Figure 1's "Rationals (GMP MPQ)" layer: exact fractions over the
integer layer, kept in lowest terms by GCD normalization.  The paper
notes rationals matter to APC pipelines because "factorization can be
optionally leveraged to simplify the fraction before dividing" —
binary-splitting series (like Chudnovsky's P/Q accumulation) are
naturally rational until the final float division.
"""

from __future__ import annotations

from typing import Tuple, Union

from repro.mpf import MPF
from repro.mpz import MPZ

_Operand = Union["MPQ", MPZ, int]


class MPQ:
    """An immutable exact rational in lowest terms (denominator > 0)."""

    __slots__ = ("_num", "_den")

    def __init__(self, numerator: Union[int, MPZ] = 0,
                 denominator: Union[int, MPZ] = 1) -> None:
        num = numerator if isinstance(numerator, MPZ) else MPZ(numerator)
        den = denominator if isinstance(denominator, MPZ) \
            else MPZ(denominator)
        if not den:
            raise ZeroDivisionError("MPQ with zero denominator")
        if den.sign < 0:
            num, den = -num, -den
        common = num.gcd(den)
        if common > 1:
            num = num // common
            den = den // common
        self._num = num
        self._den = den

    @classmethod
    def _reduced(cls, num: MPZ, den: MPZ) -> "MPQ":
        instance = object.__new__(cls)
        if den.sign < 0:
            num, den = -num, -den
        common = num.gcd(den)
        if common > 1:
            num = num // common
            den = den // common
        instance._num = num
        instance._den = den
        return instance

    # -- inspection -----------------------------------------------------

    @property
    def numerator(self) -> MPZ:
        return self._num

    @property
    def denominator(self) -> MPZ:
        return self._den

    @property
    def sign(self) -> int:
        return self._num.sign

    def __bool__(self) -> bool:
        return bool(self._num)

    def __repr__(self) -> str:
        return "MPQ(%d, %d)" % (int(self._num), int(self._den))

    def __hash__(self) -> int:
        from fractions import Fraction
        return hash(Fraction(int(self._num), int(self._den)))

    # -- comparisons ------------------------------------------------------

    def _cross(self, other: _Operand) -> Tuple[MPZ, MPZ]:
        other = _coerce(other)
        return self._num * other._den, other._num * self._den

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, (MPQ, MPZ, int)):
            return NotImplemented
        left, right = self._cross(other)
        return left == right

    def __lt__(self, other: _Operand) -> bool:
        left, right = self._cross(other)
        return left < right

    def __le__(self, other: _Operand) -> bool:
        left, right = self._cross(other)
        return left <= right

    def __gt__(self, other: _Operand) -> bool:
        left, right = self._cross(other)
        return left > right

    def __ge__(self, other: _Operand) -> bool:
        left, right = self._cross(other)
        return left >= right

    # -- arithmetic -------------------------------------------------------

    def __neg__(self) -> "MPQ":
        return MPQ._reduced(-self._num, self._den)

    def __abs__(self) -> "MPQ":
        return MPQ._reduced(abs(self._num), self._den)

    def __add__(self, other: _Operand) -> "MPQ":
        other = _coerce(other)
        return MPQ._reduced(self._num * other._den
                            + other._num * self._den,
                            self._den * other._den)

    __radd__ = __add__

    def __sub__(self, other: _Operand) -> "MPQ":
        return self + (-_coerce(other))

    def __rsub__(self, other: _Operand) -> "MPQ":
        return _coerce(other) + (-self)

    def __mul__(self, other: _Operand) -> "MPQ":
        other = _coerce(other)
        return MPQ._reduced(self._num * other._num,
                            self._den * other._den)

    __rmul__ = __mul__

    def __truediv__(self, other: _Operand) -> "MPQ":
        other = _coerce(other)
        if not other:
            raise ZeroDivisionError("MPQ division by zero")
        return MPQ._reduced(self._num * other._den,
                            self._den * other._num)

    def __rtruediv__(self, other: _Operand) -> "MPQ":
        return _coerce(other) / self

    def __pow__(self, exponent: int) -> "MPQ":
        if exponent >= 0:
            return MPQ._reduced(self._num ** MPZ(exponent),
                                self._den ** MPZ(exponent))
        if not self:
            raise ZeroDivisionError("0 to a negative power")
        return MPQ._reduced(self._den ** MPZ(-exponent),
                            self._num ** MPZ(-exponent))

    def reciprocal(self) -> "MPQ":
        """1/q."""
        if not self:
            raise ZeroDivisionError("reciprocal of zero")
        return MPQ._reduced(self._den, self._num)

    # -- conversions -------------------------------------------------------

    def to_mpf(self, precision: int) -> MPF:
        """The nearest (truncated) float at the given precision."""
        return MPF.from_ratio(self._num, self._den, precision)

    def __float__(self) -> float:
        return float(self.to_mpf(96))

    def floor_mpz(self) -> MPZ:
        """Floor toward negative infinity."""
        return self._num // self._den


def _coerce(value: _Operand) -> MPQ:
    if isinstance(value, MPQ):
        return value
    if isinstance(value, (MPZ, int)):
        return MPQ(value, 1)
    raise TypeError("cannot coerce %r to MPQ" % (value,))
