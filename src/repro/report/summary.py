"""Cross-platform cost summaries for recorded traces.

One call prices a workload trace on every platform model and returns a
uniform comparison — the programmatic form of the Figure 13 rows, used
by the CLI's ``price`` command and handy in notebooks/scripts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.platforms import cpu, gpu
from repro.profiling import OperationTrace, classify_breakdown
from repro.runtime import mpapca


@dataclass
class PlatformCost:
    """Cost of one trace on one platform."""

    seconds: float
    joules: Optional[float]      # None where the model has no energy


@dataclass
class TraceComparison:
    """A trace priced across platforms."""

    costs: Dict[str, PlatformCost]
    cpu_breakdown: Dict[str, float]   # Figure 2 classes

    @property
    def speedup(self) -> float:
        """Cambricon-P speedup over the CPU."""
        return (self.costs["cpu"].seconds
                / self.costs["cambricon_p"].seconds)

    @property
    def energy_benefit(self) -> float:
        cpu_joules = self.costs["cpu"].joules
        camp_joules = self.costs["cambricon_p"].joules
        if cpu_joules is None or camp_joules is None:
            raise ValueError("energy benefit needs joules for both "
                             "platforms; a cost model left them unset")
        return cpu_joules / camp_joules

    def table(self) -> str:
        """Fixed-width comparison table."""
        lines = ["%-14s %-12s %-12s" % ("platform", "seconds", "joules")]
        for name, cost in self.costs.items():
            joules = "%.3e" % cost.joules if cost.joules is not None \
                else "-"
            lines.append("%-14s %-12.3e %-12s"
                         % (name, cost.seconds, joules))
        lines.append("")
        lines.append("speedup %.2fx   energy benefit %.2fx"
                     % (self.speedup, self.energy_benefit))
        classes = ", ".join("%s %.0f%%" % (k, v * 100)
                            for k, v in self.cpu_breakdown.items()
                            if v >= 0.005)
        lines.append("CPU runtime classes: " + classes)
        return "\n".join(lines)


    def as_dict(self) -> Dict[str, object]:
        """Plain-JSON form of the comparison (golden-file tested)."""
        return {
            "costs": {name: {"seconds": cost.seconds,
                             "joules": cost.joules}
                      for name, cost in self.costs.items()},
            "speedup": self.speedup,
            "cpu_breakdown": dict(self.cpu_breakdown),
        }


def compare_trace(trace: OperationTrace,
                  gpu_batch: int = 1) -> TraceComparison:
    """Price a trace on the CPU, GPU and Cambricon-P models."""
    cpu_cost = cpu.price_trace(trace)
    camp_cost = mpapca.price_trace(trace)
    gpu_seconds = gpu.price_trace(trace, batch=gpu_batch)
    costs = {
        "cpu": PlatformCost(cpu_cost.seconds, cpu_cost.joules),
        "cambricon_p": PlatformCost(camp_cost.seconds, camp_cost.joules),
        "gpu": PlatformCost(gpu_seconds, gpu.energy_joules(gpu_seconds)),
    }
    breakdown = classify_breakdown(cpu_cost.breakdown()).as_dict()
    return TraceComparison(costs, breakdown)
