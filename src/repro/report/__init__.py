"""ASCII figures, schedules, and cross-platform cost summaries."""

from repro.report.compile_report import SECTIONS, compile_report
from repro.report.figures import (figure11_data, figure13_data, figure_11,
                                  figure_13, render_loglog)
from repro.report.schedule_view import multiply_occupancy, occupancy_map
from repro.report.summary import (PlatformCost, TraceComparison,
                                  compare_trace)

__all__ = ["SECTIONS", "compile_report", "PlatformCost", "TraceComparison", "compare_trace",
           "figure11_data", "figure13_data",
           "figure_11", "figure_13", "multiply_occupancy",
           "occupancy_map", "render_loglog"]
