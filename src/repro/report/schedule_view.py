"""ASCII visualization of controller schedules and PE occupancy.

Shows how the Core Controller tiles a monolithic multiplication onto
the PE array: one row per wave, one column per PE (bucketed for large
arrays), glyphs encoding which pattern chunk each PE holds — making
the pattern-multicast structure of Section V-B3 visible at a glance.
"""

from __future__ import annotations

from repro.core.controller import CoreController, MultiplySchedule

_GLYPHS = "0123456789abcdefghijklmnopqrstuvwxyz"


def occupancy_map(schedule: MultiplySchedule,
                  max_columns: int = 64) -> str:
    """Wave-by-PE occupancy chart; glyph = chunk index (mod 36)."""
    columns = min(schedule.num_pes, max_columns)
    bucket = -(-schedule.num_pes // columns)
    lines = [
        "schedule: %d x %d limbs -> %d passes, %d wave(s) on %d PEs"
        % (schedule.num_x_limbs, schedule.num_y_limbs,
           schedule.num_passes, schedule.num_waves, schedule.num_pes),
        "glyph = pattern-chunk index (mod 36); '.' = idle PE slot",
    ]
    for wave_index, passes in enumerate(schedule.waves()):
        row = ["."] * columns
        for pass_ in passes:
            column = min(pass_.pe_index // bucket, columns - 1)
            row[column] = _GLYPHS[pass_.chunk_index % len(_GLYPHS)]
        lines.append("wave %3d |%s|" % (wave_index, "".join(row)))
    utilized = schedule.num_passes / (schedule.num_waves
                                      * schedule.num_pes)
    lines.append("array utilization: %.1f%%" % (utilized * 100))
    return "\n".join(lines)


def multiply_occupancy(bits_a: int, bits_b: int,
                       num_pes: int = 256, num_ipus: int = 32,
                       q: int = 4, max_columns: int = 64) -> str:
    """Occupancy chart for an (a x b)-bit monolithic multiplication."""
    controller = CoreController(num_pes, num_ipus, q)
    limbs_a = max(1, -(-bits_a // 32))
    limbs_b = max(1, -(-bits_b // 32))
    return occupancy_map(controller.plan_multiply(limbs_a, limbs_b),
                         max_columns)
