"""ASCII figure rendering for the reproduced evaluation plots.

The benchmark harness writes tables; this module turns the headline
curves — Figure 11's time-vs-bitwidth lines and Figure 13's
speedup-vs-precision series — into log-scale ASCII charts, so the
repository produces actual *figures* without any plotting dependency.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

Series = Dict[str, List[Tuple[float, float]]]

#: Glyphs assigned to series in order.
GLYPHS = "ox+*#@"


def _log_positions(values: Sequence[float], size: int) -> List[int]:
    low = math.log10(min(values))
    high = math.log10(max(values))
    span = (high - low) or 1.0
    return [round((math.log10(v) - low) / span * (size - 1))
            for v in values]


def render_loglog(series: Series, width: int = 72, height: int = 24,
                  title: str = "", x_label: str = "",
                  y_label: str = "") -> str:
    """Render named (x, y) series on a log-log ASCII grid."""
    all_x = [x for points in series.values() for x, _ in points]
    all_y = [y for points in series.values() for _, y in points]
    if not all_x:
        return "(no data)"
    x_low, x_high = math.log10(min(all_x)), math.log10(max(all_x))
    y_low, y_high = math.log10(min(all_y)), math.log10(max(all_y))
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, points) in enumerate(series.items()):
        glyph = GLYPHS[index % len(GLYPHS)]
        for x, y in points:
            col = round((math.log10(x) - x_low) / x_span * (width - 1))
            row = round((math.log10(y) - y_low) / y_span * (height - 1))
            grid[height - 1 - row][col] = glyph

    lines = []
    if title:
        lines.append(title)
    top_label = "%.0e" % (10 ** y_high)
    bottom_label = "%.0e" % (10 ** y_low)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(8)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(8)
        elif row_index == height // 2 and y_label:
            prefix = y_label[:8].rjust(8)
        else:
            prefix = " " * 8
        lines.append(prefix + " |" + "".join(row))
    lines.append(" " * 8 + " +" + "-" * width)
    lines.append(" " * 10 + ("%.0e" % (10 ** x_low)).ljust(width - 8)
                 + "%.0e" % (10 ** x_high))
    if x_label:
        lines.append(" " * 10 + x_label)
    legend = "   ".join("%s %s" % (GLYPHS[i % len(GLYPHS)], name)
                        for i, name in enumerate(series))
    lines.append("legend: " + legend)
    return "\n".join(lines)


def figure_11(max_bits: int = 1 << 26) -> str:
    """Figure 11 as ASCII: multiply time vs bitwidth per platform."""
    from repro.platforms import avx512, cpu, gpu
    from repro.runtime import mpapca
    series: Series = {"CPU+GMP": [], "Cambricon-P": [], "V100+CGBN": [],
                      "AVX512IFMA": []}
    bits = 64
    while bits <= max_bits:
        series["CPU+GMP"].append((bits, cpu.multiply_seconds(bits)))
        series["Cambricon-P"].append((bits,
                                      mpapca.multiply_seconds(bits)))
        if gpu.applicable(bits):
            series["V100+CGBN"].append(
                (bits, gpu.multiply_seconds(bits, batch=10000)))
        if avx512.applicable(bits):
            series["AVX512IFMA"].append((bits,
                                         avx512.multiply_seconds(bits)))
        bits *= 2
    return render_loglog(series,
                         title="Figure 11: N-bit multiply time (s)",
                         x_label="operand bits (log)",
                         y_label="sec")


def figure_13() -> str:
    """Figure 13 as ASCII: app speedups vs problem size (synthetic)."""
    from repro.apps import synthetic
    from repro.platforms import cpu
    from repro.runtime import mpapca

    def speedup(trace) -> float:
        return (cpu.price_trace(trace).seconds
                / mpapca.price_trace(trace).seconds)

    series: Series = {
        "Pi": [(d, speedup(synthetic.pi_trace(d)))
               for d in (10 ** 4, 10 ** 5, 10 ** 6)],
        "Frac": [(p, speedup(synthetic.frac_trace(p // 4, p)))
                 for p in (4096, 16384, 65536)],
        "zkcm": [(p, speedup(synthetic.zkcm_trace(6, p)))
                 for p in (2048, 3072, 4096)],
        "RSA": [(b, speedup(synthetic.rsa_trace(b)))
                for b in (4096, 16384, 65536)],
    }
    return render_loglog(series,
                         title="Figure 13: app speedup vs size "
                               "(Cambricon-P over CPU)",
                         x_label="problem size (digits/bits, log)",
                         y_label="speedup")
