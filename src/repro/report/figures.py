"""ASCII figure rendering for the reproduced evaluation plots.

The benchmark harness writes tables; this module turns the headline
curves — Figure 11's time-vs-bitwidth lines and Figure 13's
speedup-vs-precision series — into log-scale ASCII charts, so the
repository produces actual *figures* without any plotting dependency.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

Series = Dict[str, List[Tuple[float, float]]]

#: Glyphs assigned to series in order.
GLYPHS = "ox+*#@"


def _log_positions(values: Sequence[float], size: int) -> List[int]:
    low = math.log10(min(values))
    high = math.log10(max(values))
    span = (high - low) or 1.0
    return [round((math.log10(v) - low) / span * (size - 1))
            for v in values]


def render_loglog(series: Series, width: int = 72, height: int = 24,
                  title: str = "", x_label: str = "",
                  y_label: str = "") -> str:
    """Render named (x, y) series on a log-log ASCII grid."""
    all_x = [x for points in series.values() for x, _ in points]
    all_y = [y for points in series.values() for _, y in points]
    if not all_x:
        return "(no data)"
    x_low, x_high = math.log10(min(all_x)), math.log10(max(all_x))
    y_low, y_high = math.log10(min(all_y)), math.log10(max(all_y))
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, points) in enumerate(series.items()):
        glyph = GLYPHS[index % len(GLYPHS)]
        for x, y in points:
            col = round((math.log10(x) - x_low) / x_span * (width - 1))
            row = round((math.log10(y) - y_low) / y_span * (height - 1))
            grid[height - 1 - row][col] = glyph

    lines = []
    if title:
        lines.append(title)
    top_label = "%.0e" % (10 ** y_high)
    bottom_label = "%.0e" % (10 ** y_low)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(8)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(8)
        elif row_index == height // 2 and y_label:
            prefix = y_label[:8].rjust(8)
        else:
            prefix = " " * 8
        lines.append(prefix + " |" + "".join(row))
    lines.append(" " * 8 + " +" + "-" * width)
    lines.append(" " * 10 + ("%.0e" % (10 ** x_low)).ljust(width - 8)
                 + "%.0e" % (10 ** x_high))
    if x_label:
        lines.append(" " * 10 + x_label)
    legend = "   ".join("%s %s" % (GLYPHS[i % len(GLYPHS)], name)
                        for i, name in enumerate(series))
    lines.append("legend: " + legend)
    return "\n".join(lines)


def _figure11_point(bits: int) -> Dict[str, float]:
    """One Figure-11 column: per-platform seconds at ``bits``.

    Top-level (picklable) so a :class:`~repro.parallel.ParallelExecutor`
    can fan the sweep out across worker processes.
    """
    from repro.platforms import avx512, cpu, gpu
    from repro.runtime import mpapca
    point: Dict[str, float] = {
        "bits": float(bits),
        "CPU+GMP": cpu.multiply_seconds(bits),
        "Cambricon-P": mpapca.multiply_seconds(bits),
    }
    if gpu.applicable(bits):
        point["V100+CGBN"] = gpu.multiply_seconds(bits, batch=10000)
    if avx512.applicable(bits):
        point["AVX512IFMA"] = avx512.multiply_seconds(bits)
    return point


def figure11_data(max_bits: int = 1 << 26, executor=None) -> Series:
    """Figure 11's series data: platform -> [(bits, seconds), ...].

    The per-bitwidth points are independent model evaluations, so an
    executor parallelizes them; ordered gathering keeps the series
    identical to a serial sweep (golden-file tested).
    """
    sizes = []
    bits = 64
    while bits <= max_bits:
        sizes.append(bits)
        bits *= 2
    if executor is None:
        from repro.parallel import ParallelExecutor
        executor = ParallelExecutor()
    points = executor.map(_figure11_point, sizes)
    series: Series = {"CPU+GMP": [], "Cambricon-P": [], "V100+CGBN": [],
                      "AVX512IFMA": []}
    for x, point in zip(sizes, points):
        for name in series:
            if name in point:
                series[name].append((x, point[name]))
    _flush_model_cache()
    return series


def figure_11(max_bits: int = 1 << 26, executor=None) -> str:
    """Figure 11 as ASCII: multiply time vs bitwidth per platform."""
    return render_loglog(figure11_data(max_bits, executor),
                         title="Figure 11: N-bit multiply time (s)",
                         x_label="operand bits (log)",
                         y_label="sec")


#: (series name, x value, synthetic-trace builder, builder args) for
#: every Figure-13 point; module-level so the points can be computed in
#: worker processes by name.
FIGURE13_POINTS: List[Tuple[str, int, str, tuple]] = (
    [("Pi", d, "pi_trace", (d,)) for d in (10 ** 4, 10 ** 5, 10 ** 6)]
    + [("Frac", p, "frac_trace", (p // 4, p))
       for p in (4096, 16384, 65536)]
    + [("zkcm", p, "zkcm_trace", (6, p)) for p in (2048, 3072, 4096)]
    + [("RSA", b, "rsa_trace", (b,)) for b in (4096, 16384, 65536)]
)


def _figure13_point(spec: Tuple[str, int, str, tuple]
                    ) -> Tuple[str, int, float]:
    """(series, x, speedup) for one synthetic application point."""
    from repro.apps import synthetic
    from repro.platforms import cpu
    from repro.runtime import mpapca
    name, x, builder, args = spec
    trace = getattr(synthetic, builder)(*args)
    speedup = (cpu.price_trace(trace).seconds
               / mpapca.price_trace(trace).seconds)
    return name, x, speedup


def figure13_data(executor=None) -> Series:
    """Figure 13's series data: app -> [(size, speedup), ...]."""
    if executor is None:
        from repro.parallel import ParallelExecutor
        executor = ParallelExecutor()
    results = executor.map(_figure13_point, FIGURE13_POINTS)
    series: Series = {}
    for name, x, speedup in results:
        series.setdefault(name, []).append((x, speedup))
    _flush_model_cache()
    return series


def figure_13(executor=None) -> str:
    """Figure 13 as ASCII: app speedups vs problem size (synthetic)."""
    return render_loglog(figure13_data(executor),
                         title="Figure 13: app speedup vs size "
                               "(Cambricon-P over CPU)",
                         x_label="problem size (digits/bits, log)",
                         y_label="speedup")


def _flush_model_cache() -> None:
    """Spill freshly-priced model points to the persistent cache."""
    from repro.core.model import flush_cycle_cache
    flush_cycle_cache()
