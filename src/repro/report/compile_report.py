"""Compile the per-experiment results into one reproduction report.

After ``pytest benchmarks/`` has filled ``results/``, this module
stitches the renderings into a single ordered document (REPORT.md) that
walks the paper's evaluation start to finish — the artifact a reviewer
would read first.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Tuple

#: (results file stem, section heading) in the paper's order.
SECTIONS: List[Tuple[str, str]] = [
    ("sec2b_utilization", "Section II-B: hardware utilization"),
    ("fig02_breakdown", "Figure 2 (right): runtime breakdown"),
    ("fig02_gpu", "Figure 2 (left): GPU vs CPU"),
    ("fig03b_bandwidth", "Figure 3(b): hierarchy utilization"),
    ("fig03c_roofline", "Figure 3(c): CPU APC roofline"),
    ("fig04_schoolbook", "Figure 4: schoolbook decomposition"),
    ("fig04_karatsuba_traffic", "Section II-C: Karatsuba intermediates"),
    ("fig04_sweep", "Intermediates vs granularity"),
    ("sec3_multiplier", "Section III: monolithic multiplier PPA"),
    ("bips_lambda", "Section IV-B: BIPS lambda"),
    ("bips_lambda_py_sweep", "BIPS lambda vs index width"),
    ("fig11_multiply", "Figure 11: multiplication sweep"),
    ("fig11_zigzag", "Figure 11: SSA padding zigzag"),
    ("fig11_gpu_parity", "Figure 11 / Table III: GPU parity"),
    ("fig11_ascii", "Figure 11 (chart)"),
    ("tab01_schoolbook", "Table I: schoolbook exponent"),
    ("tab01_karatsuba", "Table I: Karatsuba exponent"),
    ("tab01_toom3", "Table I: Toom-3 exponent"),
    ("tab01_toom4", "Table I: Toom-4 exponent"),
    ("tab01_toom6", "Table I: Toom-6 exponent"),
    ("tab01_linear", "Table I: linear operators"),
    ("tab01_division", "Table I: division scaling"),
    ("tab03_comparison", "Table III: platform comparison"),
    ("sec7a_hardware", "Section VII-A: hardware characteristics"),
    ("fig12_roofline", "Figure 12: Cambricon-P roofline"),
    ("fig12_duty", "Figure 12: memory-agent duty"),
    ("fig13_time", "Figure 13 (top): application time"),
    ("fig13_energy", "Figure 13 (bottom): application energy"),
    ("fig13_ascii", "Figure 13 (chart)"),
    ("fig10_combining", "Figure 10: GU combining modes"),
    ("ablation_carry", "Ablation: carry-parallel gather"),
    ("ablation_carry_bound", "Ablation: Equation 2 bound"),
    ("ablation_q", "Ablation: q sweep"),
    ("ablation_pe_count", "Ablation: PE count"),
    ("ablation_duty", "Ablation: memory duty"),
    ("batch_throughput", "Batch-processing amortization"),
    ("batch_vs_model", "Batch vs throughput model"),
    ("ext_fft", "Extension: FFT multiplication"),
    ("ext_fft_budget", "Extension: FFT precision budget"),
    ("ext_he_functional", "Extension: Paillier HE (functional)"),
    ("ext_he_scaling", "Extension: Paillier HE scaling"),
]

HEADER = """# Reproduction report

Generated from `results/*.txt` (run `pytest benchmarks/ -q` first).
Paper-vs-measured commentary lives in `EXPERIMENTS.md`; methodology in
`DESIGN.md`.
"""


def compile_report(results_dir: Path,
                   output: Optional[Path] = None) -> str:
    """Assemble REPORT.md from the results directory."""
    parts = [HEADER]
    missing = []
    for stem, heading in SECTIONS:
        path = results_dir / (stem + ".txt")
        if not path.exists():
            missing.append(stem)
            continue
        parts.append("## %s\n\n```\n%s```\n"
                     % (heading, path.read_text()))
    if missing:
        parts.append("_Missing results (bench not yet run): %s_\n"
                     % ", ".join(missing))
    text = "\n".join(parts)
    if output is not None:
        output.write_text(text)
    return text
