"""The learned cost model: per-(op, backend) log-log regressions.

The analytic :meth:`Plan.cost` prices work in accelerator *cycles* and
— because the MPApca pricer sees only operand bits — charges every
backend of one shape identically, while measured nanoseconds on this
Python runtime differ by 15–90x between the limb recursion and the
packed/specialized kernels.  This module fits the obvious correction:
for every (op, backend) group with enough measurements, an ordinary
least-squares line in log-log space::

    log(ns) = a + b * log(limbs)

Pure stdlib, two coefficients per group, closed-form fit.  The slope
is clamped to be non-negative so predictions are finite, positive, and
monotone non-decreasing in limbs by construction — properties the
hypothesis suite asserts and the selection/admission consumers rely
on.

Fitted models persist in the version-salted disk cache under a key
that includes the tuned-thresholds fingerprint: ``repro tune`` changes
the fingerprint, which strands every stale fit exactly like it strands
stale plans.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis import env as _env
from repro.cost.features import canonical_backend, canonical_op

#: Salt for the on-disk model cache; bump on payload layout changes.
COST_MODEL_VERSION = 1

#: Minimum distinct limb sizes before a group is considered fittable.
MIN_GROUP_SIZES = 3

#: Exponent-bit convention for the analytic powmod comparison (the
#: serve layer's RSA-shaped jobs use 64-bit exponents; what matters for
#: the eval gate is that model and analytic price the *same* job).
POWMOD_EXP_BITS = 64


def enabled() -> bool:
    """Whether the learned model may influence anything at all."""
    return _env.enabled(_env.COST)


def _group_key(op: str, backend: str) -> str:
    return "%s|%s" % (op, backend)


def analytic_cycles(op: str, limbs: int) -> Optional[float]:
    """The analytic accelerator-cycle price of one modeled job shape.

    Mirrors how each op's bench/tune measurements were taken: mul/sqr
    are n-by-n, div is the 2n-by-n schoolbook shape, powmod uses the
    :data:`POWMOD_EXP_BITS` exponent convention."""
    from repro.mpn.nat import LIMB_BITS
    from repro.runtime import mpapca
    kind = canonical_op(op)
    if kind is None or limbs < 1:
        return None
    bits = limbs * LIMB_BITS
    if kind in ("mul", "sqr"):
        return mpapca.mul_cycles(bits, bits)
    if kind == "div":
        return mpapca.div_cycles(2 * bits, bits)
    return mpapca.powmod_cycles(bits, POWMOD_EXP_BITS)


@dataclass
class CostModel:
    """A fitted set of per-(op, backend) regressions.

    ``rate_cycles_per_ns`` is the observed conversion rate between the
    analytic cycle price and wall nanoseconds on this host (median over
    the training rows); it turns ``Plan.cost()`` into a comparable ns
    estimate for the eval gate and for seeding service rates."""

    fingerprint: Tuple[int, ...]
    rate_cycles_per_ns: float
    groups: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def predict_ns(self, op: str, backend: str,
                   limbs: int) -> Optional[float]:
        """Predicted wall ns, or ``None`` outside the fitted domain."""
        kind = canonical_op(op)
        resolved = canonical_backend(backend)
        if kind is None or resolved is None or limbs < 1:
            return None
        group = self.groups.get(_group_key(kind, resolved))
        if group is None:
            return None
        value = math.exp(group["a"] + group["b"] * math.log(limbs))
        if not math.isfinite(value) or value <= 0.0:
            return None
        return value

    def covers(self, op: str, backend: str) -> bool:
        kind = canonical_op(op)
        resolved = canonical_backend(backend or "")
        return kind is not None and resolved is not None \
            and _group_key(kind, resolved) in self.groups

    def to_payload(self) -> Dict:
        return {"version": COST_MODEL_VERSION,
                "fingerprint": list(self.fingerprint),
                "rate_cycles_per_ns": self.rate_cycles_per_ns,
                "groups": self.groups}

    @classmethod
    def from_payload(cls, payload) -> Optional["CostModel"]:
        if not isinstance(payload, dict) \
                or payload.get("version") != COST_MODEL_VERSION:
            return None
        groups = payload.get("groups")
        fingerprint = payload.get("fingerprint")
        rate = payload.get("rate_cycles_per_ns")
        if not isinstance(groups, dict) \
                or not isinstance(fingerprint, (list, tuple)) \
                or not isinstance(rate, (int, float)) or rate <= 0:
            return None
        clean: Dict[str, Dict[str, float]] = {}
        for key, group in groups.items():
            if not isinstance(group, dict):
                return None
            try:
                clean[str(key)] = {
                    "a": float(group["a"]), "b": float(group["b"]),
                    "n": float(group.get("n", 0)),
                    "limbs_min": float(group.get("limbs_min", 1)),
                    "limbs_max": float(group.get("limbs_max", 1)),
                }
            except (KeyError, TypeError, ValueError):
                return None
        return cls(fingerprint=tuple(int(x) for x in fingerprint),
                   rate_cycles_per_ns=float(rate), groups=clean)

    def digest(self) -> str:
        """Stable identity of the fitted coefficients (cache salt)."""
        blob = json.dumps(self.to_payload(), sort_keys=True)
        return hashlib.sha1(blob.encode("utf-8")).hexdigest()[:16]


def _fit_group(points: List[Tuple[int, float]]) -> Optional[Dict]:
    """OLS in log-log space over (limbs, ns) points; slope clamped >= 0."""
    sizes = sorted({limbs for limbs, _ in points})
    if len(sizes) < MIN_GROUP_SIZES:
        return None
    xs = [math.log(limbs) for limbs, _ in points]
    ys = [math.log(ns) for _, ns in points]
    n = float(len(xs))
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    var_x = sum((x - mean_x) ** 2 for x in xs)
    if var_x <= 0.0:
        return None
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = max(0.0, cov / var_x)
    intercept = mean_y - slope * mean_x
    return {"a": intercept, "b": slope, "n": n,
            "limbs_min": float(sizes[0]), "limbs_max": float(sizes[-1])}


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def fit(rows: Iterable[Dict],
        fingerprint: Tuple[int, ...]) -> Optional[CostModel]:
    """Fit a model from dataset rows; ``None`` when nothing is fittable.

    Groups without :data:`MIN_GROUP_SIZES` distinct limb sizes are
    dropped (their predictions fall back to the analytic path) rather
    than fitted badly."""
    grouped: Dict[str, List[Tuple[int, float]]] = {}
    ratios: List[float] = []
    for row in rows:
        key = _group_key(row["op"], row["backend"])
        grouped.setdefault(key, []).append((row["limbs"], row["ns"]))
        cycles = analytic_cycles(row["op"], row["limbs"])
        if cycles is not None and row["ns"] > 0:
            ratios.append(cycles / row["ns"])
    groups = {}
    for key, points in grouped.items():
        fitted = _fit_group(points)
        if fitted is not None:
            groups[key] = fitted
    if not groups or not ratios:
        return None
    return CostModel(fingerprint=tuple(fingerprint),
                     rate_cycles_per_ns=_median(ratios), groups=groups)


# -- evaluation ---------------------------------------------------------------

def split_rows(rows: List[Dict]) -> Tuple[List[Dict], List[Dict]]:
    """Deterministic train/holdout split: rows are sorted by their
    canonical identity and every third row is held out, so repeated
    evals of one dataset always measure the same partition."""
    ordered = sorted(rows, key=lambda row: (row["op"], row["backend"],
                                            row["limbs"], row["ns"]))
    train = [row for i, row in enumerate(ordered) if i % 3 != 2]
    holdout = [row for i, row in enumerate(ordered) if i % 3 == 2]
    return train, holdout


def evaluate(rows: List[Dict],
             fingerprint: Tuple[int, ...]) -> Optional[Dict]:
    """Held-out comparison of the fitted model against the analytic
    cycle price (converted at the train-side observed rate).

    Returns the ``BENCH_cost.json`` payload body: per-row relative
    errors are summarized as medians, and ``gate_ok`` asserts the
    model's median is at least ``gate_ratio``x lower."""
    train, holdout = split_rows(rows)
    model = fit(train, fingerprint)
    if model is None or not holdout:
        return None
    model_errors: List[float] = []
    analytic_errors: List[float] = []
    scored = 0
    for row in holdout:
        predicted = model.predict_ns(row["op"], row["backend"],
                                     row["limbs"])
        cycles = analytic_cycles(row["op"], row["limbs"])
        if predicted is None or cycles is None:
            continue
        analytic_ns = cycles / model.rate_cycles_per_ns
        model_errors.append(abs(predicted - row["ns"]) / row["ns"])
        analytic_errors.append(abs(analytic_ns - row["ns"]) / row["ns"])
        scored += 1
    if not scored:
        return None
    model_med = _median(model_errors)
    analytic_med = _median(analytic_errors)
    ratio = analytic_med / model_med if model_med > 0 else float("inf")
    return {
        "rows_total": len(rows),
        "rows_train": len(train),
        "rows_holdout": len(holdout),
        "rows_scored": scored,
        "groups": sorted(model.groups),
        "rate_cycles_per_ns": model.rate_cycles_per_ns,
        "model_median_rel_err": model_med,
        "analytic_median_rel_err": analytic_med,
        "error_ratio": ratio,
        "gate_ratio": 2.0,
        "gate_ok": ratio >= 2.0,
        "model_digest": model.digest(),
    }


# -- persistence --------------------------------------------------------------

def _model_cache():
    from repro.parallel.cache import named_cache
    return named_cache("cost_models", maxsize=8,
                       version=COST_MODEL_VERSION)


def _cache_key(fingerprint: Tuple[int, ...]) -> str:
    cache = _model_cache()
    return cache.key("cost-model", tuple(fingerprint))


def save(model: CostModel) -> None:
    """Persist a fitted model under its thresholds fingerprint."""
    cache = _model_cache()
    cache.put(_cache_key(model.fingerprint), model.to_payload())
    cache.save_if_dirty()
    invalidate_active()


def load(fingerprint: Tuple[int, ...]) -> Optional[CostModel]:
    """The persisted model for one thresholds fingerprint, if any."""
    payload = _model_cache().get(_cache_key(fingerprint))
    if payload is None:
        return None
    return CostModel.from_payload(payload)


#: Memoized (fingerprint, model-or-None) pair; the fingerprint part
#: makes a retune (which changes the active thresholds) a cache miss.
_ACTIVE: Optional[Tuple[Tuple[int, ...], Optional[CostModel]]] = None


def active_model() -> Optional[CostModel]:
    """The persisted model matching the *active* tuned thresholds.

    Returns ``None`` when the killswitch is off, no fit was persisted,
    or the persisted fit was made under different thresholds (``repro
    tune`` strands stale fits by changing the fingerprint)."""
    global _ACTIVE
    if not enabled():
        return None
    from repro.plan import select as _select
    fingerprint = tuple(_select.fingerprint(_select.active()))
    if _ACTIVE is not None and _ACTIVE[0] == fingerprint:
        return _ACTIVE[1]
    model = load(fingerprint)
    _ACTIVE = (fingerprint, model)
    return model


def invalidate_active() -> None:
    """Drop the memoized active model (tests, post-save, retune)."""
    global _ACTIVE
    _ACTIVE = None
