"""Featurization: one canonical (op, backend, limbs) key per plan.

The learned cost model (:mod:`repro.cost.model`) regresses measured
nanoseconds against operand size per (op, backend) group, so every
producer of training rows — ``repro tune`` bisections, ``repro
bench-kernels`` points, ``REPRO_TRACE`` span dumps — and every
consumer of predictions (plan selection, admission pricing) must agree
on what "the size" of an operation is.  This module is that single
agreement:

* ``mul``/``sqr`` — the smaller operand's limb count (the quantity the
  tuned crossovers compare, and the size both tune and bench generate
  both operands at);
* ``div``/``mod`` — the *divisor's* limb count (tune and bench both
  time the 2n-by-n shape, and ``select.div_backend`` keys on the
  divisor);
* ``powmod`` — the modulus limb count (the quantity
  ``select.powmod_backend`` keys on; the exponent scales the loop
  length, not the per-iteration kernel the crossovers compare).

Backend names are canonicalized to the bench vocabulary: the plan
layer's ``"library"`` is the bench's ``"limb"``; everything else
(``packed``/``rns``/``specialized``/``device``) passes through.
"""

from __future__ import annotations

from typing import Optional, Tuple

#: Operators the model fits; everything else is priced analytically.
MODELED_OPS = ("mul", "sqr", "div", "powmod")

#: Backend vocabulary of the dataset (the bench-kernels names).
MODELED_BACKENDS = ("limb", "packed", "rns", "specialized", "device")


def canonical_op(op: str) -> Optional[str]:
    """The dataset op for a plan/job op; ``None`` when not modeled.

    ``mod`` shares division's kernels (same divisor-limbs crossovers,
    same measured shape), so its rows and predictions pool with
    ``div``.
    """
    if op == "mod":
        return "div"
    if op in MODELED_OPS:
        return op
    return None


def canonical_backend(backend: str) -> Optional[str]:
    """The dataset backend name for a resolved plan backend."""
    if backend == "library":
        return "limb"
    if backend in MODELED_BACKENDS:
        return backend
    return None


def plan_backend_name(dataset_backend: str) -> str:
    """Inverse of :func:`canonical_backend` (for selection answers)."""
    if dataset_backend == "limb":
        return "library"
    return dataset_backend


def op_limbs(op: str, bits_a: int, bits_b: int) -> Optional[int]:
    """The canonical size feature for one op, in limbs (``None`` when
    the op is not modeled)."""
    from repro.mpn.nat import LIMB_BITS
    kind = canonical_op(op)
    if kind is None:
        return None
    if kind in ("mul", "sqr"):
        smaller = min(max(bits_a, 1), max(bits_b, 1)) if op != "sqr" \
            else max(bits_a, 1)
        return -(-smaller // LIMB_BITS)
    if kind == "div":
        return -(-max(bits_b, 1) // LIMB_BITS)
    # powmod: the modulus width rides bits_a (OpSpec.for_job contract).
    return -(-max(bits_a, 1) // LIMB_BITS)


def plan_features(plan) -> Optional[Tuple[str, str, int]]:
    """``(op, backend, limbs)`` for a lowered plan, or ``None``.

    ``None`` means the plan is outside the model's domain (unmodeled
    op, unmodeled backend, or a degenerate size) and must be priced by
    the analytic path.
    """
    spec = plan.spec
    op = canonical_op(spec.op)
    backend = canonical_backend(plan.backend)
    if op is None or backend is None:
        return None
    limbs = op_limbs(spec.op, spec.bits_a, spec.bits_b)
    if limbs is None or limbs < 1:
        return None
    return (op, backend, limbs)
