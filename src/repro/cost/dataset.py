"""The measurement dataset: ``results/COST_dataset.jsonl``.

One JSON object per line, schema-versioned, append-only.  Rows come
from three producers the stack already runs for free:

* ``repro tune`` — every bisection probe is a clean best-of-N kernel
  timing at a known (op, backend, limbs) point; the recorder context
  below collects them instead of discarding everything but the chosen
  crossover;
* ``repro cost harvest`` — folds the checked-in benchmark JSONs
  (``BENCH_kernels.json`` per-backend points, ``BENCH_serve.json``
  per-(op, backend) latency aggregates) and ``REPRO_TRACE`` span dumps
  into rows;
* tests and ad-hoc scripts via :func:`append_rows`.

Row schema (``schema`` = :data:`DATASET_SCHEMA_VERSION`)::

    {"schema": 1, "op": "mul", "backend": "packed", "limbs": 128,
     "ns": 215007.0, "source": "bench-kernels", "end_to_end": false}

``end_to_end`` marks rows whose nanoseconds include queueing/transport
(serve latency aggregates); :func:`load_rows` excludes them from
kernel fitting by default.  Unknown or mismatched-schema lines are
skipped on load — the dataset must never be able to break a fit.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from repro.analysis import env as _env
from repro.cost.features import (MODELED_BACKENDS, MODELED_OPS,
                                 canonical_backend, canonical_op)

#: Bump when a row's meaning changes; loaders skip other versions.
DATASET_SCHEMA_VERSION = 1

#: Environment override for the dataset path.
DATASET_ENV = _env.COST_DATASET.name

DEFAULT_DATASET = "results/COST_dataset.jsonl"


def dataset_path(path=None) -> Path:
    """Where rows accumulate: explicit arg, ``$REPRO_COST_DATASET``, or
    the checked-in default."""
    if path is not None:
        return Path(path)
    return Path(_env.string(_env.COST_DATASET, DEFAULT_DATASET))


def make_row(op: str, backend: str, limbs: int, ns: float,
             source: str, end_to_end: bool = False) -> Optional[Dict]:
    """One validated dataset row, or ``None`` when out of domain."""
    kind = canonical_op(op)
    resolved = canonical_backend(backend)
    if kind is None or resolved is None:
        return None
    if not isinstance(limbs, int) or limbs < 1:
        return None
    try:
        ns = float(ns)
    except (TypeError, ValueError):
        return None
    if not ns > 0.0 or ns != ns or ns == float("inf"):
        return None
    return {"schema": DATASET_SCHEMA_VERSION, "op": kind,
            "backend": resolved, "limbs": limbs, "ns": ns,
            "source": source, "end_to_end": bool(end_to_end)}


def _valid_row(payload) -> Optional[Dict]:
    if not isinstance(payload, dict) \
            or payload.get("schema") != DATASET_SCHEMA_VERSION:
        return None
    return make_row(payload.get("op", ""), payload.get("backend", ""),
                    payload.get("limbs", 0), payload.get("ns", 0.0),
                    str(payload.get("source", "unknown")),
                    bool(payload.get("end_to_end", False)))


def append_rows(rows: Iterable[Dict], path=None) -> int:
    """Append rows as JSON lines; returns how many were written."""
    target = dataset_path(path)
    valid = [row for row in (_valid_row(raw) for raw in rows)
             if row is not None]
    if not valid:
        return 0
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "a", encoding="utf-8") as handle:
        for row in valid:
            handle.write(json.dumps(row, sort_keys=True) + "\n")
    return len(valid)


def load_rows(path=None, kernel_only: bool = True) -> List[Dict]:
    """Every valid row in the dataset (malformed lines are skipped).

    ``kernel_only`` (the default) drops ``end_to_end`` rows — serve
    latencies include queueing and must not train the kernel model.
    """
    target = dataset_path(path)
    rows: List[Dict] = []
    try:
        text = target.read_text(encoding="utf-8")
    except OSError:
        return rows
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except ValueError:
            continue
        row = _valid_row(payload)
        if row is None:
            continue
        if kernel_only and row["end_to_end"]:
            continue
        rows.append(row)
    return rows


# -- harvesters ---------------------------------------------------------------

def harvest_bench_kernels(path) -> List[Dict]:
    """Rows from one ``repro bench-kernels`` report JSON.

    Every entry's per-backend ``ns`` map is a clean best-of-N kernel
    timing; ``bits`` converts to the canonical limbs feature exactly as
    the bench generated its operands (div entries time the 2n-by-n
    shape, so ``bits`` *is* the divisor width)."""
    from repro.mpn.nat import LIMB_BITS
    try:
        report = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return []
    rows: List[Dict] = []
    for entry in report.get("entries", []) \
            if isinstance(report, dict) else []:
        if not isinstance(entry, dict):
            continue
        op = entry.get("op")
        bits = entry.get("bits")
        timings = entry.get("ns")
        if op not in MODELED_OPS or not isinstance(bits, int) \
                or not isinstance(timings, dict):
            continue
        limbs = max(1, bits // LIMB_BITS)
        for backend, ns in timings.items():
            if backend not in MODELED_BACKENDS:
                continue
            row = make_row(op, backend, limbs, ns,
                           source="bench-kernels")
            if row is not None:
                rows.append(row)
    return rows


def harvest_serve(path) -> List[Dict]:
    """Rows from one ``repro bench-serve`` report JSON.

    Uses the per-(op, backend) latency aggregates the load client
    records (``op_backend_latency``); these are *end-to-end* times
    (queueing and transport included), so the rows are flagged
    ``end_to_end`` and excluded from kernel fits by default — they
    exist for calibration analysis, not regression training.  Reports
    predating the aggregate column yield nothing."""
    try:
        report = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return []
    rows: List[Dict] = []
    for entry in report.get("op_backend_latency", []) \
            if isinstance(report, dict) else []:
        if not isinstance(entry, dict) or entry.get("n", 0) < 3:
            continue
        row = make_row(str(entry.get("op", "")),
                       str(entry.get("backend", "")),
                       int(entry.get("limbs", 0) or 0),
                       float(entry.get("p50_ms", 0.0) or 0.0) * 1e6,
                       source="serve", end_to_end=True)
        if row is not None:
            rows.append(row)
    return rows


def harvest_trace(path) -> List[Dict]:
    """Rows from a ``REPRO_TRACE`` span dump (JSON lines).

    Traces stamped with the plan fingerprint (backend + limbs, see
    :func:`repro.serve.trace.annotate_plan`) and an
    ``execute_start->execute_end`` span yield one row each: the span
    divided by the batch size approximates the per-item kernel time
    (batch members share one dispatch)."""
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError:
        return []
    rows: List[Dict] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except ValueError:
            continue
        if not isinstance(payload, dict):
            continue
        meta = payload.get("meta")
        spans = payload.get("spans_ms")
        if not isinstance(meta, dict) or not isinstance(spans, dict):
            continue
        span_ms = spans.get("execute_start->execute_end")
        backend = meta.get("backend")
        limbs = meta.get("limbs")
        if span_ms is None or backend is None \
                or not isinstance(limbs, int):
            continue
        batch = meta.get("batch_size", 1)
        if not isinstance(batch, int) or batch < 1:
            batch = 1
        row = make_row(str(payload.get("op", "")), str(backend), limbs,
                       float(span_ms) * 1e6 / batch, source="trace")
        if row is not None:
            rows.append(row)
    return rows


# -- the tune recorder --------------------------------------------------------

#: Active collector list, or ``None`` (recording off — the default, so
#: a bare bisection in a test never grows hidden state).
_RECORDER: Optional[List[Dict]] = None


@contextmanager
def recording():
    """Collect every :func:`record_point` row inside the block.

    Yields the (live) list of rows; nested recordings stack."""
    global _RECORDER
    previous = _RECORDER
    _RECORDER = rows = []
    try:
        yield rows
    finally:
        _RECORDER = previous
        if previous is not None:
            previous.extend(rows)


def record_point(op: str, backend: Optional[str], limbs: int,
                 ns: float, source: str = "tune") -> None:
    """Record one measured point if a recorder is active (else no-op).

    ``backend=None`` means the measured side has no single backend
    (e.g. the generic auto-dispatch arm of the specialize bisection)
    and is skipped."""
    if _RECORDER is None or backend is None:
        return
    row = make_row(op, backend, limbs, ns, source)
    if row is not None:
        _RECORDER.append(row)
