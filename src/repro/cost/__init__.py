"""``repro.cost`` — learned wall-clock pricing for plans and jobs.

The package maps a plan fingerprint — (op, resolved backend, limb
count) under the active tuned thresholds — to predicted nanoseconds,
and feeds those predictions to every consumer of the analytic
:meth:`Plan.cost`:

* ``plan.select``/``plan.lowering`` — inside a guard band around each
  tuned crossover, ``auto`` backend resolution asks the model which
  side actually measures faster (:func:`refine_backend`);
* serve admission — ``estimated_wait`` prices pending work from
  predicted ns (:func:`predict_plan_ns`) and the queue's service rate
  is seeded before the first batch completes
  (:func:`seed_rate_cycles_per_ms`);
* shard routing — the same seed rate stands in while per-shard EWMAs
  are cold.

Everything is behind the ``REPRO_COST`` killswitch: with ``REPRO_COST=0``
— or simply no fitted model on disk — every function here returns its
"absent" value (``None``/empty/analytic input) and the stack behaves
bit-identically to the purely analytic build.

The submodules split the work: :mod:`repro.cost.features` is the
featurization contract, :mod:`repro.cost.dataset` the measurement
store and harvesters, :mod:`repro.cost.model` the regression fitter
and its fingerprint-salted persistence.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.cost import model as _model
from repro.cost.features import plan_backend_name, plan_features

__all__ = [
    "GUARD_BAND", "enabled", "invalidate", "plan_backend_name",
    "plan_features", "predict_ns", "predict_plan_ns", "refine_backend",
    "seed_rate_cycles_per_ms", "selection_salt",
]

#: Multiplicative half-width of the crossover guard band: auto
#: resolution only second-guesses the analytic choice when the operand
#: sits within this factor of a tuned crossover (where bisection noise
#: makes the threshold least trustworthy).  Far from every crossover
#: the tuned answer stands unconditionally.
GUARD_BAND = 1.5

enabled = _model.enabled


def invalidate() -> None:
    """Drop memoized model state (tests; after ``repro cost fit``)."""
    _model.invalidate_active()


def selection_salt() -> Tuple[str, ...]:
    """Extra plan-cache key parts when the model can steer selection.

    Empty — leaving cache keys byte-identical to the analytic build —
    whenever the killswitch is off or no fitted model matches the
    active thresholds; otherwise the model digest, so refitting (or
    stranding a fit by retuning) can never serve a plan cached under a
    different model's choices."""
    model = _model.active_model()
    if model is None:
        return ()
    return ("cost", model.digest())


def predict_plan_ns(plan) -> Optional[float]:
    """Predicted wall ns for one lowered plan, or ``None``.

    ``None`` — the analytic path's signal — when the killswitch is
    off, no fitted model matches the active thresholds, or the plan is
    outside the fitted domain."""
    model = _model.active_model()
    if model is None:
        return None
    features = plan_features(plan)
    if features is None:
        return None
    return model.predict_ns(*features)


def predict_ns(op: str, backend: str, limbs: int) -> Optional[float]:
    """Predicted wall ns for one raw (op, backend, limbs) key."""
    model = _model.active_model()
    if model is None:
        return None
    return model.predict_ns(op, backend, limbs)


def seed_rate_cycles_per_ms() -> Optional[float]:
    """A boot-time service-rate estimate (cycles/ms) for admission.

    The fitted model's observed cycles-per-ns rate, *measured on this
    host*, when a fit matches the active thresholds; ``None``
    otherwise — a modelless (or killswitched) boot must stay cold and
    fall back to the depth bound exactly like the analytic build, not
    inherit a made-up rate the wait gate would shed against."""
    model = _model.active_model()
    if model is None:
        return None
    return model.rate_cycles_per_ns * 1e6


def refine_backend(op: str, limbs: int, analytic: str,
                   candidates: Sequence[str],
                   crossovers: Sequence[int]) -> str:
    """The measured-fastest backend near a crossover, else ``analytic``.

    ``analytic`` is the tuned-threshold choice (a *plan*-vocabulary
    backend name, e.g. ``"library"``); ``candidates`` the plan-level
    alternatives ``auto`` was choosing among; ``crossovers`` the tuned
    thresholds separating them.  The answer differs from ``analytic``
    only when every one of these holds:

    * the killswitch is on and a fitted model matches the thresholds,
    * ``limbs`` sits within :data:`GUARD_BAND` of a live crossover,
    * the model covers the analytic choice *and* the winner (an
      unfitted group is never preferred and never demoted), and
    * a candidate's predicted ns strictly beats the analytic choice's.
    """
    model = _model.active_model()
    if model is None:
        return analytic
    in_band = any(
        crossover and crossover / GUARD_BAND <= limbs
        <= crossover * GUARD_BAND
        for crossover in crossovers)
    if not in_band:
        return analytic
    base_ns = model.predict_ns(op, analytic, limbs)
    if base_ns is None:
        return analytic
    best, best_ns = analytic, base_ns
    for candidate in candidates:
        if candidate == analytic:
            continue
        predicted = model.predict_ns(op, candidate, limbs)
        if predicted is not None and predicted < best_ns:
            best, best_ns = candidate, predicted
    return best
