"""Frac: Mandelbrot deep-zoom rendering with perturbation theory.

Deep Mandelbrot zooms need the iteration ``z <- z^2 + c`` at a
precision that grows with zoom depth — far beyond doubles.  Perturbation
theory (Heiland-Allen, the paper's [32]) computes ONE high-precision
*reference orbit* and then iterates every pixel as a low-precision
*delta* around it:

    Z_{n+1} = Z_n^2 + C                     (arbitrary precision, once)
    d_{n+1} = 2 Z_n d_n + d_n^2 + dc        (hardware floats, per pixel)

so the arbitrary-precision work is a single orbit of multiplications —
exactly the multiply-dominated trace the paper's Frac benchmark shows.

The module renders genuine escape-time images and can validate the
perturbation result against fully-arbitrary-precision per-pixel
iteration on small frames.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro import profiling
from repro.mpc import MPC
from repro.mpf import MPF


@dataclass
class FracResult:
    """An escape-time image plus the reference-orbit statistics."""

    iterations: List[List[int]]   # [row][col] escape iteration (or max)
    max_iterations: int
    orbit_length: int
    precision_bits: int


def reference_orbit(center: MPC, max_iterations: int,
                    escape_radius: float = 4.0) -> List[complex]:
    """High-precision orbit of the center point, downcast per step.

    Returns the low-precision shadows Z_n used by the delta iteration;
    the orbit itself is computed entirely in MPC.
    """
    orbit: List[complex] = []
    z = MPC(MPF(0, center.precision), MPF(0, center.precision))
    for _ in range(max_iterations):
        orbit.append(complex(z))
        z = z * z + center
        if float(z.abs2()) > escape_radius * escape_radius:
            break
    return orbit


def render(center_re: Tuple[int, int], center_im: Tuple[int, int],
           zoom_exponent: int, width: int = 16, height: int = 16,
           max_iterations: int = 128, precision: int = 256) -> FracResult:
    """Render a perturbation-theory Mandelbrot frame.

    ``center_re``/``center_im`` are exact ratios (numerator,
    denominator) locating the zoom center; ``zoom_exponent`` z means a
    window of width 2^-z around it — representable only in arbitrary
    precision once z exceeds ~50.
    """
    center = MPC(MPF.from_ratio(*center_re, precision),
                 MPF.from_ratio(*center_im, precision))
    orbit = reference_orbit(center, max_iterations)

    pixel_scale = 2.0 ** float(-zoom_exponent)
    escape2 = 16.0
    image: List[List[int]] = []
    for row in range(height):
        image_row: List[int] = []
        for col in range(width):
            dc = complex((col - width / 2) * pixel_scale / width,
                         (row - height / 2) * pixel_scale / height)
            image_row.append(_iterate_delta(orbit, dc, max_iterations,
                                            escape2))
        image.append(image_row)
    return FracResult(image, max_iterations, len(orbit), precision)


def _iterate_delta(orbit: List[complex], dc: complex,
                   max_iterations: int, escape2: float) -> int:
    """Per-pixel delta iteration against the reference orbit."""
    delta = 0j
    n = 0
    while n < max_iterations:
        z_ref = orbit[n] if n < len(orbit) else 0j
        full = z_ref + delta
        magnitude2 = full.real * full.real + full.imag * full.imag
        if magnitude2 > escape2:
            return n
        # Rebase when the delta overtakes the reference (glitch rule).
        if n >= len(orbit) - 1:
            delta = full * full + dc
            n += 1
            continue
        delta = 2.0 * z_ref * delta + delta * delta + dc
        n += 1
    return max_iterations


def render_direct(center_re: Tuple[int, int], center_im: Tuple[int, int],
                  zoom_exponent: int, width: int = 8, height: int = 8,
                  max_iterations: int = 64,
                  precision: int = 256) -> FracResult:
    """Reference renderer: full arbitrary precision per pixel (slow).

    Used by tests to validate the perturbation renderer on small frames.
    """
    center_re_f = MPF.from_ratio(*center_re, precision)
    center_im_f = MPF.from_ratio(*center_im, precision)
    scale_num = 1
    scale_den = 1 << zoom_exponent
    image: List[List[int]] = []
    escape2 = MPF(16, precision)
    for row in range(height):
        image_row: List[int] = []
        for col in range(width):
            offset_re = MPF.from_ratio(
                (2 * col - width) * scale_num, 2 * width * scale_den,
                precision)
            offset_im = MPF.from_ratio(
                (2 * row - height) * scale_num, 2 * height * scale_den,
                precision)
            c = MPC(center_re_f + offset_re, center_im_f + offset_im)
            z = MPC(MPF(0, precision), MPF(0, precision))
            escape = max_iterations
            for n in range(max_iterations):
                if z.abs2() > escape2:
                    escape = n
                    break
                z = z * z + c
            image_row.append(escape)
        image.append(image_row)
    return FracResult(image, max_iterations, 0, precision)


#: Default deep-zoom center: c = i, a Misiurewicz point on the dendrite.
#: Its orbit is pre-periodic (never escapes) and the set's boundary is
#: self-similar there, so every zoom depth shows escape-time structure —
#: an exact rational center representable at any precision.
DEFAULT_CENTER_RE = (0, 1)
DEFAULT_CENTER_IM = (1, 1)


def run(zoom_exponent: int = 60, width: int = 16, height: int = 16,
        max_iterations: int | None = None,
        precision: int = 256) -> FracResult:
    """Entry point used by benchmarks and examples.

    A pixel's delta needs ~zoom_exponent doublings before it can
    escape, so the default iteration budget scales with the zoom.
    """
    if max_iterations is None:
        max_iterations = zoom_exponent + 96
    return render(DEFAULT_CENTER_RE, DEFAULT_CENTER_IM, zoom_exponent,
                  width, height, max_iterations, precision)


def trace_run(zoom_exponent: int = 60, precision: int = 256,
              max_iterations: int | None = None):
    """Run under the operator profiler; returns (result, trace)."""
    with profiling.session() as trace:
        result = run(zoom_exponent, precision=precision,
                     max_iterations=max_iterations)
    return result, trace


def write_pgm(result: FracResult, path: str) -> None:
    """Save an escape-time image as a portable graymap (PGM, P2).

    Escape counts are normalized to 8-bit gray; interior points (never
    escaped) render black.  No imaging dependency required.
    """
    rows = result.iterations
    height, width = len(rows), len(rows[0])
    flat = [value for row in rows for value in row
            if value < result.max_iterations]
    low = min(flat) if flat else 0
    span = max(1, (max(flat) if flat else 1) - low)
    lines = ["P2", "%d %d" % (width, height), "255"]
    for row in rows:
        rendered = []
        for value in row:
            if value >= result.max_iterations:
                rendered.append("0")
            else:
                rendered.append(str(40 + (value - low) * 215 // span))
        lines.append(" ".join(rendered))
    with open(path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
