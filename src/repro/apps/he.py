"""Paillier homomorphic encryption — the paper's "ripe field" probe.

The conclusion points at Homomorphic Encryption as the next domain for
APC acceleration.  Paillier is the classic additively-homomorphic
scheme and a pure big-integer workload: keygen is RSA-style prime
search, encryption is two modular exponentiations modulo n^2, and the
homomorphic property is ciphertext *multiplication* — exactly the
multiply-dominated profile Cambricon-P targets.

    Enc(m)  = g^m * r^n  mod n^2          (g = n + 1)
    Dec(c)  = L(c^lambda mod n^2) * mu mod n,  L(x) = (x - 1) / n
    Enc(a) * Enc(b) mod n^2 = Enc(a + b)  (additive homomorphism)

Everything runs on the reproduction's own stack (MPZ over the mpn
kernels), so the recorded traces price on the platform models like the
four headline applications.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass

from repro import profiling
from repro.apps.rsa import generate_prime
from repro.mpz import MPZ


@dataclass(frozen=True)
class PaillierKeyPair:
    """Public (n, g) and private (lambda, mu) halves."""

    n: MPZ
    n_squared: MPZ
    generator: MPZ          # g = n + 1
    lam: MPZ                # lcm(p-1, q-1)
    mu: MPZ                 # (L(g^lam mod n^2))^-1 mod n

    @property
    def bits(self) -> int:
        return self.n.bit_length()


def generate_keypair(bits: int = 512, seed: int = 2022) -> PaillierKeyPair:
    """Key generation (deterministic for a given seed)."""
    if bits < 64 or bits % 2:
        raise ValueError("key size must be an even number of bits >= 64")
    rng = _random.Random(seed)
    while True:
        p = generate_prime(bits // 2, rng)
        q = generate_prime(bits // 2, rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        p_minus = p - 1
        q_minus = q - 1
        lam = (p_minus * q_minus) // p_minus.gcd(q_minus)
        n_squared = n * n
        generator = n + 1
        # mu = (L(g^lam mod n^2))^-1 mod n
        lifted = pow(generator, lam, n_squared)
        ell = (lifted - 1) // n
        try:
            mu = ell.invmod(n)
        except Exception:
            continue
        return PaillierKeyPair(n, n_squared, generator, lam, mu)


def encrypt(message: MPZ, key: PaillierKeyPair,
            rng: _random.Random | None = None) -> MPZ:
    """c = g^m * r^n mod n^2 with fresh randomness r."""
    if not MPZ(0) <= message < key.n:
        raise ValueError("message out of range for this modulus")
    rng = rng or _random.Random(0xFACADE)
    while True:
        r = MPZ(rng.randrange(2, int(key.n)))
        if int(r.gcd(key.n)) == 1:
            break
    # g = n+1 gives g^m = 1 + m*n (mod n^2): one multiply, no powmod.
    g_to_m = (MPZ(1) + message * key.n) % key.n_squared
    blinding = pow(r, key.n, key.n_squared)
    return (g_to_m * blinding) % key.n_squared


def decrypt(ciphertext: MPZ, key: PaillierKeyPair) -> MPZ:
    """m = L(c^lambda mod n^2) * mu mod n."""
    lifted = pow(ciphertext, key.lam, key.n_squared)
    ell = (lifted - 1) // key.n
    return (ell * key.mu) % key.n


def add_encrypted(c1: MPZ, c2: MPZ, key: PaillierKeyPair) -> MPZ:
    """Homomorphic addition: Enc(a)*Enc(b) = Enc(a+b mod n)."""
    return (c1 * c2) % key.n_squared


def scale_encrypted(ciphertext: MPZ, scalar: MPZ,
                    key: PaillierKeyPair) -> MPZ:
    """Homomorphic scalar multiply: Enc(a)^k = Enc(k*a mod n)."""
    return pow(ciphertext, scalar, key.n_squared)


@dataclass
class HEResult:
    """One homomorphic aggregation round trip."""

    key: PaillierKeyPair
    plaintexts: list
    decrypted_sum: MPZ

    @property
    def ok(self) -> bool:
        expected = sum(int(p) for p in self.plaintexts) % int(self.key.n)
        return int(self.decrypted_sum) == expected


def run(bits: int = 256, values: int = 4, seed: int = 2022) -> HEResult:
    """Entry point: encrypt several values, add them under encryption,
    decrypt the sum."""
    key = generate_keypair(bits, seed)
    rng = _random.Random(seed + 7)
    plaintexts = [MPZ(rng.getrandbits(bits - 16)) for _ in range(values)]
    aggregate = encrypt(plaintexts[0], key, rng)
    for plaintext in plaintexts[1:]:
        aggregate = add_encrypted(aggregate, encrypt(plaintext, key, rng),
                                  key)
    result = HEResult(key, plaintexts, decrypt(aggregate, key))
    if not result.ok:  # pragma: no cover - correctness guard
        raise AssertionError("homomorphic aggregation failed")
    return result


def trace_run(bits: int = 256, values: int = 4, seed: int = 2022):
    """Run under the operator profiler; returns (result, trace)."""
    with profiling.session() as trace:
        result = run(bits, values, seed)
    return result, trace
