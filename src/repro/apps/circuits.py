"""A small quantum-circuit builder over the zkcm simulation core.

zkcm is a *library* for multiprecision quantum computation; this module
gives the reproduction the same shape: declare circuits as gate lists,
simulate them on arbitrary-precision state vectors, and sample
measurements — so workloads beyond the hardcoded QFT/GHZ/Grover flows
can be expressed (and traced/priced) in a few lines.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.apps import zkcm
from repro.mpc import MPC
from repro.mpf import MPF
from repro.mpn.nat import MpnError


@dataclass(frozen=True)
class Gate:
    """One circuit operation."""

    kind: str                      # 'h' | 'x' | 'z' | 'phase' | 'cnot'
                                   # | 'cphase'
    target: int
    control: Optional[int] = None
    phase_k: int = 0               # for phase/cphase: angle 2*pi/2^k

    def __post_init__(self) -> None:
        if self.kind not in ("h", "x", "z", "phase", "cnot", "cphase"):
            raise MpnError("unknown gate kind %r" % self.kind)
        if self.kind in ("cnot", "cphase") and self.control is None:
            raise MpnError("%s needs a control qubit" % self.kind)


class Circuit:
    """An ordered gate list on a fixed register width."""

    def __init__(self, num_qubits: int) -> None:
        if num_qubits < 1:
            raise MpnError("circuit needs at least one qubit")
        self.num_qubits = num_qubits
        self.gates: List[Gate] = []

    def _check_qubit(self, *qubits: Optional[int]) -> None:
        for qubit in qubits:
            if qubit is not None and not 0 <= qubit < self.num_qubits:
                raise MpnError("qubit index out of range")

    def h(self, target: int) -> "Circuit":
        """Hadamard."""
        self._check_qubit(target)
        self.gates.append(Gate("h", target))
        return self

    def x(self, target: int) -> "Circuit":
        """Pauli-X (NOT)."""
        self._check_qubit(target)
        self.gates.append(Gate("x", target))
        return self

    def z(self, target: int) -> "Circuit":
        """Pauli-Z."""
        self._check_qubit(target)
        self.gates.append(Gate("z", target))
        return self

    def phase(self, target: int, k: int) -> "Circuit":
        """R_k rotation: phase 2*pi/2^k on |1>."""
        self._check_qubit(target)
        self.gates.append(Gate("phase", target, phase_k=k))
        return self

    def cnot(self, control: int, target: int) -> "Circuit":
        """Controlled NOT."""
        self._check_qubit(control, target)
        self.gates.append(Gate("cnot", target, control=control))
        return self

    def cphase(self, control: int, target: int, k: int) -> "Circuit":
        """Controlled R_k."""
        self._check_qubit(control, target)
        self.gates.append(Gate("cphase", target, control=control,
                               phase_k=k))
        return self

    def depth(self) -> int:
        return len(self.gates)


def simulate(circuit: Circuit, precision: int = 128,
             initial_basis: int = 0) -> List[MPC]:
    """Run a circuit on a basis state; returns the final state vector."""
    size = 1 << circuit.num_qubits
    if not 0 <= initial_basis < size:
        raise MpnError("initial basis state out of range")
    zero = MPC(MPF(0, precision), MPF(0, precision))
    state: List[MPC] = [zero] * size
    state[initial_basis] = MPC(MPF(1, precision), MPF(0, precision))

    hadamard = zkcm.hadamard(precision)
    for gate in circuit.gates:
        if gate.kind == "h":
            state = zkcm._apply_single(state, hadamard, gate.target,
                                       circuit.num_qubits)
        elif gate.kind == "x":
            state = _apply_x(state, gate.target)
        elif gate.kind == "z":
            state = _apply_phase_flip(state, gate.target)
        elif gate.kind == "phase":
            matrix = zkcm.phase_gate(gate.phase_k, precision)
            state = zkcm._apply_single(state, matrix, gate.target,
                                       circuit.num_qubits)
        elif gate.kind == "cnot":
            state = _apply_cnot(state, gate.control, gate.target)
        elif gate.kind == "cphase":
            state = zkcm._apply_controlled_phase(
                state, gate.phase_k, gate.control, gate.target,
                circuit.num_qubits, precision)
    return state


def _apply_x(state: List[MPC], target: int) -> List[MPC]:
    out = list(state)
    bit = 1 << target
    for index in range(len(state)):
        if not index & bit:
            out[index], out[index | bit] = state[index | bit], \
                state[index]
    return out


def _apply_phase_flip(state: List[MPC], target: int) -> List[MPC]:
    bit = 1 << target
    return [-amp if index & bit else amp
            for index, amp in enumerate(state)]


def _apply_cnot(state: List[MPC], control: int,
                target: int) -> List[MPC]:
    out = list(state)
    control_bit, target_bit = 1 << control, 1 << target
    for index in range(len(state)):
        if index & control_bit and not index & target_bit:
            out[index], out[index | target_bit] = \
                state[index | target_bit], state[index]
    return out


def probabilities(state: Sequence[MPC]) -> List[float]:
    """Measurement distribution |amplitude|^2 (as floats for sampling)."""
    return [float(amplitude.abs2()) for amplitude in state]


def measure(state: Sequence[MPC], shots: int,
            seed: int = 0) -> List[Tuple[int, int]]:
    """Sample computational-basis measurements; [(basis, count), ...]."""
    weights = probabilities(state)
    rng = _random.Random(seed)
    counts: dict = {}
    population = list(range(len(weights)))
    for outcome in rng.choices(population, weights=weights, k=shots):
        counts[outcome] = counts.get(outcome, 0) + 1
    return sorted(counts.items())


def bell_pair() -> Circuit:
    """The canonical 2-qubit entangler: H(0); CNOT(0 -> 1)."""
    return Circuit(2).h(0).cnot(0, 1)


def qft_circuit(num_qubits: int) -> Circuit:
    """The textbook QFT gate ladder (without the final bit reversal)."""
    circuit = Circuit(num_qubits)
    for qubit in range(num_qubits - 1, -1, -1):
        circuit.h(qubit)
        for k in range(2, qubit + 2):
            circuit.cphase(qubit - (k - 1), qubit, k)
    return circuit
