"""Pi: Chudnovsky digits of pi with binary splitting (Algorithm 1).

The paper's flagship few-operand workload: the Chudnovsky series

    1/pi = 12 * sum_b (-1)^b (6b)! (13591409 + 545140134 b)
                      / ((3b)!(b!)^3 640320^(3b + 3/2))

evaluated by binary splitting into the P/Q/R recurrences of Algorithm
1, with the final square root and division done in MPF.  Binary
splitting turns the series into a tree of ever-larger integer
multiplications — the "many small-bitwidth multiplications" that make
Pi the hardest of the four applications to accelerate (Section VII-C).

Each series term contributes ~14.18 decimal digits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro import profiling
from repro.mpf import MPF
from repro.mpz import MPZ

#: Decimal digits contributed per Chudnovsky term: log10(640320^3 / 24/ 72).
DIGITS_PER_TERM = 14.181647462725477

_A = 13591409
_B = 545140134
_C3_OVER_24 = 10939058860032000  # 640320^3 / 24


@dataclass
class PiResult:
    """Digits of pi and the work that produced them."""

    digits: str          # "3.1415..." with the requested digit count
    terms: int
    precision_bits: int


def _binary_split(a: int, b: int) -> Tuple[MPZ, MPZ, MPZ]:
    """(P, Q, R) over the term range (a, b] per Algorithm 1."""
    if b == a + 1:
        r = MPZ((2 * b - 1) * (6 * b - 5) * (6 * b - 1))
        p = r * (_A + _B * b)
        if b & 1:
            p = -p
        q = MPZ(b) * MPZ(b) * MPZ(b) * _C3_OVER_24
        return p, q, r
    mid = (a + b) // 2
    p_left, q_left, r_left = _binary_split(a, mid)
    p_right, q_right, r_right = _binary_split(mid, b)
    return (p_left * q_right + p_right * r_left,
            q_left * q_right,
            r_left * r_right)


def compute_pi(digits: int, guard_digits: int = 12) -> PiResult:
    """Compute pi to the requested number of decimal digits."""
    if digits < 1:
        raise ValueError("need at least one digit of pi")
    total_digits = digits + guard_digits
    terms = max(2, int(total_digits / DIGITS_PER_TERM) + 2)
    precision = int(total_digits * 3.3219280948873626) + 64

    p, q, _ = _binary_split(0, terms)
    # pi = 426880 * sqrt(10005) * Q / (13591409*Q + P)
    q_float = MPF(q, precision)
    numerator = MPF(10005, precision).sqrt() * 426880 * q_float
    denominator = MPF(q * _A + p, precision)
    pi = numerator / denominator

    text = pi.to_decimal_string(total_digits)
    integral, fractional = text.split(".")
    return PiResult(integral + "." + fractional[:digits],
                    terms, precision)


def pi_machin(digits: int) -> str:
    """pi by Machin's formula: 16*atan(1/5) - 4*atan(1/239).

    A third, independent algorithm (after Chudnovsky binary splitting
    and the Salamin-Brent AGM) — three disjoint decompositions agreeing
    digit-for-digit is the stack's strongest self-check.
    """
    from repro.mpf import MPF
    from repro.mpf.transcendental import atan
    precision = int(digits * 3.33) + 64
    fifth = MPF.from_ratio(1, 5, precision)
    inv239 = MPF.from_ratio(1, 239, precision)
    value = atan(fifth, precision) * 16 - atan(inv239, precision) * 4
    return value.to_decimal_string(digits)


def run(digits: int = 100) -> PiResult:
    """Entry point used by benchmarks and examples."""
    return compute_pi(digits)


def trace_run(digits: int = 100):
    """Run under the operator profiler; returns (result, trace)."""
    with profiling.session() as trace:
        result = compute_pi(digits)
    return result, trace


#: First 100 digits of pi, for validation.
PI_REFERENCE_100 = (
    "3."
    "1415926535897932384626433832795028841971693993751"
    "058209749445923078164062862089986280348253421170679"
)
