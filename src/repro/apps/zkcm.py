"""zkcm: multiprecision complex-matrix quantum-circuit simulation.

zkcm (SaiToh, the paper's [49]) is a C++ library for multiprecision
complex matrix computation whose flagship use is simulating quantum
computers where double precision loses unitarity over long gate
sequences.  We reproduce that workload: dense matrices of
:class:`~repro.mpc.MPC` entries, the standard gate set (H, phase,
CNOT), tensor products, and circuit simulation by repeated
matrix-vector and matrix-matrix products — a multiply/add-dominated
trace on wide operands, matching the paper's zkcm profile.

The QFT circuit is the stress case: controlled phase rotations with
angles 2pi/2^k need precision that grows with the register size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro import profiling
from repro.mpc import MPC
from repro.mpf import MPF

Matrix = List[List[MPC]]
Vector = List[MPC]


def _zero(precision: int) -> MPC:
    return MPC(MPF(0, precision), MPF(0, precision))


def _one(precision: int) -> MPC:
    return MPC(MPF(1, precision), MPF(0, precision))


def identity(size: int, precision: int) -> Matrix:
    """The size x size identity matrix."""
    return [[_one(precision) if r == c else _zero(precision)
             for c in range(size)] for r in range(size)]


def matmul(a: Matrix, b: Matrix) -> Matrix:
    """Dense matrix product."""
    rows, inner, cols = len(a), len(b), len(b[0])
    out: Matrix = []
    for r in range(rows):
        out_row: List[MPC] = []
        for c in range(cols):
            accumulator = a[r][0] * b[0][c]
            for k in range(1, inner):
                accumulator = accumulator + a[r][k] * b[k][c]
            out_row.append(accumulator)
        out.append(out_row)
    return out


def matvec(a: Matrix, v: Vector) -> Vector:
    """Matrix-vector product."""
    out: Vector = []
    for row in a:
        accumulator = row[0] * v[0]
        for k in range(1, len(v)):
            accumulator = accumulator + row[k] * v[k]
        out.append(accumulator)
    return out


def dagger(a: Matrix) -> Matrix:
    """Conjugate transpose."""
    return [[a[c][r].conj() for c in range(len(a))]
            for r in range(len(a[0]))]


def tensor(a: Matrix, b: Matrix) -> Matrix:
    """Kronecker product."""
    size_a, size_b = len(a), len(b)
    out: Matrix = []
    for ra in range(size_a):
        for rb in range(size_b):
            row: List[MPC] = []
            for ca in range(size_a):
                for cb in range(size_b):
                    row.append(a[ra][ca] * b[rb][cb])
            out.append(row)
    return out


# -- high-precision constants -------------------------------------------------

def sqrt_half(precision: int) -> MPF:
    """1/sqrt(2) at the working precision."""
    return MPF(1, precision) / MPF(2, precision).sqrt()


def pi_mpf(precision: int) -> MPF:
    """pi at the working precision (Chudnovsky through our own stack)."""
    from repro.apps.pi import compute_pi
    digits = int(precision / 3.32) + 8
    text = compute_pi(digits).digits.replace(".", "")
    scale = 10 ** (len(text) - 1)
    return MPF.from_ratio(int(text), scale, precision)


def _cos_sin(angle_num: int, angle_den_pow2: int,
             precision: int) -> tuple[MPF, MPF]:
    """cos/sin of 2*pi*angle_num/2^angle_den_pow2 by Taylor series."""
    two_pi = pi_mpf(precision) * 2
    x = two_pi * MPF(angle_num, precision) / MPF(1 << angle_den_pow2,
                                                 precision)
    # Taylor with separate term recurrences, precision-bounded truncation.
    cos_acc = MPF(1, precision)
    sin_acc = MPF(x, precision)
    cos_term = MPF(1, precision)
    sin_term = MPF(x, precision)
    x2 = x * x
    threshold = MPF.from_ratio(1, 1 << precision, precision)
    for k in range(1, precision):
        cos_term = cos_term * x2 / MPF((2 * k - 1) * (2 * k), precision)
        sin_term = sin_term * x2 / MPF((2 * k) * (2 * k + 1), precision)
        sign = -1 if k % 2 else 1
        cos_acc = cos_acc + cos_term * sign
        sin_acc = sin_acc + sin_term * sign
        if abs(cos_term) < threshold and abs(sin_term) < threshold:
            break
    return cos_acc, sin_acc


# -- gates ------------------------------------------------------------------

def hadamard(precision: int) -> Matrix:
    """The Hadamard gate."""
    h = sqrt_half(precision)
    plus = MPC(h, MPF(0, precision))
    minus = MPC(-h, MPF(0, precision))
    return [[plus, plus], [plus, minus]]


def phase_gate(k: int, precision: int) -> Matrix:
    """R_k: phase rotation by 2*pi/2^k (the QFT's controlled phases)."""
    cos_value, sin_value = _cos_sin(1, k, precision)
    return [[_one(precision), _zero(precision)],
            [_zero(precision), MPC(cos_value, sin_value)]]


def controlled(gate: Matrix, precision: int) -> Matrix:
    """The 2-qubit controlled version of a 1-qubit gate."""
    out = identity(4, precision)
    for r in range(2):
        for c in range(2):
            out[2 + r][2 + c] = gate[r][c]
    return out


# -- circuits -----------------------------------------------------------------

@dataclass
class ZkcmResult:
    """Outcome of a circuit simulation."""

    state: Vector
    unitarity_error: float   # max |(U U+ - I)| entry over a spot check
    precision_bits: int


def _apply_single(state: Vector, gate: Matrix, qubit: int,
                  num_qubits: int) -> Vector:
    """Apply a 1-qubit gate to the state vector."""
    size = 1 << num_qubits
    stride = 1 << qubit
    out = list(state)
    for base in range(size):
        if base & stride:
            continue
        a, b = state[base], state[base | stride]
        out[base] = gate[0][0] * a + gate[0][1] * b
        out[base | stride] = gate[1][0] * a + gate[1][1] * b
    return out


def _apply_controlled_phase(state: Vector, k: int, control: int,
                            target: int, num_qubits: int,
                            precision: int) -> Vector:
    """Apply a controlled R_k phase to the state vector."""
    cos_value, sin_value = _cos_sin(1, k, precision)
    phase = MPC(cos_value, sin_value)
    mask = (1 << control) | (1 << target)
    return [amplitude * phase if (index & mask) == mask else amplitude
            for index, amplitude in enumerate(state)]


def qft_state(num_qubits: int, input_basis: int,
              precision: int = 192) -> ZkcmResult:
    """Run the quantum Fourier transform on a basis state.

    Applies the textbook H + controlled-phase ladder; the result for
    basis input x has amplitudes exp(2*pi*i*x*y/2^n)/sqrt(2^n), which
    tests verify against the closed form.
    """
    size = 1 << num_qubits
    state: Vector = [_zero(precision) for _ in range(size)]
    state[input_basis] = _one(precision)
    h = hadamard(precision)
    for qubit in range(num_qubits - 1, -1, -1):
        state = _apply_single(state, h, qubit, num_qubits)
        for k in range(2, qubit + 2):
            control = qubit - (k - 1)
            state = _apply_controlled_phase(state, k, control, qubit,
                                            num_qubits, precision)
    state = _bit_reverse_state(state, num_qubits)
    error = _unitarity_spot_check(precision)
    return ZkcmResult(state, error, precision)


def _bit_reverse_state(state: Vector, num_qubits: int) -> Vector:
    out = list(state)
    for index in range(len(state)):
        reversed_index = int(format(index, "0%db" % num_qubits)[::-1], 2)
        if reversed_index > index:
            out[index], out[reversed_index] = (out[reversed_index],
                                               out[index])
    return out


def _unitarity_spot_check(precision: int) -> float:
    """Max |U U+ - I| entry for an H * R_3 product at this precision."""
    u = matmul(hadamard(precision), phase_gate(3, precision))
    product = matmul(u, dagger(u))
    worst = 0.0
    for r in range(2):
        for c in range(2):
            expected = 1.0 if r == c else 0.0
            worst = max(worst,
                        abs(float(product[r][c].re) - expected),
                        abs(float(product[r][c].im)))
    return worst


def ghz_state(num_qubits: int, precision: int = 192) -> ZkcmResult:
    """Prepare the GHZ state (|0..0> + |1..1>)/sqrt(2) by H + CNOTs."""
    size = 1 << num_qubits
    state: Vector = [_zero(precision) for _ in range(size)]
    state[0] = _one(precision)
    state = _apply_single(state, hadamard(precision), num_qubits - 1,
                          num_qubits)
    for target in range(num_qubits - 2, -1, -1):
        # CNOT with control = target+1 on the state vector.
        control_bit = 1 << (target + 1)
        target_bit = 1 << target
        out = list(state)
        for index in range(size):
            if index & control_bit and not index & target_bit:
                out[index], out[index | target_bit] = (
                    state[index | target_bit], state[index])
        state = out
    return ZkcmResult(state, _unitarity_spot_check(precision), precision)


def grover_search(num_qubits: int, marked: int,
                  precision: int = 192,
                  iterations: int | None = None) -> ZkcmResult:
    """Grover's algorithm on a state vector at arbitrary precision.

    Starts from the uniform superposition, then alternates the phase
    oracle (flip the marked amplitude) with the diffusion operator
    (reflection about the mean).  After k iterations the marked
    amplitude is sin((2k+1)*theta) with sin(theta) = 2^(-n/2) — the
    closed form the tests verify, far beyond double precision.
    """
    size = 1 << num_qubits
    if not 0 <= marked < size:
        raise ValueError("marked index out of range")
    if iterations is None:
        import math as _math
        iterations = int(_math.pi / 4 * _math.sqrt(size))
    amplitude = MPC(MPF(1, precision) / MPF(size, precision).sqrt(),
                    MPF(0, precision))
    state: Vector = [amplitude for _ in range(size)]
    size_f = MPF(size, precision)
    two = MPF(2, precision)
    for _ in range(iterations):
        # Oracle: phase-flip the marked amplitude.
        state[marked] = -state[marked]
        # Diffusion: a -> 2*mean - a (componentwise on re/im).
        mean_re = state[0].re
        mean_im = state[0].im
        for amp in state[1:]:
            mean_re = mean_re + amp.re
            mean_im = mean_im + amp.im
        mean_re = mean_re / size_f
        mean_im = mean_im / size_f
        state = [MPC(two * mean_re - amp.re, two * mean_im - amp.im)
                 for amp in state]
    return ZkcmResult(state, _unitarity_spot_check(precision), precision)


def run(num_qubits: int = 4, precision: int = 192) -> ZkcmResult:
    """Entry point used by benchmarks and examples (QFT of |1>)."""
    return qft_state(num_qubits, 1, precision)


def trace_run(num_qubits: int = 4, precision: int = 192):
    """Run under the operator profiler; returns (result, trace)."""
    with profiling.session() as trace:
        result = run(num_qubits, precision)
    return result, trace
