"""RSA: key generation, encryption, decryption (the paper's [12]).

The cryptosystem workload: modular exponentiation over thousands-of-bit
moduli, "composed of Montgomery reductions (implemented by pairs of
multiply and add operations) and squares" — the trace where the time
share of multiplicative operations grows fastest with bitwidth, which
is why the paper's RSA speedups peak at 166x for large keys.

Everything is built on our own stack: Miller-Rabin primality with
Montgomery exponentiation, binary-GCD coprimality checks, the extended
Euclid private exponent, and CRT-form decryption.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass

from repro import mpn, profiling
from repro.mpz import MPZ

#: The customary public exponent.
PUBLIC_EXPONENT = 65537

#: Deterministic Miller-Rabin witnesses below 3.3e24 plus random rounds.
_SMALL_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47)


@dataclass(frozen=True)
class RSAKeyPair:
    """A complete RSA key with CRT components."""

    modulus: MPZ
    public_exponent: MPZ
    private_exponent: MPZ
    prime_p: MPZ
    prime_q: MPZ
    crt_dp: MPZ
    crt_dq: MPZ
    crt_qinv: MPZ

    @property
    def bits(self) -> int:
        return self.modulus.bit_length()


def is_probable_prime(candidate: MPZ, rounds: int = 12,
                      rng: _random.Random | None = None) -> bool:
    """Miller-Rabin over our own powmod kernels."""
    value = int(candidate)
    if value < 2:
        return False
    for prime in _SMALL_PRIMES:
        if value == prime:
            return True
        if value % prime == 0:
            return False
    rng = rng or _random.Random(0xC0FFEE)
    d = value - 1
    two_exponent = 0
    while d % 2 == 0:
        d //= 2
        two_exponent += 1
    d_mpz = MPZ(d)
    n_minus_1 = candidate - 1
    for _ in range(rounds):
        witness = MPZ(rng.randrange(2, value - 1))
        x = pow(witness, d_mpz, candidate)
        if x == 1 or x == n_minus_1:
            continue
        for _ in range(two_exponent - 1):
            x = pow(x, MPZ(2), candidate)
            if x == n_minus_1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: _random.Random) -> MPZ:
    """A random probable prime with the top two bits set."""
    while True:
        candidate = rng.getrandbits(bits) | (3 << (bits - 2)) | 1
        prime = MPZ(candidate)
        if is_probable_prime(prime, rng=rng):
            return prime


def generate_keypair(bits: int = 1024, seed: int = 2022) -> RSAKeyPair:
    """Generate an RSA key pair (deterministic for a given seed)."""
    if bits < 64 or bits % 2:
        raise ValueError("key size must be an even number of bits >= 64")
    rng = _random.Random(seed)
    e = MPZ(PUBLIC_EXPONENT)
    while True:
        p = generate_prime(bits // 2, rng)
        q = generate_prime(bits // 2, rng)
        if p == q:
            continue
        phi = (p - 1) * (q - 1)
        if int(phi.gcd(e)) != 1:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        d = e.invmod(phi)
        dp = d % (p - 1)
        dq = d % (q - 1)
        qinv = q.invmod(p)
        return RSAKeyPair(n, e, d, p, q, dp, dq, qinv)


def encrypt(message: MPZ, key: RSAKeyPair) -> MPZ:
    """c = m^e mod n."""
    if not MPZ(0) <= message < key.modulus:
        raise ValueError("message out of range for this modulus")
    return pow(message, key.public_exponent, key.modulus)


def decrypt(ciphertext: MPZ, key: RSAKeyPair,
            use_crt: bool = True) -> MPZ:
    """m = c^d mod n, optionally through the CRT shortcut."""
    if not use_crt:
        return pow(ciphertext, key.private_exponent, key.modulus)
    m_p = pow(ciphertext % key.prime_p, key.crt_dp, key.prime_p)
    m_q = pow(ciphertext % key.prime_q, key.crt_dq, key.prime_q)
    h = (key.crt_qinv * (m_p - m_q)) % key.prime_p
    return m_q + h * key.prime_q


def sign(message: MPZ, key: RSAKeyPair) -> MPZ:
    """Textbook signature: s = m^d mod n."""
    return decrypt(message, key)


def verify(signature: MPZ, message: MPZ, key: RSAKeyPair) -> bool:
    """Check s^e mod n == m."""
    return encrypt(signature, key) == message


@dataclass
class RSAResult:
    """One encrypt/decrypt round trip with its key."""

    key: RSAKeyPair
    message: MPZ
    ciphertext: MPZ
    recovered: MPZ

    @property
    def ok(self) -> bool:
        return self.recovered == self.message


def run(bits: int = 512, seed: int = 2022,
        messages: int = 4) -> RSAResult:
    """Entry point: keygen + a few encrypt/decrypt round trips."""
    key = generate_keypair(bits, seed)
    rng = _random.Random(seed + 1)
    last: RSAResult | None = None
    for _ in range(messages):
        message = MPZ(rng.getrandbits(bits - 8) | 1)
        ciphertext = encrypt(message, key)
        recovered = decrypt(ciphertext, key)
        last = RSAResult(key, message, ciphertext, recovered)
        if not last.ok:  # pragma: no cover - correctness guard
            raise AssertionError("RSA round trip failed")
    if last is None:
        raise ValueError("messages must be >= 1")
    return last


def trace_run(bits: int = 512, seed: int = 2022, messages: int = 4):
    """Run under the operator profiler; returns (result, trace)."""
    with profiling.session() as trace:
        result = run(bits, seed, messages)
    return result, trace
