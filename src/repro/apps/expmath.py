"""Experimental mathematics: integer-relation detection via exact LLL.

The paper motivates APC with experimental mathematics (Bailey &
Borwein's "Ten problems in experimental mathematics" [7]): the
signature computation is *integer relation detection* — given a
high-precision real number, find the integer polynomial it satisfies.
One wrong digit and the relation is garbage, which is precisely why
these computations run at hundreds or thousands of bits.

We implement the lattice route end to end on our own stack: exact
LLL reduction (rational Gram-Schmidt over :class:`~repro.mpq.MPQ`,
integer basis over :class:`~repro.mpz.MPZ`) and minimal-polynomial
recovery from an MPF value, verified by evaluating the recovered
polynomial back at high precision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.mpf import MPF
from repro.mpq import MPQ
from repro.mpz import MPZ

Vector = List[MPZ]
Basis = List[Vector]


def _dot(a: Vector, b: Vector) -> MPZ:
    total = MPZ(0)
    for x, y in zip(a, b):
        total = total + x * y
    return total


def _gram_schmidt(basis: Basis) -> Tuple[List[List[MPQ]], List[MPQ]]:
    """Exact Gram-Schmidt: returns (mu, squared norms of b*_i)."""
    n = len(basis)
    mu: List[List[MPQ]] = [[MPQ(0) for _ in range(n)] for _ in range(n)]
    norms: List[MPQ] = [MPQ(0)] * n
    star: List[List[MPQ]] = []
    for i in range(n):
        current = [MPQ(x) for x in basis[i]]
        for j in range(i):
            if not norms[j]:
                mu[i][j] = MPQ(0)
                continue
            projection = MPQ(0)
            for x, s in zip(basis[i], star[j]):
                projection = projection + s * MPQ(x)
            mu[i][j] = projection / norms[j]
            current = [c - mu[i][j] * s
                       for c, s in zip(current, star[j])]
        star.append(current)
        norm = MPQ(0)
        for c in current:
            norm = norm + c * c
        norms[i] = norm
    return mu, norms


def _round_mpq(value: MPQ) -> MPZ:
    """Nearest integer (ties toward +infinity)."""
    doubled = value + MPQ(1, 2)
    return doubled.floor_mpz()


def lll_reduce(basis: Basis, delta: Optional[MPQ] = None) -> Basis:
    """Exact LLL reduction (Lenstra-Lenstra-Lovasz 1982).

    Suitable for the small, high-entry lattices of relation detection
    (dimension <= ~8); Gram-Schmidt data is recomputed after swaps,
    trading asymptotics for exactness and clarity.
    """
    delta = delta or MPQ(3, 4)
    work = [list(vector) for vector in basis]
    n = len(work)
    mu, norms = _gram_schmidt(work)
    k = 1
    while k < n:
        # Size reduction, with the exact incremental mu update
        # (b_k -= r*b_j shifts mu[k][i] by r*mu[j][i] and mu[k][j] by r;
        # the orthogonal vectors and norms are unchanged).
        for j in range(k - 1, -1, -1):
            rounding = _round_mpq(mu[k][j])
            if rounding:
                factor = MPQ(rounding)
                work[k] = [a - rounding * b
                           for a, b in zip(work[k], work[j])]
                for i in range(j):
                    mu[k][i] = mu[k][i] - factor * mu[j][i]
                mu[k][j] = mu[k][j] - factor
        # Lovasz condition.
        threshold = (delta - mu[k][k - 1] * mu[k][k - 1]) * norms[k - 1]
        if norms[k] >= threshold:
            k += 1
        else:
            work[k], work[k - 1] = work[k - 1], work[k]
            mu, norms = _gram_schmidt(work)
            k = max(1, k - 1)
    return work


@dataclass
class RelationResult:
    """A recovered integer relation / minimal polynomial."""

    coefficients: List[int]      # c_0 + c_1 x + ... + c_d x^d
    residual_exponent: int       # log2 |p(value)| at working precision
    precision_bits: int

    @property
    def degree(self) -> int:
        degree = len(self.coefficients) - 1
        while degree > 0 and self.coefficients[degree] == 0:
            degree -= 1
        return degree

    def pretty(self) -> str:
        terms = []
        for power, coefficient in enumerate(self.coefficients):
            if coefficient == 0:
                continue
            if power == 0:
                terms.append(str(coefficient))
            elif power == 1:
                terms.append("%d*x" % coefficient)
            else:
                terms.append("%d*x^%d" % (coefficient, power))
        return " + ".join(terms) if terms else "0"


def minimal_polynomial(value: MPF, max_degree: int,
                       precision: int = 192) -> RelationResult:
    """Find the integer polynomial of degree <= max_degree with
    ``value`` as a root, by LLL on the classic relation lattice.

    The lattice rows are [e_i | round(2^s * value^i)]; a short vector's
    first coordinates are the polynomial coefficients.  The result is
    verified by evaluating p(value) — the residual exponent should sit
    near -s + coefficient growth.
    """
    scale_bits = precision - 16
    # Powers of the value at working precision.
    powers = [MPF(1, precision)]
    for _ in range(max_degree):
        powers.append(powers[-1] * value)
    scaled = [(p * MPF(MPZ(1) << scale_bits, precision)).floor_mpz()
              for p in powers]

    dimension = max_degree + 1
    basis: Basis = []
    for i in range(dimension):
        row = [MPZ(1) if j == i else MPZ(0) for j in range(dimension)]
        row.append(scaled[i])
        basis.append(row)

    reduced = lll_reduce(basis)
    shortest = min(reduced, key=lambda v: int(_dot(v, v)))
    coefficients = [int(c) for c in shortest[:dimension]]
    # Normalize sign: leading nonzero coefficient positive.
    for coefficient in reversed(coefficients):
        if coefficient:
            if coefficient < 0:
                coefficients = [-c for c in coefficients]
            break

    residual = MPF(0, precision)
    for coefficient, power in zip(coefficients, powers):
        residual = residual + power * coefficient
    if residual:
        residual_exponent = residual.exponent_of_top_bit
    else:
        residual_exponent = -(10 ** 9)
    return RelationResult(coefficients, residual_exponent, precision)


def run(precision: int = 128) -> List[RelationResult]:
    """Entry point: recover three classic minimal polynomials.

    128 bits is ample headroom for these degrees (the residual check
    confirms ~full-precision cancellation); exact-rational LLL cost
    grows steeply with the scale, so precision is a knob, not a default
    to max out.
    """
    sqrt2 = MPF(2, precision).sqrt()
    golden = (MPF(1, precision) + MPF(5, precision).sqrt()) \
        / MPF(2, precision)
    sqrt2_plus_sqrt3 = MPF(2, precision).sqrt() \
        + MPF(3, precision).sqrt()
    return [
        minimal_polynomial(sqrt2, 2, precision),
        minimal_polynomial(golden, 2, precision),
        minimal_polynomial(sqrt2_plus_sqrt3, 4, precision),
    ]


def trace_run(precision: int = 96):
    """Run the quadratic relation recoveries under the profiler."""
    from repro import profiling
    with profiling.session() as trace:
        sqrt2 = MPF(2, precision).sqrt()
        golden = (MPF(1, precision) + MPF(5, precision).sqrt()) \
            / MPF(2, precision)
        results = [minimal_polynomial(sqrt2, 2, precision),
                   minimal_polynomial(golden, 2, precision)]
    return results, trace
