"""Celestial orbit calculation at arbitrary precision.

The paper's introduction lists "planetary orbit calculations" among the
APC applications (citing Abad & Barrio's *Computing periodic orbits
with arbitrary precision*).  The kernel computation is Kepler's
equation,

    E - e*sin(E) = M,

solved by Newton iteration at the working precision; every trig
evaluation lands on the transcendental layer and from there on the
profiled mpn kernels.  The APC payoff is *periodicity*: propagating a
full revolution and landing back on the starting point to 2^-precision
— float64 closes an orbit only to ~1e-16, and the error compounds over
the ~10^9 revolutions of long-term ephemerides.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro import profiling
from repro.mpf import MPF
from repro.mpf.transcendental import cos_sin, pi_agm
from repro.mpn.nat import MpnError


def solve_kepler(eccentricity: MPF, mean_anomaly: MPF,
                 precision: int) -> MPF:
    """The eccentric anomaly E with E - e*sin(E) = M (Newton)."""
    if not MPF(0, precision) <= eccentricity < MPF(1, precision):
        raise MpnError("elliptic orbits need 0 <= e < 1")
    # Standard seed: E0 = M + e*sin(M).
    _, sin_m = cos_sin(mean_anomaly, precision)
    e_anomaly = mean_anomaly + eccentricity * sin_m
    one = MPF(1, precision)
    for _ in range(precision.bit_length() + 10):
        cos_e, sin_e = cos_sin(e_anomaly, precision)
        residual = e_anomaly - eccentricity * sin_e - mean_anomaly
        if not residual \
                or residual.exponent_of_top_bit < -(precision - 4):
            break
        derivative = one - eccentricity * cos_e
        e_anomaly = e_anomaly - residual / derivative
    return e_anomaly


def orbit_position(eccentricity: MPF, mean_anomaly: MPF,
                   precision: int) -> Tuple[MPF, MPF]:
    """(x, y) on the unit-semi-major-axis ellipse at mean anomaly M."""
    e_anomaly = solve_kepler(eccentricity, mean_anomaly, precision)
    cos_e, sin_e = cos_sin(e_anomaly, precision)
    x = cos_e - eccentricity
    one = MPF(1, precision)
    semi_minor = (one - eccentricity * eccentricity).sqrt()
    y = semi_minor * sin_e
    return x, y


@dataclass
class OrbitResult:
    """A propagated orbit and its closure error."""

    positions: List[Tuple[MPF, MPF]]
    closure_exponent: int      # log2 of the period-closure error
    precision_bits: int


def propagate(eccentricity_ratio: Tuple[int, int] = (6, 10),
              steps: int = 8, precision: int = 192) -> OrbitResult:
    """March one full revolution and measure the closure error.

    ``eccentricity_ratio`` is an exact rational (num, den); the mean
    anomaly sweeps 0 .. 2*pi in ``steps`` increments plus the closing
    point, whose distance from the start is the closure error.
    """
    eccentricity = MPF.from_ratio(*eccentricity_ratio, precision)
    two_pi = pi_agm(precision) * MPF(2, precision)
    positions = []
    for index in range(steps + 1):
        mean_anomaly = two_pi * MPF(index, precision) \
            / MPF(steps, precision)
        positions.append(orbit_position(eccentricity, mean_anomaly,
                                        precision))
    dx = positions[-1][0] - positions[0][0]
    dy = positions[-1][1] - positions[0][1]
    distance2 = dx * dx + dy * dy
    if distance2:
        closure_exponent = distance2.exponent_of_top_bit // 2
    else:
        closure_exponent = -precision
    return OrbitResult(positions, closure_exponent, precision)


def float64_closure_error(eccentricity: float = 0.6,
                          steps: int = 8) -> float:
    """The same propagation in hardware floats (the failure baseline)."""
    def solve(mean_anomaly: float) -> float:
        e_anomaly = mean_anomaly + eccentricity * math.sin(mean_anomaly)
        for _ in range(60):
            residual = e_anomaly - eccentricity * math.sin(e_anomaly) \
                - mean_anomaly
            e_anomaly -= residual / (1 - eccentricity
                                     * math.cos(e_anomaly))
        return e_anomaly

    def position(mean_anomaly: float) -> Tuple[float, float]:
        e_anomaly = solve(mean_anomaly)
        return (math.cos(e_anomaly) - eccentricity,
                math.sqrt(1 - eccentricity ** 2) * math.sin(e_anomaly))

    start = position(0.0)
    end = position(2 * math.pi)
    return math.hypot(end[0] - start[0], end[1] - start[1])


def run(precision: int = 192, steps: int = 8) -> OrbitResult:
    """Entry point used by tests and examples."""
    return propagate(precision=precision, steps=steps)


def trace_run(precision: int = 192, steps: int = 8):
    """Run under the operator profiler; returns (result, trace)."""
    with profiling.session() as trace:
        result = run(precision, steps)
    return result, trace
