"""The four representative APC applications (Table II).

Each module exposes ``run(...)`` (functional execution on the
reproduction's own software stack) and ``trace_run(...)`` (the same run
under the operator profiler, returning the kernel-operation trace that
the platform cost models price).

:data:`WORKLOADS` enumerates the precision sweeps used by the Figure 2
and Figure 13 benchmarks.
"""

from repro.apps import frac, he, orbit, pi, rsa, zkcm

#: name -> (trace_run callable, list of parameter dicts spanning the
#: precision sweep of Figure 13).
WORKLOADS = {
    "Pi": (pi.trace_run, [
        {"digits": 100}, {"digits": 300}, {"digits": 1000},
        {"digits": 3000},
    ]),
    "Frac": (frac.trace_run, [
        {"zoom_exponent": 40, "precision": 128},
        {"zoom_exponent": 80, "precision": 256},
        {"zoom_exponent": 160, "precision": 512},
        {"zoom_exponent": 320, "precision": 1024},
    ]),
    "zkcm": (zkcm.trace_run, [
        {"num_qubits": 3, "precision": 128},
        {"num_qubits": 4, "precision": 256},
        {"num_qubits": 4, "precision": 512},
        {"num_qubits": 5, "precision": 1024},
    ]),
    "RSA": (rsa.trace_run, [
        {"bits": 256, "messages": 2}, {"bits": 512, "messages": 2},
        {"bits": 1024, "messages": 1}, {"bits": 2048, "messages": 1},
    ]),
}

__all__ = ["WORKLOADS", "frac", "he", "orbit", "pi", "rsa", "zkcm"]
