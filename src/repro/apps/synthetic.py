"""Synthetic operation traces for paper-scale workload sizes.

The paper evaluates the four applications at precisions (10^5..10^8
bits) that a pure-Python functional run cannot reach in reasonable
time.  The *operation trace* of each application is, however, fully
deterministic — binary splitting, Montgomery ladders, gate schedules
and orbit iterations have closed-form op-size structures — so we can
synthesize the exact trace without executing the arithmetic, and let
the platform cost models price it.

Fidelity contract: at sizes where the functional run is affordable,
``tests`` compare synthetic against recorded traces (op counts per
class within a few percent), so the large-size points of Figure 13 rest
on a validated generator rather than extrapolation.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.apps.pi import DIGITS_PER_TERM
from repro.profiling import KernelOp, OperationTrace


# ---------------------------------------------------------------------------
# Pi (Chudnovsky binary splitting)
# ---------------------------------------------------------------------------

def pi_trace(digits: int) -> OperationTrace:
    """The kernel-operation trace of compute_pi(digits)."""
    trace = OperationTrace()
    terms = max(2, int((digits + 12) / DIGITS_PER_TERM) + 2)
    precision = int((digits + 12) * 3.3219280948873626) + 64

    def leaf_sizes(b: int) -> tuple[int, int, int]:
        log_b = max(1, int(math.log2(max(2, b))))
        r_bits = 3 * log_b + 8
        p_bits = r_bits + log_b + 30
        q_bits = 54 + 3 * log_b
        # Leaf construction as executed: q = b*b*b*C3 (three multiplies)
        # and p = r * (A + B*b) (one multiply).
        trace.ops.append(KernelOp("mul", log_b, log_b))
        trace.ops.append(KernelOp("mul", 2 * log_b, log_b))
        trace.ops.append(KernelOp("mul", 3 * log_b, 54))
        trace.ops.append(KernelOp("mul", r_bits, log_b + 30))
        return p_bits, q_bits, r_bits

    def split(a: int, b: int) -> tuple[int, int, int]:
        if b == a + 1:
            return leaf_sizes(b)
        mid = (a + b) // 2
        p_left, q_left, r_left = split(a, mid)
        p_right, q_right, r_right = split(mid, b)
        # P = Pl*Qr + Pr*Rl; Q = Ql*Qr; R = Rl*Rr.
        trace.ops.append(KernelOp("mul", p_left, q_right))
        trace.ops.append(KernelOp("mul", p_right, r_left))
        # Alternating term signs make the combination a subtraction
        # most of the time in the executed code.
        trace.ops.append(KernelOp("sub", p_left + q_right,
                                  p_right + r_left))
        trace.ops.append(KernelOp("highlevel", 1))  # sign handling
        trace.ops.append(KernelOp("mul", q_left, q_right))
        trace.ops.append(KernelOp("mul", r_left, r_right))
        return (max(p_left + q_right, p_right + r_left) + 1,
                q_left + q_right, r_left + r_right)

    p_bits, q_bits, _ = split(0, terms)
    # Final assembly: sqrt(10005), two scaled multiplies, one division,
    # and the decimal conversion's scaling multiply.
    trace.ops.append(KernelOp("sqrt", 2 * precision))
    trace.ops.append(KernelOp("mul", precision, q_bits))
    trace.ops.append(KernelOp("mul", precision, precision))
    trace.ops.append(KernelOp("add", max(p_bits, q_bits) + 30, q_bits))
    trace.ops.append(KernelOp("div", 2 * precision, precision))
    trace.ops.append(KernelOp("mul", precision, precision))
    return trace


# ---------------------------------------------------------------------------
# RSA (keygen + encrypt/decrypt round trips)
# ---------------------------------------------------------------------------

def rsa_trace(bits: int, messages: int = 4,
              miller_rabin_rounds: int = 12) -> OperationTrace:
    """Expected kernel-operation trace of run(bits, messages=...).

    Prime search near 2^(bits/2) tests ~ln(2^(bits/2))/2 odd candidates
    per prime; composites almost always fail the first Miller-Rabin
    witness, survivors pay all rounds.
    """
    trace = OperationTrace()
    half = bits // 2
    candidates_per_prime = max(1, int(half * math.log(2) / 2))
    for _ in range(2):  # two primes
        for _ in range(candidates_per_prime - 1):
            trace.ops.append(KernelOp("powmod", half, half))  # 1st witness
        for _ in range(miller_rabin_rounds):                  # survivor
            trace.ops.append(KernelOp("powmod", half, half))
    # phi, n, d, CRT components.
    trace.ops.append(KernelOp("mul", half, half))      # p*q
    trace.ops.append(KernelOp("mul", half, half))      # (p-1)(q-1)
    trace.ops.append(KernelOp("div", bits, bits))      # invmod e
    trace.ops.append(KernelOp("div", bits, half))      # d mod p-1
    trace.ops.append(KernelOp("div", bits, half))      # d mod q-1
    trace.ops.append(KernelOp("div", half, half))      # qinv
    for _ in range(messages):
        trace.ops.append(KernelOp("powmod", bits, 17))       # e = 65537
        trace.ops.append(KernelOp("powmod", half, half))     # CRT m_p
        trace.ops.append(KernelOp("powmod", half, half))     # CRT m_q
        trace.ops.append(KernelOp("mul", half, half))        # recombine
        trace.ops.append(KernelOp("div", bits, half))
        trace.ops.append(KernelOp("add", bits, bits))
    return trace


# ---------------------------------------------------------------------------
# zkcm (QFT circuit on a state vector)
# ---------------------------------------------------------------------------

def zkcm_trace(num_qubits: int, precision: int) -> OperationTrace:
    """Kernel-operation trace of qft_state(num_qubits, ...).

    Each Hadamard touches 2^n amplitudes with 2 complex MACs each; each
    controlled phase multiplies 2^(n-2) amplitudes; phase constants come
    from one pi evaluation plus a Taylor loop of ~precision/6 terms.
    """
    trace = OperationTrace()
    size = 1 << num_qubits
    # pi to the working precision for the phase angles.
    trace.merge(pi_trace(int(precision / 3.32) + 8))
    num_phases = num_qubits * (num_qubits - 1) // 2
    taylor_terms = max(8, precision // 6)
    for _ in range(min(num_phases, num_qubits)):  # distinct k values
        for _ in range(taylor_terms):
            for _ in range(3):
                trace.ops.append(KernelOp("mul", precision, precision))
            for _ in range(2):
                trace.ops.append(KernelOp("div", 2 * precision,
                                          precision))
            for _ in range(2):
                trace.ops.append(KernelOp("add", precision, precision))
            trace.ops.append(KernelOp("shift", precision, 32))
    # Hadamards: n gates over 2^(n-1) amplitude pairs; each pair costs
    # four complex MACs (16 real multiplies) plus mantissa alignment.
    for _ in range(num_qubits * (size // 2)):
        for _ in range(16):
            trace.ops.append(KernelOp("mul", precision, precision))
        for _ in range(8):
            trace.ops.append(KernelOp("add", precision, precision))
        for _ in range(12):
            trace.ops.append(KernelOp("shift", precision, 32))
    # Controlled phases: each scales 2^(n-2) amplitudes (1 complex mul).
    for _ in range(num_phases * (size // 4)):
        for _ in range(4):
            trace.ops.append(KernelOp("mul", precision, precision))
        for _ in range(2):
            trace.ops.append(KernelOp("add", precision, precision))
        for _ in range(3):
            trace.ops.append(KernelOp("shift", precision, 32))
    return trace


# ---------------------------------------------------------------------------
# Frac (perturbation-theory Mandelbrot)
# ---------------------------------------------------------------------------

def frac_trace(zoom_exponent: int, precision: int,
               max_iterations: int | None = None) -> OperationTrace:
    """Kernel-operation trace of run(zoom_exponent, precision=...).

    The arbitrary-precision work is the reference orbit: one complex
    square and add per iteration (4 multiplies, 4 additions at the
    working precision) plus the escape check.
    """
    if max_iterations is None:
        max_iterations = zoom_exponent + 96
    trace = OperationTrace()
    for _ in range(max_iterations):
        # z*z + c and the |z|^2 escape check: six real multiplies,
        # four adds, plus mantissa alignment shifts per step.
        for _ in range(6):
            trace.ops.append(KernelOp("mul", precision, precision))
        for _ in range(4):
            trace.ops.append(KernelOp("add", precision, precision))
        for _ in range(8):
            trace.ops.append(KernelOp("shift", precision, 32))
        trace.ops.append(KernelOp("cmp", precision, precision))
    return trace


# ---------------------------------------------------------------------------
# Paillier HE (extension workload; the paper's "ripe field")
# ---------------------------------------------------------------------------

def he_trace(bits: int, values: int = 4,
             miller_rabin_rounds: int = 12) -> OperationTrace:
    """Expected trace of the Paillier aggregation round trip.

    Keygen is RSA-style; each encryption is one n-bit exponentiation
    modulo n^2 (2n-bit operands) plus a couple of multiplies; the
    homomorphic additions are single modular multiplies; decryption is
    one lambda-sized exponentiation modulo n^2.
    """
    trace = OperationTrace()
    half = bits // 2
    candidates_per_prime = max(1, int(half * math.log(2) / 2))
    for _ in range(2):
        for _ in range(candidates_per_prime - 1):
            trace.ops.append(KernelOp("powmod", half, half))
        for _ in range(miller_rabin_rounds):
            trace.ops.append(KernelOp("powmod", half, half))
    double = 2 * bits
    trace.ops.append(KernelOp("mul", half, half))       # n = p*q
    trace.ops.append(KernelOp("mul", bits, bits))       # n^2
    trace.ops.append(KernelOp("powmod", double, bits))  # g^lam
    trace.ops.append(KernelOp("div", double, bits))     # L(), invmod
    for _ in range(values):
        trace.ops.append(KernelOp("powmod", double, bits))  # r^n
        trace.ops.append(KernelOp("mul", bits, bits))       # m*n
        trace.ops.append(KernelOp("mul", double, double))   # blind
        trace.ops.append(KernelOp("mod", 2 * double, double))
    for _ in range(values - 1):                             # Enc adds
        trace.ops.append(KernelOp("mul", double, double))
        trace.ops.append(KernelOp("mod", 2 * double, double))
    trace.ops.append(KernelOp("powmod", double, bits))      # decrypt
    trace.ops.append(KernelOp("div", double, bits))
    return trace


#: name -> synthetic generator, mirroring apps.WORKLOADS (plus the HE
#: extension workload).
GENERATORS: Dict[str, object] = {
    "Pi": pi_trace,
    "Frac": frac_trace,
    "zkcm": zkcm_trace,
    "RSA": rsa_trace,
    "HE": he_trace,
}
