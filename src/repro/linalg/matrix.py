"""Arbitrary-precision dense linear algebra (the Figure 1 "BLAS" block).

The paper's stack tops out with "BLAS and algebras" for scientific
domains; the APC-specific use case is *ill-conditioned* linear algebra,
where float64 loses every digit (the classic instance: Hilbert
matrices, condition number ~e^(3.5n)).  This module provides dense MPF
matrices with LU decomposition (partial pivoting), solves,
determinants and inverses — enough to invert a 12x12 Hilbert matrix
exactly to working precision, a computation that is pure noise in
doubles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.mpf import MPF
from repro.mpn.nat import MpnError

Row = List[MPF]


@dataclass
class LUFactorization:
    """P*A = L*U with L unit-lower and U upper triangular, packed."""

    packed: List[Row]          # L (below diagonal) and U (on/above)
    pivots: List[int]          # row permutation
    sign: int                  # permutation parity

    @property
    def size(self) -> int:
        return len(self.packed)


class Matrix:
    """An immutable dense matrix of MPF entries."""

    def __init__(self, rows: Sequence[Sequence[MPF]]) -> None:
        if not rows or not rows[0]:
            raise MpnError("matrix needs at least one entry")
        width = len(rows[0])
        if any(len(row) != width for row in rows):
            raise MpnError("ragged rows")
        self.rows = [list(row) for row in rows]

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_ints(cls, rows: Sequence[Sequence[int]],
                  precision: int = 128) -> "Matrix":
        return cls([[MPF(v, precision) for v in row] for row in rows])

    @classmethod
    def identity(cls, size: int, precision: int = 128) -> "Matrix":
        return cls([[MPF(1 if r == c else 0, precision)
                     for c in range(size)] for r in range(size)])

    @classmethod
    def hilbert(cls, size: int, precision: int = 256) -> "Matrix":
        """The Hilbert matrix H[i][j] = 1/(i+j+1): the canonical
        ill-conditioned test case."""
        return cls([[MPF.from_ratio(1, r + c + 1, precision)
                     for c in range(size)] for r in range(size)])

    # -- shape / access ------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, int]:
        return len(self.rows), len(self.rows[0])

    @property
    def precision(self) -> int:
        return self.rows[0][0].precision

    def __getitem__(self, index: Tuple[int, int]) -> MPF:
        return self.rows[index[0]][index[1]]

    # -- arithmetic -------------------------------------------------------------

    def __add__(self, other: "Matrix") -> "Matrix":
        if self.shape != other.shape:
            raise MpnError("shape mismatch")
        return Matrix([[a + b for a, b in zip(ra, rb)]
                       for ra, rb in zip(self.rows, other.rows)])

    def __sub__(self, other: "Matrix") -> "Matrix":
        if self.shape != other.shape:
            raise MpnError("shape mismatch")
        return Matrix([[a - b for a, b in zip(ra, rb)]
                       for ra, rb in zip(self.rows, other.rows)])

    def __matmul__(self, other: "Matrix") -> "Matrix":
        rows, inner = self.shape
        inner_b, cols = other.shape
        if inner != inner_b:
            raise MpnError("shape mismatch for matmul")
        out = []
        for r in range(rows):
            out_row = []
            for c in range(cols):
                total = self.rows[r][0] * other.rows[0][c]
                for k in range(1, inner):
                    total = total + self.rows[r][k] * other.rows[k][c]
                out_row.append(total)
            out.append(out_row)
        return Matrix(out)

    def matvec(self, vector: Sequence[MPF]) -> List[MPF]:
        rows, cols = self.shape
        if len(vector) != cols:
            raise MpnError("vector length mismatch")
        out = []
        for r in range(rows):
            total = self.rows[r][0] * vector[0]
            for k in range(1, cols):
                total = total + self.rows[r][k] * vector[k]
            out.append(total)
        return out

    # -- factorization --------------------------------------------------------

    def lu(self) -> LUFactorization:
        """LU with partial pivoting (Doolittle, in-place packing)."""
        rows, cols = self.shape
        if rows != cols:
            raise MpnError("LU needs a square matrix")
        work = [list(row) for row in self.rows]
        pivots = list(range(rows))
        sign = 1
        for col in range(rows):
            # Pivot: largest magnitude in the column.
            best_row = max(range(col, rows),
                           key=lambda r: abs(work[r][col]))
            if not work[best_row][col]:
                raise MpnError("singular matrix")
            if best_row != col:
                work[col], work[best_row] = work[best_row], work[col]
                pivots[col], pivots[best_row] = (pivots[best_row],
                                                 pivots[col])
                sign = -sign
            pivot = work[col][col]
            for row in range(col + 1, rows):
                factor = work[row][col] / pivot
                work[row][col] = factor
                for k in range(col + 1, rows):
                    work[row][k] = work[row][k] - factor * work[col][k]
        return LUFactorization(work, pivots, sign)

    def solve(self, rhs: Sequence[MPF],
              factorization: LUFactorization | None = None) -> List[MPF]:
        """Solve A x = rhs by LU + forward/back substitution."""
        lu = factorization or self.lu()
        size = lu.size
        if len(rhs) != size:
            raise MpnError("rhs length mismatch")
        permuted = [rhs[p] for p in lu.pivots]
        # Forward: L y = P rhs.
        y = list(permuted)
        for r in range(size):
            for c in range(r):
                y[r] = y[r] - lu.packed[r][c] * y[c]
        # Back: U x = y.
        x = list(y)
        for r in range(size - 1, -1, -1):
            for c in range(r + 1, size):
                x[r] = x[r] - lu.packed[r][c] * x[c]
            x[r] = x[r] / lu.packed[r][r]
        return x

    def determinant(self) -> MPF:
        lu = self.lu()
        det = MPF(lu.sign, self.precision)
        for index in range(lu.size):
            det = det * lu.packed[index][index]
        return det

    def inverse(self) -> "Matrix":
        size = self.shape[0]
        lu = self.lu()
        columns = []
        for col in range(size):
            unit = [MPF(1 if r == col else 0, self.precision)
                    for r in range(size)]
            columns.append(self.solve(unit, lu))
        return Matrix([[columns[c][r] for c in range(size)]
                       for r in range(size)])

    def max_abs_entry(self) -> MPF:
        """The largest |entry| (residual norms in tests)."""
        best = abs(self.rows[0][0])
        for row in self.rows:
            for entry in row:
                magnitude = abs(entry)
                if magnitude > best:
                    best = magnitude
        return best
