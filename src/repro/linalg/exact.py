"""Exact rational linear algebra (fraction-free cross-validation).

The MPF solver carries rounding; this solver carries none: Gaussian
elimination over :class:`~repro.mpq.MPQ` returns the *exact* solution
of an integer/rational system.  Tests cross-check the two — the
high-precision float path must agree with the exact path to its working
precision, which is a much sharper oracle than any residual norm.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.mpn.nat import MpnError
from repro.mpq import MPQ


def solve_exact(matrix: Sequence[Sequence[MPQ]],
                rhs: Sequence[MPQ]) -> List[MPQ]:
    """Solve A x = rhs exactly by rational Gaussian elimination."""
    size = len(matrix)
    if size == 0 or any(len(row) != size for row in matrix):
        raise MpnError("solve_exact needs a square system")
    if len(rhs) != size:
        raise MpnError("rhs length mismatch")
    # Augmented working copy.
    work = [[MPQ(entry.numerator, entry.denominator)
             for entry in row] + [rhs[index]]
            for index, row in enumerate(matrix)]
    for col in range(size):
        pivot_row = next((r for r in range(col, size) if work[r][col]),
                         None)
        if pivot_row is None:
            raise MpnError("singular system")
        work[col], work[pivot_row] = work[pivot_row], work[col]
        pivot = work[col][col]
        work[col] = [entry / pivot for entry in work[col]]
        for row in range(size):
            if row != col and work[row][col]:
                factor = work[row][col]
                work[row] = [entry - factor * ref for entry, ref
                             in zip(work[row], work[col])]
    return [work[row][size] for row in range(size)]


def determinant_exact(matrix: Sequence[Sequence[MPQ]]) -> MPQ:
    """Exact determinant by fraction-free elimination over MPQ."""
    size = len(matrix)
    if size == 0 or any(len(row) != size for row in matrix):
        raise MpnError("determinant needs a square matrix")
    work = [[MPQ(e.numerator, e.denominator) for e in row]
            for row in matrix]
    det = MPQ(1)
    for col in range(size):
        pivot_row = next((r for r in range(col, size) if work[r][col]),
                         None)
        if pivot_row is None:
            return MPQ(0)
        if pivot_row != col:
            work[col], work[pivot_row] = work[pivot_row], work[col]
            det = -det
        pivot = work[col][col]
        det = det * pivot
        for row in range(col + 1, size):
            if work[row][col]:
                factor = work[row][col] / pivot
                work[row] = [entry - factor * ref for entry, ref
                             in zip(work[row], work[col])]
    return det


def hilbert_exact(size: int) -> List[List[MPQ]]:
    """The Hilbert matrix as exact rationals."""
    return [[MPQ(1, r + c + 1) for c in range(size)]
            for r in range(size)]
