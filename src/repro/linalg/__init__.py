"""Arbitrary-precision dense linear algebra (Figure 1's BLAS block):
MPF matrices with LU/solve/det/inverse, plus exact MPQ elimination for
cross-validation."""

from repro.linalg.exact import determinant_exact, hilbert_exact, solve_exact
from repro.linalg.matrix import LUFactorization, Matrix

__all__ = ["LUFactorization", "Matrix", "determinant_exact",
           "hilbert_exact", "solve_exact"]
