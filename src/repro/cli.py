"""Command-line interface: ``python -m repro <command>``.

Small, scriptable entry points over the library's main flows — device
info, monolithic multiplies with cycle reports, pi digits, RSA round
trips, the BIPS benefit table, and a quick Figure-11-style platform
sweep.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.core.energy import area_mm2, gate_counts, power_w
    from repro.core.model import DEFAULT_CONFIG
    config = DEFAULT_CONFIG
    print("Cambricon-P (reproduction) — hardware characteristics")
    print("  configuration: %d PEs x %d IPUs, q=%d, L=%d, %.1f GHz"
          % (config.num_pes, config.num_ipus, config.q,
             config.limb_bits, config.frequency_hz / 1e9))
    print("  area:  %.3f mm^2 (TSMC 16 nm model)" % area_mm2())
    print("  power: %.3f W" % power_w())
    print("  monolithic multiply limit: %d bits"
          % config.monolithic_max_bits)
    print("  component shares:")
    for name, share in sorted(gate_counts().shares().items(),
                              key=lambda kv: -kv[1]):
        print("    %-14s %5.1f%%" % (name, share * 100))
    if args.selftest:
        from repro.core.accelerator import CambriconP
        CambriconP().selftest(verbose=True)
        print("  selftest: all passed")
    return 0


def _cmd_multiply(args: argparse.Namespace) -> int:
    from repro.core.accelerator import CambriconP
    from repro.mpn import nat_from_int, nat_to_int
    from repro.platforms import cpu
    rng = random.Random(args.seed)
    a = rng.getrandbits(args.bits) | (1 << (args.bits - 1))
    b = rng.getrandbits(args.bits) | (1 << (args.bits - 1))
    device = CambriconP()
    product, report = device.multiply(nat_from_int(a), nat_from_int(b),
                                      bit_serial=args.bit_serial)
    if nat_to_int(product) != a * b:
        raise RuntimeError("device product mismatch at %d bits "
                           "(simulator bug)" % args.bits)
    print("%d-bit x %d-bit multiply: exact (%d product bits)"
          % (args.bits, args.bits, nat_to_int(product).bit_length()))
    print("  passes=%d waves=%d cycles=%.0f time=%.3e s"
          % (report.num_passes, report.num_waves, report.cycles,
             report.seconds))
    print("  LLC traffic: %.0f bytes" % report.traffic.total_bytes)
    cpu_seconds = cpu.multiply_seconds(args.bits)
    print("  Xeon+GMP model: %.3e s  -> speedup %.2fx"
          % (cpu_seconds, cpu_seconds / report.seconds))
    return 0


def _cmd_pi(args: argparse.Namespace) -> int:
    from repro.apps import pi
    result = pi.run(args.digits)
    text = result.digits
    for offset in range(0, len(text), 72):
        print(text[offset:offset + 72])
    print("(%d terms, %d-bit arithmetic)"
          % (result.terms, result.precision_bits), file=sys.stderr)
    return 0


def _cmd_rsa(args: argparse.Namespace) -> int:
    from repro.apps import rsa
    result = rsa.run(bits=args.bits, seed=args.seed, messages=2)
    print("generated %d-bit key; encrypt/decrypt round trip: %s"
          % (result.key.bits, "ok" if result.ok else "FAILED"))
    return 0 if result.ok else 1


def _cmd_lambda(args: argparse.Namespace) -> int:
    from repro.core.bips import best_q, lambda_ratio
    print("BIPS benefit ratio lambda(q) at p_y = %d" % args.index_bits)
    for q in range(1, 9):
        print("  q=%d  lambda=%.4f" % (q, lambda_ratio(q,
                                                       args.index_bits)))
    q, best = best_q(args.index_bits)
    print("minimum %.4f at q=%d" % (best, q))
    return 0


def _sweep_point(bits: int) -> tuple:
    """One sweep row (top-level so worker processes can run it)."""
    from repro.platforms import cpu
    from repro.runtime import mpapca
    return bits, cpu.multiply_seconds(bits), mpapca.multiply_seconds(bits)


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.parallel import ParallelExecutor
    sizes = []
    bits = 64
    while bits <= args.max_bits:
        sizes.append(bits)
        bits *= 4
    print("%-12s %-12s %-14s %s" % ("N (bits)", "CPU+GMP(s)",
                                    "Cambricon-P(s)", "speedup"))
    with ParallelExecutor(args.workers) as executor:
        rows = executor.map(_sweep_point, sizes)
    for bits, cpu_seconds, camp_seconds in rows:
        print("%-12d %-12.3e %-14.3e %.2fx"
              % (bits, cpu_seconds, camp_seconds,
                 cpu_seconds / camp_seconds))
    from repro.core.model import flush_cycle_cache
    flush_cycle_cache()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cambricon-P reproduction command-line interface")
    commands = parser.add_subparsers(dest="command", required=True)

    info = commands.add_parser("info", help="hardware characteristics")
    info.add_argument("--selftest", action="store_true",
                      help="run the device validation sweep")
    info.set_defaults(handler=_cmd_info)

    multiply = commands.add_parser(
        "multiply", help="run one monolithic multiply on the simulator")
    multiply.add_argument("bits", type=int, nargs="?", default=4096)
    multiply.add_argument("--seed", type=int, default=2022)
    multiply.add_argument("--bit-serial", action="store_true",
                          help="use the cycle-stepped bit-serial path")
    multiply.set_defaults(handler=_cmd_multiply)

    pi_parser = commands.add_parser("pi", help="digits of pi")
    pi_parser.add_argument("digits", type=int, nargs="?", default=100)
    pi_parser.set_defaults(handler=_cmd_pi)

    rsa_parser = commands.add_parser("rsa", help="RSA round trip")
    rsa_parser.add_argument("bits", type=int, nargs="?", default=512)
    rsa_parser.add_argument("--seed", type=int, default=2022)
    rsa_parser.set_defaults(handler=_cmd_rsa)

    lambda_parser = commands.add_parser(
        "lambda", help="BIPS benefit-ratio table")
    lambda_parser.add_argument("--index-bits", type=int, default=32)
    lambda_parser.set_defaults(handler=_cmd_lambda)

    sweep = commands.add_parser(
        "sweep", help="Figure-11-style multiply sweep")
    sweep.add_argument("--max-bits", type=int, default=1 << 20)
    sweep.add_argument("--workers", type=int, default=None,
                       help="worker processes (default: $REPRO_WORKERS)")
    sweep.set_defaults(handler=_cmd_sweep)

    price = commands.add_parser(
        "price", help="price an application run on all platform models")
    price.add_argument("app", choices=["pi", "frac", "zkcm", "rsa", "he"])
    price.add_argument("--size", type=int, default=0,
                       help="digits (pi), zoom (frac), qubits (zkcm), "
                            "key bits (rsa/he); 0 = default")
    price.set_defaults(handler=_cmd_price)

    tune_parser = commands.add_parser(
        "tune", help="measure and persist kernel thresholds for this host")
    tune_parser.add_argument("--max-limbs", type=int, default=384)
    tune_parser.add_argument("--repeats", type=int, default=3,
                             help="best-of-N timing repetitions")
    tune_parser.add_argument("--output", default=None,
                             help="thresholds file (default: "
                                  "$REPRO_THRESHOLDS or "
                                  "~/.cache/repro/thresholds.json)")
    tune_parser.add_argument("--dry-run", action="store_true",
                             help="measure and print without persisting")
    tune_parser.add_argument("--no-division", action="store_true",
                             help="skip the division/Barrett crossovers")
    tune_parser.add_argument("--no-packed", action="store_true",
                             help="skip the packed-backend crossovers")
    tune_parser.add_argument("--no-rns", action="store_true",
                             help="skip the rns-backend crossovers")
    tune_parser.add_argument("--no-codegen", action="store_true",
                             help="skip the generic-vs-specialized "
                                  "crossover (keeps the default)")
    tune_parser.add_argument("--no-dataset", action="store_true",
                             help="discard the raw timing probes "
                                  "instead of appending them to the "
                                  "cost dataset")
    tune_parser.set_defaults(handler=_cmd_tune)

    cost_parser = commands.add_parser(
        "cost", help="learned wall-clock cost model: harvest "
                     "measurements, fit, evaluate")
    cost_parser.add_argument("action",
                             choices=["harvest", "fit", "eval", "show"])
    cost_parser.add_argument("--dataset", default=None,
                             help="measurement dataset (default: "
                                  "$REPRO_COST_DATASET or "
                                  "results/COST_dataset.jsonl)")
    cost_parser.add_argument("--bench", default=None,
                             help="harvest: a BENCH_kernels.json to "
                                  "fold into the dataset")
    cost_parser.add_argument("--serve", default=None,
                             help="harvest: a BENCH_serve.json "
                                  "(end-to-end rows, excluded from "
                                  "kernel fits)")
    cost_parser.add_argument("--traces", default=None,
                             help="harvest: a REPRO_TRACE span dump "
                                  "(plan-stamped JSON lines)")
    cost_parser.add_argument("--output", default=None,
                             help="eval: also write the report JSON "
                                  "here (results/BENCH_cost.json in CI)")
    cost_parser.add_argument("--check", action="store_true",
                             help="eval: exit non-zero unless the "
                                  "fitted model beats the analytic "
                                  "cost by the held-out error gate")
    cost_parser.set_defaults(handler=_cmd_cost)

    cache_parser = commands.add_parser(
        "cache", help="inspect or clear the persistent caches")
    cache_parser.add_argument("--clear", action="store_true",
                              help="delete every on-disk cache file")
    cache_parser.add_argument("--codegen", action="store_true",
                              help="operate on the specialized-kernel "
                                   "store only: print compile/reject "
                                   "stats, or with --clear drop every "
                                   "resident and persisted kernel")
    cache_parser.set_defaults(handler=_cmd_cache)

    report = commands.add_parser(
        "report", help="compile results/ into REPORT.md")
    report.add_argument("--results", default="results")
    report.add_argument("--output", default="REPORT.md")
    report.set_defaults(handler=_cmd_report)

    figures = commands.add_parser(
        "figures", help="render Figures 11 and 13 as ASCII charts")
    figures.add_argument("--which", choices=["11", "13", "all"],
                         default="all")
    figures.add_argument("--workers", type=int, default=None,
                         help="worker processes (default: $REPRO_WORKERS)")
    figures.set_defaults(handler=_cmd_figures)

    plan_parser = commands.add_parser(
        "plan", help="lower one operation to its execution plan")
    plan_parser.add_argument("op",
                             choices=["mul", "div", "mod", "powmod",
                                      "sqrt", "add", "sub", "pi_digits",
                                      "model_cycles"],
                             help="operation to lower")
    plan_parser.add_argument("--bits", type=int, default=4096,
                             help="bit width of the first operand "
                                  "(default 4096)")
    plan_parser.add_argument("--bits-b", type=int, default=None,
                             help="bit width of the second operand "
                                  "(default: --bits)")
    plan_parser.add_argument("--digits", type=int, default=100,
                             help="pi_digits: decimal digits requested")
    plan_parser.add_argument("--backend",
                             choices=["auto", "library", "device",
                                      "packed", "rns", "specialized"],
                             default="auto",
                             help="force the execution backend")
    plan_parser.add_argument("--verify", action="store_true",
                             help="run the static plan verifier on the "
                                  "lowered plan")
    plan_parser.set_defaults(handler=_cmd_plan)

    analyze = commands.add_parser(
        "analyze", help="run the interprocedural flow analyzer")
    analyze.add_argument("paths", nargs="*",
                         help="files/directories to analyze (default: "
                              "the installed repro package)")
    analyze.add_argument("--sarif", metavar="OUT.json",
                         help="also write findings as SARIF 2.1.0")
    analyze.add_argument("--no-baseline", action="store_true",
                         help="ignore the checked-in baseline and "
                              "report everything")
    analyze.add_argument("--baseline", metavar="PATH",
                         help="baseline file to apply (default: the "
                              "checked-in one)")
    analyze.add_argument("--write-baseline", metavar="PATH",
                         help="accept every current finding into PATH "
                              "and exit")
    analyze.add_argument("--list-rules", action="store_true",
                         help="print the AF/CC/EV rule catalogue")
    analyze.add_argument("--env-table", action="store_true",
                         help="print the REPRO_* registry as a "
                              "markdown table (docs/ENV.md source)")
    analyze.set_defaults(handler=_cmd_analyze)

    lint = commands.add_parser(
        "lint", help="run the kernel-contract linter")
    lint.add_argument("paths", nargs="*",
                      help="files/directories to lint (default: the "
                           "installed repro package)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalogue and exit")
    lint.add_argument("--audit-noqa", action="store_true",
                      help="report noqa comments that suppress nothing "
                           "(in lint or flow analysis)")
    lint.set_defaults(handler=_cmd_lint)

    verify = commands.add_parser(
        "verify-stream",
        help="statically verify a Driver instruction stream")
    verify.add_argument("program", nargs="?",
                        help="JSON program file (see docs/ANALYSIS.md)")
    verify.add_argument("--selftest", action="store_true",
                        help="verify a generated well-formed program and "
                             "prove the checks fire on a hazardous one")
    verify.set_defaults(handler=_cmd_verify_stream)

    serve = commands.add_parser(
        "serve", help="run the arbitrary-precision job server")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8421,
                       help="listen port (0 = ephemeral)")
    serve.add_argument("--queue", type=int, default=None,
                       help="admission-queue capacity "
                            "(default: $REPRO_SERVE_QUEUE or 256)")
    serve.add_argument("--max-batch", type=int, default=None,
                       help="dynamic-batch bound "
                            "(default: $REPRO_SERVE_BATCH or 16)")
    serve.add_argument("--batch-ms", type=float, default=None,
                       help="batching latency window "
                            "(default: $REPRO_SERVE_BATCH_MS or 5)")
    serve.add_argument("--workers", type=int, default=None,
                       help="executor workers (default: $REPRO_WORKERS)")
    serve.add_argument("--shards", type=int, default=None,
                       help="shard worker processes behind the "
                            "plan-aware router; 0 = single process "
                            "(default: $REPRO_SHARDS)")
    serve.set_defaults(handler=_cmd_serve)

    bench_serve = commands.add_parser(
        "bench-serve",
        help="drive a verified load test against repro serve")
    bench_serve.add_argument("--host", default="127.0.0.1")
    bench_serve.add_argument("--port", type=int, default=None,
                             help="target an already-running server "
                                  "(default: self-host one)")
    bench_serve.add_argument("--requests", type=int, default=200)
    bench_serve.add_argument("--concurrency", type=int, default=8)
    bench_serve.add_argument("--seed", type=int, default=2022)
    bench_serve.add_argument("--shards", type=int, default=0,
                             help="also measure a sharded fleet of N "
                                  "workers against the single-shard "
                                  "baseline (self-hosted only)")
    bench_serve.add_argument("--no-verify", action="store_true",
                             help="skip bit-identical verification")
    bench_serve.add_argument("--output",
                             default="results/BENCH_serve.json")
    bench_serve.set_defaults(handler=_cmd_bench_serve)

    bench_kernels = commands.add_parser(
        "bench-kernels",
        help="time the limb vs block-packed vs rns vs specialized mpn "
             "backends and record per-backend numbers")
    bench_kernels.add_argument("--quick", action="store_true",
                               help="reduced ladder for CI smoke runs")
    bench_kernels.add_argument("--check", action="store_true",
                               help="exit 1 if packed regresses below "
                                    "0.9x limb, specialized mul below "
                                    "1.15x the generic limb path, rns "
                                    "powmod below 1.2x limb, or serial "
                                    "rns mul past the packed-baseline "
                                    "canary bound, at the largest "
                                    "measured size")
    bench_kernels.add_argument("--repeats", type=int, default=5,
                               help="best-of-N timing repetitions")
    bench_kernels.add_argument("--seed", type=int, default=2022)
    bench_kernels.add_argument("--no-profile", action="store_true",
                               help="skip the cProfile hotspot pass")
    bench_kernels.add_argument("--output",
                               default="results/BENCH_kernels.json")
    bench_kernels.set_defaults(handler=_cmd_bench_kernels)
    return parser


def _cmd_price(args: argparse.Namespace) -> int:
    from repro.apps import frac, he, pi, rsa, zkcm
    from repro.report import compare_trace
    runners = {
        "pi": lambda s: pi.trace_run(s or 1000),
        "frac": lambda s: frac.trace_run(zoom_exponent=s or 60),
        "zkcm": lambda s: zkcm.trace_run(num_qubits=s or 4),
        "rsa": lambda s: rsa.trace_run(bits=s or 512, messages=2),
        "he": lambda s: he.trace_run(bits=s or 256),
    }
    _, trace = runners[args.app](args.size)
    comparison = compare_trace(trace)
    print("%s (%d kernel ops):" % (args.app, trace.count()))
    print(comparison.table())
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.mpn.tune import save_thresholds, tune
    result = tune(max_limbs=args.max_limbs, repeats=args.repeats,
                  measure_division=not args.no_division,
                  measure_packed=not args.no_packed,
                  measure_rns=not args.no_rns,
                  measure_codegen=not args.no_codegen)
    print(result.report())
    print("tuned policy:", result.policy)
    if not args.dry_run and not args.no_dataset and result.raw_points:
        from repro.cost import dataset
        written = dataset.append_rows(result.raw_points)
        print("appended %d measurement row(s) to %s"
              % (written, dataset.dataset_path()))
    if not args.dry_run:
        output = Path(args.output) if args.output else None
        target = save_thresholds(result.thresholds, output)
        print("thresholds persisted to %s" % target)
    return 0


def _cmd_cost(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.cost import dataset, model
    from repro.plan import select

    if args.action == "harvest":
        sources = [(args.bench, dataset.harvest_bench_kernels),
                   (args.serve, dataset.harvest_serve),
                   (args.traces, dataset.harvest_trace)]
        if not any(path for path, _ in sources):
            print("cost harvest: pass at least one of --bench, "
                  "--serve, --traces")
            return 2
        total = 0
        for path, harvester in sources:
            if not path:
                continue
            rows = harvester(path)
            written = dataset.append_rows(rows, args.dataset)
            print("harvested %d row(s) from %s" % (written, path))
            total += written
        print("dataset: %s (%d kernel row(s) total)"
              % (dataset.dataset_path(args.dataset),
                 len(dataset.load_rows(args.dataset))))
        return 0 if total else 1

    rows = dataset.load_rows(args.dataset)
    fingerprint = select.fingerprint()

    if args.action == "fit":
        if not rows:
            print("cost fit: no kernel rows in %s"
                  % dataset.dataset_path(args.dataset))
            return 1
        fitted = model.fit(rows, fingerprint)
        if fitted is None:
            print("cost fit: no (op, backend) group has enough "
                  "distinct sizes (need %d)" % model.MIN_GROUP_SIZES)
            return 1
        model.save(fitted)
        print("fitted %d group(s) from %d row(s): %s"
              % (len(fitted.groups), len(rows),
                 ", ".join(sorted(fitted.groups))))
        print("observed rate: %.6g cycles/ns; model digest %s"
              % (fitted.rate_cycles_per_ns, fitted.digest()))
        return 0

    if args.action == "eval":
        report = model.evaluate(rows, fingerprint)
        if report is None:
            print("cost eval: not enough rows to fit and hold out")
            return 1
        payload = {"schema": 1, "generated_by": "repro cost eval",
                   "fingerprint": list(fingerprint)}
        payload.update(report)
        print("held-out rows: %d of %d"
              % (report["rows_scored"], report["rows_holdout"]))
        print("median |rel err|: model %.4f vs analytic %.4f "
              "(%.2fx better; gate >= %.1fx: %s)"
              % (report["model_median_rel_err"],
                 report["analytic_median_rel_err"],
                 report["error_ratio"], report["gate_ratio"],
                 "PASS" if report["gate_ok"] else "FAIL"))
        if args.output:
            target = Path(args.output)
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(
                json.dumps(payload, indent=2, sort_keys=True) + "\n",
                encoding="utf-8")
            print("wrote %s" % target)
        if args.check and not report["gate_ok"]:
            return 1
        return 0

    # show: the model state selection and admission actually see.
    print("killswitch: REPRO_COST=%s (%s)"
          % ("0" if not model.enabled() else "on",
             "disabled" if not model.enabled() else "enabled"))
    print("thresholds fingerprint: %s" % (tuple(fingerprint),))
    active = model.active_model()
    if active is None:
        print("active model: none (analytic Plan.cost() everywhere)")
        return 0
    print("active model: %d group(s), digest %s"
          % (len(active.groups), active.digest()))
    print("observed rate: %.6g cycles/ns" % active.rate_cycles_per_ns)
    for key in sorted(active.groups):
        group = active.groups[key]
        print("  %-18s ns ~= exp(%.3f) * limbs^%.3f  (n=%d, "
              "limbs %d..%d)"
              % (key, group["a"], group["b"], int(group["n"]),
                 int(group["limbs_min"]), int(group["limbs_max"])))
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.parallel import cache_root, clear_disk_caches
    root = cache_root()
    if args.codegen:
        from repro.plan import codegen
        if args.clear:
            removed = codegen.clear()
            print("cleared %d specialized kernel(s)" % removed)
            return 0
        for key, value in sorted(codegen.stats().items()):
            print("  %-18s %s" % (key, value))
        return 0
    if args.clear:
        removed = clear_disk_caches()
        print("cleared %d cache file(s) under %s" % (len(removed), root))
        return 0
    print("cache root: %s" % root)
    if not root.is_dir():
        print("  (empty)")
        return 0
    for path in sorted(root.glob("*.json")):
        print("  %-28s %8d bytes" % (path.name, path.stat().st_size))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from pathlib import Path
    from repro.report import compile_report
    text = compile_report(Path(args.results), Path(args.output))
    print("wrote %s (%d sections, %d chars)"
          % (args.output, text.count("## "), len(text)))
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.analysis.stream import verify_plan
    from repro.plan import OpSpec, PlanError
    from repro.plan.lowering import lower

    bits_b = args.bits_b if args.bits_b is not None else args.bits
    detail = ()
    bits_a = args.bits
    if args.op == "pi_digits":
        detail = (("digits", args.digits),)
        bits_a = bits_b = 0
    elif args.op == "model_cycles":
        detail = (("model_op", "mul"),)
        bits_b = 0
    elif args.op == "powmod":
        # mod width rides bits_a, exponent width bits_b; CLI lowering
        # assumes the common odd-modulus (Montgomery) case.
        detail = (("mod_odd", 1),)
    try:
        spec = OpSpec(args.op, bits_a, bits_b, args.backend, detail)
        plan = lower(spec)
    except PlanError as error:
        print("plan: %s" % error, file=sys.stderr)
        return 2
    print(plan.describe())
    if args.op in ("mul", "div", "mod"):
        from repro.mpn.nat import LIMB_BITS
        from repro.plan import codegen
        from repro.plan.schedule import derive_schedule
        if args.op == "mul":
            sched_op = "mul"
            limbs = max(1, -(-min(bits_a, bits_b) // LIMB_BITS))
        else:
            sched_op = "div"
            limbs = max(1, -(-bits_b // LIMB_BITS))
        schedule = derive_schedule(sched_op, limbs)
        print("schedule:")
        print(schedule.render("  "))
        status = codegen.specialization_status(sched_op, limbs)
        if not status["enabled"]:
            print("specialization: disabled (REPRO_CODEGEN=0)")
        elif status["compiled"]:
            print("specialization: hit (compiled, sha %s)"
                  % (status["sha256"] or "-"))
        elif status["persisted"]:
            print("specialization: hit (persisted source, sha %s)"
                  % status["sha256"])
        else:
            print("specialization: miss (no persisted kernel; "
                  "compiled on first specialized run)")
    if args.verify:
        violations = verify_plan(plan)
        for violation in violations:
            print(violation.render())
        print("verify: %d hazard(s)" % len(violations))
        return 0 if not violations else 1
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from pathlib import Path

    import repro
    from repro.analysis.flow import (ALL_RULE_IDS, DEFAULT_BASELINE,
                                     analyze_paths, save_baseline,
                                     write_sarif)
    if args.list_rules:
        for rule in ALL_RULE_IDS:
            print("%s %-24s %s" % (rule.code, rule.name, rule.rationale))
        return 0
    if args.env_table:
        from repro.analysis import env
        print(env.render_table())
        return 0
    paths = [str(p) for p in args.paths] \
        or [str(Path(repro.__file__).parent)]
    if args.write_baseline:
        report = analyze_paths(paths, baseline_path=None)
        save_baseline(args.write_baseline, report.findings)
        print("analyze: wrote %d baseline entr%s to %s"
              % (len(report.findings),
                 "y" if len(report.findings) == 1 else "ies",
                 args.write_baseline))
        return 0
    baseline = None if args.no_baseline \
        else (args.baseline or DEFAULT_BASELINE)
    report = analyze_paths(paths, baseline_path=baseline)
    if report.files_checked == 0:
        print("analyze: no Python files under %s" % ", ".join(paths),
              file=sys.stderr)
        return 2
    print(report.render())
    if args.sarif:
        write_sarif(args.sarif, report.findings)
    return 0 if report.ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    import repro
    from repro.analysis import ALL_RULES, lint_paths
    if args.list_rules:
        for rule in ALL_RULES:
            print("%s %-24s %s" % (rule.code, rule.name, rule.rationale))
        return 0
    paths = args.paths or [Path(repro.__file__).parent]
    if args.audit_noqa:
        from repro.analysis.audit import audit_noqa
        audit = audit_noqa(paths)
        if audit.files_checked == 0:
            print("lint: no Python files under %s"
                  % ", ".join(str(p) for p in paths), file=sys.stderr)
            return 2
        print(audit.render())
        return 0 if audit.ok else 1
    report = lint_paths(paths)
    if report.files_checked == 0:
        # A typo'd path must not read as a clean bill of health.
        print("lint: no Python files under %s"
              % ", ".join(str(p) for p in paths), file=sys.stderr)
        return 2
    print(report.render())
    return 0 if report.ok else 1


def _load_stream_program(path: str):
    """Parse a JSON stream description into (llc, program).

    Format: ``{"llc": {"<addr>": <int or "0x..">, ...},
    "program": [{"op": "mul", "sources": [[addr, bits], ...],
    "dest": addr, "imm": 0}, ...]}``.
    """
    import json

    from repro.core.isa import Instruction, Opcode, OperandRef, SharedLLC
    from repro.mpn import nat_from_int
    with open(path, "r", encoding="utf-8") as handle:
        description = json.load(handle)
    llc = SharedLLC()
    for address, value in description.get("llc", {}).items():
        number = int(value, 0) if isinstance(value, str) else int(value)
        llc.write(int(address), nat_from_int(number))
    program = []
    for entry in description.get("program", []):
        # The stream loader deserializes externally-authored programs
        # for verification; there is no plan to lower here.
        program.append(Instruction(  # repro: noqa=direct-dispatch -- deserializing a user-supplied stream
            opcode=Opcode(entry["op"].lower()),
            sources=tuple(OperandRef(int(addr), int(bits))
                          for addr, bits in entry.get("sources", [])),
            destination=int(entry["dest"]),
            immediate=int(entry.get("imm", 0))))
    return llc, program


def _cmd_verify_stream(args: argparse.Namespace) -> int:
    from repro.analysis.stream import verify_stream
    if args.selftest:
        return _verify_stream_selftest()
    if not args.program:
        print("verify-stream: provide a JSON program file or --selftest",
              file=sys.stderr)
        return 2
    try:
        llc, program = _load_stream_program(args.program)
    except OSError as error:
        print("verify-stream: cannot read %s: %s" % (args.program, error),
              file=sys.stderr)
        return 2
    except (KeyError, TypeError, ValueError) as error:
        # json.JSONDecodeError is a ValueError; bad opcodes/operand
        # descriptors land here too.
        print("verify-stream: malformed program %s: %s"
              % (args.program, error), file=sys.stderr)
        return 2
    violations = verify_stream(program, llc)
    for violation in violations:
        print("%s:%s" % (args.program, violation.render()))
    print("%d instruction(s), %d hazard(s)"
          % (len(program), len(violations)))
    return 0 if not violations else 1


def _verify_stream_selftest() -> int:
    from repro.analysis.stream import verify_stream
    from repro.core.isa import Driver, Instruction, Opcode, OperandRef
    from repro.mpn import nat_from_int
    driver = Driver()
    a = driver.alloc(nat_from_int(3 ** 50))
    b = driver.alloc(nat_from_int(7 ** 40))
    good = [
        Instruction(Opcode.MUL, (a, b), destination=2),  # repro: noqa=direct-dispatch -- selftest needs raw streams
        Instruction(Opcode.SHL, (OperandRef(2, a.bits + b.bits),),  # repro: noqa=direct-dispatch -- selftest needs raw streams
                    destination=3, immediate=64),
    ]
    clean = driver.verify(good)
    if clean:
        for violation in clean:
            print(violation.render(), file=sys.stderr)
        print("selftest FAILED: well-formed stream reported hazardous")
        return 1
    hazardous = [
        Instruction(Opcode.MUL, (a, OperandRef(99, 8)), destination=0),  # repro: noqa=direct-dispatch -- seeding hazards on purpose
        Instruction(Opcode.ADD, (a,), destination=4, immediate=3),  # repro: noqa=direct-dispatch -- seeding hazards on purpose
    ]
    hazards = driver.verify(hazardous)
    checks = sorted({violation.check for violation in hazards})
    if not hazards:
        print("selftest FAILED: hazardous stream verified clean")
        return 1
    print("selftest: clean stream ok; seeded stream raised %d hazard(s): %s"
          % (len(hazards), ", ".join(checks)))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.analysis import env as _env
    from repro.serve.server import ServeConfig, run_server

    def announce(line: str) -> None:
        print(line, flush=True)

    shards = args.shards if args.shards is not None \
        else _env.int_value(_env.SHARDS, 0, minimum=0)
    if shards > 0:
        from repro.shard import RouterConfig, run_router
        router_config = RouterConfig.from_env(
            host=args.host, port=args.port, shards=shards)
        return run_router(router_config, announce=announce)
    config = ServeConfig.from_env(
        host=args.host, port=args.port, queue_capacity=args.queue,
        max_batch=args.max_batch, batch_ms=args.batch_ms,
        workers=args.workers)
    return run_server(config, announce=announce)


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    import json

    from repro.serve.client import run_load, write_bench
    from repro.serve.server import ServerThread

    def drive(host: str, port: int) -> int:
        report = run_load(host, port, requests=args.requests,
                          concurrency=args.concurrency, seed=args.seed,
                          verify=not args.no_verify)
        report["self_hosted"] = args.port is None
        print(json.dumps(report, indent=2, sort_keys=True))
        if args.output:
            write_bench(report, args.output)
            print("wrote %s" % args.output, file=sys.stderr)
        if report["wrong_answers"] or report["errors"]:
            return 1
        return 0

    if args.shards > 0:
        if args.port is not None:
            print("bench-serve: --shards self-hosts its own fleet; "
                  "drop --port", file=sys.stderr)
            return 2
        return _bench_serve_sharded(args)
    if args.port is not None:
        return drive(args.host, args.port)
    with ServerThread() as hosted:
        return drive(hosted.host, hosted.port)


#: Sharded-throughput acceptance bar (asserted only on >= 2 CPUs).
BENCH_SHARD_TARGET = 1.5


def _bench_serve_sharded(args: argparse.Namespace) -> int:
    """Throughput-vs-shards: a single-shard baseline, then a routed
    fleet of ``--shards`` workers, same seeded workload.

    On a multi-core runner the sharded run must reach
    ``BENCH_SHARD_TARGET`` times the baseline throughput; on one CPU
    the shards time-slice one core, so the speedup is *recorded but
    not asserted* (the BENCH_parallel honesty convention) with an
    explicit ``skip_reason``.
    """
    import json

    from repro.parallel import available_cpus
    from repro.serve.client import run_load, write_bench
    from repro.serve.server import ServerThread
    from repro.shard import RouterConfig, RouterThread
    from repro.shard.cache import ShardResultCache

    with ServerThread() as hosted:
        baseline = run_load(hosted.host, hosted.port,
                            requests=args.requests,
                            concurrency=args.concurrency,
                            seed=args.seed,
                            verify=not args.no_verify)
    router_config = RouterConfig.from_env(host="127.0.0.1", port=0,
                                          shards=args.shards)
    # A cold in-memory cache: disk-warmed answers must never flatter
    # the sharded numbers.
    with RouterThread(router_config,
                      cache=ShardResultCache(persist=False)) as fleet:
        report = run_load(fleet.host, fleet.port,
                          requests=args.requests,
                          concurrency=args.concurrency,
                          seed=args.seed, verify=not args.no_verify)
        router_stats = fleet.router.statz()

    cpus = available_cpus()
    asserted = cpus >= 2
    baseline_rps = baseline["throughput_rps"]
    speedup = (report["throughput_rps"] / baseline_rps
               if baseline_rps > 0 else 0.0)
    report["self_hosted"] = True
    report["shards"] = args.shards
    report["per_shard_rps"] = round(
        report["throughput_rps"] / args.shards, 2)
    report["router"] = {
        "routed": router_stats["routed"],
        "shed": router_stats["shed"],
        "restarts": router_stats["restarts"],
        "cache": router_stats["cache"],
    }
    report["baseline_single"] = {
        "throughput_rps": baseline_rps,
        "ok": baseline["ok"],
        "shed": baseline["shed"],
        "wrong_answers": baseline["wrong_answers"],
        "errors": baseline["errors"],
        "wall_s": baseline["wall_s"],
    }
    report["scaling"] = {
        "speedup": round(speedup, 3),
        "target": BENCH_SHARD_TARGET,
        "asserted": asserted,
        "skip_reason": None if asserted else
        "speedup gate requires >= 2 CPUs; measured on %d" % cpus,
    }
    print(json.dumps(report, indent=2, sort_keys=True))
    if args.output:
        write_bench(report, args.output)
        print("wrote %s" % args.output, file=sys.stderr)
    failed = bool(report["wrong_answers"] or report["errors"]
                  or baseline["wrong_answers"] or baseline["errors"])
    if asserted and speedup < BENCH_SHARD_TARGET:
        print("bench-serve: sharded speedup %.2fx below the %.1fx "
              "target on %d CPUs" % (speedup, BENCH_SHARD_TARGET,
                                     cpus), file=sys.stderr)
        failed = True
    return 1 if failed else 0


def _cmd_bench_kernels(args: argparse.Namespace) -> int:
    from repro.bench import bench_kernels, write_bench
    from repro.bench import kernels as _ck
    from repro.bench.kernels import check_report, render_report

    report = bench_kernels(quick=args.quick, repeats=args.repeats,
                           seed=args.seed,
                           profile=not args.no_profile)
    print(render_report(report))
    if args.output:
        write_bench(report, args.output)
        print("wrote %s" % args.output, file=sys.stderr)
    if args.check:
        failures = check_report(report)
        for failure in failures:
            print("check: %s" % failure, file=sys.stderr)
        if failures:
            return 1
        print("check: every backend matches the bigint oracle at every "
              "point; packed >= %.1fx limb, specialized mul >= %.2fx "
              "limb, rns powmod >= %.1fx limb, serial rns mul within "
              "the packed canary bound at the largest sizes"
              % (_ck.CHECK_MIN_SPEEDUP,
                 _ck.CHECK_SPECIALIZED_MIN_SPEEDUP,
                 _ck.CHECK_RNS_POWMOD_MIN_SPEEDUP),
              file=sys.stderr)
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.parallel import ParallelExecutor
    from repro.report import figure_11, figure_13
    with ParallelExecutor(args.workers) as executor:
        if args.which in ("11", "all"):
            print(figure_11(executor=executor))
        if args.which in ("13", "all"):
            print()
            print(figure_13(executor=executor))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
