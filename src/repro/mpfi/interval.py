"""Interval arithmetic over MPF (an MPFI-like error-analysis layer).

Figure 1 tops the float stack with "high-level functions with error
analysis"; the standard tool for *rigorous* error analysis is interval
arithmetic: every value is a pair [lo, hi] guaranteed to contain the
true result, with bounds nudged outward after every operation.  Built
on truncating MPF arithmetic, the enclosure property is maintained by
widening each computed bound by one unit in the last place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.mpf import MPF
from repro.mpn.nat import MpnError
from repro.mpz import MPZ

_Scalar = Union[int, MPZ, MPF]


def _ulp_down(value: MPF) -> MPF:
    """A value strictly below ``value`` by ~1 ulp at its precision."""
    if not value:
        return MPF(0, value.precision) - _tiny(value.precision)
    mantissa, exponent = value.to_fraction_parts()
    return MPF(mantissa - 1, value.precision).ldexp(exponent)


def _ulp_up(value: MPF) -> MPF:
    """A value strictly above ``value`` by ~1 ulp at its precision."""
    if not value:
        return _tiny(value.precision)
    mantissa, exponent = value.to_fraction_parts()
    return MPF(mantissa + 1, value.precision).ldexp(exponent)


def _tiny(precision: int) -> MPF:
    return MPF.from_ratio(1, MPZ(1) << (4 * precision), precision)


@dataclass(frozen=True)
class Interval:
    """A closed interval [lo, hi] guaranteed to contain the true value."""

    lo: MPF
    hi: MPF

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise MpnError("interval bounds out of order")

    # -- constructors ----------------------------------------------------

    @classmethod
    def exact(cls, value: _Scalar, precision: int = 128) -> "Interval":
        as_mpf = value if isinstance(value, MPF) \
            else MPF(int(value), precision)
        return cls(as_mpf, as_mpf)

    @classmethod
    def from_ratio(cls, numerator: int, denominator: int,
                   precision: int = 128) -> "Interval":
        value = MPF.from_ratio(numerator, denominator, precision)
        # Truncated quotient: the true value lies within 1 ulp above.
        return cls(_ulp_down(value), _ulp_up(value))

    # -- queries ------------------------------------------------------------

    @property
    def precision(self) -> int:
        return max(self.lo.precision, self.hi.precision)

    def width(self) -> MPF:
        """hi - lo: the rigorous error bound."""
        return self.hi - self.lo

    def contains(self, value: MPF) -> bool:
        return self.lo <= value <= self.hi

    def midpoint(self) -> MPF:
        return (self.lo + self.hi) / MPF(2, self.precision)

    def __repr__(self) -> str:
        return "Interval[%s, %s]" % (self.lo.to_decimal_string(8),
                                     self.hi.to_decimal_string(8))

    # -- arithmetic -------------------------------------------------------------

    def __add__(self, other: "Interval") -> "Interval":
        return Interval(_ulp_down(self.lo + other.lo),
                        _ulp_up(self.hi + other.hi))

    def __sub__(self, other: "Interval") -> "Interval":
        return Interval(_ulp_down(self.lo - other.hi),
                        _ulp_up(self.hi - other.lo))

    def __neg__(self) -> "Interval":
        return Interval(-self.hi, -self.lo)

    def __mul__(self, other: "Interval") -> "Interval":
        products = [self.lo * other.lo, self.lo * other.hi,
                    self.hi * other.lo, self.hi * other.hi]
        return Interval(_ulp_down(min(products)),
                        _ulp_up(max(products)))

    def __truediv__(self, other: "Interval") -> "Interval":
        if other.contains(MPF(0, other.precision)):
            raise MpnError("division by an interval containing zero")
        quotients = [self.lo / other.lo, self.lo / other.hi,
                     self.hi / other.lo, self.hi / other.hi]
        return Interval(_ulp_down(min(quotients)),
                        _ulp_up(max(quotients)))

    def sqrt(self) -> "Interval":
        if self.lo.sign < 0:
            raise MpnError("sqrt of an interval reaching below zero")
        return Interval(_ulp_down(self.lo.sqrt()),
                        _ulp_up(self.hi.sqrt()))
