"""Interval arithmetic (MPFI-like rigorous error analysis)."""

from repro.mpfi.interval import Interval

__all__ = ["Interval"]
