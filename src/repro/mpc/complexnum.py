"""Arbitrary-precision complex numbers (the "Complex" layer of Figure 1).

Domain-specific libraries in the paper's stack — zkcm in particular,
which simulates quantum computers with multiprecision complex matrices
— sit on a complex-number layer over the real MPF layer.  ``MPC`` is
that layer: a pair of :class:`~repro.mpf.MPF` components with the usual
field operations.  The imaginary bookkeeping is host-side high-level
work; every component operation routes through the profiled kernels.
"""

from __future__ import annotations

from typing import Union

from repro.mpf import MPF
from repro.mpz import MPZ

_Scalar = Union["MPC", MPF, MPZ, int]


class MPC:
    """An immutable arbitrary-precision complex number."""

    __slots__ = ("re", "im")

    def __init__(self, re: Union[MPF, int] = 0, im: Union[MPF, int] = 0,
                 precision: int = 128) -> None:
        self.re = re if isinstance(re, MPF) else MPF(re, precision)
        self.im = im if isinstance(im, MPF) else MPF(im, precision)

    @classmethod
    def from_ratio(cls, re_num: int, re_den: int, im_num: int, im_den: int,
                   precision: int) -> "MPC":
        """Complex number from two exact ratios."""
        return cls(MPF.from_ratio(re_num, re_den, precision),
                   MPF.from_ratio(im_num, im_den, precision))

    @property
    def precision(self) -> int:
        return max(self.re.precision, self.im.precision)

    def __repr__(self) -> str:
        return "MPC(%s, %s)" % (self.re.to_decimal_string(8),
                                self.im.to_decimal_string(8))

    def __bool__(self) -> bool:
        return bool(self.re) or bool(self.im)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MPC):
            return NotImplemented
        return self.re == other.re and self.im == other.im

    def __hash__(self) -> int:
        return hash((self.re, self.im))

    def __neg__(self) -> "MPC":
        return MPC(-self.re, -self.im)

    def conj(self) -> "MPC":
        """Complex conjugate."""
        return MPC(self.re, -self.im)

    def __add__(self, other: _Scalar) -> "MPC":
        other = _coerce(other, self.precision)
        return MPC(self.re + other.re, self.im + other.im)

    __radd__ = __add__

    def __sub__(self, other: _Scalar) -> "MPC":
        other = _coerce(other, self.precision)
        return MPC(self.re - other.re, self.im - other.im)

    def __rsub__(self, other: _Scalar) -> "MPC":
        return _coerce(other, self.precision) - self

    def __mul__(self, other: _Scalar) -> "MPC":
        other = _coerce(other, self.precision)
        return MPC(self.re * other.re - self.im * other.im,
                   self.re * other.im + self.im * other.re)

    __rmul__ = __mul__

    def __truediv__(self, other: _Scalar) -> "MPC":
        other = _coerce(other, self.precision)
        denom = other.re * other.re + other.im * other.im
        numerator = self * other.conj()
        return MPC(numerator.re / denom, numerator.im / denom)

    def abs2(self) -> MPF:
        """Squared magnitude (avoids the square root)."""
        return self.re * self.re + self.im * self.im

    def abs(self) -> MPF:
        """Magnitude."""
        return self.abs2().sqrt()

    def scale(self, factor: MPF) -> "MPC":
        """Multiply both components by a real scalar."""
        return MPC(self.re * factor, self.im * factor)

    def __complex__(self) -> complex:
        return complex(float(self.re), float(self.im))


def _coerce(value: _Scalar, precision: int) -> MPC:
    if isinstance(value, MPC):
        return value
    if isinstance(value, (MPF, MPZ, int)):
        return MPC(value if isinstance(value, MPF) else MPF(int(value),
                                                            precision),
                   MPF(0, precision))
    raise TypeError("cannot coerce %r to MPC" % (value,))
