"""Arbitrary-precision complex numbers (GNU MPC equivalent)."""

from repro.mpc.complexnum import MPC

__all__ = ["MPC"]
