"""Process-pool fan-out for independent kernel and model evaluations.

The software stack spends most of its wall-clock time on *embarrassingly
parallel* work: independent mpn multiplies inside a scheduler level,
independent model evaluations along a benchmark sweep, independent
MPApca batch jobs.  :class:`ParallelExecutor` fans such task lists out
across a worker-process pool with chunked submission and **ordered**
result gathering, so callers observe exactly the list a serial loop
would have produced.

Design constraints (mirrored by tests/parallel/):

* ``REPRO_WORKERS=0`` (or unset) makes every call a strict serial
  no-op — byte-identical results and no subprocess is ever spawned;
* tasks that cannot be pickled (lambdas, closures) degrade gracefully
  to the serial path instead of crashing the caller;
* a worker crash (``BrokenProcessPool``) also degrades to serial, so a
  flaky host can never lose results;
* results are gathered in submission order regardless of worker count,
  keeping downstream consumers (figure data, retirement logs)
  deterministic.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.analysis import env as _env

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")

#: Environment variable selecting the worker count.  ``0`` / unset means
#: serial; ``auto`` means one worker per available CPU.
WORKERS_ENV = _env.WORKERS.name

#: Environment override for the submission chunk size.
CHUNK_ENV = _env.CHUNK.name

#: Errors that mean "this task list cannot travel to a worker process";
#: they trigger the serial fallback rather than propagating.
_PICKLING_ERRORS = (pickle.PicklingError, AttributeError, TypeError)


class ExecutorTimeout(TimeoutError):
    """A ``map``/``starmap`` call exceeded its ``timeout=`` deadline.

    On the parallel path every not-yet-started chunk is cancelled and
    the pool is discarded (a running worker cannot be preempted, so the
    orphaned pool is abandoned rather than joined); on the serial path
    the deadline is checked between items, because a single in-progress
    ``fn`` call cannot be interrupted from Python.
    """

    def __init__(self, message: str, completed: int = 0) -> None:
        super().__init__(message)
        #: Items whose results were available before the deadline hit.
        self.completed = completed


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def resolve_workers(workers: Optional[int] = None) -> int:
    """Worker count from an explicit argument or ``REPRO_WORKERS``.

    ``None`` defers to the environment; an unset/empty variable means
    serial (0), ``auto`` means :func:`available_cpus`, and anything
    non-numeric raises so misconfiguration cannot silently serialize.
    Negative counts clamp to 0.
    """
    if workers is not None:
        return max(0, int(workers))
    raw = _env.WORKERS.raw()
    if not raw:
        return 0
    if raw.lower() == "auto":
        return available_cpus()
    try:
        return max(0, int(raw))
    except ValueError:
        raise ValueError(
            "%s must be an integer or 'auto', got %r" % (WORKERS_ENV, raw)
        ) from None


class ParallelExecutor:
    """Chunked, order-preserving map over a worker-process pool.

    The pool is created lazily on the first parallel call and reused
    across calls; :meth:`close` (or use as a context manager) releases
    it.  ``stats`` counts how each call executed — ``parallel``,
    ``serial`` (by configuration), or ``fallback`` (parallel attempt
    degraded) — which the determinism tests assert on.
    """

    def __init__(self, workers: Optional[int] = None,
                 chunk_size: Optional[int] = None) -> None:
        self.workers = resolve_workers(workers)
        self._chunk_size = chunk_size
        self._pool: Optional[ProcessPoolExecutor] = None
        self.stats = {"parallel": 0, "serial": 0, "fallback": 0,
                      "timeout": 0}
        self.last_mode = "unused"

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def _discard_pool(self) -> None:
        """Drop a broken pool; a later call will build a fresh one."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    # -- chunking ------------------------------------------------------------

    def chunk_size_for(self, num_items: int) -> int:
        """Submission chunk: ~4 chunks per worker, env-overridable."""
        if self._chunk_size is not None:
            return max(1, self._chunk_size)
        if _env.CHUNK.is_set():
            return max(1, _env.int_value(_env.CHUNK, 1))
        return max(1, -(-num_items // (max(1, self.workers) * 4)))

    # -- execution -----------------------------------------------------------

    def map(self, fn: Callable[[ItemT], ResultT],
            items: Sequence[ItemT],
            chunk_size: Optional[int] = None,
            timeout: Optional[float] = None) -> List[ResultT]:
        """``[fn(x) for x in items]``, fanned out when workers allow.

        Exceptions raised *by the task itself* propagate unchanged on
        both paths; only transport failures (pickling, a dead worker)
        fall back to serial.

        ``timeout`` (seconds, whole-call deadline) raises
        :class:`ExecutorTimeout` once exceeded.  On the parallel path
        pending chunks are cancelled and the pool is discarded so a
        hung worker can never block the caller forever; a transport
        fallback re-runs serially under whatever budget remains.  On
        the serial path the deadline is checked between items (a
        single ``fn`` call cannot be preempted).
        """
        items = list(items)
        deadline = None if timeout is None \
            else time.monotonic() + max(0.0, timeout)
        if self.workers <= 1 or len(items) <= 1:
            self.stats["serial"] += 1
            self.last_mode = "serial"
            return self._run_serial(fn, items, deadline)
        # Pre-flight the transport: an unpicklable task submitted to a
        # ProcessPoolExecutor poisons its queue-feeder thread (a later
        # shutdown(wait=True) deadlocks on CPython 3.11), so tasks that
        # cannot travel must never reach the pool.
        try:
            pickle.dumps((fn, items))
        except _PICKLING_ERRORS:
            self.stats["fallback"] += 1
            self.last_mode = "fallback"
            return self._run_serial(fn, items, deadline)
        chunk = chunk_size if chunk_size is not None \
            else self.chunk_size_for(len(items))
        if deadline is not None:
            return self._map_with_deadline(fn, items, chunk, deadline)
        try:
            pool = self._ensure_pool()
            results = list(pool.map(fn, items, chunksize=chunk))
        except (BrokenProcessPool,) + _PICKLING_ERRORS:
            # Dead workers (or a transport failure the pre-flight could
            # not foresee) orphan the pool: drop it without joining its
            # threads and redo the whole call serially.
            self._discard_pool()
            self.stats["fallback"] += 1
            self.last_mode = "fallback"
            return [fn(item) for item in items]
        self.stats["parallel"] += 1
        self.last_mode = "parallel"
        return results

    def _run_serial(self, fn: Callable[[ItemT], ResultT],
                    items: List[ItemT],
                    deadline: Optional[float]) -> List[ResultT]:
        """Serial loop with the between-items deadline check."""
        results: List[ResultT] = []
        for item in items:
            if deadline is not None and time.monotonic() > deadline:
                self.stats["timeout"] += 1
                raise ExecutorTimeout(
                    "serial map exceeded its deadline after %d/%d items"
                    % (len(results), len(items)),
                    completed=len(results))
            results.append(fn(item))
        return results

    def _map_with_deadline(self, fn: Callable[[ItemT], ResultT],
                           items: List[ItemT], chunk: int,
                           deadline: float) -> List[ResultT]:
        """Parallel map as explicit chunk futures under a deadline.

        ``pool.map`` offers no way to cancel pending work, so the
        deadline path submits chunks itself, gathers them in order,
        and on expiry cancels whatever has not started before
        abandoning the pool.
        """
        chunks = [items[i:i + chunk] for i in range(0, len(items), chunk)]
        try:
            pool = self._ensure_pool()
            futures = [pool.submit(_chunk_call, fn, part)
                       for part in chunks]
        except (BrokenProcessPool,) + _PICKLING_ERRORS:
            self._discard_pool()
            self.stats["fallback"] += 1
            self.last_mode = "fallback"
            return self._run_serial(fn, items, deadline)
        results: List[ResultT] = []
        try:
            for future in futures:
                remaining = deadline - time.monotonic()
                results.extend(future.result(timeout=max(0.0, remaining)))
        except _FutureTimeout:
            for future in futures:
                future.cancel()
            self._discard_pool()
            self.stats["timeout"] += 1
            self.last_mode = "timeout"
            raise ExecutorTimeout(
                "parallel map exceeded its deadline with %d/%d results"
                % (len(results), len(items)),
                completed=len(results)) from None
        except (BrokenProcessPool,) + _PICKLING_ERRORS:
            for future in futures:
                future.cancel()
            self._discard_pool()
            self.stats["fallback"] += 1
            self.last_mode = "fallback"
            return self._run_serial(fn, items, deadline)
        self.stats["parallel"] += 1
        self.last_mode = "parallel"
        return results

    def starmap(self, fn: Callable[..., ResultT],
                items: Sequence[tuple],
                timeout: Optional[float] = None) -> List[ResultT]:
        """:meth:`map` for argument tuples."""
        return self.map(_StarCall(fn), list(items), timeout=timeout)


def _chunk_call(fn: Callable[[ItemT], ResultT],
                chunk: Sequence[ItemT]) -> List[ResultT]:
    """Worker-side evaluation of one submitted chunk (picklable)."""
    return [fn(item) for item in chunk]


class _StarCall:
    """Picklable ``fn(*args)`` adapter (a lambda would not pickle)."""

    def __init__(self, fn: Callable[..., ResultT]) -> None:
        self.fn = fn

    def __call__(self, args: tuple) -> ResultT:
        return self.fn(*args)


def parallel_map(fn: Callable[[ItemT], ResultT], items: Sequence[ItemT],
                 workers: Optional[int] = None) -> List[ResultT]:
    """One-shot convenience wrapper around :class:`ParallelExecutor`."""
    with ParallelExecutor(workers) as executor:
        return executor.map(fn, items)
