"""Process-pool fan-out for independent kernel and model evaluations.

The software stack spends most of its wall-clock time on *embarrassingly
parallel* work: independent mpn multiplies inside a scheduler level,
independent model evaluations along a benchmark sweep, independent
MPApca batch jobs.  :class:`ParallelExecutor` fans such task lists out
across a worker-process pool with chunked submission and **ordered**
result gathering, so callers observe exactly the list a serial loop
would have produced.

Design constraints (mirrored by tests/parallel/):

* ``REPRO_WORKERS=0`` (or unset) makes every call a strict serial
  no-op — byte-identical results and no subprocess is ever spawned;
* tasks that cannot be pickled (lambdas, closures) degrade gracefully
  to the serial path instead of crashing the caller;
* a worker crash (``BrokenProcessPool``) also degrades to serial, so a
  flaky host can never lose results;
* results are gathered in submission order regardless of worker count,
  keeping downstream consumers (figure data, retirement logs)
  deterministic.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, List, Optional, Sequence, TypeVar

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")

#: Environment variable selecting the worker count.  ``0`` / unset means
#: serial; ``auto`` means one worker per available CPU.
WORKERS_ENV = "REPRO_WORKERS"

#: Environment override for the submission chunk size.
CHUNK_ENV = "REPRO_CHUNK"

#: Errors that mean "this task list cannot travel to a worker process";
#: they trigger the serial fallback rather than propagating.
_PICKLING_ERRORS = (pickle.PicklingError, AttributeError, TypeError)


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def resolve_workers(workers: Optional[int] = None) -> int:
    """Worker count from an explicit argument or ``REPRO_WORKERS``.

    ``None`` defers to the environment; an unset/empty variable means
    serial (0), ``auto`` means :func:`available_cpus`, and anything
    non-numeric raises so misconfiguration cannot silently serialize.
    Negative counts clamp to 0.
    """
    if workers is not None:
        return max(0, int(workers))
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if not raw:
        return 0
    if raw.lower() == "auto":
        return available_cpus()
    try:
        return max(0, int(raw))
    except ValueError:
        raise ValueError(
            "%s must be an integer or 'auto', got %r" % (WORKERS_ENV, raw)
        ) from None


class ParallelExecutor:
    """Chunked, order-preserving map over a worker-process pool.

    The pool is created lazily on the first parallel call and reused
    across calls; :meth:`close` (or use as a context manager) releases
    it.  ``stats`` counts how each call executed — ``parallel``,
    ``serial`` (by configuration), or ``fallback`` (parallel attempt
    degraded) — which the determinism tests assert on.
    """

    def __init__(self, workers: Optional[int] = None,
                 chunk_size: Optional[int] = None) -> None:
        self.workers = resolve_workers(workers)
        self._chunk_size = chunk_size
        self._pool: Optional[ProcessPoolExecutor] = None
        self.stats = {"parallel": 0, "serial": 0, "fallback": 0}
        self.last_mode = "unused"

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def _discard_pool(self) -> None:
        """Drop a broken pool; a later call will build a fresh one."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    # -- chunking ------------------------------------------------------------

    def chunk_size_for(self, num_items: int) -> int:
        """Submission chunk: ~4 chunks per worker, env-overridable."""
        if self._chunk_size is not None:
            return max(1, self._chunk_size)
        raw = os.environ.get(CHUNK_ENV, "").strip()
        if raw:
            try:
                return max(1, int(raw))
            except ValueError:
                raise ValueError("%s must be an integer, got %r"
                                 % (CHUNK_ENV, raw)) from None
        return max(1, -(-num_items // (max(1, self.workers) * 4)))

    # -- execution -----------------------------------------------------------

    def map(self, fn: Callable[[ItemT], ResultT],
            items: Sequence[ItemT],
            chunk_size: Optional[int] = None) -> List[ResultT]:
        """``[fn(x) for x in items]``, fanned out when workers allow.

        Exceptions raised *by the task itself* propagate unchanged on
        both paths; only transport failures (pickling, a dead worker)
        fall back to serial.
        """
        items = list(items)
        if self.workers <= 1 or len(items) <= 1:
            self.stats["serial"] += 1
            self.last_mode = "serial"
            return [fn(item) for item in items]
        # Pre-flight the transport: an unpicklable task submitted to a
        # ProcessPoolExecutor poisons its queue-feeder thread (a later
        # shutdown(wait=True) deadlocks on CPython 3.11), so tasks that
        # cannot travel must never reach the pool.
        try:
            pickle.dumps((fn, items))
        except _PICKLING_ERRORS:
            self.stats["fallback"] += 1
            self.last_mode = "fallback"
            return [fn(item) for item in items]
        chunk = chunk_size if chunk_size is not None \
            else self.chunk_size_for(len(items))
        try:
            pool = self._ensure_pool()
            results = list(pool.map(fn, items, chunksize=chunk))
        except (BrokenProcessPool,) + _PICKLING_ERRORS:
            # Dead workers (or a transport failure the pre-flight could
            # not foresee) orphan the pool: drop it without joining its
            # threads and redo the whole call serially.
            self._discard_pool()
            self.stats["fallback"] += 1
            self.last_mode = "fallback"
            return [fn(item) for item in items]
        self.stats["parallel"] += 1
        self.last_mode = "parallel"
        return results

    def starmap(self, fn: Callable[..., ResultT],
                items: Sequence[tuple]) -> List[ResultT]:
        """:meth:`map` for argument tuples."""
        return self.map(_StarCall(fn), list(items))


class _StarCall:
    """Picklable ``fn(*args)`` adapter (a lambda would not pickle)."""

    def __init__(self, fn: Callable[..., ResultT]) -> None:
        self.fn = fn

    def __call__(self, args: tuple) -> ResultT:
        return self.fn(*args)


def parallel_map(fn: Callable[[ItemT], ResultT], items: Sequence[ItemT],
                 workers: Optional[int] = None) -> List[ResultT]:
    """One-shot convenience wrapper around :class:`ParallelExecutor`."""
    with ParallelExecutor(workers) as executor:
        return executor.map(fn, items)
