"""In-memory LRU + on-disk memo caches for expensive evaluations.

Figure regeneration prices the same (config, bitwidth, algorithm)
model points over and over — across benchmark files, across pytest
processes, across ``repro figures`` invocations.  :class:`MemoCache`
memoizes those evaluations with a bounded in-memory LRU and an optional
JSON spill under the user cache directory, so a second process starts
warm.

Layout (see docs/PARALLEL.md):

* cache root: ``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``;
* one JSON file per cache, ``<root>/<name>.json``, written atomically
  (tempfile + rename) so a crashed writer never corrupts the store;
* every file carries the cache's ``version`` salt — bump the producer's
  version constant when the computation changes and stale entries are
  ignored wholesale (the invalidation rule);
* ``REPRO_CACHE=0`` disables the disk layer entirely (the in-memory
  LRU still works, costing nothing across processes).

Values must round-trip exactly through JSON; Python floats do
(``repr`` round-trip), which the bit-identical cache tests pin down.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable, Iterable, Optional

from repro.analysis import env as _env

#: Environment override for the cache root directory.
CACHE_DIR_ENV = _env.CACHE_DIR.name

#: Set to ``0`` to disable on-disk persistence.
CACHE_ENV = _env.CACHE.name


def cache_root() -> Path:
    """Directory holding all persistent repro caches."""
    override = _env.CACHE_DIR.raw()
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "repro"


def persistence_enabled() -> bool:
    """Whether caches may touch the disk (``REPRO_CACHE=0`` opts out)."""
    return _env.enabled(_env.CACHE)


def make_key(parts: Iterable[Any]) -> str:
    """A stable string key from hashable/repr-able key parts."""
    return "|".join(repr(part) for part in parts)


class MemoCache:
    """A named, bounded, optionally-persistent memo cache.

    The in-memory side is an LRU of at most ``maxsize`` entries; the
    disk side is loaded lazily on the first lookup so imports stay
    cheap.  ``version`` salts the on-disk file: a file written by a
    different version is ignored (and overwritten on the next save).
    """

    def __init__(self, name: str, maxsize: int = 4096,
                 version: int = 1) -> None:
        self.name = name
        self.maxsize = max(1, maxsize)
        self.version = version
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._loaded = False
        self._dirty = 0
        self.hits = 0
        self.misses = 0

    # -- paths ---------------------------------------------------------------

    def path(self) -> Path:
        """Where this cache persists on disk."""
        return cache_root() / (self.name + ".json")

    # -- core lookup ---------------------------------------------------------

    def key(self, *parts: Any) -> str:
        """Build a cache key from the given parts."""
        return make_key(parts)

    def get(self, key: str, default: Any = None) -> Any:
        """Cached value for ``key`` (LRU-touching), or ``default``."""
        self._lazy_load()
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return self._entries[key]
        self.misses += 1
        return default

    def put(self, key: str, value: Any) -> None:
        """Insert/refresh an entry, evicting the LRU tail when full."""
        self._lazy_load()
        self._entries[key] = value
        self._entries.move_to_end(key)
        self._dirty += 1
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def lookup(self, key: str, compute: Callable[[], Any]) -> Any:
        """Get-or-compute; the computed value is cached."""
        sentinel = _MISS
        value = self.get(key, sentinel)
        if value is sentinel:
            value = compute()
            self.put(key, value)
        return value

    def clear(self) -> None:
        """Drop every in-memory entry (the disk file is untouched)."""
        self._entries.clear()
        self._loaded = True
        self._dirty = 0

    def __len__(self) -> int:
        return len(self._entries)

    # -- persistence ---------------------------------------------------------

    def _lazy_load(self) -> None:
        if not self._loaded:
            self._loaded = True
            if persistence_enabled():
                self.load()

    def load(self, path: Optional[Path] = None) -> int:
        """Merge persisted entries under the LRU bound; returns count.

        Unreadable, malformed, or version-mismatched files are ignored:
        a cache must never be able to break a computation.
        """
        self._loaded = True
        target = path or self.path()
        try:
            with open(target, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return 0
        if not isinstance(payload, dict) \
                or payload.get("version") != self.version \
                or not isinstance(payload.get("entries"), dict):
            return 0
        loaded = 0
        for key, value in payload["entries"].items():
            if key not in self._entries:
                self._entries[key] = value
                self._entries.move_to_end(key, last=False)
                loaded += 1
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return loaded

    def save(self, path: Optional[Path] = None) -> Optional[Path]:
        """Atomically persist the cache; None when persistence is off."""
        if path is None and not persistence_enabled():
            return None
        target = path or self.path()
        target.parent.mkdir(parents=True, exist_ok=True)
        payload = {"version": self.version, "name": self.name,
                   "entries": dict(self._entries)}
        descriptor, temp_name = tempfile.mkstemp(
            dir=str(target.parent), prefix=target.name, suffix=".tmp")
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(temp_name, target)
        except OSError:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            return None
        self._dirty = 0
        return target

    def save_if_dirty(self, min_new: int = 1) -> Optional[Path]:
        """Persist only when at least ``min_new`` puts happened."""
        if self._dirty >= min_new:
            return self.save()
        return None


class _Miss:
    """Unique sentinel distinguishing 'absent' from a cached None."""


_MISS = _Miss()

#: Registry of caches created through :func:`named_cache`, so the CLI
#: can report and clear them uniformly.
_REGISTRY: dict = {}


def named_cache(name: str, maxsize: int = 4096,
                version: int = 1) -> MemoCache:
    """A process-wide singleton cache per name."""
    cache = _REGISTRY.get(name)
    if cache is None or cache.version != version:
        cache = MemoCache(name, maxsize=maxsize, version=version)
        _REGISTRY[name] = cache
    return cache


def registered_caches() -> dict:
    """Snapshot of the named-cache registry (name -> MemoCache)."""
    return dict(_REGISTRY)


def clear_disk_caches() -> list:
    """Delete every ``*.json`` cache file under the root; returns paths."""
    removed = []
    root = cache_root()
    if root.is_dir():
        for path in sorted(root.glob("*.json")):
            try:
                path.unlink()
                removed.append(path)
            except OSError:
                continue
    for cache in _REGISTRY.values():
        cache.clear()
    return removed
