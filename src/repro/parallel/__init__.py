"""Parallel execution + persistent memoization for the repro stack.

Two orthogonal services:

* :class:`~repro.parallel.executor.ParallelExecutor` — a worker-pool
  map with chunked submission, ordered gathering, and graceful serial
  fallback, controlled by ``REPRO_WORKERS`` (0/unset = strict serial
  no-op, ``auto`` = one worker per CPU);
* :class:`~repro.parallel.cache.MemoCache` — an LRU memo cache with an
  optional on-disk JSON layer under ``~/.cache/repro`` (override with
  ``REPRO_CACHE_DIR``; disable persistence with ``REPRO_CACHE=0``).

See docs/PARALLEL.md for the full contract.
"""

from repro.parallel.cache import (MemoCache, cache_root, clear_disk_caches,
                                  make_key, named_cache,
                                  persistence_enabled, registered_caches)
from repro.parallel.executor import (CHUNK_ENV, WORKERS_ENV,
                                     ExecutorTimeout, ParallelExecutor,
                                     available_cpus, parallel_map,
                                     resolve_workers)

__all__ = [
    "CHUNK_ENV", "ExecutorTimeout", "MemoCache", "ParallelExecutor",
    "WORKERS_ENV", "available_cpus", "cache_root", "clear_disk_caches",
    "make_key", "named_cache", "parallel_map", "persistence_enabled",
    "registered_caches", "resolve_workers",
]
