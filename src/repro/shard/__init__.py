"""repro.shard — sharded multi-process serving behind one router.

``repro serve --shards N`` boots :class:`~repro.shard.router.
ShardRouter`: N supervised OS processes each running the
single-event-loop :class:`~repro.serve.server.ReproServer`, fronted by
a plan-aware rendezvous-hashing router with fleet-wide admission
control, a memo-key-salted cross-shard result cache, and one merged
``/metrics``/``/healthz``/``/traces`` plane.  See ``docs/SERVING.md``.
"""

from repro.shard.cache import ShardResultCache, shard_cache_enabled
from repro.shard.router import (RouterConfig, RouterThread, ShardRouter,
                                rank_shards, rendezvous_weight,
                                run_router)
from repro.shard.supervisor import (ShardHandle, ShardSupervisor,
                                    shard_environment)

__all__ = [
    "RouterConfig",
    "RouterThread",
    "ShardHandle",
    "ShardResultCache",
    "ShardRouter",
    "ShardSupervisor",
    "rank_shards",
    "rendezvous_weight",
    "run_router",
    "shard_cache_enabled",
    "shard_environment",
]
