"""Shard worker supervision: spawn, watch, restart, drain.

Each shard is one OS process running today's single-event-loop
:class:`~repro.serve.server.ReproServer` (``python -m repro serve
--port 0 --shards 0``) on an ephemeral port parsed from its announce
line.  The supervisor owns the fleet lifecycle, reusing
:mod:`repro.parallel`'s env conventions — the child environment is the
parent's (``REPRO_WORKERS``, killswitches, tuned thresholds all
propagate) with ``REPRO_SHARDS`` forced to ``0`` so a shard can never
recursively boot its own router.

* **restart-on-crash** — a watcher task per shard observes the process
  exit; an unexpected death marks the shard ``dead``, counts
  ``shard_crash_total``, and respawns it (fresh port, bumped
  generation) up to ``REPRO_SHARD_RESTARTS`` times.  Requests in
  flight to the dead shard fail fast at the router's proxy socket —
  they are answered ``error:internal``, never hung.
* **bounded graceful drain** — :meth:`ShardSupervisor.drain` forwards
  SIGTERM to every live shard (each runs its own graceful drain:
  listener closed, queued work answered) and waits at most
  ``REPRO_SHARD_DRAIN_S`` seconds before killing stragglers.
"""

from __future__ import annotations

import asyncio
import os
import re
import signal
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.serve.metrics import MetricsRegistry

#: The shard's announce line (same format ``repro serve`` has always
#: printed; the smoke harness parses the identical pattern).
_LISTEN_RE = re.compile(
    r"repro-serve listening on (?P<host>[0-9.]+):(?P<port>\d+)")

#: How long one shard may take to announce its ephemeral port.
_BOOT_TIMEOUT_S = 30.0

#: Shard lifecycle states.
STATE_STARTING = "starting"
STATE_UP = "up"
STATE_DRAINING = "draining"
STATE_DEAD = "dead"


@dataclass
class ShardHandle:
    """One supervised shard worker, as the router sees it."""

    index: int
    host: str = ""
    port: int = 0
    state: str = STATE_STARTING
    process: Any = None          # asyncio.subprocess.Process
    restarts: int = 0
    #: Bumps on every (re)spawn; distinguishes pre-crash bookkeeping.
    generation: int = 0
    #: Router-tracked outstanding proxied requests (queue-depth proxy
    #: for routing tiebreaks and the fleet depth bound).
    inflight: int = 0
    #: Router-tracked modeled cycles admitted but not yet answered.
    inflight_cycles: float = 0.0
    #: Requests this shard answered through the router.
    served: int = 0
    #: Last polled ``/statz`` payload (EWMA rate, queue depth, ...).
    stats: Dict[str, Any] = field(default_factory=dict)

    @property
    def alive(self) -> bool:
        return self.process is not None \
            and self.process.returncode is None

    def describe(self) -> Dict[str, Any]:
        """JSON-able view for the router's ``/statz``."""
        return {
            "index": self.index,
            "state": self.state,
            "host": self.host,
            "port": self.port,
            "pid": self.process.pid if self.process is not None
            else None,
            "restarts": self.restarts,
            "generation": self.generation,
            "inflight": self.inflight,
            "inflight_cycles": self.inflight_cycles,
            "served": self.served,
            "rate_cycles_per_ms": self.stats.get("rate_cycles_per_ms"),
            "queue_depth": self.stats.get("queue_depth"),
        }


def shard_environment() -> Dict[str, str]:
    """Child environment for one shard worker.

    The parent's environment verbatim (tuning, killswitches, and
    ``REPRO_WORKERS`` propagate) plus the repro source root on
    ``PYTHONPATH`` and ``REPRO_SHARDS`` pinned to ``0`` — a shard is
    always a plain single-process server, never a nested router.
    """
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    existing = env.get("PYTHONPATH", "")
    if src not in existing.split(os.pathsep):
        env["PYTHONPATH"] = src + (os.pathsep + existing
                                   if existing else "")
    env["REPRO_SHARDS"] = "0"
    return env


class ShardSupervisor:
    """Spawn and babysit ``count`` shard workers."""

    def __init__(self, count: int,
                 registry: Optional[MetricsRegistry] = None,
                 max_restarts: int = 5,
                 announce=None) -> None:
        if count < 1:
            raise ValueError("shard count must be at least 1")
        self.registry = registry if registry is not None \
            else MetricsRegistry(prefix="repro_router")
        self.max_restarts = max_restarts
        self.announce = announce
        self.handles = [ShardHandle(index) for index in range(count)]
        self.restarts_total = 0
        self._draining = False
        self._watchers: set = set()

    # -- queries --------------------------------------------------------------

    def live(self) -> List[ShardHandle]:
        """Shards currently accepting routed work."""
        return [handle for handle in self.handles
                if handle.state == STATE_UP]

    def degraded(self) -> bool:
        """Any shard not fully up (the ``/healthz`` aggregate rule)."""
        return any(handle.state != STATE_UP for handle in self.handles)

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        """Boot every shard; raises if any fails its first spawn."""
        for handle in self.handles:
            await self._spawn(handle)

    async def _spawn(self, handle: ShardHandle) -> None:
        handle.state = STATE_STARTING
        handle.generation += 1
        # Router-side accounting from the dead generation must not
        # haunt the fresh process (stale inflight skews routing and
        # the fleet depth bound).
        handle.inflight = 0
        handle.inflight_cycles = 0.0
        handle.stats = {}
        process = await asyncio.create_subprocess_exec(
            sys.executable, "-m", "repro", "serve",
            "--host", "127.0.0.1", "--port", "0", "--shards", "0",
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.STDOUT,
            env=shard_environment())
        handle.process = process
        try:
            handle.host, handle.port = await asyncio.wait_for(
                self._await_announce(process), _BOOT_TIMEOUT_S)
        except (asyncio.TimeoutError, RuntimeError):
            handle.state = STATE_DEAD
            if process.returncode is None:
                process.kill()
            await process.wait()
            raise RuntimeError("shard %d did not announce a port"
                               % handle.index)
        handle.state = STATE_UP
        if self.announce is not None:
            self.announce("shard %d up on %s:%d (pid %d)"
                          % (handle.index, handle.host, handle.port,
                             process.pid))
        watcher = asyncio.ensure_future(self._watch(handle, process))
        self._watchers.add(watcher)
        watcher.add_done_callback(self._on_watcher_done)

    async def _await_announce(self, process) -> tuple:
        while True:
            line = await process.stdout.readline()
            if not line:
                raise RuntimeError("shard exited before announcing "
                                   "(code %r)" % process.returncode)
            match = _LISTEN_RE.search(line.decode("utf-8", "replace"))
            if match:
                return match.group("host"), int(match.group("port"))

    async def _watch(self, handle: ShardHandle, process) -> None:
        """Observe one shard process generation until it exits.

        Drains the child's stdout (so it can never block on a full
        pipe), then decides: an orderly drain leaves the shard dead; an
        unexpected exit restarts it with a fresh generation, up to the
        restart budget.
        """
        while True:
            line = await process.stdout.readline()
            if not line:
                break
        code = await process.wait()
        if handle.process is not process:
            return          # a newer generation took over this handle
        handle.state = STATE_DEAD
        if self._draining:
            return
        self.registry.counter("shard_crash_total",
                              shard=str(handle.index)).inc()
        if self.announce is not None:
            self.announce("shard %d exited %r unexpectedly"
                          % (handle.index, code))
        if handle.restarts >= self.max_restarts:
            if self.announce is not None:
                self.announce("shard %d restart budget exhausted (%d)"
                              % (handle.index, self.max_restarts))
            return
        handle.restarts += 1
        self.restarts_total += 1
        self.registry.counter("shard_restart_total",
                              shard=str(handle.index)).inc()
        await self._spawn(handle)

    def _on_watcher_done(self, task: "asyncio.Task") -> None:
        """Observe watcher outcomes: a failed respawn must be counted,
        never silently swallowed with the task object."""
        self._watchers.discard(task)
        if task.cancelled():
            return
        if task.exception() is not None:
            self.registry.counter("shard_watch_error_total").inc()

    async def drain(self, deadline_s: float) -> None:
        """SIGTERM every live shard and wait at most ``deadline_s``.

        Each shard runs its own graceful drain on SIGTERM; whatever is
        still alive past the deadline is killed, so router shutdown is
        always bounded.
        """
        self._draining = True
        waiters = []
        for handle in self.handles:
            if not handle.alive:
                handle.state = STATE_DEAD
                continue
            handle.state = STATE_DRAINING
            try:
                handle.process.send_signal(signal.SIGTERM)
            except ProcessLookupError:
                handle.state = STATE_DEAD
                continue
            waiters.append(asyncio.ensure_future(
                handle.process.wait()))
        if waiters:
            done, pending = await asyncio.wait(waiters,
                                               timeout=deadline_s)
            if pending:
                self.registry.counter("shard_drain_killed_total").inc(
                    len(pending))
                for handle in self.handles:
                    if handle.alive:
                        handle.process.kill()
                await asyncio.gather(*tuple(pending),
                                     return_exceptions=True)
        for handle in self.handles:
            handle.state = STATE_DEAD
        if self._watchers:
            await asyncio.gather(*tuple(self._watchers),
                                 return_exceptions=True)
