"""Plan-aware front-door router: ``repro serve --shards N``.

The router is the one address clients see.  It speaks the exact
HTTP/JSON job protocol of :mod:`repro.serve.server` (same parser, same
``Connection: close`` framing — the transport helpers are imported,
not reimplemented) and scales it across N supervised shard worker
processes:

* **plan-aware routing** — jobs are validated and lowered at the front
  door (the same :func:`~repro.serve.jobs.make_job` the single-process
  server runs), then placed by *rendezvous hashing* of the plan's
  ``compat_key`` (op + lowered backend): every shard gets a
  deterministic weight ``sha1(key | shard-index)`` and the highest
  weight wins.  Jobs sharing a compat key therefore land on the same
  shard, where the shard's dynamic batcher can coalesce them —
  sharding preserves the batching win instead of scattering compatible
  work.  When the winner is ``_SPILL_MARGIN`` requests deeper than the
  runner-up, the job spills to the runner-up (bounded-load tiebreak);
  a dead shard simply drops out of the candidate set and its keys
  redistribute with no table to rebuild.
* **fleet admission control** — per-shard observed-service-rate EWMAs
  (scraped from ``/statz``) sum into one fleet rate; the router's own
  count of admitted-but-unanswered cycles is the fleet backlog.  When
  ``backlog / fleet-rate`` exceeds the max-wait bound the router sheds
  at its own front door (``rejected:overloaded``), so clients get the
  same explicit backpressure contract the single process gives.
* **cross-shard result cache** — idempotent jobs answer from a
  memo-key-salted shared cache (:mod:`repro.shard.cache`) without
  touching any shard.
* **one observability plane** — ``/metrics`` merges every shard's
  snapshot through :func:`repro.serve.metrics.merge_snapshots`
  (counters sum, histograms merge bucket-wise) and appends the
  router's own series under the ``repro_router`` prefix; ``/healthz``
  aggregates shard states; ``/traces`` concatenates shard traces.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import signal
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.analysis import env as _env
from repro.serve.jobs import Job, JobError, make_job
from repro.serve.metrics import (MetricsRegistry, merge_snapshots,
                                 render_snapshot)
from repro.serve.queue import (SHED_QUEUE_FULL, SHED_SHUTTING_DOWN,
                               SHED_WAIT_EXCEEDED)
from repro.serve.server import (_BadRequest, _HttpRequest,
                                read_http_request, respond_json,
                                respond_raw, respond_text)
from repro.shard.cache import ShardResultCache
from repro.shard.supervisor import ShardHandle, ShardSupervisor

#: Shed reason when every shard is dead or restarting.
SHED_NO_LIVE_SHARDS = "no-live-shards"

#: Rendezvous tiebreak: spill to the runner-up shard once the winner
#: is this many routed-but-unanswered requests deeper.
_SPILL_MARGIN = 4

#: How often the router refreshes per-shard ``/statz`` stats.
_POLL_INTERVAL_S = 0.5

#: Ceiling on one proxied shard exchange (connect + compute + answer).
_PROXY_TIMEOUT_S = 300.0


@dataclass
class RouterConfig:
    """Router configuration; env defaults, CLI overrides."""

    host: str = "127.0.0.1"
    port: int = 8421
    shards: int = 2
    #: Fleet depth bound is ``per_shard_depth * live shards``.
    per_shard_depth: int = 256
    max_wait_ms: float = 10_000.0
    drain_s: float = 20.0
    max_restarts: int = 5
    proxy_timeout_s: float = _PROXY_TIMEOUT_S
    poll_interval_s: float = _POLL_INTERVAL_S

    @classmethod
    def from_env(cls, **overrides: Any) -> "RouterConfig":
        config = cls(
            shards=_env.int_value(_env.SHARDS, 2, minimum=1),
            per_shard_depth=_env.int_value(_env.SERVE_QUEUE, 256,
                                           minimum=1),
            max_wait_ms=_env.float_value(_env.SERVE_MAX_WAIT_MS,
                                         10_000.0, minimum=1.0),
            drain_s=_env.float_value(_env.SHARD_DRAIN_S, 20.0,
                                     minimum=0.1),
            max_restarts=_env.int_value(_env.SHARD_RESTARTS, 5,
                                        minimum=0),
        )
        for name, value in overrides.items():
            if value is not None:
                setattr(config, name, value)
        return config


def rendezvous_weight(compat_key: str, shard_index: int) -> int:
    """Deterministic highest-random-weight score for one (key, shard).

    The first 8 digest bytes of ``sha1("key|index")`` as an integer:
    every (key, shard) pair scores independently, so removing a shard
    reassigns only the keys it owned — the property that makes crash
    recovery routing-table-free.
    """
    digest = hashlib.sha1(
        ("%s|%d" % (compat_key, shard_index)).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def rank_shards(compat_key: str,
                live: List[ShardHandle]) -> List[ShardHandle]:
    """Live shards by descending rendezvous weight for one key."""
    return sorted(live,
                  key=lambda handle: rendezvous_weight(compat_key,
                                                       handle.index),
                  reverse=True)


class ShardRouter:
    """The sharded front door: route, admit, proxy, aggregate."""

    def __init__(self, config: Optional[RouterConfig] = None,
                 registry: Optional[MetricsRegistry] = None,
                 cache: Optional[ShardResultCache] = None,
                 announce=None) -> None:
        self.config = config if config is not None \
            else RouterConfig.from_env()
        self.registry = registry if registry is not None \
            else MetricsRegistry(prefix="repro_router")
        self.cache = cache if cache is not None else ShardResultCache()
        self.announce = announce
        self.supervisor = ShardSupervisor(
            self.config.shards, registry=self.registry,
            max_restarts=self.config.max_restarts, announce=announce)
        self.host = self.config.host
        self.port = self.config.port
        self.routed = 0
        self.shed = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._poll_task: Optional[asyncio.Task] = None
        self._connections: Set[asyncio.Task] = set()
        self._draining = False
        self._shutdown_task: Optional[asyncio.Task] = None
        self._terminated = asyncio.Event()

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Warm the cache, boot the fleet, bind the front door."""
        self.cache.load()
        await self.supervisor.start()
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        self._poll_task = asyncio.ensure_future(self._poll_loop())
        self._poll_task.add_done_callback(self._on_poll_done)
        return self.host, self.port

    def trigger_shutdown(self) -> None:
        """Begin the graceful fleet drain (signal-handler entry)."""
        if self._shutdown_task is None:
            self._shutdown_task = asyncio.ensure_future(self.shutdown())
            self._shutdown_task.add_done_callback(self._on_shutdown_done)

    def _on_shutdown_done(self, task: "asyncio.Task") -> None:
        """Observe the drain: a mid-shutdown crash must not leave
        ``wait_terminated()`` callers hanging."""
        if task.cancelled():
            return
        if task.exception() is not None:
            self.registry.counter("shutdown_error_total").inc()
            self._terminated.set()

    def _on_poll_done(self, task: "asyncio.Task") -> None:
        if task.cancelled():
            return
        if task.exception() is not None:
            self.registry.counter("poll_error_total").inc()

    async def shutdown(self) -> None:
        """Drain router-first, then shards, each step bounded.

        Order matters: the listener closes (no new admissions), then
        every proxied in-flight response completes, and only then do
        the shards get SIGTERM — so a drain never turns healthy
        in-flight work into connection errors.
        """
        if self._draining:
            await self._terminated.wait()
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._connections:
            await asyncio.gather(*tuple(self._connections),
                                 return_exceptions=True)
        if self._poll_task is not None:
            self._poll_task.cancel()
            await asyncio.gather(self._poll_task,
                                 return_exceptions=True)
        await self.supervisor.drain(self.config.drain_s)
        self.cache.save()
        self._terminated.set()

    async def wait_terminated(self) -> None:
        await self._terminated.wait()

    @property
    def draining(self) -> bool:
        return self._draining

    # -- shard stats polling --------------------------------------------------

    async def _poll_loop(self) -> None:
        """Refresh per-shard ``/statz`` (EWMA rates, queue depths)."""
        while not self._draining:
            for handle in self.supervisor.live():
                try:
                    status, body = await self._shard_request(
                        handle, "GET", "/statz", timeout=5.0)
                    if status == 200:
                        handle.stats = json.loads(
                            body.decode("utf-8"))
                except (OSError, asyncio.TimeoutError,
                        asyncio.IncompleteReadError,
                        json.JSONDecodeError, UnicodeDecodeError):
                    # A restarting shard misses one poll; its stale
                    # stats age out on the next successful scrape.
                    self.registry.counter("poll_miss_total").inc()
            await asyncio.sleep(self.config.poll_interval_s)

    # -- fleet admission ------------------------------------------------------

    def fleet_rate_cycles_per_ms(self) -> Optional[float]:
        """Sum of live shards' observed-service-rate EWMAs.

        ``None`` until any shard has completed a batch (admission then
        falls back to the fleet depth bound alone) — the same warm-up
        contract as one shard's queue.
        """
        rates = [handle.stats.get("rate_cycles_per_ms")
                 for handle in self.supervisor.live()]
        rates = [rate for rate in rates if rate]
        if not rates:
            return None
        return float(sum(rates))

    def fleet_inflight(self) -> int:
        return sum(handle.inflight for handle in self.supervisor.handles)

    def fleet_inflight_cycles(self) -> float:
        return sum(handle.inflight_cycles
                   for handle in self.supervisor.handles)

    def admission_reason(self, job: Job,
                         live: List[ShardHandle]) -> Optional[str]:
        """Shed reason for a job arriving now (``None`` = admit)."""
        if self._draining:
            return SHED_SHUTTING_DOWN
        if not live:
            return SHED_NO_LIVE_SHARDS
        if self.fleet_inflight() >= \
                self.config.per_shard_depth * len(live):
            return SHED_QUEUE_FULL
        rate = self.fleet_rate_cycles_per_ms()
        if rate is None:
            # Cold fleet (no shard has completed a batch and none
            # seeded its own rate): stand in with the cost model's
            # boot-time per-shard rate so the wait gate is live from
            # the first request.  None under REPRO_COST=0 — the gate
            # then waits for real observations exactly as before.
            from repro import cost
            seed = cost.seed_rate_cycles_per_ms()
            if seed is not None:
                rate = seed * len(live)
        if rate is not None and rate > 0.0:
            estimate = (self.fleet_inflight_cycles()
                        + job.cost_cycles) / rate
            if estimate > self.config.max_wait_ms:
                return SHED_WAIT_EXCEEDED
        return None

    # -- routing --------------------------------------------------------------

    def pick_shard(self, job: Job,
                   live: List[ShardHandle]) -> ShardHandle:
        """Rendezvous winner for the job's compat key, with a bounded
        queue-depth spill to the runner-up."""
        key = "%s/%s" % job.compat_key()
        ranked = rank_shards(key, live)
        winner = ranked[0]
        if len(ranked) > 1:
            runner_up = ranked[1]
            if winner.inflight >= runner_up.inflight + _SPILL_MARGIN:
                self.registry.counter("route_spill_total").inc()
                return runner_up
        return winner

    # -- shard HTTP client ----------------------------------------------------

    async def _shard_request(self, handle: ShardHandle, method: str,
                             path: str, body: bytes = b"",
                             timeout: Optional[float] = None
                             ) -> Tuple[int, bytes]:
        """One ``Connection: close`` exchange with a shard."""
        return await asyncio.wait_for(
            self._shard_exchange(handle, method, path, body),
            timeout if timeout is not None
            else self.config.proxy_timeout_s)

    async def _shard_exchange(self, handle: ShardHandle, method: str,
                              path: str, body: bytes
                              ) -> Tuple[int, bytes]:
        reader, writer = await asyncio.open_connection(
            handle.host, handle.port)
        try:
            head = ("%s %s HTTP/1.1\r\n"
                    "Host: %s:%d\r\n"
                    "Connection: close\r\n"
                    % (method, path, handle.host, handle.port))
            if body:
                head += ("Content-Type: application/json\r\n"
                         "Content-Length: %d\r\n" % len(body))
            writer.write(head.encode("latin-1") + b"\r\n" + body)
            await writer.drain()
            return await self._read_response(reader)
        finally:
            writer.close()

    @staticmethod
    async def _read_response(reader: asyncio.StreamReader
                             ) -> Tuple[int, bytes]:
        status_line = (await reader.readline()).decode(
            "latin-1", "replace")
        parts = status_line.split()
        if len(parts) < 2 or not parts[1].isdigit():
            raise asyncio.IncompleteReadError(
                status_line.encode("latin-1"), None)
        status = int(parts[1])
        length = None
        while True:
            line = (await reader.readline()).decode("latin-1",
                                                    "replace")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        if length is not None:
            payload = await reader.readexactly(length)
        else:
            payload = await reader.read()
        return status, payload

    # -- connection handling --------------------------------------------------

    def _on_connection(self, reader: asyncio.StreamReader,
                       writer: asyncio.StreamWriter) -> None:
        task = asyncio.ensure_future(self._handle(reader, writer))
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                request = await read_http_request(reader)
            except _BadRequest as error:
                await respond_json(
                    writer, 400, {"ok": False, "error": "invalid:http",
                                  "message": str(error)})
                return
            except (asyncio.IncompleteReadError, ConnectionError,
                    asyncio.LimitOverrunError):
                return
            await self._route(request, writer)
        except Exception as error:
            self.registry.counter("internal_error_total").inc()
            try:
                await respond_json(
                    writer, 500, {"ok": False,
                                  "error": "error:internal",
                                  "message": str(error)})
            except Exception:
                self.registry.counter(
                    "connection_close_error_total").inc()
        finally:
            try:
                writer.close()
            except Exception:
                self.registry.counter(
                    "connection_close_error_total").inc()

    async def _route(self, request: _HttpRequest,
                     writer: asyncio.StreamWriter) -> None:
        if request.method == "GET" and request.path == "/metrics":
            await respond_text(writer, 200,
                               await self._merged_metrics())
            return
        if request.method == "GET" and request.path == "/metrics.json":
            await respond_json(
                writer, 200, {"ok": True,
                              "snapshot": await
                              self._merged_snapshot(),
                              "router": self.registry.snapshot()})
            return
        if request.method == "GET" and request.path == "/statz":
            await respond_json(writer, 200, self.statz())
            return
        if request.method == "GET" and request.path == "/healthz":
            await respond_text(writer, 200, self.health_text())
            return
        if request.method == "GET" and request.path == "/traces":
            await self._merged_traces(writer)
            return
        if request.method == "POST" and request.path in ("/", "/v1/job"):
            await self._handle_job(request, writer)
            return
        await respond_json(
            writer, 404, {"ok": False, "error": "invalid:route",
                          "message": "%s %s not found"
                          % (request.method, request.path)})

    # -- the job path ---------------------------------------------------------

    async def _handle_job(self, request: _HttpRequest,
                          writer: asyncio.StreamWriter) -> None:
        try:
            payload = json.loads(request.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            self.registry.counter("invalid_total").inc()
            await respond_json(
                writer, 400, {"ok": False, "error": "invalid:bad-json",
                              "message": "body is not valid JSON"})
            return
        try:
            job = make_job(payload)
        except JobError as error:
            self.registry.counter("invalid_total").inc()
            await respond_json(
                writer, 400, {"ok": False, "error": error.code,
                              "message": error.message})
            return
        self.registry.counter("requests_total", op=job.op).inc()
        cached = self.cache.get(job)
        if cached is not None:
            self.registry.counter("cache_hits_total").inc()
            await respond_json(
                writer, 200, {"ok": True, "id": job.job_id,
                              "op": job.op, "result": cached,
                              "batch_size": 1, "cached": True,
                              "queue_ms": 0.0})
            return
        live = self.supervisor.live()
        reason = self.admission_reason(job, live)
        if reason is not None:
            self.shed += 1
            self.registry.counter("shed_total", reason=reason).inc()
            await respond_json(
                writer, 503, {"ok": False, "id": job.job_id,
                              "op": job.op,
                              "error": "rejected:overloaded",
                              "reason": reason,
                              "queue_depth": self.fleet_inflight()})
            return
        handle = self.pick_shard(job, live)
        await self._proxy_job(job, handle, request.body, writer)

    async def _proxy_job(self, job: Job, handle: ShardHandle,
                         body: bytes,
                         writer: asyncio.StreamWriter) -> None:
        """Forward one admitted job and relay the shard's exact answer.

        A dead shard surfaces here as an immediate socket error (the
        OS refuses the connect or resets mid-read), so in-flight jobs
        on a crashed shard *fail fast* with ``error:internal`` — the
        client retries or reports; nothing ever hangs on a corpse.
        """
        handle.inflight += 1
        handle.inflight_cycles += job.cost_cycles
        generation = handle.generation
        try:
            status, answer = await self._shard_request(
                handle, "POST", "/v1/job", body)
        except (OSError, asyncio.TimeoutError,
                asyncio.IncompleteReadError):
            self.registry.counter("proxy_error_total",
                                  shard=str(handle.index)).inc()
            await respond_json(
                writer, 502, {"ok": False, "id": job.job_id,
                              "op": job.op, "error": "error:internal",
                              "message": "shard %d connection failed"
                              % handle.index})
            return
        finally:
            if handle.generation == generation:
                handle.inflight = max(0, handle.inflight - 1)
                handle.inflight_cycles = max(
                    0.0, handle.inflight_cycles - job.cost_cycles)
        self.routed += 1
        handle.served += 1
        self.registry.counter("routed_total",
                              shard=str(handle.index)).inc()
        if status == 200:
            self.registry.counter("cache_misses_total").inc()
            try:
                decoded = json.loads(answer.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                decoded = None
            if decoded is not None and decoded.get("ok") \
                    and "result" in decoded:
                self.cache.put(job, decoded["result"])
        await respond_raw(writer, status, answer, "application/json")

    # -- aggregation ----------------------------------------------------------

    async def _scrape_snapshots(self) -> List[Dict[str, Any]]:
        """Every live shard's metrics snapshot (failures skipped)."""
        live = self.supervisor.live()
        results = await asyncio.gather(
            *[self._shard_request(handle, "GET", "/metrics.json",
                                  timeout=10.0) for handle in live],
            return_exceptions=True)
        snapshots: List[Dict[str, Any]] = []
        for outcome in results:
            if isinstance(outcome, BaseException):
                self.registry.counter("scrape_error_total").inc()
                continue
            status, body = outcome
            if status != 200:
                continue
            try:
                decoded = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                continue
            snapshot = decoded.get("snapshot")
            if isinstance(snapshot, dict):
                snapshots.append(snapshot)
        return snapshots

    async def _merged_snapshot(self) -> Dict[str, Any]:
        return merge_snapshots(await self._scrape_snapshots())

    async def _merged_metrics(self) -> str:
        """The fleet scrape: merged shard series + router series."""
        merged = render_snapshot(await self._merged_snapshot(),
                                 prefix="repro_serve")
        own = self.registry.render()
        return merged + own

    async def _merged_traces(self,
                             writer: asyncio.StreamWriter) -> None:
        live = self.supervisor.live()
        results = await asyncio.gather(
            *[self._shard_request(handle, "GET", "/traces",
                                  timeout=10.0) for handle in live],
            return_exceptions=True)
        traces: List[Any] = []
        any_enabled = False
        for outcome in results:
            if isinstance(outcome, BaseException):
                continue
            status, body = outcome
            if status != 200:
                continue
            any_enabled = True
            try:
                decoded = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                continue
            traces.extend(decoded.get("traces", ()))
        if not any_enabled:
            await respond_json(
                writer, 404, {"ok": False,
                              "error": "invalid:tracing-disabled"})
            return
        await respond_json(writer, 200, {"ok": True, "traces": traces})

    # -- introspection --------------------------------------------------------

    def health_text(self) -> str:
        """Aggregate health: first line ``ok``/``degraded``/
        ``draining``, then one line per shard."""
        if self._draining:
            first = "draining"
        elif self.supervisor.degraded():
            first = "degraded"
        else:
            first = "ok"
        lines = [first]
        for handle in self.supervisor.handles:
            lines.append("shard %d: %s" % (handle.index, handle.state))
        return "\n".join(lines) + "\n"

    def statz(self) -> Dict[str, Any]:
        return {
            "ok": True,
            "role": "router",
            "draining": self._draining,
            "shards": [handle.describe()
                       for handle in self.supervisor.handles],
            "fleet_rate_cycles_per_ms":
                self.fleet_rate_cycles_per_ms(),
            "inflight": self.fleet_inflight(),
            "inflight_cycles": self.fleet_inflight_cycles(),
            "routed": self.routed,
            "shed": self.shed,
            "restarts": self.supervisor.restarts_total,
            "cache": {"entries": len(self.cache),
                      "hits": self.cache.hits,
                      "misses": self.cache.misses,
                      "enabled": self.cache.enabled},
        }


class RouterThread:
    """A :class:`ShardRouter` on a background thread's event loop.

    The sharded twin of :class:`repro.serve.server.ServerThread`, for
    in-process tests and the benchmark harness: ``start()`` blocks
    until the fleet is up and the front door bound.
    """

    def __init__(self, config: Optional[RouterConfig] = None,
                 cache: Optional[ShardResultCache] = None) -> None:
        import threading
        self.config = config
        self._cache = cache
        self.router: Optional[ShardRouter] = None
        self.host = ""
        self.port = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:
            self._error = error
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.router = ShardRouter(self.config, cache=self._cache)
        self.host, self.port = await self.router.start()
        self._ready.set()
        await self.router.wait_terminated()

    def start(self, timeout: float = 120.0) -> Tuple[str, int]:
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("router thread did not come up")
        if self._error is not None:
            raise RuntimeError("router thread failed: %r" % self._error)
        return self.host, self.port

    def stop(self, timeout: float = 120.0) -> None:
        if self._loop is not None and self.router is not None \
                and self._thread.is_alive():
            self._loop.call_soon_threadsafe(
                self.router.trigger_shutdown)
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeError("router thread did not drain")

    def __enter__(self) -> "RouterThread":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


def run_router(config: Optional[RouterConfig] = None,
               announce=None) -> int:
    """Blocking entry point for ``repro serve --shards N``."""
    return asyncio.run(_router_main(config, announce))


async def _router_main(config: Optional[RouterConfig],
                       announce) -> int:
    router = ShardRouter(config, announce=announce)
    host, port = await router.start()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, router.trigger_shutdown)
        except (NotImplementedError, RuntimeError):
            break
    if announce is not None:
        announce("repro-router listening on %s:%d" % (host, port))
        announce("  shards=%d depth=%d max_wait_ms=%g drain_s=%g"
                 % (router.config.shards,
                    router.config.per_shard_depth,
                    router.config.max_wait_ms, router.config.drain_s))
    await router.wait_terminated()
    if announce is not None:
        announce("repro-router drained: %d routed, %d shed, "
                 "%d restarts"
                 % (router.routed, router.shed,
                    router.supervisor.restarts_total))
    return 0
