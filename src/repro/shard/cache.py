"""Cross-shard result cache: memo-key-salted, file-backed.

The router answers idempotent, parameter-pure jobs (``pi_digits``,
``model_cycles`` — exactly the ops :meth:`repro.serve.jobs.Job.
cache_key` deems cacheable) from one cache shared across the whole
fleet, so a query served by shard 2 warms the answer for every future
client regardless of which shard it would hash to.

The key *is* ``Job.cache_key()``, which embeds the plan's
``memo_key`` (lowering schema version + thresholds fingerprint +
algorithm) — the same salt every in-process memo cache uses — so a
``repro tune`` retune changes every key and the cache can never serve
a result computed under a stale plan.

Storage is a :class:`repro.parallel.cache.MemoCache`: a bounded
in-memory LRU with an atomic JSON spill under the cache root.  The
file backing is what makes it *cross-shard and cross-run*: a restarted
router (or a second router on the same host) starts warm from disk.
``REPRO_SHARD_CACHE=0`` disables the layer entirely.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.analysis import env as _env
from repro.parallel.cache import MemoCache
from repro.serve.jobs import Job

#: Killswitch (see the env registry / docs/ENV.md).
SHARD_CACHE_ENV = _env.SHARD_CACHE.name

#: Bump when the cached payload shape changes; the plan's own schema
#: version already rides inside every key via ``Plan.memo_key``.
SHARD_CACHE_VERSION = 1


def shard_cache_enabled() -> bool:
    """Whether the cross-shard cache layer is on (killswitch)."""
    return _env.enabled(_env.SHARD_CACHE)


class ShardResultCache:
    """The router-side get/put facade over the shared memo store."""

    def __init__(self, maxsize: int = 1024,
                 enabled: Optional[bool] = None,
                 persist: bool = True) -> None:
        self.enabled = shard_cache_enabled() if enabled is None \
            else enabled
        #: ``persist=False`` keeps the cache purely in-memory — the
        #: benchmark uses it so a disk-warmed cache can never flatter
        #: the sharded throughput numbers.
        self.persist = persist
        self._store = MemoCache("shard_results", maxsize=maxsize,
                                version=SHARD_CACHE_VERSION)
        self.hits = 0
        self.misses = 0

    def load(self) -> int:
        """Eagerly merge the on-disk spill (call at router start, off
        the request path — the lazy load does file I/O)."""
        if not self.enabled or not self.persist:
            return 0
        return self._store.load()

    def get(self, job: Job) -> Optional[Dict[str, Any]]:
        """Cached result payload for a cacheable job, else ``None``."""
        if not self.enabled:
            return None
        key = job.cache_key()
        if key is None:
            return None
        payload = self._store.get(self._store.key(*key))
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, job: Job, payload: Dict[str, Any]) -> None:
        """Store one shard-computed result payload for a cacheable job."""
        if not self.enabled:
            return
        key = job.cache_key()
        if key is None:
            return
        self._store.put(self._store.key(*key), payload)

    def save(self) -> None:
        """Spill new entries to disk (drain path; atomic, best-effort)."""
        if self.enabled and self.persist:
            self._store.save_if_dirty()

    def __len__(self) -> int:
        return len(self._store)
