"""Baseline platform models: CPU (Xeon+GMP), GPU (V100+CGBN),
AVX512IFMA, prior accelerators, the cache hierarchy, rooflines, and the
decomposition-intermediates analysis."""

from repro.platforms import (accelerators, avx512, cache, cpu, gpu,
                             intermediates, roofline)

__all__ = ["accelerators", "avx512", "cache", "cpu", "gpu",
           "intermediates", "roofline"]
