"""CPU baseline cost model: Intel Xeon 6134 + GNU GMP (Section VI-A).

The paper measures GMP 6.2 on a single Xeon 6134 core (turbo enabled,
SMT off; ~11.1 Gops INT64 peak) with ``sprof``.  Our substitute prices
the *same operation trace our own library executes* with per-limb cycle
costs of GMP's mpn kernels.  GMP uses 64-bit limbs on x86-64; the
constants below are the well-known throughputs of the tuned assembly
kernels (mpn_add_n ~1.5 c/l, mpn_mul_basecase ~2 c/l^2 with MULX), with
recursion shapes and thresholds mirroring GMP's algorithm selection, so
the model reproduces both the absolute ballpark and — more importantly
for the reproduction — the scaling shape of the measured curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.profiling import OperationTrace

#: Single-core turbo clock of the Xeon 6134 (Hz).
CPU_FREQUENCY_HZ = 3.7e9

#: Active single-core package power while running APC (Table III).
CPU_POWER_W = 7.43

#: GMP's limb size on the measured platform.
GMP_LIMB_BITS = 64

# Per-kernel cycle constants (cycles per 64-bit limb unless noted).
ADD_CYCLES_PER_LIMB = 1.5
MUL_BASECASE_CYCLES_PER_LIMB_PAIR = 2.0
DIV_SCHOOLBOOK_CYCLES_PER_LIMB_PAIR = 6.0
SHIFT_CYCLES_PER_LIMB = 1.0
CMP_CYCLES_PER_LIMB = 0.5
CALL_OVERHEAD_CYCLES = 25.0

# GMP algorithm-selection thresholds in 64-bit limbs (x86-64 shape).
KARATSUBA_THRESHOLD = 30
TOOM3_THRESHOLD = 100
TOOM4_THRESHOLD = 300
TOOM6_THRESHOLD = 700
SSA_THRESHOLD = 3000

#: (sub-multiplies, split factor, extra linear passes) per Toom level.
_TOOM_SHAPES = {
    "karatsuba": (3, 2, 8.0),
    "toom3": (5, 3, 16.0),
    "toom4": (7, 4, 28.0),
    "toom6": (11, 6, 52.0),
}


def _limbs(bits: int) -> int:
    return max(1, -(-bits // GMP_LIMB_BITS))


@lru_cache(maxsize=None)
def mul_cycles(bits_a: int, bits_b: int = 0) -> float:
    """Cycles for an (a x b)-bit multiplication under GMP selection."""
    if bits_b == 0:
        bits_b = bits_a
    small, large = sorted((_limbs(bits_a), _limbs(bits_b)))
    if large > 2 * small:
        # Unbalanced: GMP slices the long operand.
        pieces = -(-large // small)
        return pieces * mul_cycles(small * GMP_LIMB_BITS,
                                   small * GMP_LIMB_BITS) \
            + pieces * ADD_CYCLES_PER_LIMB * 2 * small
    n = large
    if n < KARATSUBA_THRESHOLD:
        return (MUL_BASECASE_CYCLES_PER_LIMB_PAIR * small * large
                + CALL_OVERHEAD_CYCLES)
    if n < TOOM3_THRESHOLD:
        shape = _TOOM_SHAPES["karatsuba"]
    elif n < TOOM4_THRESHOLD:
        shape = _TOOM_SHAPES["toom3"]
    elif n < TOOM6_THRESHOLD:
        shape = _TOOM_SHAPES["toom4"]
    elif n < SSA_THRESHOLD:
        shape = _TOOM_SHAPES["toom6"]
    else:
        return _ssa_cycles(n)
    sub_mults, split, linear_passes = shape
    piece_bits = -(-n // split) * GMP_LIMB_BITS + GMP_LIMB_BITS
    return (sub_mults * mul_cycles(piece_bits, piece_bits)
            + linear_passes * ADD_CYCLES_PER_LIMB * n
            + CALL_OVERHEAD_CYCLES)


def _ssa_cycles(n_limbs: int) -> float:
    """Schoenhage-Strassen on CPU: fine-grained parameter selection.

    GMP tunes the FFT size from a lookup table, giving the smooth curve
    of Figure 11 (in contrast to MPApca's power-of-two padding zigzag).
    """
    total_bits = 2 * n_limbs * GMP_LIMB_BITS
    # Classic balance: ring width ~ sqrt(total), so butterflies (linear
    # passes) rather than pointwise products dominate asymptotically.
    k = max(4, total_bits.bit_length() // 2)
    pieces = 1 << k
    piece_bits = -(-total_bits // pieces)
    w = 2 * piece_bits + k + 2
    transform = 2 * pieces
    butterflies = 3 * (transform // 2) * (transform.bit_length() - 1)
    butterfly_cost = ADD_CYCLES_PER_LIMB * 2 * _limbs(w) + 4
    pointwise = transform * mul_cycles(w, w)
    assembly = ADD_CYCLES_PER_LIMB * 4 * n_limbs
    return butterflies * butterfly_cost + pointwise + assembly \
        + CALL_OVERHEAD_CYCLES


def add_cycles(bits_a: int, bits_b: int = 0) -> float:
    """Cycles for mpn_add_n/sub_n."""
    return (ADD_CYCLES_PER_LIMB * _limbs(max(bits_a, bits_b))
            + CALL_OVERHEAD_CYCLES)


def shift_cycles(bits: int) -> float:
    """Cycles for mpn_lshift/rshift."""
    return SHIFT_CYCLES_PER_LIMB * _limbs(bits) + CALL_OVERHEAD_CYCLES


def cmp_cycles(bits: int) -> float:
    """Cycles for mpn_cmp (usually exits after the top limbs)."""
    return CMP_CYCLES_PER_LIMB * min(_limbs(bits), 8) \
        + CALL_OVERHEAD_CYCLES


@lru_cache(maxsize=None)
def div_cycles(bits_a: int, bits_b: int) -> float:
    """Cycles for division: schoolbook small, Newton (via mul) large."""
    n, d = _limbs(bits_a), _limbs(bits_b)
    if d <= 40:
        return (DIV_SCHOOLBOOK_CYCLES_PER_LIMB_PAIR * d * max(1, n - d + 1)
                + CALL_OVERHEAD_CYCLES)
    # Divide-and-conquer/Newton: a small constant times a multiply.
    return 3.5 * mul_cycles(bits_a, bits_b) + CALL_OVERHEAD_CYCLES


def sqrt_cycles(bits: int) -> float:
    """Cycles for mpn_sqrtrem: ~2x a full multiply at that size."""
    return 2.0 * mul_cycles(bits, bits) + CALL_OVERHEAD_CYCLES


def powmod_cycles(mod_bits: int, exp_bits: int) -> float:
    """Cycles for mpz_powm: ~1.25 Montgomery products per exponent bit."""
    per_product = (MUL_BASECASE_CYCLES_PER_LIMB_PAIR
                   * 2.2 * _limbs(mod_bits) ** 2
                   if _limbs(mod_bits) < KARATSUBA_THRESHOLD
                   else 2.2 * mul_cycles(mod_bits, mod_bits))
    return 1.25 * exp_bits * per_product + CALL_OVERHEAD_CYCLES


#: Cost of operations the profiler files under high-level/auxiliary work.
HIGHLEVEL_CYCLES = 30.0


@dataclass
class CostReport:
    """Priced execution of an operation trace on one platform."""

    seconds: float
    joules: float
    cycles_by_class: dict

    def breakdown(self) -> dict:
        """Fractional runtime share per operator class."""
        total = sum(self.cycles_by_class.values()) or 1.0
        return {name: cycles / total
                for name, cycles in self.cycles_by_class.items()}


_PRICERS = {
    "mul": lambda op: mul_cycles(op.bits_a, op.bits_b),
    "add": lambda op: add_cycles(op.bits_a, op.bits_b),
    "sub": lambda op: add_cycles(op.bits_a, op.bits_b),
    "shift": lambda op: shift_cycles(op.bits_a),
    "cmp": lambda op: cmp_cycles(op.bits_a),
    "logic": lambda op: shift_cycles(op.bits_a),
    "div": lambda op: div_cycles(op.bits_a, max(op.bits_b, 1)),
    "mod": lambda op: div_cycles(op.bits_a, max(op.bits_b, 1)),
    "sqrt": lambda op: sqrt_cycles(op.bits_a),
    "powmod": lambda op: powmod_cycles(op.bits_a, max(op.bits_b, 1)),
    "highlevel": lambda op: HIGHLEVEL_CYCLES,
    "aux": lambda op: HIGHLEVEL_CYCLES,
}


def price_trace(trace: OperationTrace) -> CostReport:
    """Price a recorded operation trace on the Xeon + GMP model."""
    cycles_by_class: dict = {}
    for op in trace.ops:
        pricer = _PRICERS.get(op.name, _PRICERS["highlevel"])
        cycles_by_class[op.name] = cycles_by_class.get(op.name, 0.0) \
            + pricer(op)
    total_cycles = sum(cycles_by_class.values())
    seconds = total_cycles / CPU_FREQUENCY_HZ
    return CostReport(seconds, seconds * CPU_POWER_W, cycles_by_class)


def multiply_seconds(bits: int) -> float:
    """Wall time of one balanced N-bit multiplication (Figure 11 curve)."""
    return mul_cycles(bits, bits) / CPU_FREQUENCY_HZ
