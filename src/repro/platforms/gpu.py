"""GPU baseline model: NVIDIA V100 + CGBN/XMP (Section VI-A).

CGBN is a batch-processing library: a multiplication is spread over a
cooperative thread group at 16x16-bit granularity, and performance is
only reasonable when thousands of independent operations amortize the
kernel launch and occupancy ramp ("we measure the amortized time
consumption of a single multiplication over a batch size of 10,000").
The model therefore has two regimes:

* batch: per-op time = limb-product work / effective throughput,
  calibrated at the paper's Table III point (4096x4096-bit multiply in
  1.56e-8 s amortized);
* general-purpose (batch ~ 1, the Figure 2 situation): kernel launch
  latency dominates and the GPU lands ~32x *slower* than a single CPU
  core.

CGBN supports operands up to ~32K bits; beyond that the library (and
the model) is out of range, matching the limited span of the GPU curve
in Figure 11.
"""

from __future__ import annotations

from repro.profiling import OperationTrace

#: Published V100 characteristics (Table III).
GPU_AREA_MM2 = 815.0
GPU_POWER_W = 220.58
GPU_HBM_BANDWIDTH_GBS = 900.0

#: Kernel launch + synchronization latency per offloaded call (seconds).
KERNEL_LAUNCH_SECONDS = 8.0e-6

#: CGBN operand-size applicability (bits).
CGBN_MAX_BITS = 32768
CGBN_MIN_BITS = 128

#: Fitted so a batched 4096-bit multiply amortizes to 1.56e-8 s.
_REFERENCE_BITS = 4096
_REFERENCE_SECONDS = 1.56e-8
#: Batched throughput scales ~quadratically in operand size (the 16x16
#: granularity does schoolbook work across the thread group).
_WORK_EXPONENT = 1.9


def multiply_seconds(bits: int, batch: int = 10000) -> float:
    """Amortized per-multiply seconds on V100+CGBN for a given batch."""
    if not CGBN_MIN_BITS <= bits <= CGBN_MAX_BITS:
        raise ValueError("operand size outside CGBN's applicable range")
    work = _REFERENCE_SECONDS * (bits / _REFERENCE_BITS) ** _WORK_EXPONENT
    return work + KERNEL_LAUNCH_SECONDS / max(1, batch)


def applicable(bits: int) -> bool:
    """Whether CGBN handles this operand size at all."""
    return CGBN_MIN_BITS <= bits <= CGBN_MAX_BITS


#: Independent operations XMP keeps in flight on the stream, which
#: amortizes launch latency even without application-level batching.
PIPELINE_DEPTH = 8


def price_trace(trace: OperationTrace, batch: int = 1,
                pipeline_depth: int = PIPELINE_DEPTH) -> float:
    """Seconds for a general-purpose APC trace on the GPU (XMP-style).

    Every kernel operator becomes a device call; with no batching the
    launch latency (amortized only over the stream's pipeline depth)
    dominates — the reason general-purpose APC runs ~32x slower on the
    GPU than on a single CPU core (Figure 2, left).  Oversized or
    undersized operands fall back to a host-side path priced like the
    CPU (XMP does the same).
    """
    from repro.platforms import cpu as cpu_model
    total = 0.0
    for op in trace.ops:
        if op.name in ("mul", "add", "sub", "shift", "div", "mod",
                       "sqrt", "powmod") and applicable(max(op.bits_a, 1)):
            total += multiply_seconds(
                min(max(op.bits_a, CGBN_MIN_BITS), CGBN_MAX_BITS),
                batch=max(batch, 1) * pipeline_depth)
        else:
            pricer = cpu_model._PRICERS.get(
                op.name, cpu_model._PRICERS["highlevel"])
            total += pricer(op) / cpu_model.CPU_FREQUENCY_HZ
    return total


def energy_joules(seconds: float) -> float:
    """Energy at the V100's measured power."""
    return seconds * GPU_POWER_W
