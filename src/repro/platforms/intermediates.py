"""Decomposition-intermediates traffic analysis (Figure 4, Section II-C).

Two analyses from the paper's motivation:

* **One-level schoolbook decomposition** (Figure 4): splitting an n-bit
  multiply into four n/2-bit multiplies and three additions touches 20n
  bits of operands/intermediates where the monolithic operation touches
  4n — the 5x blow-up table reproduced row by row.

* **Recursive Karatsuba intermediates** (the 7.68x claim): decomposing
  a 1,000,000-bit Karatsuba multiplication down to 32-bit limbs
  generates 1.72 GB of intermediates versus 223.71 MB at 1024-bit limbs.
  Each recursion node allocates and traffics intermediates proportional
  to its operand size; the recursion tree below size `limb` disappears
  into the (register-resident) basecase.  The per-node constant is
  anchored to the paper's absolute numbers; the 7.68x ratio itself is
  structural: sum of 1.5^k over the extra recursion depth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class DecompositionRow:
    """One row of Figure 4's access-bits table."""

    operation: str
    input_bits: float
    output_bits: float

    @property
    def total_bits(self) -> float:
        return self.input_bits + self.output_bits


def schoolbook_decomposition_rows(n_bits: int) -> List[DecompositionRow]:
    """Figure 4: accessed bits of one split level vs the monolithic op."""
    half = n_bits / 2.0
    return [
        DecompositionRow("z00 = x0*y0", 2 * half, n_bits),
        DecompositionRow("z01 = x0*y1", 2 * half, n_bits),
        DecompositionRow("z10 = x1*y0", 2 * half, n_bits),
        DecompositionRow("z11 = x1*y1", 2 * half, n_bits),
        DecompositionRow("z0 = z01+z10", 2 * n_bits, n_bits),
        DecompositionRow("z1 = z00+z11", 3 * n_bits, n_bits),
        DecompositionRow("z = z0+z1", 3 * n_bits, 2 * n_bits),
    ]


def schoolbook_total_bits(n_bits: int) -> float:
    """Total accessed bits after one decomposition level: 20n."""
    return sum(row.total_bits for row in schoolbook_decomposition_rows(n_bits))


def monolithic_total_bits(n_bits: int) -> float:
    """Accessed bits of the monolithic n-bit multiply: 4n."""
    return 4.0 * n_bits


#: Intermediate bits generated per Karatsuba node, per operand bit.
#: Anchored so a 1,000,000-bit multiply at 32-bit limbs generates the
#: paper's 1.72 GB (sums, three sub-products, combination temporaries,
#: each written and re-read).
KARATSUBA_NODE_INTERMEDIATE_FACTOR = 16.25


def karatsuba_intermediate_bits(n_bits: int, limb_bits: int) -> float:
    """Total intermediate bits of a Karatsuba recursion down to ``limb_bits``.

    I(n) = c*n + 3*I(n/2), I(n <= limb) = 0: below the limb size the
    work happens inside the (register-resident) functional unit and no
    memory intermediates exist — the paper's case for monolithic
    large-bitwidth units.
    """
    if n_bits <= limb_bits:
        return 0.0
    return (KARATSUBA_NODE_INTERMEDIATE_FACTOR * n_bits
            + 3.0 * karatsuba_intermediate_bits(n_bits / 2.0, limb_bits))


def karatsuba_intermediate_megabytes(n_bits: int, limb_bits: int) -> float:
    """Same, in MB (the units of the paper's 223.71 MB / 1.72 GB claim)."""
    return karatsuba_intermediate_bits(n_bits, limb_bits) / 8.0 / 1e6


def intermediates_reduction_ratio(n_bits: int, coarse_limb_bits: int,
                                  fine_limb_bits: int) -> float:
    """How many times fewer intermediates the coarse decomposition makes."""
    fine = karatsuba_intermediate_bits(n_bits, fine_limb_bits)
    coarse = karatsuba_intermediate_bits(n_bits, coarse_limb_bits)
    return fine / coarse if coarse else float("inf")
