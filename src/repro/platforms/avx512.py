"""AVX512IFMA baseline model (Gueron & Krasnov, Section VI-A).

The state-of-the-art SIMD implementation packs full 52-bit
multiplications (VPMADD52LUQ/HUQ) with convenient horizontal
carry-propagation, giving a strong fixed-width big-integer multiplier
on Ice Lake cores.  The model is anchored at the paper's Table III
point (a 4096x4096-bit multiply in 5.70e-7 s — 35.6x slower than
Cambricon-P) and scales with schoolbook-with-SIMD work below the
Karatsuba crossover and Karatsuba recursion above it.
"""

from __future__ import annotations

#: Published characteristics (Table III, Intel 10 nm).
AVX512_AREA_MM2 = 0.54
AVX512_POWER_W = 13.26

#: Anchor: 4096-bit multiply (Table III).
_REFERENCE_BITS = 4096
_REFERENCE_SECONDS = 5.70e-7

#: Packed-IFMA schoolbook exponent (SIMD hides part of the n^2).
_WORK_EXPONENT = 1.85

#: The open-source kernels target fixed sizes up to ~2^20 bits.
AVX512_MIN_BITS = 512
AVX512_MAX_BITS = 1 << 20

#: Above this the implementation recurses with Karatsuba.
_KARATSUBA_CROSSOVER_BITS = 16384


def multiply_seconds(bits: int) -> float:
    """Per-multiply seconds for the AVX512IFMA implementation."""
    if not AVX512_MIN_BITS <= bits <= AVX512_MAX_BITS:
        raise ValueError("operand size outside the AVX512IFMA kernels")
    if bits <= _KARATSUBA_CROSSOVER_BITS:
        return _REFERENCE_SECONDS * \
            (bits / _REFERENCE_BITS) ** _WORK_EXPONENT
    # Karatsuba recursion down to the packed basecase.
    half = multiply_seconds(max(_KARATSUBA_CROSSOVER_BITS, bits // 2))
    return 3.0 * half + bits * 2.5e-12


def applicable(bits: int) -> bool:
    """Whether the IFMA kernels cover this operand size."""
    return AVX512_MIN_BITS <= bits <= AVX512_MAX_BITS


def energy_joules(seconds: float) -> float:
    """Energy at the measured package power."""
    return seconds * AVX512_POWER_W
