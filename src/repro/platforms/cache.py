"""LRU cache-hierarchy simulator and workload traces (Figure 3).

The paper profiles three access patterns against a Zen3-like memory
hierarchy to locate each one's bandwidth bottleneck: *Random Access*
saturates the remote levels (DRAM/L3), *Matrix Multiply* concentrates
between L1 and the register file, and *APC Multiply* is "completely
stuck at the nearest hierarchy (register files) while the remote
hierarchies are almost idle" — the signature of fine-grained
decomposition into register-resident limbs.

We reproduce the experiment: an inclusive LRU hierarchy with the
labelled capacities/bandwidths, three trace generators that perform the
real inner loops (uniform random probes; blocked GEMM; limb-level
Karatsuba/schoolbook multiplication), and a utilization profile that
divides each level's measured traffic by its bandwidth and normalizes
by the bottleneck level.
"""

from __future__ import annotations

import random as _random
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

LINE_BYTES = 64
WORD_BYTES = 8

#: Zen3-like hierarchy (Figure 3a): (name, capacity bytes, GB/s).
DEFAULT_LEVELS: Tuple[Tuple[str, int, float], ...] = (
    ("L1", 32 * 1024, 256.0),
    ("L2", 512 * 1024, 128.0),
    ("L3", 32 * 1024 * 1024, 64.0),
    ("DRAM", 1 << 62, 24.0),
)

#: Register file: 3 operand accesses per ALU op at the core clock.
RF_BANDWIDTH_GBS = 888.0  # 3 ports x 8 B x 3.7 GHz
RF_BYTES_PER_ALU_OP = 3 * WORD_BYTES


class CacheLevel:
    """One inclusive, fully-associative LRU level."""

    def __init__(self, name: str, capacity_bytes: int,
                 bandwidth_gbs: float) -> None:
        self.name = name
        self.capacity_lines = max(1, capacity_bytes // LINE_BYTES)
        self.bandwidth_gbs = bandwidth_gbs
        self._lines: OrderedDict = OrderedDict()
        self.bytes_in = 0  # traffic crossing INTO this level from above

    def lookup(self, line: int) -> bool:
        """LRU hit test with recency update."""
        if line in self._lines:
            self._lines.move_to_end(line)
            return True
        return False

    def insert(self, line: int) -> None:
        """Fill a line, evicting LRU as needed."""
        self._lines[line] = True
        self._lines.move_to_end(line)
        while len(self._lines) > self.capacity_lines:
            self._lines.popitem(last=False)


@dataclass
class HierarchyReport:
    """Traffic and utilization per level for one workload."""

    alu_ops: int
    traffic_bytes: Dict[str, float]
    utilization: Dict[str, float] = field(default_factory=dict)

    def bottleneck(self) -> str:
        """The level whose bandwidth bounds the runtime."""
        return max(self.utilization, key=self.utilization.get)


class CacheHierarchy:
    """An inclusive LRU hierarchy driven by (address, alu) traces."""

    def __init__(self, levels=DEFAULT_LEVELS) -> None:
        self.levels = [CacheLevel(*spec) for spec in levels]
        self.alu_ops = 0
        self.word_accesses = 0

    def access(self, address: int) -> None:
        """One word-granularity memory access."""
        self.word_accesses += 1
        line = address // LINE_BYTES
        for depth, level in enumerate(self.levels):
            level.bytes_in += WORD_BYTES if depth == 0 else LINE_BYTES
            if level.lookup(line):
                for upper in self.levels[:depth]:
                    upper.insert(line)
                return
        for level in self.levels:
            level.insert(line)

    def alu(self, count: int = 1) -> None:
        """Count register-file-bound arithmetic work."""
        self.alu_ops += count

    def report(self) -> HierarchyReport:
        """Traffic per level and bandwidth utilization profile."""
        traffic: Dict[str, float] = {
            "RF": float(self.alu_ops * RF_BYTES_PER_ALU_OP)}
        for level in self.levels:
            traffic[level.name] = float(level.bytes_in)
        demand = {"RF": traffic["RF"] / RF_BANDWIDTH_GBS}
        for level in self.levels:
            demand[level.name] = traffic[level.name] / level.bandwidth_gbs
        bottleneck_time = max(demand.values()) or 1.0
        utilization = {name: time / bottleneck_time
                       for name, time in demand.items()}
        return HierarchyReport(self.alu_ops, traffic, utilization)


# ---------------------------------------------------------------------------
# Workload traces.
# ---------------------------------------------------------------------------

def run_random_access(hierarchy: CacheHierarchy, num_elements: int,
                      seed: int = 0) -> None:
    """n*log2(n) uniformly distributed probes over an n-element array."""
    rng = _random.Random(seed)
    probes = num_elements * max(1, num_elements.bit_length() - 1)
    for _ in range(probes):
        index = rng.randrange(num_elements)
        hierarchy.access(index * WORD_BYTES)
        hierarchy.alu(1)


def run_matrix_multiply(hierarchy: CacheHierarchy, size: int,
                        block: int = 32) -> None:
    """Blocked GEMM: high locality between L1 and the register file."""
    base_a = 0
    base_b = size * size * WORD_BYTES
    base_c = 2 * size * size * WORD_BYTES
    for ii in range(0, size, block):
        for jj in range(0, size, block):
            for kk in range(0, size, block):
                for i in range(ii, min(ii + block, size)):
                    for k in range(kk, min(kk + block, size)):
                        hierarchy.access(base_a + (i * size + k)
                                         * WORD_BYTES)
                        for j in range(jj, min(jj + block, size)):
                            hierarchy.access(base_b + (k * size + j)
                                             * WORD_BYTES)
                            hierarchy.access(base_c + (i * size + j)
                                             * WORD_BYTES)
                            hierarchy.alu(2)  # FMA: mul + add


def run_apc_multiply(hierarchy: CacheHierarchy, bits: int,
                     basecase_limbs: int = 16,
                     limb_bits: int = 64) -> None:
    """Limb-level Karatsuba multiplication, the Figure 3 hot pattern.

    The recursion spills small intermediate buffers while the basecase
    schoolbook grinds register-resident limb products: ~3 ALU ops
    (mul + two add-with-carry) per limb pair against a working set that
    fits in registers/L1 — the extreme near-end locality of APC.
    """
    limbs = max(1, bits // limb_bits)
    arena = [0]  # bump allocator for intermediate buffers

    def alloc(num_limbs: int) -> int:
        base = arena[0]
        arena[0] += num_limbs * WORD_BYTES
        return base

    def basecase(a_addr: int, b_addr: int, r_addr: int, n: int) -> None:
        for i in range(n):
            hierarchy.access(a_addr + i * WORD_BYTES)
            for j in range(n):
                if i == 0:
                    hierarchy.access(b_addr + j * WORD_BYTES)
                hierarchy.alu(3)          # mul + 2 adc, register resident
            hierarchy.access(r_addr + i * WORD_BYTES)   # spill the row
        for i in range(n):
            hierarchy.access(r_addr + (n + i) * WORD_BYTES)

    def karatsuba(a_addr: int, b_addr: int, r_addr: int, n: int) -> None:
        if n <= basecase_limbs:
            basecase(a_addr, b_addr, r_addr, n)
            return
        scratch_mark = arena[0]  # scratch space is stack-reused per node
        half = n // 2
        sum_a = alloc(half + 1)
        sum_b = alloc(half + 1)
        for i in range(half + 1):       # form the cross sums
            hierarchy.access(a_addr + i * WORD_BYTES)
            hierarchy.access(b_addr + i * WORD_BYTES)
            hierarchy.access(sum_a + i * WORD_BYTES)
            hierarchy.access(sum_b + i * WORD_BYTES)
            hierarchy.alu(2)
        z0 = alloc(n)
        z2 = alloc(n)
        z1 = alloc(n + 2)
        karatsuba(a_addr, b_addr, z0, half)
        karatsuba(a_addr + half * WORD_BYTES, b_addr + half * WORD_BYTES,
                  z2, n - half)
        karatsuba(sum_a, sum_b, z1, half + 1)
        for i in range(2 * n):          # combine into the result
            hierarchy.access(z1 + (i % (n + 2)) * WORD_BYTES)
            hierarchy.access(r_addr + i * WORD_BYTES)
            hierarchy.alu(1)
        arena[0] = scratch_mark         # release this node's scratch

    a_base = alloc(limbs)
    b_base = alloc(limbs)
    result = alloc(2 * limbs + 4)
    karatsuba(a_base, b_base, result, limbs)
